(* Tests for the XML parser and the XCSP-to-hypergraph reader (§5.5). *)

module H = Hg.Hypergraph

let xml_basic () =
  match Xcsp3.Xml.parse {|<a x="1" y='two'><b/><c>text</c></a>|} with
  | Error m -> Alcotest.fail m
  | Ok root ->
      Alcotest.(check (option string)) "tag" (Some "a") (Xcsp3.Xml.tag root);
      Alcotest.(check (option string)) "attr x" (Some "1") (Xcsp3.Xml.attr root "x");
      Alcotest.(check (option string)) "attr y" (Some "two") (Xcsp3.Xml.attr root "y");
      Alcotest.(check int) "children" 2 (List.length (Xcsp3.Xml.children root));
      let c = Option.get (Xcsp3.Xml.find_child root "c") in
      Alcotest.(check string) "text" "text" (String.trim (Xcsp3.Xml.text_content c))

let xml_declaration_comment () =
  let src =
    {|<?xml version="1.0"?>
      <!-- a comment -->
      <root><!-- inner --><x/></root>|}
  in
  match Xcsp3.Xml.parse src with
  | Error m -> Alcotest.fail m
  | Ok root ->
      Alcotest.(check int) "one child" 1 (List.length (Xcsp3.Xml.children root))

let xml_entities () =
  match Xcsp3.Xml.parse {|<a t="&lt;x&gt;">&amp;&quot;&apos;</a>|} with
  | Error m -> Alcotest.fail m
  | Ok root ->
      Alcotest.(check (option string)) "attr entities" (Some "<x>")
        (Xcsp3.Xml.attr root "t");
      Alcotest.(check string) "text entities" "&\"'"
        (String.trim (Xcsp3.Xml.text_content root))

let xml_errors () =
  let bad = [ "<a>"; "<a></b>"; "text only"; "<a attr=oops></a>"; "<a/><b/>" ] in
  List.iter
    (fun src ->
      match Xcsp3.Xml.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should fail: %s" src)
    bad

let xcsp_small () =
  let src =
    {|<instance format="XCSP3" type="CSP" id="demo">
        <variables>
          <var id="x0"> 0..3 </var>
          <var id="x1"> 0..3 </var>
          <var id="x2"> 0..3 </var>
        </variables>
        <constraints>
          <extension>
            <list> x0 x1 </list>
            <supports> (0,1)(1,2) </supports>
          </extension>
          <allDifferent> x1 x2 </allDifferent>
        </constraints>
      </instance>|}
  in
  match Xcsp3.Xcsp.read src with
  | Error m -> Alcotest.fail m
  | Ok h ->
      Alcotest.(check int) "edges" 2 h.H.n_edges;
      Alcotest.(check int) "vertices" 3 h.H.n_vertices

let xcsp_arrays_and_groups () =
  let src =
    {|<instance>
        <variables>
          <array id="y" size="[3]"> 0..1 </array>
          <var id="z"> 0..1 </var>
        </variables>
        <constraints>
          <group>
            <intension> eq(%0,%1) </intension>
            <args> y[0] y[1] </args>
            <args> y[1] y[2] </args>
          </group>
          <sum>
            <list> y[] z </list>
          </sum>
        </constraints>
      </instance>|}
  in
  match Xcsp3.Xcsp.parse src with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      Alcotest.(check int) "expanded variables" 4 (List.length inst.Xcsp3.Xcsp.variables);
      Alcotest.(check int) "three constraints" 3 (List.length inst.Xcsp3.Xcsp.scopes);
      (* The whole-array reference y[] expands to all members. *)
      let sum_scope = List.nth inst.Xcsp3.Xcsp.scopes 2 in
      Alcotest.(check int) "sum scope size" 4 (List.length sum_scope)

let xcsp_matrix_array () =
  let src =
    {|<instance>
        <variables><array id="m" size="[2][2]"> 0..1 </array></variables>
        <constraints><allDifferent> m[0][0] m[1][1] </allDifferent></constraints>
      </instance>|}
  in
  match Xcsp3.Xcsp.parse src with
  | Error m -> Alcotest.fail m
  | Ok inst ->
      Alcotest.(check int) "4 cells" 4 (List.length inst.Xcsp3.Xcsp.variables);
      Alcotest.(check (list (list string))) "diagonal scope"
        [ [ "m[0][0]"; "m[1][1]" ] ]
        inst.Xcsp3.Xcsp.scopes

let xcsp_blocks () =
  let src =
    {|<instance>
        <variables><var id="a"/><var id="b"/><var id="c"/></variables>
        <constraints>
          <block>
            <extension><list> a b </list></extension>
            <block><extension><list> b c </list></extension></block>
          </block>
        </constraints>
      </instance>|}
  in
  match Xcsp3.Xcsp.read src with
  | Error m -> Alcotest.fail m
  | Ok h -> Alcotest.(check int) "nested blocks flattened" 2 h.H.n_edges

let xcsp_errors () =
  (match Xcsp3.Xcsp.read "<instance><constraints/></instance>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing variables should fail");
  (match
     Xcsp3.Xcsp.read
       {|<instance><variables><var id="x"/></variables><constraints></constraints></instance>|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no constraints should fail");
  match Xcsp3.Xcsp.read "<foo/>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong root should fail"

(* --- hostile inputs ---------------------------------------------------- *)

let xml_unterminated_comment () =
  (* A comment that never closes must be a positioned error, not a hang
     or a silent EOF. *)
  match Xcsp3.Xml.parse_report "<a><!-- this comment never ends" with
  | Ok _ -> Alcotest.fail "unterminated comment should fail"
  | Error ds ->
      Alcotest.(check bool) "has a diagnostic" true (ds <> []);
      let d = List.hd ds in
      Alcotest.(check bool) "span inside input" true
        (d.Kit.Diag.span.Kit.Diag.start <= 31)

let xml_cdata () =
  (* CDATA is literal: no entity decoding, markup characters are text. *)
  (match Xcsp3.Xml.parse "<a><![CDATA[<b>&amp;</b>]]></a>" with
  | Error m -> Alcotest.fail m
  | Ok root ->
      Alcotest.(check string) "literal content" "<b>&amp;</b>"
        (Xcsp3.Xml.text_content root);
      Alcotest.(check int) "no child elements" 0
        (List.length
           (List.filter
              (fun n -> Xcsp3.Xml.tag n <> None)
              (Xcsp3.Xml.children root))));
  (* A CDATA section cannot nest: the first ]]> closes it, the rest is
     ordinary (here: invalid) content. *)
  (match Xcsp3.Xml.parse "<a><![CDATA[x<![CDATA[y]]></a>" with
  | Error m -> Alcotest.fail m
  | Ok root ->
      Alcotest.(check string) "first ]]> closes" "x<![CDATA[y"
        (Xcsp3.Xml.text_content root));
  (* Unterminated CDATA is an error, not an infinite scan. *)
  match Xcsp3.Xml.parse "<a><![CDATA[never closed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated CDATA should fail"

let xml_megabyte_attribute () =
  (* An attribute value of a megabyte is legal and must survive intact
     (and in linear time). *)
  let big = String.make 1_000_000 'v' in
  let src = Printf.sprintf {|<a huge="%s"><b/></a>|} big in
  match Xcsp3.Xml.parse src with
  | Error m -> Alcotest.fail m
  | Ok root -> (
      match Xcsp3.Xml.attr root "huge" with
      | Some v -> Alcotest.(check int) "length preserved" 1_000_000 (String.length v)
      | None -> Alcotest.fail "attribute lost")

let xml_undefined_entity () =
  (* Unknown entities pass through verbatim — benchmark files in the wild
     contain bare ampersands and we must not lose bytes around them. *)
  match Xcsp3.Xml.parse "<a>&unknown; &#x26; &amp;</a>" with
  | Error m -> Alcotest.fail m
  | Ok root ->
      let t = String.trim (Xcsp3.Xml.text_content root) in
      Alcotest.(check bool) "verbatim unknown entity" true
        (String.length t >= 9 && String.sub t 0 9 = "&unknown;")

let xml_depth_bound () =
  (* Nesting twice past HB_PARSE_DEPTH must come back as a clean error
     mentioning the knob, never Stack_overflow. *)
  let n = 2 * Kit.Limits.max_depth () in
  let buf = Buffer.create (8 * n) in
  for _ = 1 to n do Buffer.add_string buf "<d>" done;
  Buffer.add_string buf "x";
  for _ = 1 to n do Buffer.add_string buf "</d>" done;
  match Xcsp3.Xml.parse (Buffer.contents buf) with
  | Ok _ -> Alcotest.fail "depth bomb should fail"
  | Error m ->
      Alcotest.(check bool) "names the knob" true
        (try
           ignore (Str.search_forward (Str.regexp_string "HB_PARSE_DEPTH") m 0);
           true
         with Not_found -> false)

let xcsp_array_size_bomb () =
  (* A single declared dimension of 999999999 cells must be refused before
     any allocation, as must a product of dimensions that overflows. *)
  List.iter
    (fun size ->
      let src =
        Printf.sprintf
          {|<instance><variables><array id="a" size="%s"> 0..1 </array></variables><constraints><allDifferent> a[] </allDifferent></constraints></instance>|}
          size
      in
      match Xcsp3.Xcsp.read src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "array bomb %s should fail" size)
    [ "[999999999]"; "[100000][100000]"; "[4611686018427387904][4]" ]

let roundtrip () =
  let rng = Kit.Rng.create 5 in
  for i = 1 to 20 do
    let h = Gen.Random_csp.typical rng in
    let xml = Xcsp3.Xcsp.to_xml ~name:(Printf.sprintf "rt%d" i) h in
    match Xcsp3.Xcsp.read xml with
    | Error m -> Alcotest.failf "roundtrip %d: %s" i m
    | Ok h' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %d structure" i)
          true
          (H.equal_structure h h')
  done

let () =
  Alcotest.run "xcsp"
    [
      ( "xml",
        [
          Alcotest.test_case "basics" `Quick xml_basic;
          Alcotest.test_case "declaration + comments" `Quick xml_declaration_comment;
          Alcotest.test_case "entities" `Quick xml_entities;
          Alcotest.test_case "errors" `Quick xml_errors;
          Alcotest.test_case "unterminated comment" `Quick
            xml_unterminated_comment;
          Alcotest.test_case "cdata" `Quick xml_cdata;
          Alcotest.test_case "megabyte attribute" `Quick xml_megabyte_attribute;
          Alcotest.test_case "undefined entity" `Quick xml_undefined_entity;
          Alcotest.test_case "depth bound" `Quick xml_depth_bound;
        ] );
      ( "xcsp",
        [
          Alcotest.test_case "small instance" `Quick xcsp_small;
          Alcotest.test_case "arrays and groups" `Quick xcsp_arrays_and_groups;
          Alcotest.test_case "matrix arrays" `Quick xcsp_matrix_array;
          Alcotest.test_case "blocks" `Quick xcsp_blocks;
          Alcotest.test_case "errors" `Quick xcsp_errors;
          Alcotest.test_case "array size bomb" `Quick xcsp_array_size_bomb;
          Alcotest.test_case "roundtrip" `Quick roundtrip;
        ] );
    ]
