(* The adversarial fuzz harness itself: every frontend survives a seeded
   sweep crash-free, and the driver is deterministic — the same
   (format, cases, seed) triple must reproduce the same summary, because
   CI failure artifacts are replayed from exactly that triple. *)

module F = Benchlib.Fuzz_driver

let cases = 400

let sweep_crash_free () =
  List.iter
    (fun fmt ->
      let s = F.run fmt ~cases ~seed:2019 in
      Alcotest.(check int)
        (F.format_name fmt ^ " cases")
        cases s.F.cases;
      Alcotest.(check int)
        (F.format_name fmt ^ " accounted")
        cases (s.F.parsed + s.F.rejected);
      List.iter
        (fun (f : F.failure) ->
          Alcotest.failf "%s case %d crashed: %s" (F.format_name fmt) f.F.index
            f.F.outcome)
        s.F.failures)
    F.all_formats

let deterministic () =
  List.iter
    (fun fmt ->
      let a = F.run fmt ~cases:100 ~seed:7 in
      let b = F.run fmt ~cases:100 ~seed:7 in
      Alcotest.(check (pair int int))
        (F.format_name fmt ^ " same seed same counts")
        (a.F.parsed, a.F.rejected)
        (b.F.parsed, b.F.rejected);
      let c = F.run fmt ~cases:100 ~seed:8 in
      (* Different seeds should explore differently; equal counts for all
         four formats at once would mean the seed is ignored. *)
      ignore c)
    F.all_formats;
  let a = List.map (fun f -> (F.run f ~cases:100 ~seed:7).F.parsed) F.all_formats in
  let c = List.map (fun f -> (F.run f ~cases:100 ~seed:8).F.parsed) F.all_formats in
  Alcotest.(check bool) "seed matters" true (a <> c)

(* The generators must produce a healthy mix: a fuzzer whose inputs are
   all rejected up front (or all valid) exercises nothing interesting. *)
let mix () =
  List.iter
    (fun fmt ->
      let s = F.run fmt ~cases ~seed:2019 in
      Alcotest.(check bool)
        (F.format_name fmt ^ " some rejected")
        true (s.F.rejected > 0);
      Alcotest.(check bool)
        (F.format_name fmt ^ " some parsed")
        true (s.F.parsed > 0))
    F.all_formats

let () =
  Alcotest.run "fuzz"
    [
      ( "driver",
        [
          Alcotest.test_case "4 x 400 cases crash-free" `Quick sweep_crash_free;
          Alcotest.test_case "deterministic" `Quick deterministic;
          Alcotest.test_case "parse/reject mix" `Quick mix;
        ] );
    ]
