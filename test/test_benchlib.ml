(* Tests for the benchmark repository, the analysis runners and the
   experiment renderers (fast, tiny-scale integration). *)

module B = Benchlib

let build () = B.Repository.build ~seed:7 ~scale:0.05 ()

let repository_build () =
  let instances = build () in
  Alcotest.(check bool) "nonempty" true (List.length instances > 10);
  (* All five groups are populated. *)
  List.iter
    (fun (g, insts) ->
      Alcotest.(check bool) (B.Group.name g ^ " populated") true (insts <> []))
    (B.Repository.by_group instances);
  (* Names are unique. *)
  let names = List.map (fun i -> i.B.Instance.name) instances in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let repository_deterministic () =
  let a = build () and b = build () in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      Alcotest.(check string) "same name" x.B.Instance.name y.B.Instance.name;
      Alcotest.(check bool) "same structure" true
        (Hg.Hypergraph.equal_structure x.B.Instance.hg y.B.Instance.hg))
    a b

let repository_scale () =
  let small = B.Repository.build ~seed:7 ~scale:0.05 () in
  let large = B.Repository.build ~seed:7 ~scale:0.3 () in
  Alcotest.(check bool) "scale grows the repository" true
    (List.length large > List.length small)

let save_load_roundtrip () =
  let dir = Filename.temp_file "hb" "" in
  Sys.remove dir;
  let instances = build () in
  B.Repository.save ~dir instances;
  (match B.Repository.load ~dir with
  | Error m -> Alcotest.fail m
  | Ok { B.Repository.instances = loaded; skipped } ->
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped);
      Alcotest.(check int) "count" (List.length instances) (List.length loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "name" a.B.Instance.name b.B.Instance.name;
          Alcotest.(check bool) "group" true (a.B.Instance.group = b.B.Instance.group);
          Alcotest.(check string) "source" a.B.Instance.source b.B.Instance.source;
          Alcotest.(check bool) "structure" true
            (Hg.Hypergraph.equal_structure a.B.Instance.hg b.B.Instance.hg))
        instances loaded);
  (* Clean up. *)
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir

let load_missing () =
  match B.Repository.load ~dir:"/nonexistent-hyperbench" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing dir should fail"

(* Satellite (b): corrupt entries are skipped with a warning, never a
   load-aborting error — the healthy rest of the repository still loads. *)
let load_tolerates_corruption () =
  let dir = Filename.temp_file "hb" "" in
  Sys.remove dir;
  let instances = List.filteri (fun i _ -> i < 4) (build ()) in
  B.Repository.save ~dir instances;
  let first = (List.hd instances).B.Instance.name in
  (* Truncate one .hg file mid-edge, then append an unknown-group entry
     and a torn line to the index. *)
  let oc = open_out (Filename.concat dir (B.Repository.hg_filename first)) in
  output_string oc "e0(v0,";
  close_out oc;
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat dir "index.tsv")
  in
  output_string oc "ghost\tno-such-group\tsrc\ntorn line without tabs\n";
  close_out oc;
  (match B.Repository.load ~dir with
  | Error m -> Alcotest.fail m
  | Ok { B.Repository.instances = loaded; skipped } ->
      Alcotest.(check int) "healthy entries survive"
        (List.length instances - 1)
        (List.length loaded);
      Alcotest.(check int) "one warning per corruption" 3 (List.length skipped);
      Alcotest.(check bool) "truncated file reported by name" true
        (List.mem_assoc first skipped);
      Alcotest.(check bool) "torn index line reported" true
        (List.mem_assoc "index.tsv" skipped));
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir

let save_creates_parents () =
  let base = Filename.temp_file "hb" "" in
  Sys.remove base;
  (* Two levels of missing parents below a missing base directory. *)
  let dir = Filename.concat (Filename.concat base "nested") "repo" in
  let instances = List.filteri (fun i _ -> i < 3) (build ()) in
  B.Repository.save ~dir instances;
  (match B.Repository.load ~dir with
  | Error m -> Alcotest.fail m
  | Ok loaded ->
      Alcotest.(check int) "count" (List.length instances)
        (List.length loaded.B.Repository.instances));
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir;
  Sys.rmdir (Filename.concat base "nested");
  Sys.rmdir base

let fast_budget () = Kit.Deadline.of_seconds 0.2

(* A deterministic budget: with fuel instead of wall clock, verdicts are
   bit-identical however the instances are spread over domains. *)
let fuel_budget () = Kit.Deadline.of_fuel 20_000

let analysis_parallel_matches_sequential () =
  let instances = build () in
  let seq =
    B.Analysis.analyze ~budget:fuel_budget ~max_k:4 ~jobs:1 instances
  in
  let par =
    B.Analysis.analyze ~budget:fuel_budget ~max_k:4 ~jobs:4 instances
  in
  Alcotest.(check int) "same record count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : B.Analysis.record) (b : B.Analysis.record) ->
      let name = a.B.Analysis.instance.B.Instance.name in
      Alcotest.(check string) "same order" name b.B.Analysis.instance.B.Instance.name;
      Alcotest.(check bool) (name ^ " same hw status") true
        (a.B.Analysis.hw = b.B.Analysis.hw);
      let runs (r : B.Analysis.record) =
        List.map (fun (x : B.Analysis.hw_run) -> (x.k, x.outcome)) r.B.Analysis.hw_runs
      in
      Alcotest.(check bool) (name ^ " same run verdicts") true (runs a = runs b))
    seq par;
  (* And downstream: the ghd comparison on those records agrees too. *)
  let ghd jobs records =
    List.map
      (fun (g : B.Analysis.ghd_record) -> (g.B.Analysis.name, g.B.Analysis.combined))
      (B.Analysis.ghd_comparison ~budget:fuel_budget ~ks:[ 2; 3; 4 ] ~jobs records)
  in
  Alcotest.(check bool) "ghd comparison agrees" true (ghd 1 seq = ghd 4 par)

let analysis_statuses () =
  let instances = build () in
  let records = B.Analysis.analyze ~budget:fast_budget ~max_k:4 instances in
  Alcotest.(check int) "one record per instance" (List.length instances)
    (List.length records);
  List.iter
    (fun (r : B.Analysis.record) ->
      (* Exactness claim checked against a direct solve. *)
      match r.B.Analysis.hw with
      | B.Analysis.Exact k ->
          let direct = Detk.solve r.B.Analysis.instance.B.Instance.hg ~k in
          (match direct with
          | Detk.Decomposition _ -> ()
          | _ -> Alcotest.failf "%s: exact hw %d not confirmed"
                   r.B.Analysis.instance.B.Instance.name k);
          if k > 1 then begin
            (* The runs must witness the 'no' at k-1. *)
            let below =
              List.find_opt
                (fun (run : B.Analysis.hw_run) -> run.k = k - 1)
                r.B.Analysis.hw_runs
            in
            match below with
            | Some { outcome = `No; _ } -> ()
            | _ -> Alcotest.failf "%s: missing no-run below hw" r.B.Analysis.instance.B.Instance.name
          end
      | B.Analysis.Upper _ | B.Analysis.Open_above _ -> ())
    records

let analysis_witnesses_valid () =
  let instances = build () in
  let records = B.Analysis.analyze ~budget:fast_budget ~max_k:4 instances in
  List.iter
    (fun (r : B.Analysis.record) ->
      match r.B.Analysis.hd with
      | Some d ->
          Alcotest.(check bool)
            (r.B.Analysis.instance.B.Instance.name ^ " valid witness")
            true
            (Decomp.is_valid_hd r.B.Analysis.instance.B.Instance.hg d)
      | None -> ())
    records

let stats_histograms () =
  let instances = build () in
  let records = B.Analysis.analyze ~budget:fast_budget ~max_k:3 instances in
  let hist =
    B.Stats.property_histogram
      (fun r -> Some r.B.Analysis.profile.Hg.Properties.degree)
      records
  in
  Alcotest.(check int) "histogram sums to record count"
    (List.length records)
    (Array.fold_left ( + ) 0 hist);
  let sizes =
    B.Stats.size_buckets (fun r -> r.B.Analysis.profile.Hg.Properties.edges) records
  in
  Alcotest.(check int) "size buckets sum" (List.length records)
    (Array.fold_left ( + ) 0 sizes)

let pearson_sanity () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "self" 1.0 (B.Stats.pearson xs xs);
  Alcotest.(check (float 1e-9)) "negation" (-1.0)
    (B.Stats.pearson xs (Array.map (fun x -> -.x) xs));
  Alcotest.(check (float 1e-9)) "constant" 0.0
    (B.Stats.pearson xs [| 5.0; 5.0; 5.0; 5.0 |])

let pearson_degenerate () =
  (* Pinned: fewer than two points (or zero variance, above) yields 0,
     not NaN — figure5 renders these cells as 0.00. *)
  Alcotest.(check (float 1e-9)) "empty" 0.0 (B.Stats.pearson [||] [||]);
  Alcotest.(check (float 1e-9)) "single" 0.0 (B.Stats.pearson [| 3.0 |] [| 7.0 |])

let property_histogram_pinning () =
  (* Pinned against Table 2's row labels 0,1,...,5,">5": value 5 lands in
     the "5" cell, 6 is the first ">5" value, None rows are skipped
     entirely (VC-dim when its computation was cut off), and negative
     values clamp to the 0 cell. *)
  let record ~degree ~vc_dim : B.Analysis.record =
    let hg = Hg.Hypergraph.of_int_edges [ [ 0; 1 ] ] in
    {
      B.Analysis.instance =
        B.Instance.make ~name:"pin" ~group:(List.hd B.Group.all) ~source:"test" hg;
      profile =
        {
          Hg.Properties.vertices = 2; edges = 1; arity = 2; degree;
          bip = 0; bmip3 = 0; bmip4 = 0; vc_dim;
        };
      hw_runs = [];
      hw = B.Analysis.Open_above 0;
      hd = None;
      stats = Kit.Metrics.empty;
    }
  in
  let records =
    [
      record ~degree:0 ~vc_dim:(Some 0);
      record ~degree:1 ~vc_dim:None;
      record ~degree:5 ~vc_dim:(Some 5);
      record ~degree:6 ~vc_dim:(Some 6);
      record ~degree:100 ~vc_dim:(Some 100);
      record ~degree:(-3) ~vc_dim:(Some (-3));
    ]
  in
  let deg =
    B.Stats.property_histogram
      (fun r -> Some r.B.Analysis.profile.Hg.Properties.degree)
      records
  in
  Alcotest.(check (array int))
    "degree buckets: 5 stays in '5', 6 and 100 in '>5', -3 clamps to '0'"
    [| 2; 1; 0; 0; 0; 1; 2 |] deg;
  let vc =
    B.Stats.property_histogram
      (fun r -> r.B.Analysis.profile.Hg.Properties.vc_dim)
      records
  in
  Alcotest.(check (array int)) "vc buckets skip the None record"
    [| 2; 0; 0; 0; 0; 1; 2 |] vc;
  Alcotest.(check int) "vc histogram sums to the Some count" 5
    (Array.fold_left ( + ) 0 vc)

(* The tentpole's determinism claim, end to end: under a fuel budget the
   whole metrics snapshot — every counter and histogram — is identical
   whether the analysis ran on 1 domain or 4. Timers are excluded: spans
   measure wall time, which is never deterministic. *)
let metrics_jobs_parity () =
  let instances = build () in
  let snapshot_of jobs =
    Kit.Metrics.reset ();
    Kit.Metrics.enabled := true;
    let records =
      Fun.protect
        ~finally:(fun () -> Kit.Metrics.enabled := false)
        (fun () -> B.Analysis.analyze ~budget:fuel_budget ~max_k:4 ~jobs instances)
    in
    let snap = Kit.Metrics.snapshot () in
    Kit.Metrics.reset ();
    (records, snap)
  in
  let records1, snap1 = snapshot_of 1 in
  let records4, snap4 = snapshot_of 4 in
  Alcotest.(check bool) "counters identical at jobs=1 and jobs=4" true
    (snap1.Kit.Metrics.counters = snap4.Kit.Metrics.counters);
  Alcotest.(check bool) "histograms identical at jobs=1 and jobs=4" true
    (snap1.Kit.Metrics.histograms = snap4.Kit.Metrics.histograms);
  Alcotest.(check bool) "search did real work" true
    (Kit.Metrics.get snap1 "detk.subproblems" > 0);
  (* Per-record deltas are deterministic too: each instance runs wholly on
     one domain, so its local_delta is the same at any pool width. *)
  List.iter2
    (fun (a : B.Analysis.record) (b : B.Analysis.record) ->
      Alcotest.(check bool)
        (a.B.Analysis.instance.B.Instance.name ^ " same per-instance counters")
        true
        (a.B.Analysis.stats.Kit.Metrics.counters
        = b.B.Analysis.stats.Kit.Metrics.counters))
    records1 records4;
  (* And the per-record deltas of one run sum back to its global total. *)
  let summed name =
    List.fold_left
      (fun acc (r : B.Analysis.record) -> acc + Kit.Metrics.get r.B.Analysis.stats name)
      0 records1
  in
  Alcotest.(check int) "per-record deltas sum to the global counter"
    (Kit.Metrics.get snap1 "detk.subproblems")
    (summed "detk.subproblems")

let experiments_render () =
  (* jobs:2 renders through the domain pool; the artefact shape checks
     below are jobs-independent. *)
  let ctx =
    Experiments.prepare ~seed:7 ~scale:0.05 ~budget_seconds:0.2 ~max_k:4 ~jobs:2 ()
  in
  let checks =
    [
      (Experiments.table1 ctx, "Table 1");
      (Experiments.table2 ctx, "Table 2");
      (Experiments.figure3 ctx, "Figure 3");
      (Experiments.figure4 ctx, "Figure 4");
      (Experiments.figure5 ctx, "Figure 5");
      (Experiments.table3 ctx, "Table 3");
      (Experiments.table4 ctx, "Table 4");
      (Experiments.table5 ctx, "Table 5");
      (Experiments.table6 ctx, "Table 6");
    ]
  in
  List.iter
    (fun (text, header) ->
      Alcotest.(check bool)
        (header ^ " rendered")
        true
        (String.length text > String.length header
        && String.sub text 0 (String.length header) = header))
    checks

let () =
  Alcotest.run "benchlib"
    [
      ( "repository",
        [
          Alcotest.test_case "build" `Quick repository_build;
          Alcotest.test_case "deterministic" `Quick repository_deterministic;
          Alcotest.test_case "scale" `Quick repository_scale;
          Alcotest.test_case "save/load" `Quick save_load_roundtrip;
          Alcotest.test_case "save creates parents" `Quick save_creates_parents;
          Alcotest.test_case "load missing" `Quick load_missing;
          Alcotest.test_case "load tolerates corruption" `Quick
            load_tolerates_corruption;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "statuses" `Slow analysis_statuses;
          Alcotest.test_case "witnesses valid" `Slow analysis_witnesses_valid;
          Alcotest.test_case "parallel = sequential" `Slow
            analysis_parallel_matches_sequential;
        ] );
      ( "stats",
        [
          Alcotest.test_case "histograms" `Quick stats_histograms;
          Alcotest.test_case "pearson" `Quick pearson_sanity;
          Alcotest.test_case "pearson degenerate" `Quick pearson_degenerate;
          Alcotest.test_case "property histogram pinning" `Quick
            property_histogram_pinning;
        ] );
      ( "metrics",
        [ Alcotest.test_case "jobs parity" `Slow metrics_jobs_parity ] );
      ( "experiments",
        [ Alcotest.test_case "render all artefacts" `Slow experiments_render ] );
    ]
