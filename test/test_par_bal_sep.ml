(* Differential tests for the work-stealing BalSep (Ghd.Par_bal_sep):
   - verdicts agree exactly with sequential Ghd.Bal_sep at HB_JOBS 1/2/4
     over a seeded instance corpus, and every witness validates;
   - under a fuel deadline the verdict AND every Kit.Metrics counter are
     bit-identical at any jobs value (the determinism contract);
   - the parent's fuel charge is settled identically at any jobs value;
   - a cancelled or exhausted budget surfaces as Timeout, exact = false;
   - the separator-candidate enumeration loop polls the deadline (the
     regression guard for the mid-enumeration cancellation fix). *)

module Bitset = Kit.Bitset
module H = Hg.Hypergraph
module Deadline = Kit.Deadline
module Metrics = Kit.Metrics

let all_jobs = [ 1; 2; 4 ]

(* Seeded corpus. Edge sizes 2..4 over up to 16 vertices: big enough that
   accepted separators leave components above a forced cutoff of 2, so
   the parallel solver actually forks; small enough that 300 instances
   at three jobs values stay fast. *)
let corpus =
  let st = Random.State.make [| 0x9b5; 17; 2026 |] in
  List.init 300 (fun i ->
      let n_verts = 4 + Random.State.int st 9 in
      let n_edges = 4 + Random.State.int st 6 in
      let edge () =
        let a = 2 + Random.State.int st 2 in
        List.init a (fun _ -> Random.State.int st n_verts)
        |> List.sort_uniq compare
      in
      let edges =
        List.init n_edges (fun _ -> edge ())
        |> List.filter (fun e -> List.length e >= 2)
      in
      let edges = if edges = [] then [ [ 0; 1 ] ] else edges in
      (Printf.sprintf "seed%03d" i, H.of_int_edges edges))

let verdict = function
  | Detk.Decomposition _ -> "yes"
  | Detk.No_decomposition -> "no"
  | Detk.Timeout -> "timeout"

let validate name h k = function
  | Detk.Decomposition d ->
      (match Decomp.check_ghd h d with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: invalid GHD: %a" name (Decomp.pp_violation h) v);
      if Decomp.width d > k then
        Alcotest.failf "%s: width %d > k=%d" name (Decomp.width d) k
  | Detk.No_decomposition | Detk.Timeout -> ()

(* The ISSUE's headline property: par and seq agree exactly, and both
   also agree with the HD-side checker's GHD validator on every yes. *)
let differential_corpus () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun k ->
          let seq = (Ghd.Bal_sep.solve h ~k).Ghd.Bal_sep.outcome in
          List.iter
            (fun jobs ->
              let par =
                (Ghd.Par_bal_sep.solve ~jobs ~cutoff:2 h ~k).Ghd.Bal_sep.outcome
              in
              if verdict par <> verdict seq then
                Alcotest.failf "%s k=%d jobs=%d: par=%s seq=%s" name k jobs
                  (verdict par) (verdict seq);
              validate (Printf.sprintf "%s k=%d jobs=%d" name k jobs) h k par)
            all_jobs)
        [ 1; 2 ])
    corpus

let known_instances () =
  let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] in
  let fano =
    H.of_int_edges
      [
        [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ];
        [ 1; 4; 6 ]; [ 2; 3; 6 ]; [ 2; 4; 5 ];
      ]
  in
  let cycle n = H.of_int_edges (List.init n (fun i -> [ i; (i + 1) mod n ])) in
  List.iter
    (fun jobs ->
      List.iter
        (fun (name, h, k, want) ->
          let a = Ghd.Par_bal_sep.solve ~jobs ~cutoff:2 h ~k in
          let got = verdict a.Ghd.Bal_sep.outcome in
          if got <> want then
            Alcotest.failf "%s k=%d jobs=%d: got %s want %s" name k jobs got
              want;
          validate name h k a.Ghd.Bal_sep.outcome;
          if got <> "timeout" && not a.Ghd.Bal_sep.exact then
            Alcotest.failf "%s: decided but inexact" name)
        [
          ("triangle", triangle, 2, "yes");
          ("triangle", triangle, 1, "no");
          ("fano", fano, 3, "yes");
          ("fano", fano, 2, "no");
          ("C8", cycle 8, 2, "yes");
          ("C8", cycle 8, 1, "no");
          ("C16", cycle 16, 2, "yes");
        ])
    all_jobs

(* Counter bit-identity: with HB_FUEL-style budgets the whole metrics
   snapshot — counters AND histogram cells, including balsep.depth — must
   match cell for cell at every jobs value, whether the budget suffices
   (same verdict reached the same way) or expires mid-search. *)
let relevant snap =
  let keep name =
    List.exists
      (fun p -> String.length name >= String.length p
                && String.sub name 0 (String.length p) = p)
      [ "balsep."; "detk."; "parbalsep." ]
  in
  ( List.filter (fun (n, _) -> keep n) snap.Metrics.counters,
    List.filter (fun (n, _) -> keep n) snap.Metrics.histograms )

let with_metrics f =
  Metrics.reset ();
  Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.enabled := false;
      Metrics.reset ())
    f

let fuel_bit_identity () =
  let hard =
    List.filteri (fun i _ -> i mod 12 = 0) corpus (* every 12th: 25 instances *)
  in
  List.iter
    (fun (name, h) ->
      List.iter
        (fun fuel ->
          let runs =
            List.map
              (fun jobs ->
                with_metrics (fun () ->
                    let d = Deadline.of_fuel fuel in
                    let a = Ghd.Par_bal_sep.solve ~jobs ~deadline:d ~cutoff:2 h ~k:2 in
                    let charge =
                      fuel - Option.value ~default:0 (Deadline.fuel_remaining d)
                    in
                    (jobs, verdict a.Ghd.Bal_sep.outcome, charge,
                     relevant (Metrics.snapshot ()))))
              all_jobs
          in
          match runs with
          | [] -> assert false
          | (_, v0, c0, m0) :: rest ->
              List.iter
                (fun (jobs, v, c, m) ->
                  if v <> v0 then
                    Alcotest.failf "%s fuel=%d: verdict %s at jobs=%d, %s at jobs=1"
                      name fuel v jobs v0;
                  if c <> c0 then
                    Alcotest.failf
                      "%s fuel=%d: fuel charge %d at jobs=%d, %d at jobs=1"
                      name fuel c jobs c0;
                  if m <> m0 then
                    Alcotest.failf
                      "%s fuel=%d: metrics diverge between jobs=1 and jobs=%d"
                      name fuel jobs)
                rest)
        [ 200; 5_000 ])
    hard

let timeout_propagates () =
  let fano =
    H.of_int_edges
      [
        [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ];
        [ 1; 4; 6 ]; [ 2; 3; 6 ]; [ 2; 4; 5 ];
      ]
  in
  List.iter
    (fun jobs ->
      let a =
        Ghd.Par_bal_sep.solve ~jobs ~deadline:(Deadline.of_fuel 5) fano ~k:2
      in
      (match a.Ghd.Bal_sep.outcome with
      | Detk.Timeout -> ()
      | o -> Alcotest.failf "jobs=%d: expected timeout, got %s" jobs (verdict o));
      Alcotest.(check bool) "inexact" false a.Ghd.Bal_sep.exact)
    all_jobs

(* External cancellation (the portfolio race path) must reach the whole
   task tree: a pre-cancelled flag yields Timeout without any search. *)
let cancel_reaches_tasks () =
  let h =
    H.of_int_edges (List.init 24 (fun i -> [ i; (i + 1) mod 24; (i + 7) mod 24 ]))
  in
  List.iter
    (fun jobs ->
      let c = Deadline.new_cancel () in
      Deadline.cancel c;
      let d = Deadline.with_cancel c (Deadline.of_fuel 1_000_000) in
      with_metrics (fun () ->
          match (Ghd.Par_bal_sep.solve ~jobs ~deadline:d h ~k:2).Ghd.Bal_sep.outcome with
          | Detk.Timeout ->
              let snap = Metrics.snapshot () in
              Alcotest.(check int)
                (Printf.sprintf "no separators tried at jobs=%d" jobs)
                0
                (Metrics.get snap "balsep.separators_tried")
          | o -> Alcotest.failf "jobs=%d: expected timeout, got %s" jobs (verdict o)))
    all_jobs

(* Satellite regression: Deadline polls fire INSIDE the separator-candidate
   enumeration loop, not just at node expansions and separator trials.
   With [use_subedges:false] those three are the only poll sites, and
   node expansions and separator trials each pair 1:1 with a metric
   (the balsep.depth histogram and balsep.separators_tried), so
   [consumed - nodes - separators] counts exactly the in-loop polls —
   which the pre-fix code never made. *)
let enumeration_polls_deadline () =
  let fano =
    H.of_int_edges
      [
        [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ];
        [ 1; 4; 6 ]; [ 2; 3; 6 ]; [ 2; 4; 5 ];
      ]
  in
  with_metrics (fun () ->
      let budget = 2_000_000 in
      let d = Deadline.of_fuel budget in
      (match
         (Ghd.Bal_sep.solve ~deadline:d ~use_subedges:false fano ~k:2)
           .Ghd.Bal_sep.outcome
       with
      | Detk.Timeout -> Alcotest.fail "unexpected timeout"
      | Detk.No_decomposition | Detk.Decomposition _ -> ());
      let consumed =
        budget - Option.value ~default:0 (Deadline.fuel_remaining d)
      in
      let snap = Metrics.snapshot () in
      let nodes =
        match Metrics.get_histogram snap "balsep.depth" with
        | Some (_, counts) -> Array.fold_left ( + ) 0 counts
        | None -> Alcotest.fail "balsep.depth histogram missing"
      in
      let separators = Metrics.get snap "balsep.separators_tried" in
      let in_loop = consumed - nodes - separators in
      Alcotest.(check bool)
        (Printf.sprintf
           "in-loop polls fired (consumed %d, nodes %d, separators %d)"
           consumed nodes separators)
        true (in_loop > 0))

(* And the fix has teeth: a budget too small for even one node's candidate
   enumeration still times the search out (the old once-per-node poll
   would sail past it inside the loop). *)
let enumeration_respects_tight_fuel () =
  let wide =
    H.of_int_edges (List.init 20 (fun i -> [ i; (i + 1) mod 20; (i + 9) mod 20 ]))
  in
  match
    (Ghd.Bal_sep.solve ~deadline:(Deadline.of_fuel 40) wide ~k:2).Ghd.Bal_sep.outcome
  with
  | Detk.Timeout -> ()
  | o -> Alcotest.failf "expected timeout on tight fuel, got %s" (verdict o)

let () =
  Alcotest.run "par_bal_sep"
    [
      ( "differential",
        [
          Alcotest.test_case "known instances" `Quick known_instances;
          Alcotest.test_case "seeded corpus" `Quick differential_corpus;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fuel bit-identity" `Quick fuel_bit_identity;
          Alcotest.test_case "timeout propagates" `Quick timeout_propagates;
          Alcotest.test_case "cancel reaches tasks" `Quick cancel_reaches_tasks;
        ] );
      ( "deadline polling",
        [
          Alcotest.test_case "polls inside enumeration" `Quick
            enumeration_polls_deadline;
          Alcotest.test_case "tight fuel times out" `Quick
            enumeration_respects_tight_fuel;
        ] );
    ]
