(* The allocation-free kernel must be invisible except in speed:
   - randomized differential suite: every in-place/fused operation agrees
     with its immutable reference composition, including aliased
     arguments and universe mismatches;
   - pinned search counters: the hot-path rewrite of the decomposition
     cores left the explored search trees bit-identical (fixed fuel, at
     1 and at 4 domains);
   - the cross-width sweep cache only ever answers in the sound
     direction, so an ascending sweep explores exactly as before while
     re-probes hit. *)

module Bitset = Kit.Bitset
module Rng = Kit.Rng
module Metrics = Kit.Metrics
module H = Hg.Hypergraph

(* --- randomized differential suite -------------------------------------- *)

let random_list rng n =
  let len = Rng.int rng (2 * n) in
  List.init len (fun _ -> Rng.int rng n)

(* Universe sizes straddling the word boundaries. *)
let random_universe rng = 1 + Rng.int rng 140

let check_eq case what expect got =
  Alcotest.(check (list int))
    (Printf.sprintf "case %d: %s" case what)
    (Bitset.to_list expect) (Bitset.to_list got)

let differential_in_place () =
  let rng = Rng.create 2019 in
  for case = 1 to 400 do
    let n = random_universe rng in
    let a = Bitset.of_list n (random_list rng n) in
    let b = Bitset.of_list n (random_list rng n) in
    (* union_into / inter_into / diff_into against the immutable ops. *)
    let t = Bitset.copy a in
    Bitset.union_into ~into:t b;
    check_eq case "union_into" (Bitset.union a b) t;
    let t = Bitset.copy a in
    Bitset.inter_into ~into:t b;
    check_eq case "inter_into" (Bitset.inter a b) t;
    let t = Bitset.copy a in
    Bitset.diff_into ~into:t b;
    check_eq case "diff_into" (Bitset.diff a b) t;
    (* copy_into, clear, add/remove_in_place. *)
    let t = Bitset.of_list n (random_list rng n) in
    Bitset.copy_into a ~into:t;
    check_eq case "copy_into" a t;
    let x = Rng.int rng n in
    let t = Bitset.copy a in
    Bitset.add_in_place x t;
    check_eq case "add_in_place" (Bitset.add x a) t;
    let t = Bitset.copy a in
    Bitset.remove_in_place x t;
    check_eq case "remove_in_place" (Bitset.remove x a) t;
    let t = Bitset.copy a in
    Bitset.clear t;
    check_eq case "clear" (Bitset.empty n) t;
    (* Fused queries = their immutable compositions. *)
    let c = Bitset.of_list n (random_list rng n) in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: diff_subset" case)
      (Bitset.subset (Bitset.diff a b) c)
      (Bitset.diff_subset a b c);
    Alcotest.(check int)
      (Printf.sprintf "case %d: inter_cardinal" case)
      (Bitset.cardinal (Bitset.inter a b))
      (Bitset.inter_cardinal a b);
    Alcotest.(check int)
      (Printf.sprintf "case %d: first" case)
      (match Bitset.choose a with Some x -> x | None -> -1)
      (Bitset.first a)
  done

let differential_aliasing () =
  let rng = Rng.create 77 in
  for case = 1 to 50 do
    let n = random_universe rng in
    let a = Bitset.of_list n (random_list rng n) in
    let t = Bitset.copy a in
    Bitset.union_into ~into:t t;
    check_eq case "union_into aliased" a t;
    let t = Bitset.copy a in
    Bitset.inter_into ~into:t t;
    check_eq case "inter_into aliased" a t;
    let t = Bitset.copy a in
    Bitset.diff_into ~into:t t;
    check_eq case "diff_into aliased" (Bitset.empty n) t;
    let t = Bitset.copy a in
    Bitset.copy_into t ~into:t;
    check_eq case "copy_into aliased" a t;
    Alcotest.(check bool)
      (Printf.sprintf "case %d: diff_subset aliased" case)
      true
      (Bitset.diff_subset a a a)
  done

let differential_iteration () =
  let rng = Rng.create 40409 in
  for case = 1 to 50 do
    let n = random_universe rng in
    let xs = random_list rng n in
    let s = Bitset.of_list n xs in
    let model = List.sort_uniq compare xs in
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: of_list = model" case)
      model (Bitset.to_list s);
    Alcotest.(check int)
      (Printf.sprintf "case %d: cardinal" case)
      (List.length model) (Bitset.cardinal s);
    (* iter must visit in ascending order (to_list is built from iter, so
       check the order directly). *)
    let seen = ref [] in
    Bitset.iter (fun x -> seen := x :: !seen) s;
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: iter ascending" case)
      model
      (List.rev !seen);
    let p x = x mod 3 = 0 in
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: filter" case)
      (List.filter p model)
      (Bitset.to_list (Bitset.filter p s));
    let x = Rng.int rng n in
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: singleton" case)
      [ x ]
      (Bitset.to_list (Bitset.singleton n x))
  done

let union_indexed () =
  let rng = Rng.create 6 in
  for case = 1 to 50 do
    let n = random_universe rng and m = random_universe rng in
    let arr = Array.init m (fun _ -> Bitset.of_list n (random_list rng n)) in
    let idx = Bitset.of_list m (random_list rng m) in
    let got = Bitset.empty n in
    Bitset.union_indexed_into ~into:got arr idx;
    let expect =
      Bitset.fold (fun i acc -> Bitset.union acc arr.(i)) idx (Bitset.empty n)
    in
    check_eq case "union_indexed_into" expect got
  done

let universe_mismatch () =
  let a = Bitset.empty 5 and b = Bitset.empty 6 in
  let raises what f =
    Alcotest.check_raises what
      (Invalid_argument "Bitset: universes differ (5 vs 6)") f
  in
  raises "union_into" (fun () -> Bitset.union_into ~into:a b);
  raises "inter_into" (fun () -> Bitset.inter_into ~into:a b);
  raises "diff_into" (fun () -> Bitset.diff_into ~into:a b);
  Alcotest.check_raises "copy_into"
    (Invalid_argument "Bitset: universes differ (6 vs 5)") (fun () ->
      Bitset.copy_into b ~into:a);
  raises "diff_subset" (fun () -> ignore (Bitset.diff_subset a a b));
  Alcotest.check_raises "add_in_place out of range"
    (Invalid_argument "Bitset: element 5 outside universe 5") (fun () ->
      Bitset.add_in_place 5 a)

let scratch_arena () =
  let arena = Bitset.Scratch.create () in
  let s = Bitset.Scratch.borrow arena 40 in
  Alcotest.(check int) "borrowed universe" 40 (Bitset.universe s);
  Alcotest.(check bool) "borrowed is empty" true (Bitset.is_empty s);
  Bitset.add_in_place 7 s;
  Bitset.Scratch.release arena s;
  let s' = Bitset.Scratch.borrow arena 40 in
  Alcotest.(check bool) "released buffer is reused" true (s == s');
  Alcotest.(check bool) "reused buffer is cleared" true (Bitset.is_empty s');
  (* Distinct universes live in distinct pools. *)
  let t = Bitset.Scratch.borrow arena 13 in
  Alcotest.(check int) "other universe" 13 (Bitset.universe t);
  Alcotest.(check bool) "not the 40-buffer" true (t != s');
  Bitset.Scratch.release arena t;
  Bitset.Scratch.release arena s';
  (* Stack discipline: the most recently released comes back first. *)
  let u = Bitset.Scratch.borrow arena 40 in
  Alcotest.(check bool) "LIFO reuse" true (u == s')

(* --- pinned search counters ---------------------------------------------- *)

(* The fixed workloads and their counter totals as measured before the
   hot-path rewrite (fuel-limited, hence machine-independent). The
   in-place kernel, the cached-hash memo keys and the sweep cache must
   not change a single one of them, at any domain count. *)

let instances () =
  let rng = Rng.create 7 in
  let medium =
    Gen.Random_csp.random rng ~n_variables:30 ~n_constraints:45 ~max_arity:4
  in
  let grid = Gen.Structured.grid ~rows:4 ~cols:4 in
  let fano =
    H.of_int_edges
      [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ]; [ 1; 4; 6 ];
        [ 2; 3; 6 ]; [ 2; 4; 5 ] ]
  in
  (medium, grid, fano)

let pinned_totals =
  [
    ("detk.subproblems", 467);
    ("detk.cover_combinations", 1574);
    ("detk.memo_hits", 651);
    ("detk.memo_misses", 467);
    ("detk.bag_filter_rejections", 0);
    ("balsep.separators_tried", 688);
    ("balsep.balance_rejections", 683);
    ("balsep.special_edges", 5);
    ("balsep.subedge_phases", 1);
  ]

let pinned_counters_at jobs () =
  let medium, grid, fano = instances () in
  Metrics.reset ();
  Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.enabled := false;
      Metrics.reset ())
    (fun () ->
      let tasks =
        [|
          (fun () -> ignore (Detk.solve fano ~k:3));
          (fun () -> ignore (Detk.solve fano ~k:2 ~gyo_fast_path:false));
          (fun () -> ignore (Detk.solve grid ~k:3));
          (fun () ->
            match
              Detk.hypertree_width
                ~deadline:(Kit.Deadline.of_fuel 200_000) medium
            with
            | Some _, _ -> Alcotest.fail "medium decided under 200k fuel?"
            | None, k ->
                Alcotest.(check int) "medium open at k" 2 k);
          (fun () -> ignore (Ghd.Bal_sep.solve fano ~k:2));
          (fun () -> ignore (Ghd.Bal_sep.solve grid ~k:2));
          (fun () ->
            match
              Detk.solve ~deadline:(Kit.Deadline.of_fuel 5_000) medium ~k:2
            with
            | Detk.Timeout -> ()
            | _ -> Alcotest.fail "medium k=2 finished under 5k fuel?");
        |]
      in
      Kit.Pool.run ~jobs (fun f -> f ()) tasks |> ignore;
      let snap = Metrics.snapshot () in
      List.iter
        (fun (name, expect) ->
          Alcotest.(check int)
            (Printf.sprintf "%s at jobs=%d" name jobs)
            expect (Metrics.get snap name))
        pinned_totals)

(* --- sweep cache ---------------------------------------------------------- *)

let detk_counters f =
  Metrics.reset ();
  Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.enabled := false;
      Metrics.reset ())
    (fun () ->
      let r = f () in
      let snap = Metrics.snapshot () in
      ( r,
        List.filter
          (fun (name, _) ->
            String.length name >= 5 && String.sub name 0 5 = "detk.")
          snap.Metrics.counters ))

let sweep_reprobe_same_width () =
  let _, _, fano = instances () in
  let sweep = Detk.sweep_cache () in
  let first, c1 = detk_counters (fun () -> Detk.solve ~sweep fano ~k:2) in
  let second, c2 = detk_counters (fun () -> Detk.solve ~sweep fano ~k:2) in
  Alcotest.(check bool) "first is No_decomposition" true
    (first = Detk.No_decomposition);
  Alcotest.(check bool) "same outcome on re-probe" true (first = second);
  Alcotest.(check int) "fresh run explores" 29
    (List.assoc "detk.subproblems" c1);
  (* The re-probe finds the root subproblem already refuted: one memo hit,
     zero exploration. *)
  Alcotest.(check int) "re-probe explores nothing" 0
    (List.assoc "detk.subproblems" c2);
  Alcotest.(check int) "re-probe hits the table" 1
    (List.assoc "detk.memo_hits" c2)

let sweep_downward_reuse () =
  let _, _, fano = instances () in
  let sweep = Detk.sweep_cache () in
  let (res, _), _ =
    detk_counters (fun () -> Detk.hypertree_width ~sweep fano)
  in
  (match res with
  | Some (hw, _) -> Alcotest.(check int) "fano hw" 3 hw
  | None -> Alcotest.fail "fano undecided");
  (* Failure at width 2 was proven during the sweep; probing width 2 (and
     width 1, which is below the proof) again answers from the table. *)
  List.iter
    (fun k ->
      let outcome, c =
        detk_counters (fun () ->
            Detk.solve ~sweep ~gyo_fast_path:false fano ~k)
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d still refuted" k)
        true
        (outcome = Detk.No_decomposition);
      Alcotest.(check int)
        (Printf.sprintf "k=%d answered from the table" k)
        0
        (List.assoc "detk.subproblems" c))
    [ 2; 1 ]

let sweep_ascending_identical () =
  (* A shared sweep table must not change what an ascending sweep
     explores: hypertree_width with a caller-supplied table behaves
     bit-identically to its private one. *)
  let _, grid, fano = instances () in
  List.iter
    (fun h ->
      let (r1, _), c1 = detk_counters (fun () -> Detk.hypertree_width h) in
      let (r2, _), c2 =
        detk_counters (fun () ->
            Detk.hypertree_width ~sweep:(Detk.sweep_cache ()) h)
      in
      let width = function Some (hw, _) -> hw | None -> -1 in
      Alcotest.(check int) "same width" (width r1) (width r2);
      Alcotest.(check (list (pair string int))) "same counters" c1 c2)
    [ fano; grid ]

let () =
  Alcotest.run "perf_kernel"
    [
      ( "differential",
        [
          Alcotest.test_case "in-place vs immutable" `Quick
            differential_in_place;
          Alcotest.test_case "aliased arguments" `Quick differential_aliasing;
          Alcotest.test_case "iteration and builders" `Quick
            differential_iteration;
          Alcotest.test_case "union_indexed_into" `Quick union_indexed;
          Alcotest.test_case "universe mismatch" `Quick universe_mismatch;
          Alcotest.test_case "scratch arena" `Quick scratch_arena;
        ] );
      ( "pinned counters",
        [
          Alcotest.test_case "jobs=1" `Quick (pinned_counters_at 1);
          Alcotest.test_case "jobs=4" `Quick (pinned_counters_at 4);
        ] );
      ( "sweep cache",
        [
          Alcotest.test_case "re-probe at same width" `Quick
            sweep_reprobe_same_width;
          Alcotest.test_case "downward reuse" `Quick sweep_downward_reuse;
          Alcotest.test_case "ascending sweep unchanged" `Quick
            sweep_ascending_identical;
        ] );
    ]
