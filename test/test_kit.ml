(* Unit and property tests for the foundation kit. *)

module Bitset = Kit.Bitset
module Rational = Kit.Rational
module Rng = Kit.Rng

let bitset_basics () =
  let s = Bitset.of_list 100 [ 3; 5; 99 ] in
  Alcotest.(check bool) "mem 3" true (Bitset.mem 3 s);
  Alcotest.(check bool) "mem 4" false (Bitset.mem 4 s);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 3; 5; 99 ] (Bitset.to_list s);
  let s' = Bitset.remove 5 s in
  Alcotest.(check int) "cardinal after remove" 2 (Bitset.cardinal s');
  Alcotest.(check int) "original untouched" 3 (Bitset.cardinal s);
  Alcotest.(check bool) "is_empty empty" true (Bitset.is_empty (Bitset.empty 10));
  Alcotest.(check int) "full cardinal" 100 (Bitset.cardinal (Bitset.full 100))

let bitset_full_partial_word () =
  (* A universe size not divisible by the word size must not leak bits. *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "full %d" n)
        n
        (Bitset.cardinal (Bitset.full n)))
    [ 1; 7; 62; 63; 64; 65; 126; 127 ]

let bitset_set_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3 ] and b = Bitset.of_list 20 [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] Bitset.(to_list (union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] Bitset.(to_list (inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] Bitset.(to_list (diff a b));
  Alcotest.(check bool) "intersects" true (Bitset.intersects a b);
  Alcotest.(check bool)
    "no intersect" false
    (Bitset.intersects a (Bitset.of_list 20 [ 10; 11 ]));
  Alcotest.(check int) "inter_cardinal" 1 (Bitset.inter_cardinal a b);
  Alcotest.(check bool) "subset yes" true (Bitset.subset (Bitset.of_list 20 [ 1; 2 ]) a);
  Alcotest.(check bool) "subset no" false (Bitset.subset b a)

let bitset_universe_mismatch () =
  let a = Bitset.empty 5 and b = Bitset.empty 6 in
  Alcotest.check_raises "mixing universes"
    (Invalid_argument "Bitset: universes differ (5 vs 6)") (fun () ->
      ignore (Bitset.union a b))

let bitset_choose_filter () =
  let s = Bitset.of_list 50 [ 10; 20; 30 ] in
  Alcotest.(check (option int)) "choose" (Some 10) (Bitset.choose s);
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose (Bitset.empty 3));
  Alcotest.(check (list int))
    "filter" [ 20; 30 ]
    (Bitset.to_list (Bitset.filter (fun x -> x >= 20) s));
  Alcotest.(check bool) "for_all" true (Bitset.for_all (fun x -> x mod 10 = 0) s);
  Alcotest.(check bool) "exists" true (Bitset.exists (fun x -> x = 20) s)

(* Property tests: bitsets vs the reference model (sorted int lists). *)
let prop_gen =
  QCheck.Gen.(list_size (int_bound 40) (int_bound 99))

let sorted_dedup l = List.sort_uniq compare l

let prop_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/to_list is sorted dedup" ~count:300
    (QCheck.make prop_gen) (fun l ->
      Bitset.to_list (Bitset.of_list 100 l) = sorted_dedup l)

let prop_union_model =
  QCheck.Test.make ~name:"bitset union matches list model" ~count:300
    (QCheck.make (QCheck.Gen.pair prop_gen prop_gen)) (fun (a, b) ->
      let s = Bitset.union (Bitset.of_list 100 a) (Bitset.of_list 100 b) in
      Bitset.to_list s = sorted_dedup (a @ b))

let prop_inter_model =
  QCheck.Test.make ~name:"bitset inter matches list model" ~count:300
    (QCheck.make (QCheck.Gen.pair prop_gen prop_gen)) (fun (a, b) ->
      let s = Bitset.inter (Bitset.of_list 100 a) (Bitset.of_list 100 b) in
      Bitset.to_list s = sorted_dedup (List.filter (fun x -> List.mem x b) a))

let prop_diff_model =
  QCheck.Test.make ~name:"bitset diff matches list model" ~count:300
    (QCheck.make (QCheck.Gen.pair prop_gen prop_gen)) (fun (a, b) ->
      let s = Bitset.diff (Bitset.of_list 100 a) (Bitset.of_list 100 b) in
      Bitset.to_list s = sorted_dedup (List.filter (fun x -> not (List.mem x b)) a))

let prop_inter_cardinal =
  QCheck.Test.make ~name:"inter_cardinal = cardinal of inter" ~count:300
    (QCheck.make (QCheck.Gen.pair prop_gen prop_gen)) (fun (a, b) ->
      let sa = Bitset.of_list 100 a and sb = Bitset.of_list 100 b in
      Bitset.inter_cardinal sa sb = Bitset.cardinal (Bitset.inter sa sb))

let rational_basics () =
  let half = Rational.make 1 2 and third = Rational.make 1 3 in
  Alcotest.(check string) "add" "5/6" Rational.(to_string (add half third));
  Alcotest.(check string) "sub" "1/6" Rational.(to_string (sub half third));
  Alcotest.(check string) "mul" "1/6" Rational.(to_string (mul half third));
  Alcotest.(check string) "div" "3/2" Rational.(to_string (div half third));
  Alcotest.(check string) "normalisation" "1/2" Rational.(to_string (make 4 8));
  Alcotest.(check string) "negative den" "-1/2" Rational.(to_string (make 4 (-8)));
  Alcotest.(check int) "compare" (-1) (Rational.compare third half);
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Rational.make 1 0))

let rational_floor_ceil () =
  let check name r f c =
    Alcotest.(check int) (name ^ " floor") f (Rational.floor r);
    Alcotest.(check int) (name ^ " ceil") c (Rational.ceil r)
  in
  check "3/2" (Rational.make 3 2) 1 2;
  check "-3/2" (Rational.make (-3) 2) (-2) (-1);
  check "2" (Rational.of_int 2) 2 2;
  check "-2" (Rational.of_int (-2)) (-2) (-2)

let rational_approx () =
  let r = Rational.of_float_approx 1.5 in
  Alcotest.(check string) "1.5 -> 3/2" "3/2" (Rational.to_string r);
  let r = Rational.of_float_approx (4.0 /. 3.0) in
  Alcotest.(check string) "4/3" "4/3" (Rational.to_string r);
  let r = Rational.of_float_approx 2.0 in
  Alcotest.(check string) "integral" "2" (Rational.to_string r)

let rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs g = List.init 20 (fun _ -> Rng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (xs a) (xs b);
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed, different stream" true (xs (Rng.create 42) <> xs c)

let rng_bounds () =
  let g = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int g 10 in
    if x < 0 || x >= 10 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_in g 5 8 in
    if x < 5 || x > 8 then Alcotest.fail "Rng.int_in out of bounds"
  done;
  for _ = 1 to 100 do
    let f = Rng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "Rng.float out of bounds"
  done

let rng_sample () =
  let g = Rng.create 11 in
  let s = Rng.sample g 20 10 in
  Alcotest.(check int) "sample size" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> if x < 0 || x >= 20 then Alcotest.fail "sample range") s

let union_find () =
  let uf = Kit.Union_find.create 10 in
  Kit.Union_find.union uf 0 1;
  Kit.Union_find.union uf 1 2;
  Kit.Union_find.union uf 5 6;
  Alcotest.(check bool) "same 0 2" true (Kit.Union_find.same uf 0 2);
  Alcotest.(check bool) "not same 0 5" false (Kit.Union_find.same uf 0 5);
  let groups =
    Kit.Union_find.groups uf |> Array.to_list
    |> List.filter (fun g -> g <> [])
    |> List.map (List.sort compare)
    |> List.sort compare
  in
  Alcotest.(check int) "group count" 7 (List.length groups);
  Alcotest.(check bool) "has 012" true (List.mem [ 0; 1; 2 ] groups);
  Alcotest.(check bool) "has 56" true (List.mem [ 5; 6 ] groups)

let names () =
  let t = Kit.Names.create () in
  let a = Kit.Names.intern t "alpha" in
  let b = Kit.Names.intern t "beta" in
  let a' = Kit.Names.intern t "alpha" in
  Alcotest.(check int) "stable" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "name" "beta" (Kit.Names.name t b);
  Alcotest.(check int) "count" 2 (Kit.Names.count t);
  Alcotest.(check (option int)) "find" (Some a) (Kit.Names.find_opt t "alpha");
  Alcotest.(check (option int)) "find missing" None (Kit.Names.find_opt t "gamma")

let deadline_fuel () =
  let d = Kit.Deadline.of_fuel 5 in
  for _ = 1 to 4 do Kit.Deadline.check d done;
  Alcotest.check_raises "fuel exhausted" Kit.Deadline.Timed_out (fun () ->
      Kit.Deadline.check d)

let deadline_none () =
  for _ = 1 to 10_000 do Kit.Deadline.check Kit.Deadline.none done;
  Alcotest.(check bool) "never expires" false (Kit.Deadline.expired Kit.Deadline.none)

let deadline_wall_coherent () =
  let d = Kit.Deadline.of_seconds 60.0 in
  Alcotest.(check bool) "fresh budget alive" false (Kit.Deadline.expired d);
  Alcotest.(check bool) "elapsed sane" true (Kit.Deadline.elapsed d < 1.0);
  (* started and the wall deadline come from a single clock reading, so a
     zero-second budget is expired from the very start. *)
  Alcotest.(check bool) "zero budget expired" true
    (Kit.Deadline.expired (Kit.Deadline.of_seconds 0.0))

let deadline_fuel_atomic () =
  (* Four domains hammer one fuel deadline: exactly n - 1 checks succeed
     in total before the n-th raises, whatever the interleaving. *)
  let d = Kit.Deadline.of_fuel 100 in
  let ok = Atomic.make 0 in
  let worker () =
    for _ = 1 to 100 do
      match Kit.Deadline.check d with
      | () -> Atomic.incr ok
      | exception Kit.Deadline.Timed_out -> ()
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "successful checks" 99 (Atomic.get ok);
  Alcotest.(check bool) "expired afterwards" true (Kit.Deadline.expired d)

let deadline_cancel () =
  let c = Kit.Deadline.new_cancel () in
  let d = Kit.Deadline.with_cancel c (Kit.Deadline.of_seconds 3600.0) in
  Kit.Deadline.check d;
  Alcotest.(check bool) "not yet cancelled" false (Kit.Deadline.cancelled d);
  Kit.Deadline.cancel c;
  Alcotest.(check bool) "flag set" true (Kit.Deadline.is_cancelled c);
  Alcotest.(check bool) "deadline cancelled" true (Kit.Deadline.cancelled d);
  Alcotest.(check bool) "expired" true (Kit.Deadline.expired d);
  Alcotest.check_raises "check raises" Kit.Deadline.Timed_out (fun () ->
      Kit.Deadline.check d);
  (* with_cancel over [none] is a pure cancellation token. *)
  Alcotest.check_raises "token raises" Kit.Deadline.Timed_out (fun () ->
      Kit.Deadline.check (Kit.Deadline.with_cancel c Kit.Deadline.none))

let deadline_cancel_across_domains () =
  (* One domain spins on a no-budget deadline; the main domain aborts it
     through the shared flag. *)
  let c = Kit.Deadline.new_cancel () in
  let d = Kit.Deadline.with_cancel c Kit.Deadline.none in
  let spinner =
    Domain.spawn (fun () ->
        let rec spin () =
          match Kit.Deadline.check d with
          | () -> spin ()
          | exception Kit.Deadline.Timed_out -> `Cancelled
        in
        spin ())
  in
  Kit.Deadline.cancel c;
  Alcotest.(check bool) "sibling aborted" true (Domain.join spinner = `Cancelled)

let pool_matches_sequential () =
  let tasks = Array.init 100 (fun i -> i) in
  let f x = x * x in
  let seq = Kit.Pool.run ~jobs:1 f tasks in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        seq
        (Kit.Pool.run ~jobs f tasks))
    [ 2; 3; 7 ]

let pool_captures_exceptions () =
  let f x = if x mod 2 = 0 then failwith "even" else x in
  let results = Kit.Pool.run_result ~jobs:3 f [| 1; 2; 3; 4 |] in
  (match results with
  | [| Ok 1; Error (Failure _); Ok 3; Error (Failure _) |] -> ()
  | _ -> Alcotest.fail "per-task results mangled");
  Alcotest.check_raises "run re-raises the first failure" (Failure "even")
    (fun () -> ignore (Kit.Pool.run ~jobs:2 f [| 1; 2; 3; 4 |]))

let pool_empty_and_default () =
  Alcotest.(check (array int)) "empty" [||] (Kit.Pool.run ~jobs:8 (fun x -> x) [||]);
  Alcotest.(check bool) "default jobs positive" true (Kit.Pool.default_jobs () >= 1)

(* Every metrics test flips the global [enabled] switch, so restore it (and
   zero the registry) on all exits. *)
let with_metrics f =
  Kit.Metrics.reset ();
  Kit.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Kit.Metrics.enabled := false;
      Kit.Metrics.reset ())
    f

let metrics_merge_across_domains () =
  with_metrics (fun () ->
      let c = Kit.Metrics.counter "test.merge" in
      let worker () =
        for _ = 1 to 1000 do
          Kit.Metrics.incr c
        done;
        Kit.Metrics.add c 5
      in
      let ds = List.init 4 (fun _ -> Domain.spawn worker) in
      Kit.Metrics.incr c;
      List.iter Domain.join ds;
      let snap = Kit.Metrics.snapshot () in
      Alcotest.(check int)
        "4 x 1005 from domains + 1 from main" 4021
        (Kit.Metrics.get snap "test.merge"))

let metrics_span_nesting () =
  with_metrics (fun () ->
      let outer = Kit.Metrics.timer "test.outer" in
      let inner = Kit.Metrics.timer "test.inner" in
      let r =
        Kit.Metrics.span outer (fun () ->
            Kit.Metrics.span inner (fun () -> ());
            Kit.Metrics.span inner (fun () -> ());
            17)
      in
      Alcotest.(check int) "span is transparent" 17 r;
      (* A span that raises must still record its time. *)
      (try Kit.Metrics.span outer (fun () -> failwith "boom") with
      | Failure _ -> ());
      let snap = Kit.Metrics.snapshot () in
      let n_outer, s_outer = Kit.Metrics.get_timer snap "test.outer" in
      let n_inner, s_inner = Kit.Metrics.get_timer snap "test.inner" in
      Alcotest.(check int) "outer spans (incl. raising one)" 2 n_outer;
      Alcotest.(check int) "inner spans" 2 n_inner;
      Alcotest.(check bool) "outer covers inner" true (s_outer >= s_inner);
      Alcotest.(check bool) "times non-negative" true (s_inner >= 0.0))

let metrics_reset () =
  with_metrics (fun () ->
      let c = Kit.Metrics.counter "test.reset" in
      let h = Kit.Metrics.histogram "test.reset_hist" ~buckets:[| 1; 2 |] in
      Kit.Metrics.add c 42;
      Kit.Metrics.observe h 1;
      Alcotest.(check int)
        "before reset" 42
        (Kit.Metrics.get (Kit.Metrics.snapshot ()) "test.reset");
      Kit.Metrics.reset ();
      let snap = Kit.Metrics.snapshot () in
      Alcotest.(check int) "counter zeroed" 0 (Kit.Metrics.get snap "test.reset");
      (match Kit.Metrics.get_histogram snap "test.reset_hist" with
      | Some (_, counts) ->
          Alcotest.(check int) "histogram zeroed" 0 (Array.fold_left ( + ) 0 counts)
      | None -> Alcotest.fail "histogram vanished from registry");
      (* The interned handle survives a reset and keeps counting. *)
      Kit.Metrics.incr c;
      Alcotest.(check int)
        "counts again after reset" 1
        (Kit.Metrics.get (Kit.Metrics.snapshot ()) "test.reset"))

let metrics_disabled_fast_path () =
  (* With the registry disabled, the record calls must not allocate: the
     hot loops of Detk run with metrics compiled in unconditionally. The
     threshold leaves slack for the Gc.minor_words probe itself. *)
  Kit.Metrics.reset ();
  let c = Kit.Metrics.counter "test.disabled" in
  let t = Kit.Metrics.timer "test.disabled_t" in
  Alcotest.(check bool) "disabled by default" false !Kit.Metrics.enabled;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Kit.Metrics.incr c;
    Kit.Metrics.add c 3
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "counter path allocation-free (%.0f words)" (w1 -. w0))
    true
    (w1 -. w0 < 256.0);
  ignore (Kit.Metrics.span t (fun () -> 1));
  Alcotest.(check int)
    "nothing recorded while disabled" 0
    (Kit.Metrics.get (Kit.Metrics.snapshot ()) "test.disabled")

let metrics_local_delta () =
  with_metrics (fun () ->
      let c = Kit.Metrics.counter "test.delta" in
      Kit.Metrics.add c 7;
      let r, d =
        Kit.Metrics.local_delta (fun () ->
            Kit.Metrics.add c 3;
            "done")
      in
      Alcotest.(check string) "result passthrough" "done" r;
      Alcotest.(check int) "delta sees only the inner add" 3
        (Kit.Metrics.get d "test.delta");
      Alcotest.(check int) "global total keeps both" 10
        (Kit.Metrics.get (Kit.Metrics.snapshot ()) "test.delta"))

let metrics_absorb () =
  with_metrics (fun () ->
      let c = Kit.Metrics.counter "test.absorb.c" in
      let t = Kit.Metrics.timer "test.absorb.t" in
      let h = Kit.Metrics.histogram "test.absorb.h" ~buckets:[| 1; 10 |] in
      Kit.Metrics.add c 2;
      (* A delta measured elsewhere (in real use: inside a forked Proc
         worker, marshalled back with the result)... *)
      let (), d =
        Kit.Metrics.local_delta (fun () ->
            Kit.Metrics.add c 5;
            Kit.Metrics.add_seconds t 0.25;
            Kit.Metrics.observe h 3)
      in
      Kit.Metrics.reset ();
      Kit.Metrics.add c 1;
      (* ...replayed into the live registry adds on top. *)
      Kit.Metrics.absorb d;
      let snap = Kit.Metrics.snapshot () in
      Alcotest.(check int) "counter summed" 6 (Kit.Metrics.get snap "test.absorb.c");
      let spans, secs = Kit.Metrics.get_timer snap "test.absorb.t" in
      Alcotest.(check int) "timer spans" 1 spans;
      Alcotest.(check (float 1e-9)) "timer seconds" 0.25 secs;
      match Kit.Metrics.get_histogram snap "test.absorb.h" with
      | Some (_, counts) ->
          Alcotest.(check (array int)) "histogram cells" [| 0; 1; 0 |] counts
      | None -> Alcotest.fail "histogram missing after absorb")

(* --- outcome / guard --------------------------------------------------------- *)

let outcome_classify () =
  let t = Kit.Outcome.classify Kit.Deadline.Timed_out ~backtrace:"" in
  Alcotest.(check bool) "timeout" true (t = Kit.Outcome.Timeout);
  Alcotest.(check bool) "oom" true
    (Kit.Outcome.classify Stdlib.Out_of_memory ~backtrace:""
    = Kit.Outcome.Out_of_memory);
  Alcotest.(check bool) "stack overflow" true
    (Kit.Outcome.classify Stdlib.Stack_overflow ~backtrace:""
    = Kit.Outcome.Stack_overflow);
  (match Kit.Outcome.classify (Failure "boom") ~backtrace:"bt" with
  | Kit.Outcome.Crash s ->
      Alcotest.(check bool) "crash carries message and backtrace" true
        (String.length s > 4 && String.sub s 0 (String.length s) <> ""
        && s <> "boom" (* backtrace appended *))
  | _ -> Alcotest.fail "Failure should classify as Crash")

let outcome_labels_roundtrip () =
  let failures : unit Kit.Outcome.t list =
    [
      Kit.Outcome.Timeout; Kit.Outcome.Out_of_memory;
      Kit.Outcome.Stack_overflow; Kit.Outcome.Crash "why";
    ]
  in
  List.iter
    (fun o ->
      match
        Kit.Outcome.of_label (Kit.Outcome.label o)
          ~detail:(Kit.Outcome.detail o)
      with
      | Some o' ->
          Alcotest.(check bool) (Kit.Outcome.label o ^ " round-trips") true
            (o = o')
      | None -> Alcotest.failf "label %s did not decode" (Kit.Outcome.label o))
    failures;
  Alcotest.(check bool) "ok is not reconstructible" true
    (Kit.Outcome.of_label "ok" ~detail:"" = (None : unit Kit.Outcome.t option));
  Alcotest.(check bool) "unknown label rejected" true
    (Kit.Outcome.of_label "exploded" ~detail:""
    = (None : unit Kit.Outcome.t option))

let guard_containment () =
  Alcotest.(check bool) "ok" true
    (Kit.Guard.run (fun () -> 42) = Kit.Outcome.Ok 42);
  Alcotest.(check bool) "leaked deadline" true
    (Kit.Guard.run (fun () -> raise Kit.Deadline.Timed_out)
    = Kit.Outcome.Timeout);
  Alcotest.(check bool) "stack overflow" true
    (Kit.Guard.run (fun () -> raise Stdlib.Stack_overflow)
    = Kit.Outcome.Stack_overflow);
  Alcotest.(check bool) "out of memory" true
    (Kit.Guard.run (fun () -> raise Stdlib.Out_of_memory)
    = Kit.Outcome.Out_of_memory);
  (match Kit.Guard.run (fun () -> failwith "boom") with
  | Kit.Outcome.Crash _ -> ()
  | _ -> Alcotest.fail "failure should be a crash");
  (* The guard frame must keep the caller alive: run again after each. *)
  Alcotest.(check bool) "still alive" true
    (Kit.Guard.run (fun () -> "fine") = Kit.Outcome.Ok "fine")

let guard_mem_budget () =
  (* Allocate far past a tiny soft budget: the Gc alarm must turn it into
     Out_of_memory instead of eating the machine. If the alarm never
     fires the loop terminates and the test fails on the Ok. *)
  let r =
    Kit.Guard.run ~mem_mb:2 (fun () ->
        let acc = ref [] in
        for i = 0 to 30_000 do
          acc := Array.make 128 i :: !acc
        done;
        Array.length (List.hd (Sys.opaque_identity !acc)))
  in
  (match r with
  | Kit.Outcome.Out_of_memory -> ()
  | o -> Alcotest.failf "expected out_of_memory, got %s" (Kit.Outcome.label o));
  (* mem_mb:0 disables the budget even when HB_MEM_MB is set. *)
  Alcotest.(check bool) "0 disables" true
    (Kit.Guard.run ~mem_mb:0 (fun () -> 1) = Kit.Outcome.Ok 1)

(* Allocate and retain until the armed budget fires (or the cap is hit,
   failing the test via Ok). Returns only on the Ok path. *)
let allocate_past_budget () =
  let acc = ref [] in
  for i = 0 to 30_000 do
    acc := Array.make 128 i :: !acc
  done;
  Array.length (List.hd (Sys.opaque_identity !acc))

let guard_nested_budgets () =
  (* An inner Guard with a tight budget inside an outer Guard with a huge
     one: the inner alarm must fire, and its containment must stop at the
     inner boundary — the outer run carries on and returns Ok. *)
  let outer =
    Kit.Guard.run ~mem_mb:4096 (fun () ->
        let inner = Kit.Guard.run ~mem_mb:2 allocate_past_budget in
        (match inner with
        | Kit.Outcome.Out_of_memory -> ()
        | o ->
            Alcotest.failf "inner: expected out_of_memory, got %s"
              (Kit.Outcome.label o));
        (* The inner alarm is deleted on exit: allocations past the
           *inner* budget are now fine again, because only the outer
           4096 MB alarm is left armed. *)
        Kit.Guard.run ~mem_mb:0 allocate_past_budget)
  in
  match outer with
  | Kit.Outcome.Ok (Kit.Outcome.Ok n) -> Alcotest.(check int) "outer survives the inner trip" 128 n
  | o -> Alcotest.failf "outer: expected ok, got %s" (Kit.Outcome.label o)

let guard_nested_alarm_cleanup () =
  (* Both alarms must be deleted on every exit path — normal return and
     exception alike. If one leaked, the retained allocation below
     (beyond the tight budgets) would raise Out_of_memory out of
     Gc.compact or a later allocation, outside any Guard. *)
  (match
     Kit.Guard.run ~mem_mb:2048 (fun () ->
         Kit.Guard.run ~mem_mb:2 allocate_past_budget)
   with
  | Kit.Outcome.Ok (Kit.Outcome.Out_of_memory) -> ()
  | o -> Alcotest.failf "trip path: unexpected %s" (Kit.Outcome.label o));
  (match
     Kit.Guard.run ~mem_mb:2048 (fun () ->
         Kit.Guard.run ~mem_mb:3 (fun () -> failwith "inner crash"))
   with
  | Kit.Outcome.Ok (Kit.Outcome.Crash _) -> ()
  | o -> Alcotest.failf "crash path: unexpected %s" (Kit.Outcome.label o));
  let keep = Sys.opaque_identity (ref []) in
  for i = 0 to 30_000 do
    keep := Array.make 128 i :: !keep
  done;
  Gc.compact ();
  Alcotest.(check bool) "no alarm leaked past the guards" true
    (List.length !keep > 0)

(* --- fault injection --------------------------------------------------------- *)

let with_faults spec f =
  (match Kit.Fault.configure spec with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Kit.Fault.clear f

let fault_hang_parses () =
  (* Firing a hang in-process would hang this very test, so arm it at the
     2nd hit and take only the 1st: parsing and counting must work, and
     the un-fired hit must return. (The firing path is exercised under
     Kit.Proc in test_isolation.ml, where a watchdog can kill it.) *)
  with_faults "hang@site.x:2" (fun () ->
      Alcotest.(check bool) "armed" true (Kit.Fault.armed ());
      Kit.Fault.hit "site.x")

let fault_spec_errors () =
  let bad spec =
    match Kit.Fault.configure spec with
    | Error _ -> Alcotest.(check bool) (spec ^ " leaves disarmed") false (Kit.Fault.armed ())
    | Ok () -> Alcotest.failf "spec %S should not parse" spec
  in
  bad "bogus";
  bad "explode@site:1";
  bad "crash@site";
  bad "crash@:1";
  bad "crash@site:0";
  bad "crash@site:p2.0";
  bad "truncate@site:5";
  bad "crash@ok:1;bogus";
  Alcotest.(check bool) "empty spec disarms" true
    (Kit.Fault.configure "" = Ok () && not (Kit.Fault.armed ()))

let fault_nth_hit () =
  with_faults "crash@t.site:3" (fun () ->
      Kit.Fault.hit "t.site";
      Kit.Fault.hit "t.other";
      Kit.Fault.hit "t.site";
      (match Kit.Fault.hit "t.site" with
      | () -> Alcotest.fail "third hit should raise"
      | exception Kit.Fault.Injected m ->
          Alcotest.(check bool) "message names site and hit" true
            (m = "injected crash at t.site (hit 3)"));
      (* Nth fires exactly once. *)
      Kit.Fault.hit "t.site")

let fault_oom_kind () =
  with_faults "oom@t.oom:1" (fun () ->
      match Kit.Fault.hit "t.oom" with
      | () -> Alcotest.fail "oom site should raise"
      | exception Stdlib.Out_of_memory -> ())

let fault_probability_deterministic () =
  let fired () =
    List.init 200 (fun i ->
        match Kit.Fault.hit "t.p" with
        | () -> (i, false)
        | exception Kit.Fault.Injected _ -> (i, true))
  in
  let a = with_faults "kill@t.p:p0.3:s7" fired in
  let b = with_faults "kill@t.p:p0.3:s7" fired in
  let c = with_faults "kill@t.p:p0.3:s8" fired in
  Alcotest.(check bool) "same seed, same firing pattern" true (a = b);
  Alcotest.(check bool) "different seed, different pattern" true (a <> c);
  let n = List.length (List.filter snd a) in
  Alcotest.(check bool)
    (Printf.sprintf "rate plausible for p=0.3 (%d/200)" n)
    true
    (n > 30 && n < 90)

let fault_net_kinds () =
  (* stall/reset/torn parse, are invisible to [hit], and fire through
     [net] at their Nth trigger. *)
  with_faults "stall@w.read:2;torn@w.write:1" (fun () ->
      Alcotest.(check bool) "armed" true (Kit.Fault.armed ());
      (* hit never acts on net kinds, whatever the counter says *)
      Kit.Fault.hit "w.read";
      Kit.Fault.hit "w.read";
      Alcotest.(check bool) "net miss on 1st read hit" true
        (Kit.Fault.net "w.read" = None);
      Alcotest.(check bool) "net stall on 2nd read hit" true
        (Kit.Fault.net "w.read" = Some Kit.Fault.Stall);
      Alcotest.(check bool) "nth fires once" true
        (Kit.Fault.net "w.read" = None);
      Alcotest.(check bool) "torn on 1st write" true
        (Kit.Fault.net "w.write" = Some Kit.Fault.Torn);
      Alcotest.(check bool) "other sites untouched" true
        (Kit.Fault.net "w.other" = None));
  with_faults "reset@w.r:1" (fun () ->
      Alcotest.(check bool) "reset fires" true
        (Kit.Fault.net "w.r" = Some Kit.Fault.Reset));
  (* net clauses share the deterministic probability machinery *)
  let fired () =
    List.init 200 (fun _ -> Kit.Fault.net "w.p" <> None)
  in
  let a = with_faults "torn@w.p:p0.3:s7" fired in
  let b = with_faults "torn@w.p:p0.3:s7" fired in
  Alcotest.(check bool) "seeded net pattern reproducible" true (a = b);
  let n = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "net rate plausible for p=0.3 (%d/200)" n)
    true
    (n > 30 && n < 90)

let fault_truncate () =
  with_faults "truncate@t.cut:2x5" (fun () ->
      Alcotest.(check bool) "first hit passes" true (Kit.Fault.cut "t.cut" = None);
      Alcotest.(check bool) "second hit truncates to 5" true
        (Kit.Fault.cut "t.cut" = Some 5);
      Alcotest.(check bool) "third hit passes" true (Kit.Fault.cut "t.cut" = None);
      (* Non-truncate kinds ignore cut and vice versa. *)
      Kit.Fault.hit "t.cut")

(* --- json -------------------------------------------------------------------- *)

let json_roundtrip () =
  let v =
    Kit.Json.Obj
      [
        ("s", Kit.Json.String "a\"b\\c\nd\t009 é");
        ("i", Kit.Json.Int (-42));
        ("f", Kit.Json.Float 0.30000000000000004);
        ("big", Kit.Json.Float 1.5974044799804688e-05);
        ("t", Kit.Json.Bool true);
        ("n", Kit.Json.Null);
        ("l", Kit.Json.List [ Kit.Json.Int 1; Kit.Json.Obj [] ]);
      ]
  in
  let s = Kit.Json.to_string v in
  Alcotest.(check bool) "single line" true (not (String.contains s '\n'));
  (match Kit.Json.of_string s with
  | Ok v' -> Alcotest.(check bool) "round-trips exactly" true (v = v')
  | Error m -> Alcotest.fail m);
  (* Unicode escapes, including a surrogate pair. *)
  (match Kit.Json.of_string {|"é😀"|} with
  | Ok (Kit.Json.String s) ->
      Alcotest.(check string) "utf-8 decoding" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escape parse failed");
  List.iter
    (fun bad ->
      match Kit.Json.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "nul"; "" ]

let json_accessors () =
  let v =
    match Kit.Json.of_string {|{"a":1,"b":2.5,"c":"x","d":[true,null]}|} with
    | Ok v -> v
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "member+int" true
    (Option.bind (Kit.Json.member "a" v) Kit.Json.to_int = Some 1);
  Alcotest.(check bool) "int as float" true
    (Option.bind (Kit.Json.member "a" v) Kit.Json.to_float = Some 1.0);
  Alcotest.(check bool) "float" true
    (Option.bind (Kit.Json.member "b" v) Kit.Json.to_float = Some 2.5);
  Alcotest.(check bool) "non-integral float is not an int" true
    (Option.bind (Kit.Json.member "b" v) Kit.Json.to_int = None);
  Alcotest.(check bool) "string" true
    (Option.bind (Kit.Json.member "c" v) Kit.Json.string_value = Some "x");
  Alcotest.(check bool) "missing member" true (Kit.Json.member "z" v = None);
  match Option.bind (Kit.Json.member "d" v) Kit.Json.to_list with
  | Some [ Kit.Json.Bool true; Kit.Json.Null ] -> ()
  | _ -> Alcotest.fail "list accessor"

(* --- pool outcomes ----------------------------------------------------------- *)

(* --- deadline: fuel accounting and cancel chains ------------------------- *)

let deadline_fuel_accounting () =
  let d = Kit.Deadline.of_fuel 100 in
  Alcotest.(check (option int)) "initial" (Some 100) (Kit.Deadline.fuel_remaining d);
  Kit.Deadline.consume_fuel d 30;
  Alcotest.(check (option int)) "debited" (Some 70) (Kit.Deadline.fuel_remaining d);
  Kit.Deadline.refund_fuel d 10;
  Alcotest.(check (option int)) "credited" (Some 80) (Kit.Deadline.fuel_remaining d);
  Kit.Deadline.consume_fuel d (-5);
  Kit.Deadline.refund_fuel d (-5);
  Alcotest.(check (option int)) "non-positive amounts ignored" (Some 80)
    (Kit.Deadline.fuel_remaining d);
  Kit.Deadline.consume_fuel d 200;
  Alcotest.(check (option int)) "clamped at zero" (Some 0)
    (Kit.Deadline.fuel_remaining d);
  Alcotest.check_raises "exhausted" Kit.Deadline.Timed_out (fun () ->
      Kit.Deadline.check d);
  Alcotest.(check (option int)) "wall has no fuel" None
    (Kit.Deadline.fuel_remaining (Kit.Deadline.of_seconds 10.0));
  Alcotest.(check (option int)) "none has no fuel" None
    (Kit.Deadline.fuel_remaining Kit.Deadline.none)

let deadline_cancel_chain () =
  let root = Kit.Deadline.new_cancel () in
  let mid = Kit.Deadline.new_cancel ~parent:root () in
  let leaf = Kit.Deadline.new_cancel ~parent:mid () in
  let sibling = Kit.Deadline.new_cancel ~parent:root () in
  (* Cancelling a child never touches the parent or a sibling. *)
  Kit.Deadline.cancel mid;
  Alcotest.(check bool) "leaf sees ancestor" true (Kit.Deadline.is_cancelled leaf);
  Alcotest.(check bool) "mid set" true (Kit.Deadline.is_cancelled mid);
  Alcotest.(check bool) "root untouched" false (Kit.Deadline.is_cancelled root);
  Alcotest.(check bool) "sibling untouched" false
    (Kit.Deadline.is_cancelled sibling);
  (* Cancelling the root reaches every descendant. *)
  Kit.Deadline.cancel root;
  Alcotest.(check bool) "sibling sees root" true
    (Kit.Deadline.is_cancelled sibling);
  let d = Kit.Deadline.with_cancel sibling (Kit.Deadline.of_fuel 1000) in
  Alcotest.check_raises "chained deadline raises" Kit.Deadline.Timed_out
    (fun () -> Kit.Deadline.check d)

(* --- steal ---------------------------------------------------------------- *)

let rec seq_fib n = if n < 2 then n else seq_fib (n - 1) + seq_fib (n - 2)

let steal_fib jobs () =
  let got =
    Kit.Steal.run ~jobs (fun sched ->
        let rec fib n =
          if n < 10 then seq_fib n
          else
            let a = Kit.Steal.fork sched (fun () -> fib (n - 1)) in
            let b = fib (n - 2) in
            Kit.Steal.join sched a + b
        in
        fib 22)
  in
  Alcotest.(check int) (Printf.sprintf "fib 22 at jobs=%d" jobs) (seq_fib 22) got

let steal_every_task_runs_once () =
  (* 200 forked tasks each tick a private cell exactly once, whatever the
     schedule. *)
  List.iter
    (fun jobs ->
      let cells = Array.init 200 (fun _ -> Atomic.make 0) in
      Kit.Steal.run ~jobs (fun sched ->
          let ps =
            Array.mapi
              (fun i c -> Kit.Steal.fork sched (fun () -> Atomic.incr c; i))
              cells
          in
          Array.iteri
            (fun i p ->
              Alcotest.(check int) "result in order" i
                (Kit.Steal.join sched p))
            ps);
      Array.iter
        (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "exactly once at jobs=%d" jobs)
            1 (Atomic.get c))
        cells)
    [ 1; 4 ]

let steal_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d" jobs)
        (Failure "task blew up")
        (fun () ->
          Kit.Steal.run ~jobs (fun sched ->
              let p =
                Kit.Steal.fork sched (fun () -> failwith "task blew up")
              in
              Kit.Steal.join sched p)))
    [ 1; 4 ]

let steal_nested_runs () =
  let got =
    Kit.Steal.run ~jobs:2 (fun outer ->
        let p =
          Kit.Steal.fork outer (fun () ->
              Kit.Steal.run ~jobs:2 (fun inner ->
                  let q = Kit.Steal.fork inner (fun () -> 21) in
                  Kit.Steal.join inner q * 2))
        in
        Kit.Steal.join outer p)
  in
  Alcotest.(check int) "inner crew result" 42 got

let steal_jobs1_spawns_nothing () =
  Kit.Steal.run ~jobs:1 (fun sched ->
      Alcotest.(check int) "crew of one" 1 (Kit.Steal.jobs sched);
      let self = Domain.self () in
      let p = Kit.Steal.fork sched (fun () -> Domain.self ()) in
      Alcotest.(check bool) "task ran on the caller's domain" true
        (Kit.Steal.join sched p = self))

let steal_stats_balance () =
  Kit.Steal.run ~jobs:4 (fun sched ->
      let ps =
        List.init 64 (fun i -> Kit.Steal.fork sched (fun () -> i * i))
      in
      List.iteri
        (fun i p -> Alcotest.(check int) "square" (i * i) (Kit.Steal.join sched p))
        ps;
      let s = Kit.Steal.stats sched in
      Alcotest.(check int) "all forks executed" s.Kit.Steal.forked
        s.Kit.Steal.executed;
      Alcotest.(check bool) "steals never exceed executions" true
        (s.Kit.Steal.stolen <= s.Kit.Steal.executed);
      Alcotest.(check bool) "inlined never exceed executions" true
        (s.Kit.Steal.inlined <= s.Kit.Steal.executed))

let pool_run_outcome () =
  let tasks = Array.init 20 Fun.id in
  let work x = if x mod 7 = 3 then failwith "boom" else x * x in
  let check_jobs jobs =
    let out = Kit.Pool.run_outcome ~jobs work tasks in
    Alcotest.(check int) "one outcome per task" 20 (Array.length out);
    Array.iteri
      (fun i x ->
        match out.(i) with
        | Kit.Outcome.Ok v -> Alcotest.(check int) "value in order" (x * x) v
        | Kit.Outcome.Crash _ ->
            Alcotest.(check bool) "crash only where injected" true
              (x mod 7 = 3)
        | o -> Alcotest.failf "unexpected outcome %s" (Kit.Outcome.label o))
      tasks
  in
  check_jobs 1;
  check_jobs 4

(* --- diag -------------------------------------------------------------- *)

let contains_sub s sub =
  try
    ignore (Str.search_forward (Str.regexp_string sub) s 0);
    true
  with Not_found -> false

let diag_positions () =
  let src = "ab\ncde\n\nf" in
  let check_pos name off line col =
    let p = Kit.Diag.position src off in
    Alcotest.(check (pair int int)) name (line, col)
      (p.Kit.Diag.line, p.Kit.Diag.col)
  in
  check_pos "start" 0 1 1;
  check_pos "mid line 1" 1 1 2;
  check_pos "newline belongs to its line" 2 1 3;
  check_pos "line 2" 3 2 1;
  check_pos "empty line" 7 3 1;
  check_pos "last char" 8 4 1;
  (* Clamped, never raising: one past the end and far past the end. *)
  check_pos "eof" 9 4 2;
  check_pos "way past eof" 1000 4 2

let diag_render () =
  let src = "SELECT a\nFROM t WHERE ???\n" in
  let d = Kit.Diag.error (Kit.Diag.span 22 25) "no such operator" in
  let r = Kit.Diag.render ~file:"q.sql" ~source:src d in
  Alcotest.(check bool) "header" true
    (String.length r > 0
    && String.sub r 0 (String.length "q.sql:2:14: error:")
       = "q.sql:2:14: error:");
  Alcotest.(check bool) "caret line present" true
    (contains_sub r "^^^");
  Alcotest.(check string) "one_line" "q.sql:2:14: error: no such operator"
    (Kit.Diag.one_line ~file:"q.sql" ~source:src d);
  (* to_message summarises several diagnostics in one line. *)
  let more = Kit.Diag.error (Kit.Diag.point 0) "first" in
  let m = Kit.Diag.to_message ~source:src [ d; more ] in
  Alcotest.(check string) "to_message picks lowest offset + counts rest"
    "1:1: error: first (+1 more error)" m

let diag_json () =
  let src = "x\nyz" in
  let d = Kit.Diag.error (Kit.Diag.span 2 4) "bad" in
  let j = Kit.Diag.to_json ~source:src d in
  let get f name =
    match Option.bind (Kit.Json.member name j) f with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" name
  in
  Alcotest.(check string) "severity" "error"
    (get Kit.Json.string_value "severity");
  Alcotest.(check int) "line" 2 (get Kit.Json.to_int "line");
  Alcotest.(check int) "col" 1 (get Kit.Json.to_int "col");
  Alcotest.(check int) "offset" 2 (get Kit.Json.to_int "offset");
  Alcotest.(check int) "end_offset" 4 (get Kit.Json.to_int "end_offset");
  Alcotest.(check string) "message" "bad" (get Kit.Json.string_value "message");
  (* all_to_json sorts by span start. *)
  let l =
    Kit.Diag.all_to_json ~source:src
      [ d; Kit.Diag.error (Kit.Diag.point 0) "earlier" ]
  in
  match Kit.Json.to_list l with
  | Some [ a; _ ] ->
      Alcotest.(check (option string)) "sorted" (Some "earlier")
        (Option.bind (Kit.Json.member "message" a) Kit.Json.string_value)
  | _ -> Alcotest.fail "expected a two-element list"

(* --- limits ------------------------------------------------------------ *)

let limits_env () =
  (* The knobs are re-read on every call, so a putenv takes effect
     immediately; an unparsable value falls back to the default. *)
  let with_env name v f =
    let old = Sys.getenv_opt name in
    Unix.putenv name v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv name (Option.value old ~default:""))
      f
  in
  with_env "HB_PARSE_DEPTH" "17" (fun () ->
      Alcotest.(check int) "depth knob" 17 (Kit.Limits.max_depth ()));
  with_env "HB_PARSE_DEPTH" "not-a-number" (fun () ->
      Alcotest.(check int) "bad depth -> default" Kit.Limits.default_depth
        (Kit.Limits.max_depth ()));
  with_env "HB_MAX_INPUT" "10" (fun () ->
      Alcotest.(check int) "input knob" 10 (Kit.Limits.max_input ());
      (match Kit.Limits.check_input "elevenbytes" with
      | Some d ->
          Alcotest.(check bool) "mentions the knob" true
            (contains_sub d.Kit.Diag.message "HB_MAX_INPUT")
      | None -> Alcotest.fail "11 bytes must exceed a 10-byte cap");
      Alcotest.(check bool) "under the cap" true
        (Kit.Limits.check_input "tenbytes!!" = None))

(* --- fuzz -------------------------------------------------------------- *)

let fuzz_determinism () =
  (* Same seed, same stream — byte-identical generations, per generator. *)
  List.iter
    (fun (name, gen) ->
      let a = List.init 50 (fun i -> gen (Kit.Rng.create (1000 + i))) in
      let b = List.init 50 (fun i -> gen (Kit.Rng.create (1000 + i))) in
      Alcotest.(check bool) (name ^ " deterministic") true (a = b))
    [
      ("sql", Kit.Fuzz.sql); ("xcsp", Kit.Fuzz.xcsp);
      ("hg", Kit.Fuzz.hg); ("hbx", Kit.Fuzz.hbx);
    ]

let fuzz_mutate_changes () =
  let base = "p(a, b), q(b, c)." in
  for seed = 0 to 99 do
    let m = Kit.Fuzz.mutate (Kit.Rng.create seed) base in
    if m = base then Alcotest.failf "mutation %d returned input unchanged" seed
  done

let fuzz_shrink () =
  (* Predicate: contains the byte 'X'. Shrinking must keep it while
     discarding the padding around it. *)
  let input = String.make 400 'a' ^ "X" ^ String.make 400 'b' in
  let pred s = String.contains s 'X' in
  let s = Kit.Fuzz.shrink pred input in
  Alcotest.(check bool) "still fails" true (pred s);
  Alcotest.(check bool) "much smaller" true (String.length s < 100);
  (* A predicate nothing satisfies after removal: input comes back. *)
  Alcotest.(check string) "irreducible input survives" "X"
    (Kit.Fuzz.shrink pred "X")

(* --- guard: real stack overflow (not a pre-raised exception) ------------ *)

let guard_stack_overflow_real () =
  (* An actual runaway recursion — the exception is raised by the runtime
     with the stack nearly exhausted, which is exactly the state where a
     careless handler (e.g. one that captures a backtrace first) would
     overflow again and abort the process. *)
  let rec boom n = 1 + boom (n + 1) in
  (match Kit.Guard.run (fun () -> boom 0) with
  | Kit.Outcome.Stack_overflow -> ()
  | o -> Alcotest.failf "expected stack_overflow, got %s" (Kit.Outcome.label o));
  Alcotest.(check bool) "still alive" true
    (Kit.Guard.run (fun () -> 1) = Kit.Outcome.Ok 1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "kit"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick bitset_basics;
          Alcotest.test_case "full with partial word" `Quick bitset_full_partial_word;
          Alcotest.test_case "set operations" `Quick bitset_set_ops;
          Alcotest.test_case "universe mismatch" `Quick bitset_universe_mismatch;
          Alcotest.test_case "choose and filter" `Quick bitset_choose_filter;
          qt prop_roundtrip;
          qt prop_union_model;
          qt prop_inter_model;
          qt prop_diff_model;
          qt prop_inter_cardinal;
        ] );
      ( "rational",
        [
          Alcotest.test_case "arithmetic" `Quick rational_basics;
          Alcotest.test_case "floor/ceil" `Quick rational_floor_ceil;
          Alcotest.test_case "float approximation" `Quick rational_approx;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick rng_determinism;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "sampling" `Quick rng_sample;
        ] );
      ( "union_find", [ Alcotest.test_case "groups" `Quick union_find ] );
      ( "names", [ Alcotest.test_case "interning" `Quick names ] );
      ( "deadline",
        [
          Alcotest.test_case "fuel" `Quick deadline_fuel;
          Alcotest.test_case "none" `Quick deadline_none;
          Alcotest.test_case "wall coherent" `Quick deadline_wall_coherent;
          Alcotest.test_case "fuel is atomic" `Quick deadline_fuel_atomic;
          Alcotest.test_case "cancel flag" `Quick deadline_cancel;
          Alcotest.test_case "cancel across domains" `Quick
            deadline_cancel_across_domains;
          Alcotest.test_case "fuel accounting" `Quick deadline_fuel_accounting;
          Alcotest.test_case "cancel chain" `Quick deadline_cancel_chain;
        ] );
      ( "steal",
        [
          Alcotest.test_case "fork/join fib jobs=1" `Quick (steal_fib 1);
          Alcotest.test_case "fork/join fib jobs=4" `Quick (steal_fib 4);
          Alcotest.test_case "every task runs once" `Quick
            steal_every_task_runs_once;
          Alcotest.test_case "exceptions propagate" `Quick
            steal_exception_propagates;
          Alcotest.test_case "nested runs" `Quick steal_nested_runs;
          Alcotest.test_case "jobs=1 stays on caller" `Quick
            steal_jobs1_spawns_nothing;
          Alcotest.test_case "stats balance" `Quick steal_stats_balance;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel = sequential" `Quick pool_matches_sequential;
          Alcotest.test_case "exceptions captured" `Quick pool_captures_exceptions;
          Alcotest.test_case "empty and default" `Quick pool_empty_and_default;
          Alcotest.test_case "run_outcome" `Quick pool_run_outcome;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "classify" `Quick outcome_classify;
          Alcotest.test_case "labels round-trip" `Quick outcome_labels_roundtrip;
        ] );
      ( "guard",
        [
          Alcotest.test_case "containment" `Quick guard_containment;
          Alcotest.test_case "soft memory budget" `Quick guard_mem_budget;
          Alcotest.test_case "nested budgets" `Quick guard_nested_budgets;
          Alcotest.test_case "nested alarm cleanup" `Quick
            guard_nested_alarm_cleanup;
        ] );
      ( "fault",
        [
          Alcotest.test_case "spec errors" `Quick fault_spec_errors;
          Alcotest.test_case "hang kind parses" `Quick fault_hang_parses;
          Alcotest.test_case "nth hit" `Quick fault_nth_hit;
          Alcotest.test_case "oom kind" `Quick fault_oom_kind;
          Alcotest.test_case "probability deterministic" `Quick
            fault_probability_deterministic;
          Alcotest.test_case "truncate" `Quick fault_truncate;
          Alcotest.test_case "network kinds" `Quick fault_net_kinds;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick json_roundtrip;
          Alcotest.test_case "accessors" `Quick json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "merge across domains" `Quick
            metrics_merge_across_domains;
          Alcotest.test_case "span nesting" `Quick metrics_span_nesting;
          Alcotest.test_case "reset" `Quick metrics_reset;
          Alcotest.test_case "disabled fast path" `Quick
            metrics_disabled_fast_path;
          Alcotest.test_case "local delta" `Quick metrics_local_delta;
          Alcotest.test_case "absorb replays a snapshot" `Quick metrics_absorb;
        ] );
      ( "diag",
        [
          Alcotest.test_case "positions" `Quick diag_positions;
          Alcotest.test_case "render" `Quick diag_render;
          Alcotest.test_case "json" `Quick diag_json;
        ] );
      ( "limits", [ Alcotest.test_case "env knobs" `Quick limits_env ] );
      ( "fuzz",
        [
          Alcotest.test_case "determinism" `Quick fuzz_determinism;
          Alcotest.test_case "mutate changes input" `Quick fuzz_mutate_changes;
          Alcotest.test_case "shrink" `Quick fuzz_shrink;
          Alcotest.test_case "guard catches real overflow" `Quick
            guard_stack_overflow_real;
        ] );
    ]
