(* Tests for the DetKDecomp hypertree-decomposition engine, including
   validation of every produced decomposition and known widths for
   reference hypergraphs. *)

module Bitset = Kit.Bitset
module H = Hg.Hypergraph

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let cycle n =
  H.of_int_edges (List.init n (fun i -> [ i; (i + 1) mod n ]))

let fano =
  H.of_int_edges
    [
      [ 0; 1; 2 ];
      [ 0; 3; 4 ];
      [ 0; 5; 6 ];
      [ 1; 3; 5 ];
      [ 1; 4; 6 ];
      [ 2; 3; 6 ];
      [ 2; 4; 5 ];
    ]

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := [ i; j ] :: !edges
    done
  done;
  H.of_int_edges !edges

(* Grid graph (binary edges) r x c: treewidth min(r,c), hw <= ceil stuff;
   used as a harder instance. *)
let grid r c =
  let v i j = (i * c) + j in
  let edges = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if j + 1 < c then edges := [ v i j; v i (j + 1) ] :: !edges;
      if i + 1 < r then edges := [ v i j; v (i + 1) j ] :: !edges
    done
  done;
  H.of_int_edges !edges

let expect_width name h k =
  (* hw(h) must be exactly k: yes at k, no at k-1, and the witness valid. *)
  (match Detk.solve h ~k with
  | Detk.Decomposition d ->
      Alcotest.(check bool) (name ^ ": width bound") true (Decomp.width d <= k);
      (match Decomp.check_hd h d with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: invalid HD: %a" name (Decomp.pp_violation h) v)
  | Detk.No_decomposition -> Alcotest.failf "%s: expected HD of width %d" name k
  | Detk.Timeout -> Alcotest.failf "%s: unexpected timeout" name);
  if k > 1 then
    match Detk.solve h ~k:(k - 1) with
    | Detk.No_decomposition -> ()
    | Detk.Decomposition _ -> Alcotest.failf "%s: width %d should fail" name (k - 1)
    | Detk.Timeout -> Alcotest.failf "%s: unexpected timeout" name

let known_widths () =
  expect_width "single edge" (H.of_int_edges [ [ 0; 1; 2 ] ]) 1;
  expect_width "path" (H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]) 1;
  expect_width "triangle" triangle 2;
  expect_width "C4" (cycle 4) 2;
  expect_width "C5" (cycle 5) 2;
  expect_width "C6" (cycle 6) 2;
  expect_width "K4" (clique 4) 2;
  expect_width "K5" (clique 5) 3

let fano_width () = expect_width "fano" fano 3

let acyclic_star () =
  let star = H.of_int_edges [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 0; 4 ] ] in
  expect_width "star" star 1

let disconnected () =
  let h = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ] ] in
  expect_width "two islands" h 1

let big_arity_acyclic () =
  (* A chain of wide edges overlapping in single vertices is acyclic. *)
  let h = H.of_int_edges [ [ 0; 1; 2; 3 ]; [ 3; 4; 5; 6 ]; [ 6; 7; 8; 9 ] ] in
  expect_width "wide chain" h 1

let hypertree_width_driver () =
  let opt, _ = Detk.hypertree_width triangle in
  (match opt with
  | Some (hw, d) ->
      Alcotest.(check int) "triangle hw" 2 hw;
      Alcotest.(check bool) "valid" true (Decomp.is_valid_hd triangle d)
  | None -> Alcotest.fail "triangle hw must be found");
  let opt, _ = Detk.hypertree_width (cycle 7) in
  match opt with
  | Some (hw, _) -> Alcotest.(check int) "C7 hw" 2 hw
  | None -> Alcotest.fail "C7 hw must be found"

let grid_width () =
  (* 3x3 grid graph: treewidth 3... its hw is 2 (cover bags by 2 edges). *)
  let h = grid 3 3 in
  match Detk.solve h ~k:3 with
  | Detk.Decomposition d ->
      Alcotest.(check bool) "valid HD" true (Decomp.is_valid_hd h d)
  | Detk.No_decomposition -> Alcotest.fail "3x3 grid should have hw <= 3"
  | Detk.Timeout -> Alcotest.fail "timeout"

let timeout_path () =
  let h = grid 5 5 in
  match Detk.solve ~deadline:(Kit.Deadline.of_fuel 50) h ~k:2 with
  | Detk.Timeout -> ()
  | Detk.Decomposition _ | Detk.No_decomposition ->
      Alcotest.fail "expected a timeout with tiny fuel"

let timeout_wall () =
  (* A wall budget that is already exhausted must abort the search once the
     amortised clock poll fires — never leak a partial decomposition. *)
  let h = grid 5 5 in
  match Detk.solve ~deadline:(Kit.Deadline.of_seconds 0.0) h ~k:2 with
  | Detk.Timeout -> ()
  | Detk.Decomposition _ | Detk.No_decomposition ->
      Alcotest.fail "expected a timeout with a zero wall budget"

let timeout_mid_search_levels () =
  (* Expiring at several fuel levels mid-search: the outcome is always one
     of the three constructors, and a yes is always a full decomposition. *)
  let h = grid 4 4 in
  List.iter
    (fun fuel ->
      match Detk.solve ~deadline:(Kit.Deadline.of_fuel fuel) h ~k:3 with
      | Detk.Timeout | Detk.No_decomposition -> ()
      | Detk.Decomposition d ->
          Alcotest.(check bool)
            (Printf.sprintf "fuel %d yields a valid HD" fuel)
            true (Decomp.is_valid_hd h d))
    [ 1; 10; 100; 1000 ]

let memoization_consistency () =
  (* With and without memoisation the verdict must coincide. *)
  let h = grid 3 3 in
  let verdict memoize =
    match Detk.solve ~memoize h ~k:2 with
    | Detk.Decomposition _ -> `Yes
    | Detk.No_decomposition -> `No
    | Detk.Timeout -> `Timeout
  in
  Alcotest.(check bool) "same verdict" true (verdict true = verdict false)

(* Property tests on random hypergraphs. *)
let random_hg_gen =
  QCheck.Gen.(
    let* n_edges = int_range 1 6 in
    let* edges =
      list_repeat n_edges
        (let* a = int_range 1 4 in
         list_repeat a (int_bound 7))
    in
    let edges = List.map (List.sort_uniq compare) edges in
    let edges = List.filter (fun e -> e <> []) edges in
    return (if edges = [] then [ [ 0 ] ] else edges))

let prop_hd_valid =
  QCheck.Test.make ~name:"produced HDs are valid and within width" ~count:150
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      let k = 3 in
      match Detk.solve h ~k with
      | Detk.Decomposition d -> Decomp.is_valid_hd h d && Decomp.width d <= k
      | Detk.No_decomposition | Detk.Timeout -> true)

let prop_monotone =
  QCheck.Test.make ~name:"yes at k implies yes at k+1" ~count:80
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      match Detk.solve h ~k:2 with
      | Detk.Decomposition _ -> (
          match Detk.solve h ~k:3 with
          | Detk.Decomposition _ -> true
          | Detk.No_decomposition | Detk.Timeout -> false)
      | Detk.No_decomposition | Detk.Timeout -> true)

let prop_always_some_width =
  QCheck.Test.make ~name:"hw <= number of edges" ~count:80
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      match Detk.hypertree_width h with
      | Some (hw, d), _ -> hw <= h.H.n_edges && Decomp.is_valid_hd h d
      | None, _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "detk"
    [
      ( "known widths",
        [
          Alcotest.test_case "reference hypergraphs" `Quick known_widths;
          Alcotest.test_case "fano" `Quick fano_width;
          Alcotest.test_case "star" `Quick acyclic_star;
          Alcotest.test_case "disconnected" `Quick disconnected;
          Alcotest.test_case "wide chain" `Quick big_arity_acyclic;
          Alcotest.test_case "hw driver" `Quick hypertree_width_driver;
          Alcotest.test_case "grid" `Quick grid_width;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "timeout" `Quick timeout_path;
          Alcotest.test_case "wall timeout" `Quick timeout_wall;
          Alcotest.test_case "timeout mid-search" `Quick timeout_mid_search_levels;
          Alcotest.test_case "memoization" `Quick memoization_consistency;
        ] );
      ( "properties",
        [ qt prop_hd_valid; qt prop_monotone; qt prop_always_some_width ] );
    ]
