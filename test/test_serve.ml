(* hyperbenchd protocol conformance, fuzz, cache and leak tests.

   Protocol tests run an in-process server (port 0, worker threads) and
   speak to it over real sockets via [Serve.Client]; the SIGTERM drain
   test exercises the installed binary, signal handler included. The
   fuzz corpus is seeded and self-contained: the daemon must answer or
   close cleanly on every mangled request and still be serving at the
   end. *)

let () = Kit.Metrics.enabled := true

let host = "127.0.0.1"

(* A deterministic LCG so the ~300 fuzz cases are reproducible. *)
let rng = ref 0x48595045

let rand bound =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
  !rng mod bound

let triangle = "e1(a,b),e2(b,c),e3(c,a)."
let hg_type = ("Content-Type", "application/x-hyperbench")

let svc_default =
  {
    Benchlib.Service.cache = None;
    isolate = false;
    mem_mb = None;
    default_timeout = 5.0;
    max_timeout = 10.0;
    max_k = 4;
  }

let base_cfg () =
  {
    (Serve.Server.default_config ()) with
    Serve.Server.port = 0;
    jobs = 2;
    queue = 8;
    rate = 0.;
    max_body = 1 lsl 20;
    idle_timeout = 2.0;
  }

let with_server ?(cfg = base_cfg ()) ?(svc = svc_default) f =
  let srv = Serve.Server.create cfg (Benchlib.Service.handler svc) in
  let th = Thread.create (fun () -> Serve.Server.serve srv) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop srv;
      Thread.join th)
    (fun () -> f (Serve.Server.port srv))

let get_ok = function
  | Ok (r : Serve.Client.response) -> r
  | Error m -> Alcotest.failf "request failed: %s" m

let decompose_target ?(extra = "") k =
  Printf.sprintf "/decompose?k=%d%s" k extra

(* --- routing and verdicts ----------------------------------------------- *)

let healthz_and_metrics () =
  with_server (fun port ->
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
      Alcotest.(check int) "healthz status" 200 r.Serve.Client.status;
      Alcotest.(check string) "healthz body" "{\"ok\":true}"
        r.Serve.Client.body;
      let m = get_ok (Serve.Client.oneshot ~host ~port "GET" "/metrics") in
      Alcotest.(check int) "metrics status" 200 m.Serve.Client.status;
      let has needle s =
        let nl = String.length needle and sl = String.length s in
        let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "metrics mention serve counters" true
        (has "hb_serve_requests" m.Serve.Client.body))

let contains needle s =
  let nl = String.length needle and sl = String.length s in
  let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
  at 0

let decompose_verdicts () =
  with_server (fun port ->
      let post target body headers =
        get_ok
          (Serve.Client.oneshot ~host ~port ~headers ~body "POST" target)
      in
      (* yes at k=2 *)
      let r = post (decompose_target 2) triangle [ hg_type ] in
      Alcotest.(check int) "k=2 status" 200 r.Serve.Client.status;
      Alcotest.(check bool) "k=2 verdict yes" true
        (contains "\"verdict\":\"yes\"" r.Serve.Client.body);
      Alcotest.(check bool) "k=2 width 2" true
        (contains "\"width\":2" r.Serve.Client.body);
      (* the triangle has no width-1 HD *)
      let r = post (decompose_target 1) triangle [ hg_type ] in
      Alcotest.(check bool) "k=1 verdict no" true
        (contains "\"verdict\":\"no\"" r.Serve.Client.body);
      (* ladder without k finds hw = 2 *)
      let r = post "/decompose" triangle [ hg_type ] in
      Alcotest.(check bool) "ladder verdict yes" true
        (contains "\"verdict\":\"yes\"" r.Serve.Client.body);
      Alcotest.(check bool) "ladder k=2" true
        (contains "\"k\":2" r.Serve.Client.body);
      (* ghd portfolio with explicit k *)
      let r =
        post (decompose_target 2 ~extra:"&method=portfolio") triangle
          [ hg_type ]
      in
      Alcotest.(check int) "portfolio status" 200 r.Serve.Client.status;
      Alcotest.(check bool) "portfolio verdict present" true
        (contains "\"verdict\":" r.Serve.Client.body))

let decompose_errors () =
  with_server (fun port ->
      let post target body headers =
        get_ok
          (Serve.Client.oneshot ~host ~port ~headers ~body "POST" target)
      in
      let r = post (decompose_target 2) "e1(a," [ hg_type ] in
      Alcotest.(check int) "garbage HG -> 422" 422 r.Serve.Client.status;
      let r =
        post (decompose_target 2) triangle
          [ ("Content-Type", "application/x-tar") ]
      in
      Alcotest.(check int) "unknown content type -> 415" 415
        r.Serve.Client.status;
      let r =
        post (decompose_target 2 ~extra:"&method=frobnicate") triangle
          [ hg_type ]
      in
      Alcotest.(check int) "unknown method -> 400" 400 r.Serve.Client.status;
      let r = post "/decompose?method=balsep" triangle [ hg_type ] in
      Alcotest.(check int) "balsep without k -> 400" 400
        r.Serve.Client.status;
      let r = post "/decompose?k=0" triangle [ hg_type ] in
      Alcotest.(check int) "k=0 -> 400" 400 r.Serve.Client.status;
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/nope") in
      Alcotest.(check int) "unknown path -> 404" 404 r.Serve.Client.status;
      let r = get_ok (Serve.Client.oneshot ~host ~port "PUT" "/healthz") in
      Alcotest.(check int) "wrong method -> 405" 405 r.Serve.Client.status;
      Alcotest.(check (option string)) "405 carries Allow" (Some "GET")
        (List.assoc_opt "allow" r.Serve.Client.headers))

(* --- keep-alive and pipelining ------------------------------------------ *)

let keep_alive_sequencing () =
  with_server (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          for i = 1 to 5 do
            let r =
              get_ok
                (Serve.Client.request c ~headers:[ hg_type ] ~body:triangle
                   "POST" (decompose_target 2))
            in
            Alcotest.(check int)
              (Printf.sprintf "request %d on one connection" i)
              200 r.Serve.Client.status;
            Alcotest.(check (option string)) "keep-alive honoured"
              (Some "keep-alive")
              (List.assoc_opt "connection" r.Serve.Client.headers)
          done))

let pipelining () =
  with_server (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* three requests in one write; responses must come back in
             order, bodies intact *)
          let one = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
          Serve.Client.write_raw c (one ^ one ^ one);
          for i = 1 to 3 do
            let r = get_ok (Serve.Client.read_response c) in
            Alcotest.(check int)
              (Printf.sprintf "pipelined response %d" i)
              200 r.Serve.Client.status;
            Alcotest.(check string) "pipelined body" "{\"ok\":true}"
              r.Serve.Client.body
          done))

(* --- limits -------------------------------------------------------------- *)

let oversized_bodies () =
  let cfg = { (base_cfg ()) with Serve.Server.max_body = 4096 } in
  with_server ~cfg (fun port ->
      (* content-length over the cap: rejected before the body uploads *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            "POST /decompose HTTP/1.1\r\nHost: x\r\nContent-Length: 10000\r\n\r\n";
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "oversized content-length -> 413" 413
            r.Serve.Client.status);
      (* chunked body growing past the cap *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            "POST /decompose HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: \
             chunked\r\n\r\n";
          (try
             for _ = 1 to 10 do
               Serve.Client.write_raw c
                 (Printf.sprintf "400\r\n%s\r\n" (String.make 1024 'a'))
             done
           with Unix.Unix_error _ -> () (* server already answered *));
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "oversized chunked body -> 413" 413
            r.Serve.Client.status);
      (* an oversized head is 431 *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            (Printf.sprintf "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pad: %s\r\n\r\n"
               (String.make 20000 'p'));
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "oversized head -> 431" 431
            r.Serve.Client.status))

let malformed_requests () =
  with_server (fun port ->
      let expect_400 name raw =
        let c = Serve.Client.connect ~host ~port () in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            Serve.Client.write_raw c raw;
            Serve.Client.shutdown_send c;
            match Serve.Client.read_response c with
            | Ok r ->
                Alcotest.(check int) (name ^ " -> 400") 400
                  r.Serve.Client.status
            | Error m -> Alcotest.failf "%s: no response (%s)" name m)
      in
      expect_400 "garbage request line" "NOT A REQUEST\r\n\r\n";
      expect_400 "lowercase method" "get /healthz HTTP/1.1\r\n\r\n";
      expect_400 "bad version" "GET /healthz HTTP/9.9\r\n\r\n";
      expect_400 "relative target" "GET healthz HTTP/1.1\r\n\r\n";
      expect_400 "header without colon"
        "GET /healthz HTTP/1.1\r\nHost x\r\n\r\n";
      expect_400 "obsolete folding"
        "GET /healthz HTTP/1.1\r\nHost: x\r\n  folded\r\n\r\n";
      expect_400 "conflicting content-lengths"
        "POST /decompose HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: \
         5\r\n\r\nabcd";
      expect_400 "negative content-length"
        "POST /decompose HTTP/1.1\r\nContent-Length: -4\r\n\r\n";
      expect_400 "chunked and content-length"
        "POST /decompose HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: \
         chunked\r\n\r\n0\r\n\r\n";
      expect_400 "bad chunk size"
        "POST /decompose HTTP/1.1\r\nTransfer-Encoding: \
         chunked\r\n\r\nzz\r\n\r\n";
      (* after all that abuse, the server still works *)
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
      Alcotest.(check int) "server survives malformed input" 200
        r.Serve.Client.status)

(* --- fuzz ---------------------------------------------------------------- *)

let base_request =
  Printf.sprintf
    "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
     application/x-hyperbench\r\nContent-Length: %d\r\n\r\n%s"
    (String.length triangle) triangle

let mutate case =
  let s = Bytes.of_string base_request in
  match case mod 6 with
  | 0 ->
      (* truncate *)
      Bytes.sub_string s 0 (1 + rand (Bytes.length s - 1))
  | 1 ->
      (* flip 1-4 bytes *)
      for _ = 0 to rand 4 do
        Bytes.set s (rand (Bytes.length s)) (Char.chr (rand 256))
      done;
      Bytes.to_string s
  | 2 ->
      (* garbage prefix *)
      String.init (1 + rand 64) (fun _ -> Char.chr (rand 256))
      ^ Bytes.to_string s
  | 3 ->
      (* mangled content-length *)
      let cl =
        match rand 4 with
        | 0 -> "99999999999999999999999999"
        | 1 -> "-17"
        | 2 -> "0x10"
        | _ -> "1e3"
      in
      Printf.sprintf
        "POST /decompose HTTP/1.1\r\nContent-Length: %s\r\n\r\n%s" cl
        triangle
  | 4 ->
      (* broken chunked framing *)
      let sz =
        match rand 4 with
        | 0 -> "fffffffff"
        | 1 -> "-1"
        | 2 -> ""
        | _ -> Printf.sprintf "%x" (rand 32)
      in
      Printf.sprintf
        "POST /decompose HTTP/1.1\r\nTransfer-Encoding: \
         chunked\r\n\r\n%s\r\n%s"
        sz
        (String.sub triangle 0 (rand (String.length triangle)))
  | _ ->
      (* pathological request line *)
      let meth = String.make (1 + rand 64) (Char.chr (65 + rand 26)) in
      Printf.sprintf "%s /%s HTTP/1.%d\r\n\r\n" meth
        (String.init (rand 32) (fun _ -> Char.chr (32 + rand 96)))
        (rand 10)

let fuzz_corpus () =
  with_server (fun port ->
      for case = 0 to 299 do
        let raw = mutate case in
        match Serve.Client.connect ~timeout:5.0 ~host ~port () with
        | exception Unix.Unix_error (e, _, _) ->
            Alcotest.failf "case %d: daemon stopped accepting (%s)" case
              (Unix.error_message e)
        | c ->
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () ->
                (try Serve.Client.write_raw c raw
                 with Unix.Unix_error _ -> () (* early reset is a fine answer *));
                Serve.Client.shutdown_send c;
                (* any response or a clean close is acceptable; a stall
                   (client timeout) is not *)
                match Serve.Client.read_response c with
                | Ok _ | Error "closed" -> ()
                | Error m when m <> "timeout" -> ()
                | Error m -> Alcotest.failf "case %d: daemon stalled (%s)" case m)
      done;
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
      Alcotest.(check int) "daemon alive after 300 mangled requests" 200
        r.Serve.Client.status)

(* --- result cache ------------------------------------------------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hb_serve_cache_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let cache_end_to_end () =
  with_cache_dir (fun dir ->
      let svc =
        {
          svc_default with
          Benchlib.Service.cache = Some (Benchlib.Result_cache.create ~dir);
        }
      in
      with_server ~svc (fun port ->
          let before = Kit.Metrics.get (Kit.Metrics.snapshot ()) "cache.hit" in
          let post () =
            get_ok
              (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
                 ~body:triangle "POST" (decompose_target 2))
          in
          let first = post () in
          Alcotest.(check int) "first status" 200 first.Serve.Client.status;
          Alcotest.(check (option string)) "first is a miss" (Some "miss")
            (List.assoc_opt "x-hb-cache" first.Serve.Client.headers);
          let second = post () in
          Alcotest.(check (option string)) "second is a hit" (Some "hit")
            (List.assoc_opt "x-hb-cache" second.Serve.Client.headers);
          Alcotest.(check string) "hit body is byte-identical"
            first.Serve.Client.body second.Serve.Client.body;
          let after = Kit.Metrics.get (Kit.Metrics.snapshot ()) "cache.hit" in
          Alcotest.(check bool) "cache.hit ticked" true (after > before)))

(* --- leaks --------------------------------------------------------------- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

(* Satellite: no fd or worker leak across 1,000 sequential requests.
   Fresh connection per request — the shape that leaks if any accept,
   register or close path forgets an fd. The server runs in-process, so
   both client- and server-side descriptors are counted here. *)
let fd_leak_loop () =
  with_server (fun port ->
      let target = decompose_target 2 ~extra:"&fuel=200" in
      let one () =
        let r =
          get_ok
            (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
               ~body:triangle "POST" target)
        in
        Alcotest.(check int) "leak-loop request ok" 200 r.Serve.Client.status
      in
      (* warm up allocator-level fds (epoll, etc.) before baselining *)
      for _ = 1 to 20 do one () done;
      let before = count_fds () in
      for _ = 1 to 1000 do one () done;
      (* closed sockets linger briefly in TIME_WAIT but their fds must
         be gone; allow a little slack for transient accepts in flight *)
      let after = count_fds () in
      if after > before + 8 then
        Alcotest.failf "fd leak: %d before, %d after 1000 requests" before
          after)

let no_worker_leak_under_isolation () =
  let svc = { svc_default with Benchlib.Service.isolate = true } in
  with_server ~svc (fun port ->
      let target = decompose_target 2 ~extra:"&fuel=200" in
      for _ = 1 to 30 do
        let r =
          get_ok
            (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
               ~body:triangle "POST" target)
        in
        Alcotest.(check int) "isolated request ok" 200 r.Serve.Client.status
      done;
      (* every forked sandbox worker must be reaped: no zombies left *)
      (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | 0, _ -> Alcotest.fail "sandbox worker still running after requests"
      | pid, _ -> Alcotest.failf "unreaped sandbox worker %d (zombie)" pid);
      let before = count_fds () in
      for _ = 1 to 30 do
        let r =
          get_ok
            (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
               ~body:triangle "POST" target)
        in
        Alcotest.(check int) "isolated request ok" 200 r.Serve.Client.status
      done;
      let after = count_fds () in
      if after > before + 8 then
        Alcotest.failf "fd leak under isolation: %d -> %d" before after)

(* --- admission control --------------------------------------------------- *)

(* Occupy workers deterministically: send request heads whose bodies
   never complete, so each connection pins one worker in a body read
   (up to the server's mid-read stall budget) without depending on
   solver timing. *)
let occupy ~host ~port n =
  List.init n (fun _ ->
      let c = Serve.Client.connect ~host ~port () in
      Serve.Client.write_raw c
        (Printf.sprintf
           "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
            application/x-hyperbench\r\nContent-Length: %d\r\n\r\n"
           (String.length triangle));
      c)

let queue_full_429 () =
  let cfg = { (base_cfg ()) with Serve.Server.jobs = 1; queue = 1 } in
  with_server ~cfg (fun port ->
      (* worker pinned by an incomplete body; next connection fills the
         queue; everything after that must be turned away inline *)
      let pinned = occupy ~host ~port 2 in
      Fun.protect
        ~finally:(fun () -> List.iter Serve.Client.close pinned)
        (fun () ->
          Thread.delay 0.2;
          let rejected = ref 0 in
          for _ = 1 to 5 do
            match Serve.Client.oneshot ~timeout:2.0 ~host ~port "GET" "/healthz" with
            | Ok r when r.Serve.Client.status = 429 ->
                incr rejected;
                Alcotest.(check bool) "429 carries Retry-After" true
                  (List.mem_assoc "retry-after" r.Serve.Client.headers)
            | Ok _ | Error _ -> ()
          done;
          if !rejected = 0 then
            Alcotest.fail "full admission queue never answered 429";
          (* complete one pinned request: its worker was waiting on the
             body all along and must now answer *)
          let c = List.hd pinned in
          Serve.Client.write_raw c triangle;
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "pinned request completes" 200
            r.Serve.Client.status))

let rate_limit_429 () =
  let cfg = { (base_cfg ()) with Serve.Server.rate = 5.; burst = 5. } in
  with_server ~cfg (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let ok = ref 0 and limited = ref 0 in
          for _ = 1 to 20 do
            match Serve.Client.request c "GET" "/healthz" with
            | Ok r when r.Serve.Client.status = 200 -> incr ok
            | Ok r when r.Serve.Client.status = 429 ->
                Alcotest.(check bool) "rate 429 carries Retry-After" true
                  (List.mem_assoc "retry-after" r.Serve.Client.headers);
                incr limited
            | Ok r -> Alcotest.failf "unexpected status %d" r.Serve.Client.status
            | Error m -> Alcotest.failf "rate-limited request failed: %s" m
          done;
          Alcotest.(check bool) "burst admitted" true (!ok >= 5);
          Alcotest.(check bool) "excess limited" true (!limited >= 10)))

(* --- SIGTERM drain (real binary) ----------------------------------------- *)

let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/hyperbench.exe"

let read_port_line fd =
  (* "hyperbenchd listening on http://127.0.0.1:PORT" *)
  let buf = Buffer.create 64 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "daemon never printed its listening line";
    match Unix.read fd b 0 1 with
    | 0 -> Alcotest.fail "daemon closed stdout before listening"
    | _ ->
        if Bytes.get b 0 = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
  in
  let line = go () in
  match String.rindex_opt line ':' with
  | None -> Alcotest.failf "unparseable listening line: %s" line
  | Some i -> (
      match
        int_of_string_opt
          (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      with
      | Some p -> p
      | None -> Alcotest.failf "unparseable listening line: %s" line)

let sigterm_drain_finishes_in_flight () =
  let out_rd, out_wr = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--port"; "0"; "--timeout"; "5" |]
      Unix.stdin out_wr Unix.stderr
  in
  Unix.close out_wr;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close out_rd with Unix.Unix_error _ -> ());
      (* belt and braces: never leave the daemon behind *)
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      let port = read_port_line out_rd in
      (* park a request mid-body, so it is in flight when SIGTERM lands *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            (Printf.sprintf
               "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
                application/x-hyperbench\r\nContent-Length: %d\r\n\r\n%s"
               (String.length triangle)
               (String.sub triangle 0 10));
          Thread.delay 0.3;
          Unix.kill pid Sys.sigterm;
          Thread.delay 0.3;
          (* the listener must be gone quickly... *)
          (match Serve.Client.connect ~timeout:1.0 ~host ~port () with
          | exception Unix.Unix_error _ -> ()
          | c2 ->
              (* accepted by a lingering backlog: it must at least close
                 without serving *)
              Serve.Client.close c2);
          (* ...but the accepted request still gets its answer *)
          Serve.Client.write_raw c
            (String.sub triangle 10 (String.length triangle - 10));
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "in-flight request answered during drain" 200
            r.Serve.Client.status;
          Alcotest.(check bool) "drain response says close" true
            (List.assoc_opt "connection" r.Serve.Client.headers
            = Some "close"
            || contains "\"verdict\"" r.Serve.Client.body));
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d after drain" n
      | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
          Alcotest.failf "daemon killed by signal %d" n)

let () =
  Alcotest.run "serve"
    [
      ( "routing",
        [
          Alcotest.test_case "healthz and metrics" `Quick healthz_and_metrics;
          Alcotest.test_case "decompose verdicts" `Quick decompose_verdicts;
          Alcotest.test_case "decompose errors" `Quick decompose_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "keep-alive sequencing" `Quick
            keep_alive_sequencing;
          Alcotest.test_case "pipelining" `Quick pipelining;
          Alcotest.test_case "oversized bodies" `Quick oversized_bodies;
          Alcotest.test_case "malformed requests" `Quick malformed_requests;
          Alcotest.test_case "fuzz corpus (300 mangled requests)" `Slow
            fuzz_corpus;
        ] );
      ( "cache",
        [ Alcotest.test_case "end-to-end cache hit" `Quick cache_end_to_end ] );
      ( "leaks",
        [
          Alcotest.test_case "no fd leak across 1000 requests" `Slow
            fd_leak_loop;
          Alcotest.test_case "no worker leak under isolation" `Slow
            no_worker_leak_under_isolation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue full answers 429" `Quick queue_full_429;
          Alcotest.test_case "per-client rate limit" `Quick rate_limit_429;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM finishes in-flight requests" `Slow
            sigterm_drain_finishes_in_flight;
        ] );
    ]
