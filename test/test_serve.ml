(* hyperbenchd protocol conformance, fuzz, cache and leak tests.

   Protocol tests run an in-process server (port 0, worker threads) and
   speak to it over real sockets via [Serve.Client]; the SIGTERM drain
   test exercises the installed binary, signal handler included. The
   fuzz corpus is seeded and self-contained: the daemon must answer or
   close cleanly on every mangled request and still be serving at the
   end. *)

let () = Kit.Metrics.enabled := true

let host = "127.0.0.1"

(* A deterministic LCG so the ~300 fuzz cases are reproducible. *)
let rng = ref 0x48595045

let rand bound =
  rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
  !rng mod bound

let triangle = "e1(a,b),e2(b,c),e3(c,a)."
let hg_type = ("Content-Type", "application/x-hyperbench")

let svc_default =
  {
    Benchlib.Service.cache = None;
    isolate = false;
    mem_mb = None;
    default_timeout = 5.0;
    max_timeout = 10.0;
    max_k = 4;
    supervisor = Serve.Supervisor.create ();
  }

let base_cfg () =
  {
    (Serve.Server.default_config ()) with
    Serve.Server.port = 0;
    jobs = 2;
    queue = 8;
    rate = 0.;
    max_body = 1 lsl 20;
    idle_timeout = 2.0;
  }

let with_server ?(cfg = base_cfg ()) ?(svc = svc_default) f =
  let srv = Serve.Server.create cfg (Benchlib.Service.handler svc) in
  let th = Thread.create (fun () -> Serve.Server.serve srv) () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop srv;
      Thread.join th)
    (fun () -> f (Serve.Server.port srv))

let get_ok = function
  | Ok (r : Serve.Client.response) -> r
  | Error m -> Alcotest.failf "request failed: %s" m

let decompose_target ?(extra = "") k =
  Printf.sprintf "/decompose?k=%d%s" k extra

(* --- routing and verdicts ----------------------------------------------- *)

let healthz_and_metrics () =
  (* fresh supervisor: the exact healthz pin assumes no subsystem has
     been exercised yet *)
  let svc =
    { svc_default with
      Benchlib.Service.supervisor = Serve.Supervisor.create () }
  in
  with_server ~svc (fun port ->
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
      Alcotest.(check int) "healthz status" 200 r.Serve.Client.status;
      Alcotest.(check string) "healthz body" "{\"ok\":true,\"subsystems\":{}}"
        r.Serve.Client.body;
      let m = get_ok (Serve.Client.oneshot ~host ~port "GET" "/metrics") in
      Alcotest.(check int) "metrics status" 200 m.Serve.Client.status;
      let has needle s =
        let nl = String.length needle and sl = String.length s in
        let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "metrics mention serve counters" true
        (has "hb_serve_requests" m.Serve.Client.body))

let contains needle s =
  let nl = String.length needle and sl = String.length s in
  let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
  at 0

let decompose_verdicts () =
  with_server (fun port ->
      let post target body headers =
        get_ok
          (Serve.Client.oneshot ~host ~port ~headers ~body "POST" target)
      in
      (* yes at k=2 *)
      let r = post (decompose_target 2) triangle [ hg_type ] in
      Alcotest.(check int) "k=2 status" 200 r.Serve.Client.status;
      Alcotest.(check bool) "k=2 verdict yes" true
        (contains "\"verdict\":\"yes\"" r.Serve.Client.body);
      Alcotest.(check bool) "k=2 width 2" true
        (contains "\"width\":2" r.Serve.Client.body);
      (* the triangle has no width-1 HD *)
      let r = post (decompose_target 1) triangle [ hg_type ] in
      Alcotest.(check bool) "k=1 verdict no" true
        (contains "\"verdict\":\"no\"" r.Serve.Client.body);
      (* ladder without k finds hw = 2 *)
      let r = post "/decompose" triangle [ hg_type ] in
      Alcotest.(check bool) "ladder verdict yes" true
        (contains "\"verdict\":\"yes\"" r.Serve.Client.body);
      Alcotest.(check bool) "ladder k=2" true
        (contains "\"k\":2" r.Serve.Client.body);
      (* ghd portfolio with explicit k *)
      let r =
        post (decompose_target 2 ~extra:"&method=portfolio") triangle
          [ hg_type ]
      in
      Alcotest.(check int) "portfolio status" 200 r.Serve.Client.status;
      Alcotest.(check bool) "portfolio verdict present" true
        (contains "\"verdict\":" r.Serve.Client.body);
      (* work-stealing balsep (in-process daemon: pinned to one domain,
         fork-safety) answers like the sequential solver *)
      let r =
        post (decompose_target 2 ~extra:"&method=parbalsep") triangle
          [ hg_type ]
      in
      Alcotest.(check int) "parbalsep status" 200 r.Serve.Client.status;
      Alcotest.(check bool) "parbalsep verdict yes" true
        (contains "\"verdict\":\"yes\"" r.Serve.Client.body);
      Alcotest.(check bool) "parbalsep tagged" true
        (contains "\"algorithm\":\"parbalsep\"" r.Serve.Client.body))

let decompose_errors () =
  with_server (fun port ->
      let post target body headers =
        get_ok
          (Serve.Client.oneshot ~host ~port ~headers ~body "POST" target)
      in
      let r = post (decompose_target 2) "e1(a," [ hg_type ] in
      Alcotest.(check int) "garbage HG -> 422" 422 r.Serve.Client.status;
      (* The 422 body is structured: machine-readable positions plus the
         rendered caret report. *)
      (match Kit.Json.of_string r.Serve.Client.body with
      | Error m -> Alcotest.failf "422 body is not JSON: %s" m
      | Ok j -> (
          Alcotest.(check (option string)) "format tagged" (Some "hg")
            (Option.bind (Kit.Json.member "format" j) Kit.Json.string_value);
          match
            Option.bind (Kit.Json.member "diagnostics" j) Kit.Json.to_list
          with
          | Some (d :: _) ->
              Alcotest.(check bool) "diagnostic has a line" true
                (Option.bind (Kit.Json.member "line" d) Kit.Json.to_int <> None)
          | _ -> Alcotest.fail "422 body lacks diagnostics"));
      (* A multiply-broken SQL body reports several positions in one pass. *)
      let bad_sql = "SELECT a FROM t WHERE (b = 1;\nSELECT FROM WHERE;\n" in
      let r =
        post (decompose_target 2) bad_sql
          [ ("Content-Type", "application/sql") ]
      in
      Alcotest.(check int) "broken SQL -> 422" 422 r.Serve.Client.status;
      (match Kit.Json.of_string r.Serve.Client.body with
      | Error m -> Alcotest.failf "SQL 422 body is not JSON: %s" m
      | Ok j -> (
          match
            Option.bind (Kit.Json.member "diagnostics" j) Kit.Json.to_list
          with
          | Some ds ->
              Alcotest.(check bool) "several diagnostics" true
                (List.length ds >= 2)
          | None -> Alcotest.fail "SQL 422 body lacks diagnostics"));
      let r =
        post (decompose_target 2) triangle
          [ ("Content-Type", "application/x-tar") ]
      in
      Alcotest.(check int) "unknown content type -> 415" 415
        r.Serve.Client.status;
      let r =
        post (decompose_target 2 ~extra:"&method=frobnicate") triangle
          [ hg_type ]
      in
      Alcotest.(check int) "unknown method -> 400" 400 r.Serve.Client.status;
      let r = post "/decompose?method=balsep" triangle [ hg_type ] in
      Alcotest.(check int) "balsep without k -> 400" 400
        r.Serve.Client.status;
      let r = post "/decompose?k=0" triangle [ hg_type ] in
      Alcotest.(check int) "k=0 -> 400" 400 r.Serve.Client.status;
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/nope") in
      Alcotest.(check int) "unknown path -> 404" 404 r.Serve.Client.status;
      let r = get_ok (Serve.Client.oneshot ~host ~port "PUT" "/healthz") in
      Alcotest.(check int) "wrong method -> 405" 405 r.Serve.Client.status;
      Alcotest.(check (option string)) "405 carries Allow" (Some "GET")
        (List.assoc_opt "allow" r.Serve.Client.headers))

(* --- keep-alive and pipelining ------------------------------------------ *)

let keep_alive_sequencing () =
  with_server (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          for i = 1 to 5 do
            let r =
              get_ok
                (Serve.Client.request c ~headers:[ hg_type ] ~body:triangle
                   "POST" (decompose_target 2))
            in
            Alcotest.(check int)
              (Printf.sprintf "request %d on one connection" i)
              200 r.Serve.Client.status;
            Alcotest.(check (option string)) "keep-alive honoured"
              (Some "keep-alive")
              (List.assoc_opt "connection" r.Serve.Client.headers)
          done))

let pipelining () =
  with_server (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* three requests in one write; responses must come back in
             order, bodies intact *)
          let one = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
          Serve.Client.write_raw c (one ^ one ^ one);
          for i = 1 to 3 do
            let r = get_ok (Serve.Client.read_response c) in
            Alcotest.(check int)
              (Printf.sprintf "pipelined response %d" i)
              200 r.Serve.Client.status;
            Alcotest.(check bool) "pipelined body" true
              (contains "{\"ok\":true" r.Serve.Client.body)
          done))

(* --- limits -------------------------------------------------------------- *)

let oversized_bodies () =
  let cfg = { (base_cfg ()) with Serve.Server.max_body = 4096 } in
  with_server ~cfg (fun port ->
      (* content-length over the cap: rejected before the body uploads *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            "POST /decompose HTTP/1.1\r\nHost: x\r\nContent-Length: 10000\r\n\r\n";
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "oversized content-length -> 413" 413
            r.Serve.Client.status);
      (* chunked body growing past the cap *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            "POST /decompose HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: \
             chunked\r\n\r\n";
          (try
             for _ = 1 to 10 do
               Serve.Client.write_raw c
                 (Printf.sprintf "400\r\n%s\r\n" (String.make 1024 'a'))
             done
           with Unix.Unix_error _ -> () (* server already answered *));
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "oversized chunked body -> 413" 413
            r.Serve.Client.status);
      (* an oversized head is 431 *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            (Printf.sprintf "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pad: %s\r\n\r\n"
               (String.make 20000 'p'));
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "oversized head -> 431" 431
            r.Serve.Client.status))

let malformed_requests () =
  with_server (fun port ->
      let expect_400 name raw =
        let c = Serve.Client.connect ~host ~port () in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            Serve.Client.write_raw c raw;
            Serve.Client.shutdown_send c;
            match Serve.Client.read_response c with
            | Ok r ->
                Alcotest.(check int) (name ^ " -> 400") 400
                  r.Serve.Client.status
            | Error m -> Alcotest.failf "%s: no response (%s)" name m)
      in
      expect_400 "garbage request line" "NOT A REQUEST\r\n\r\n";
      expect_400 "lowercase method" "get /healthz HTTP/1.1\r\n\r\n";
      expect_400 "bad version" "GET /healthz HTTP/9.9\r\n\r\n";
      expect_400 "relative target" "GET healthz HTTP/1.1\r\n\r\n";
      expect_400 "header without colon"
        "GET /healthz HTTP/1.1\r\nHost x\r\n\r\n";
      expect_400 "obsolete folding"
        "GET /healthz HTTP/1.1\r\nHost: x\r\n  folded\r\n\r\n";
      expect_400 "conflicting content-lengths"
        "POST /decompose HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: \
         5\r\n\r\nabcd";
      expect_400 "negative content-length"
        "POST /decompose HTTP/1.1\r\nContent-Length: -4\r\n\r\n";
      expect_400 "chunked and content-length"
        "POST /decompose HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: \
         chunked\r\n\r\n0\r\n\r\n";
      expect_400 "bad chunk size"
        "POST /decompose HTTP/1.1\r\nTransfer-Encoding: \
         chunked\r\n\r\nzz\r\n\r\n";
      (* after all that abuse, the server still works *)
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
      Alcotest.(check int) "server survives malformed input" 200
        r.Serve.Client.status)

(* --- fuzz ---------------------------------------------------------------- *)

let base_request =
  Printf.sprintf
    "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
     application/x-hyperbench\r\nContent-Length: %d\r\n\r\n%s"
    (String.length triangle) triangle

let mutate case =
  let s = Bytes.of_string base_request in
  match case mod 6 with
  | 0 ->
      (* truncate *)
      Bytes.sub_string s 0 (1 + rand (Bytes.length s - 1))
  | 1 ->
      (* flip 1-4 bytes *)
      for _ = 0 to rand 4 do
        Bytes.set s (rand (Bytes.length s)) (Char.chr (rand 256))
      done;
      Bytes.to_string s
  | 2 ->
      (* garbage prefix *)
      String.init (1 + rand 64) (fun _ -> Char.chr (rand 256))
      ^ Bytes.to_string s
  | 3 ->
      (* mangled content-length *)
      let cl =
        match rand 4 with
        | 0 -> "99999999999999999999999999"
        | 1 -> "-17"
        | 2 -> "0x10"
        | _ -> "1e3"
      in
      Printf.sprintf
        "POST /decompose HTTP/1.1\r\nContent-Length: %s\r\n\r\n%s" cl
        triangle
  | 4 ->
      (* broken chunked framing *)
      let sz =
        match rand 4 with
        | 0 -> "fffffffff"
        | 1 -> "-1"
        | 2 -> ""
        | _ -> Printf.sprintf "%x" (rand 32)
      in
      Printf.sprintf
        "POST /decompose HTTP/1.1\r\nTransfer-Encoding: \
         chunked\r\n\r\n%s\r\n%s"
        sz
        (String.sub triangle 0 (rand (String.length triangle)))
  | _ ->
      (* pathological request line *)
      let meth = String.make (1 + rand 64) (Char.chr (65 + rand 26)) in
      Printf.sprintf "%s /%s HTTP/1.%d\r\n\r\n" meth
        (String.init (rand 32) (fun _ -> Char.chr (32 + rand 96)))
        (rand 10)

let fuzz_corpus () =
  with_server (fun port ->
      for case = 0 to 299 do
        let raw = mutate case in
        match Serve.Client.connect ~timeout:5.0 ~host ~port () with
        | exception Unix.Unix_error (e, _, _) ->
            Alcotest.failf "case %d: daemon stopped accepting (%s)" case
              (Unix.error_message e)
        | c ->
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () ->
                (try Serve.Client.write_raw c raw
                 with Unix.Unix_error _ -> () (* early reset is a fine answer *));
                Serve.Client.shutdown_send c;
                (* any response or a clean close is acceptable; a stall
                   (client timeout) is not *)
                match Serve.Client.read_response c with
                | Ok _ | Error "closed" -> ()
                | Error m when m <> "timeout" -> ()
                | Error m -> Alcotest.failf "case %d: daemon stalled (%s)" case m)
      done;
      let r = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
      Alcotest.(check int) "daemon alive after 300 mangled requests" 200
        r.Serve.Client.status)

(* --- result cache ------------------------------------------------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hb_serve_cache_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let cache_end_to_end () =
  with_cache_dir (fun dir ->
      let svc =
        {
          svc_default with
          Benchlib.Service.cache = Some (Benchlib.Result_cache.create ~dir);
        }
      in
      with_server ~svc (fun port ->
          let before = Kit.Metrics.get (Kit.Metrics.snapshot ()) "cache.hit" in
          let post () =
            get_ok
              (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
                 ~body:triangle "POST" (decompose_target 2))
          in
          let first = post () in
          Alcotest.(check int) "first status" 200 first.Serve.Client.status;
          Alcotest.(check (option string)) "first is a miss" (Some "miss")
            (List.assoc_opt "x-hb-cache" first.Serve.Client.headers);
          let second = post () in
          Alcotest.(check (option string)) "second is a hit" (Some "hit")
            (List.assoc_opt "x-hb-cache" second.Serve.Client.headers);
          Alcotest.(check string) "hit body is byte-identical"
            first.Serve.Client.body second.Serve.Client.body;
          let after = Kit.Metrics.get (Kit.Metrics.snapshot ()) "cache.hit" in
          Alcotest.(check bool) "cache.hit ticked" true (after > before)))

(* --- leaks --------------------------------------------------------------- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

(* Satellite: no fd or worker leak across 1,000 sequential requests.
   Fresh connection per request — the shape that leaks if any accept,
   register or close path forgets an fd. The server runs in-process, so
   both client- and server-side descriptors are counted here. *)
let fd_leak_loop () =
  with_server (fun port ->
      let target = decompose_target 2 ~extra:"&fuel=200" in
      let one () =
        let r =
          get_ok
            (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
               ~body:triangle "POST" target)
        in
        Alcotest.(check int) "leak-loop request ok" 200 r.Serve.Client.status
      in
      (* warm up allocator-level fds (epoll, etc.) before baselining *)
      for _ = 1 to 20 do one () done;
      let before = count_fds () in
      for _ = 1 to 1000 do one () done;
      (* closed sockets linger briefly in TIME_WAIT but their fds must
         be gone; allow a little slack for transient accepts in flight *)
      let after = count_fds () in
      if after > before + 8 then
        Alcotest.failf "fd leak: %d before, %d after 1000 requests" before
          after)

let no_worker_leak_under_isolation () =
  let svc = { svc_default with Benchlib.Service.isolate = true } in
  with_server ~svc (fun port ->
      let target = decompose_target 2 ~extra:"&fuel=200" in
      for _ = 1 to 30 do
        let r =
          get_ok
            (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
               ~body:triangle "POST" target)
        in
        Alcotest.(check int) "isolated request ok" 200 r.Serve.Client.status
      done;
      (* every forked sandbox worker must be reaped: no zombies left *)
      (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | 0, _ -> Alcotest.fail "sandbox worker still running after requests"
      | pid, _ -> Alcotest.failf "unreaped sandbox worker %d (zombie)" pid);
      let before = count_fds () in
      for _ = 1 to 30 do
        let r =
          get_ok
            (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ]
               ~body:triangle "POST" target)
        in
        Alcotest.(check int) "isolated request ok" 200 r.Serve.Client.status
      done;
      let after = count_fds () in
      if after > before + 8 then
        Alcotest.failf "fd leak under isolation: %d -> %d" before after)

(* --- admission control --------------------------------------------------- *)

(* Occupy workers deterministically: send request heads whose bodies
   never complete, so each connection pins one worker in a body read
   (up to the server's mid-read stall budget) without depending on
   solver timing. *)
let occupy ~host ~port n =
  List.init n (fun _ ->
      let c = Serve.Client.connect ~host ~port () in
      Serve.Client.write_raw c
        (Printf.sprintf
           "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
            application/x-hyperbench\r\nContent-Length: %d\r\n\r\n"
           (String.length triangle));
      c)

let queue_full_429 () =
  let cfg = { (base_cfg ()) with Serve.Server.jobs = 1; queue = 1 } in
  with_server ~cfg (fun port ->
      (* worker pinned by an incomplete body; next connection fills the
         queue; everything after that must be turned away inline *)
      let pinned = occupy ~host ~port 2 in
      Fun.protect
        ~finally:(fun () -> List.iter Serve.Client.close pinned)
        (fun () ->
          Thread.delay 0.2;
          let rejected = ref 0 in
          for _ = 1 to 5 do
            match Serve.Client.oneshot ~timeout:2.0 ~host ~port "GET" "/healthz" with
            | Ok r when r.Serve.Client.status = 429 ->
                incr rejected;
                (* derived from queue depth / drain rate: an integer in
                   the estimator's clamp range *)
                (match
                   List.assoc_opt "retry-after" r.Serve.Client.headers
                 with
                | None -> Alcotest.fail "queue-full 429 missing Retry-After"
                | Some v -> (
                    match int_of_string_opt v with
                    | Some ra when ra >= 1 && ra <= 60 -> ()
                    | _ -> Alcotest.failf "bad queue-full Retry-After %S" v))
            | Ok _ | Error _ -> ()
          done;
          if !rejected = 0 then
            Alcotest.fail "full admission queue never answered 429";
          (* complete one pinned request: its worker was waiting on the
             body all along and must now answer *)
          let c = List.hd pinned in
          Serve.Client.write_raw c triangle;
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "pinned request completes" 200
            r.Serve.Client.status))

let rate_limit_429 () =
  let cfg = { (base_cfg ()) with Serve.Server.rate = 5.; burst = 5. } in
  with_server ~cfg (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let ok = ref 0 and limited = ref 0 in
          for _ = 1 to 20 do
            match Serve.Client.request c "GET" "/healthz" with
            | Ok r when r.Serve.Client.status = 200 -> incr ok
            | Ok r when r.Serve.Client.status = 429 ->
                Alcotest.(check bool) "rate 429 carries Retry-After" true
                  (List.mem_assoc "retry-after" r.Serve.Client.headers);
                incr limited
            | Ok r -> Alcotest.failf "unexpected status %d" r.Serve.Client.status
            | Error m -> Alcotest.failf "rate-limited request failed: %s" m
          done;
          Alcotest.(check bool) "burst admitted" true (!ok >= 5);
          Alcotest.(check bool) "excess limited" true (!limited >= 10)))

(* --- SIGTERM drain (real binary) ----------------------------------------- *)

let exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/hyperbench.exe"

let read_port_line fd =
  (* "hyperbenchd listening on http://127.0.0.1:PORT" *)
  let buf = Buffer.create 64 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "daemon never printed its listening line";
    match Unix.read fd b 0 1 with
    | 0 -> Alcotest.fail "daemon closed stdout before listening"
    | _ ->
        if Bytes.get b 0 = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
  in
  let line = go () in
  match String.rindex_opt line ':' with
  | None -> Alcotest.failf "unparseable listening line: %s" line
  | Some i -> (
      match
        int_of_string_opt
          (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      with
      | Some p -> p
      | None -> Alcotest.failf "unparseable listening line: %s" line)

let sigterm_drain_finishes_in_flight () =
  let out_rd, out_wr = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--port"; "0"; "--timeout"; "5" |]
      Unix.stdin out_wr Unix.stderr
  in
  Unix.close out_wr;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close out_rd with Unix.Unix_error _ -> ());
      (* belt and braces: never leave the daemon behind *)
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      let port = read_port_line out_rd in
      (* park a request mid-body, so it is in flight when SIGTERM lands *)
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            (Printf.sprintf
               "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
                application/x-hyperbench\r\nContent-Length: %d\r\n\r\n%s"
               (String.length triangle)
               (String.sub triangle 0 10));
          Thread.delay 0.3;
          Unix.kill pid Sys.sigterm;
          Thread.delay 0.3;
          (* the listener must be gone quickly... *)
          (match Serve.Client.connect ~timeout:1.0 ~host ~port () with
          | exception Unix.Unix_error _ -> ()
          | c2 ->
              (* accepted by a lingering backlog: it must at least close
                 without serving *)
              Serve.Client.close c2);
          (* ...but the accepted request still gets its answer *)
          Serve.Client.write_raw c
            (String.sub triangle 10 (String.length triangle - 10));
          let r = get_ok (Serve.Client.read_response c) in
          Alcotest.(check int) "in-flight request answered during drain" 200
            r.Serve.Client.status;
          Alcotest.(check bool) "drain response says close" true
            (List.assoc_opt "connection" r.Serve.Client.headers
            = Some "close"
            || contains "\"verdict\"" r.Serve.Client.body));
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d after drain" n
      | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
          Alcotest.failf "daemon killed by signal %d" n)

(* --- robustness: faults, breaker, retry, deadlines ----------------------- *)

let with_faults spec f =
  (match Kit.Fault.configure spec with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Kit.Fault.clear f

(* Satellite: Serve.Client.connect must close its socket on every failure
   path. Hammer a port that refuses connections and check the process fd
   table stays flat — the shape that leaks one fd per retry if connect
   ever raises past an open socket. *)
let connect_failure_fd_loop () =
  let probe = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind probe (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname probe with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> 0
  in
  Unix.close probe;
  let before = count_fds () in
  for _ = 1 to 200 do
    match Serve.Client.connect ~host ~port () with
    | exception Unix.Unix_error _ -> ()
    | c -> Serve.Client.close c (* port got reused; still must not leak *)
  done;
  (* the retrying client goes through the same connect path per attempt *)
  (match
     Serve.Client.request_retry ~retries:3 ~base_delay:0.005 ~deadline:2.0
       ~host ~port "GET" "/healthz"
   with
  | Ok r -> Alcotest.failf "closed port answered %d" r.Serve.Client.status
  | Error _ -> ());
  let after = count_fds () in
  if after > before + 2 then
    Alcotest.failf "connect leaked fds: %d before, %d after" before after

(* Satellite: the mid-request stall budget is configurable and enforced —
   a slowloris body gets its 408 on the configured clock, not the old
   hardcoded 10 s one. *)
let slowloris_mid_read_408 () =
  let cfg = { (base_cfg ()) with Serve.Server.mid_read_timeout = 0.3 } in
  with_server ~cfg (fun port ->
      let c = Serve.Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          Serve.Client.write_raw c
            (Printf.sprintf
               "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
                application/x-hyperbench\r\nContent-Length: %d\r\n\r\n%s"
               (String.length triangle)
               (String.sub triangle 0 8));
          let t0 = Unix.gettimeofday () in
          let r = get_ok (Serve.Client.read_response c) in
          let took = Unix.gettimeofday () -. t0 in
          Alcotest.(check int) "stalled body answered 408" 408
            r.Serve.Client.status;
          if took > 5.0 then
            Alcotest.failf "408 took %.1fs despite 0.3s budget" took))

(* Satellite: queue-full Retry-After is computed from queue depth and
   drain rate. Exact pins on the pure estimator, and a range check on
   the wire. *)
let retry_after_estimate_pins () =
  let est ~queue_len ~rate = Serve.Server.retry_after_estimate ~queue_len ~rate in
  Alcotest.(check int) "8 queued at 4/s" 3 (est ~queue_len:8 ~rate:4.0);
  Alcotest.(check int) "empty queue still waits a beat" 1
    (est ~queue_len:0 ~rate:10.0);
  Alcotest.(check int) "exact division rounds up from the +1" 3
    (est ~queue_len:9 ~rate:4.0);
  Alcotest.(check int) "collapsed rate is honest worst case" 60
    (est ~queue_len:3 ~rate:0.0);
  Alcotest.(check int) "clamped above" 60 (est ~queue_len:100_000 ~rate:1.0);
  Alcotest.(check int) "clamped below" 1 (est ~queue_len:0 ~rate:1_000_000.)

(* Satellite: SIGTERM while one client is mid-body-stalled. The drain
   must answer the well-behaved in-flight request, cut the stalled one
   loose within drain_grace, and join — not sit out the 30 s stall
   budget. *)
let drain_under_chaos () =
  let cfg =
    { (base_cfg ()) with
      Serve.Server.jobs = 2;
      drain_grace = 0.6;
      mid_read_timeout = 30.0 }
  in
  let srv = Serve.Server.create cfg (Benchlib.Service.handler svc_default) in
  let th = Thread.create (fun () -> Serve.Server.serve srv) () in
  let port = Serve.Server.port srv in
  let head n =
    Printf.sprintf
      "POST /decompose?k=2 HTTP/1.1\r\nHost: x\r\nContent-Type: \
       application/x-hyperbench\r\nContent-Length: %d\r\n\r\n%s"
      (String.length triangle)
      (String.sub triangle 0 n)
  in
  let stalled = Serve.Client.connect ~host ~port () in
  let good = Serve.Client.connect ~host ~port () in
  Fun.protect
    ~finally:(fun () ->
      Serve.Client.close stalled;
      Serve.Client.close good)
    (fun () ->
      Serve.Client.write_raw stalled (head 8);
      Serve.Client.write_raw good (head 10);
      Thread.delay 0.3; (* both workers parked in body reads *)
      Serve.Server.stop srv;
      let t0 = Unix.gettimeofday () in
      (* the cooperative client finishes its upload promptly *)
      Serve.Client.write_raw good
        (String.sub triangle 10 (String.length triangle - 10));
      let r = get_ok (Serve.Client.read_response good) in
      Alcotest.(check int) "well-behaved in-flight request answered" 200
        r.Serve.Client.status;
      Thread.join th;
      let took = Unix.gettimeofday () -. t0 in
      (* grace 0.6s + poll slices + slack, never the 30s stall budget *)
      if took > 5.0 then
        Alcotest.failf "drain took %.1fs with a stalled client" took;
      (* the stalled connection was timed out, not served *)
      match Serve.Client.read_response stalled with
      | Error _ -> ()
      | Ok r ->
          Alcotest.(check int) "stalled client got the timeout answer" 408
            r.Serve.Client.status)

let square = "e1(a,b),e2(b,c),e3(c,d),e4(d,a)."

(* Tentpole: worker crashes open the breaker; while open, cached
   fingerprints still answer 200 byte-identically and everything else
   gets an honest 503 + Retry-After; the half-open probe closes it. *)
let breaker_degrades_and_recovers () =
  with_cache_dir (fun dir ->
      let svc =
        { svc_default with
          Benchlib.Service.cache = Some (Benchlib.Result_cache.create ~dir);
          supervisor =
            Serve.Supervisor.create ~threshold:2 ~cooldown:0.3 ~retries:0 ()
        }
      in
      with_server ~svc (fun port ->
          let post body =
            get_ok
              (Serve.Client.oneshot ~host ~port ~headers:[ hg_type ] ~body
                 "POST" (decompose_target 2))
          in
          (* warm the cache while healthy *)
          let healthy = post triangle in
          Alcotest.(check int) "healthy solve" 200 healthy.Serve.Client.status;
          with_faults "kill@serve.worker:p1.0:s1" (fun () ->
              (* two consecutive crashes trip the threshold-2 breaker;
                 both must be honest 503s with Retry-After *)
              for i = 1 to 2 do
                let r = post square in
                Alcotest.(check int)
                  (Printf.sprintf "crash %d answers 503" i)
                  503 r.Serve.Client.status;
                Alcotest.(check bool)
                  (Printf.sprintf "crash %d carries Retry-After" i)
                  true
                  (List.mem_assoc "retry-after" r.Serve.Client.headers)
              done;
              (* open: cached fingerprint still served, byte-identical *)
              let degraded = post triangle in
              Alcotest.(check int) "degraded cache hit" 200
                degraded.Serve.Client.status;
              Alcotest.(check (option string)) "marked degraded"
                (Some "cache")
                (List.assoc_opt "x-hb-degraded" degraded.Serve.Client.headers);
              Alcotest.(check string) "degraded body byte-identical"
                healthy.Serve.Client.body degraded.Serve.Client.body;
              (* open: cache miss is refused honestly, without solving *)
              let miss = post square in
              Alcotest.(check int) "open breaker rejects misses" 503
                miss.Serve.Client.status;
              Alcotest.(check bool) "rejection carries Retry-After" true
                (List.mem_assoc "retry-after" miss.Serve.Client.headers);
              let hz =
                get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz")
              in
              Alcotest.(check bool) "healthz reports the open breaker" true
                (contains "\"ok\":false" hz.Serve.Client.body
                && contains "\"solver\":\"open\"" hz.Serve.Client.body));
          (* faults gone, cooldown over: the half-open probe heals it *)
          Thread.delay 0.4;
          let probe = post square in
          Alcotest.(check int) "probe request solves and closes" 200
            probe.Serve.Client.status;
          let hz = get_ok (Serve.Client.oneshot ~host ~port "GET" "/healthz") in
          Alcotest.(check bool) "healthz healthy again" true
            (contains "\"ok\":true" hz.Serve.Client.body
            && contains "\"solver\":\"closed\"" hz.Serve.Client.body);
          (* the episode is visible in /metrics *)
          let m = get_ok (Serve.Client.oneshot ~host ~port "GET" "/metrics") in
          Alcotest.(check bool) "breaker transitions exported" true
            (contains "hb_serve_breaker_solver_opened" m.Serve.Client.body
            && contains "hb_serve_breaker_solver_rejected" m.Serve.Client.body)))

(* Tentpole: a torn response (server writes a prefix then hard-closes)
   is recovered by the retrying client without the caller noticing. *)
let request_retry_survives_torn () =
  with_server (fun port ->
      with_faults "torn@serve.write:1" (fun () ->
          match
            Serve.Client.request_retry ~headers:[ hg_type ] ~body:triangle
              ~retries:3 ~base_delay:0.01 ~deadline:10.0 ~host ~port "POST"
              (decompose_target 2)
          with
          | Error m -> Alcotest.failf "retry client gave up: %s" m
          | Ok r ->
              Alcotest.(check int) "recovered after torn response" 200
                r.Serve.Client.status;
              Alcotest.(check bool) "full body arrived" true
                (contains "\"verdict\":\"yes\"" r.Serve.Client.body)))

(* Tentpole: the server enforces the client's advertised deadline. *)
let expired_deadline_504 () =
  with_server (fun port ->
      let r =
        get_ok
          (Serve.Client.oneshot ~host ~port
             ~headers:[ hg_type; ("X-HB-Deadline", "0") ]
             ~body:triangle "POST" (decompose_target 2))
      in
      Alcotest.(check int) "expired deadline refused" 504
        r.Serve.Client.status;
      (* a live deadline passes through *)
      let ok =
        get_ok
          (Serve.Client.oneshot ~host ~port
             ~headers:[ hg_type; ("X-HB-Deadline", "5.000") ]
             ~body:triangle "POST" (decompose_target 2))
      in
      Alcotest.(check int) "live deadline solves" 200 ok.Serve.Client.status)

let () =
  Alcotest.run "serve"
    [
      ( "routing",
        [
          Alcotest.test_case "healthz and metrics" `Quick healthz_and_metrics;
          Alcotest.test_case "decompose verdicts" `Quick decompose_verdicts;
          Alcotest.test_case "decompose errors" `Quick decompose_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "keep-alive sequencing" `Quick
            keep_alive_sequencing;
          Alcotest.test_case "pipelining" `Quick pipelining;
          Alcotest.test_case "oversized bodies" `Quick oversized_bodies;
          Alcotest.test_case "malformed requests" `Quick malformed_requests;
          Alcotest.test_case "fuzz corpus (300 mangled requests)" `Slow
            fuzz_corpus;
        ] );
      ( "cache",
        [ Alcotest.test_case "end-to-end cache hit" `Quick cache_end_to_end ] );
      ( "leaks",
        [
          Alcotest.test_case "no fd leak across 1000 requests" `Slow
            fd_leak_loop;
          Alcotest.test_case "no worker leak under isolation" `Slow
            no_worker_leak_under_isolation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue full answers 429" `Quick queue_full_429;
          Alcotest.test_case "per-client rate limit" `Quick rate_limit_429;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM finishes in-flight requests" `Slow
            sigterm_drain_finishes_in_flight;
          Alcotest.test_case "drain under chaos (stalled client)" `Slow
            drain_under_chaos;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "connect failures leak no fds" `Quick
            connect_failure_fd_loop;
          Alcotest.test_case "slowloris 408 on configured budget" `Quick
            slowloris_mid_read_408;
          Alcotest.test_case "retry-after estimate pins" `Quick
            retry_after_estimate_pins;
          Alcotest.test_case "breaker degrades and recovers" `Slow
            breaker_degrades_and_recovers;
          Alcotest.test_case "request_retry survives torn response" `Quick
            request_retry_survives_torn;
          Alcotest.test_case "expired client deadline answers 504" `Quick
            expired_deadline_504;
        ] );
    ]
