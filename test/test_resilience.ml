(* End-to-end resilience tests for the fault-tolerant campaign runner:
   seeded fault injection, crash containment in the analysis and the GHD
   portfolio, and journal-based kill-and-resume.

   Everything runs under a fuel budget, so verdicts, counters and table
   contents are bit-identical at every jobs value; only measured wall
   seconds vary, and comparisons strip float literals accordingly. *)

module B = Benchlib

let seed = 7
let scale = 0.05
let max_k = 4
let fuel_budget () = Kit.Deadline.of_fuel 20_000

let build () = B.Repository.build ~seed ~scale ()

let with_faults spec f =
  (match Kit.Fault.configure spec with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Kit.Fault.clear f

let with_metrics f =
  Kit.Metrics.reset ();
  Kit.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Kit.Metrics.enabled := false;
      Kit.Metrics.reset ())
    f

(* The budget- and jobs-independent skeleton of a record: everything
   except measured seconds (and the witness object identity — its
   presence is what is pinned). *)
let skeleton (r : B.Analysis.record) =
  ( r.B.Analysis.instance.B.Instance.name,
    r.B.Analysis.profile,
    List.map (fun (x : B.Analysis.hw_run) -> (x.k, x.outcome)) r.B.Analysis.hw_runs,
    r.B.Analysis.hw,
    r.B.Analysis.hd <> None,
    r.B.Analysis.stats.Kit.Metrics.counters )

let strip_floats s = Str.global_replace (Str.regexp "[0-9]+\\.[0-9]+") "#" s

(* --- fault matrix ------------------------------------------------------------ *)

(* Inject a crash and an OOM at two chosen instances; at jobs 1 and 4 the
   campaign must record exactly those two failures and every survivor
   must be bit-identical to the fault-free run — outcomes, profiles and
   per-instance search counters alike. *)
let fault_matrix () =
  with_metrics @@ fun () ->
  let instances = build () in
  let name i = (List.nth instances i).B.Instance.name in
  let crash_at = name 5 and oom_at = name 20 in
  let baseline =
    B.Analysis.analyze_outcomes ~budget:fuel_budget ~max_k ~jobs:1 instances
  in
  List.iter
    (fun (t : B.Analysis.task) ->
      Alcotest.(check bool) "fault-free run is all ok" true
        (Kit.Outcome.is_ok t.B.Analysis.result))
    baseline;
  let spec =
    Printf.sprintf "crash@instance.%s:1;oom@instance.%s:1" crash_at oom_at
  in
  List.iter
    (fun jobs ->
      let tasks =
        with_faults spec (fun () ->
            B.Analysis.analyze_outcomes ~budget:fuel_budget ~max_k ~jobs
              instances)
      in
      Alcotest.(check int) "one task per instance" (List.length instances)
        (List.length tasks);
      let failed =
        List.filter
          (fun (t : B.Analysis.task) ->
            not (Kit.Outcome.is_ok t.B.Analysis.result))
          tasks
      in
      Alcotest.(check int)
        (Printf.sprintf "exactly the 2 injected failures (jobs=%d)" jobs)
        2 (List.length failed);
      List.iter
        (fun (t : B.Analysis.task) ->
          let n = t.B.Analysis.task_instance.B.Instance.name in
          let l = Kit.Outcome.label t.B.Analysis.result in
          if n = crash_at then Alcotest.(check string) n "crash" l
          else if n = oom_at then Alcotest.(check string) n "out_of_memory" l
          else Alcotest.failf "unexpected failure on %s (%s)" n l)
        failed;
      (* Survivors are bit-identical to the fault-free run. *)
      List.iter2
        (fun (b : B.Analysis.task) (t : B.Analysis.task) ->
          match (b.B.Analysis.result, t.B.Analysis.result) with
          | Kit.Outcome.Ok rb, Kit.Outcome.Ok rt ->
              Alcotest.(check bool)
                (rb.B.Analysis.instance.B.Instance.name
                ^ " survivor identical to fault-free run")
                true
                (skeleton rb = skeleton rt)
          | _ -> ())
        baseline tasks)
    [ 1; 4 ]

(* A once-only fault plus one retry with the same budget: the retry must
   succeed and the task end Ok with attempts = 2. *)
let retry_recovers_transient_fault () =
  let instances = build () in
  let victim = (List.nth instances 3).B.Instance.name in
  let tasks =
    with_faults
      (Printf.sprintf "crash@instance.%s:1" victim)
      (fun () ->
        B.Analysis.analyze_outcomes ~budget:fuel_budget ~max_k ~jobs:2
          ~retries:1 instances)
  in
  let t =
    List.find
      (fun (t : B.Analysis.task) ->
        t.B.Analysis.task_instance.B.Instance.name = victim)
      tasks
  in
  Alcotest.(check bool) "retry succeeded" true
    (Kit.Outcome.is_ok t.B.Analysis.result);
  Alcotest.(check int) "two attempts" 2 t.B.Analysis.attempts;
  List.iter
    (fun (t : B.Analysis.task) ->
      if t.B.Analysis.task_instance.B.Instance.name <> victim then
        Alcotest.(check int)
          (t.B.Analysis.task_instance.B.Instance.name ^ " untouched")
          1 t.B.Analysis.attempts)
    tasks

(* --- portfolio degradation ---------------------------------------------------- *)

let fano =
  Hg.Hypergraph.of_int_edges
    [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ]; [ 1; 4; 6 ];
      [ 2; 3; 6 ]; [ 2; 4; 5 ] ]

(* Killing one member must not change the verdict: the survivors still
   decide, and the casualty is counted in portfolio.member_crash. *)
let portfolio_survives_member_kill () =
  with_metrics @@ fun () ->
  let budget () = Kit.Deadline.of_fuel 200_000 in
  let clean = Ghd.Portfolio.check ~budget fano ~k:3 in
  Alcotest.(check bool) "clean run decides" true (clean <> Ghd.Portfolio.All_timeout);
  List.iter
    (fun member ->
      let v =
        with_faults
          (Printf.sprintf "kill@portfolio.%s:1" member)
          (fun () -> Ghd.Portfolio.check ~budget fano ~k:3)
      in
      (* Yes/no must agree with the clean run; the witness/algorithm may
         legitimately differ. *)
      let label = function
        | Ghd.Portfolio.Yes _ -> "yes"
        | Ghd.Portfolio.No _ -> "no"
        | Ghd.Portfolio.All_timeout -> "timeout"
      in
      Alcotest.(check string)
        (member ^ " killed, remaining members still decide")
        (label clean) (label v))
    [ "balsep"; "localbip"; "globalbip" ];
  (* The sequential portfolio stops at the first decisive member, so
     kills aimed at members it never reached cannot fire — but the first
     member always runs, so at least its kill must be on the books. *)
  let snap = Kit.Metrics.snapshot () in
  Alcotest.(check bool) "killed members were counted" true
    (Kit.Metrics.get snap "portfolio.member_crash" >= 1)

(* Racing domains: every member spawns, so the killed one is always
   counted — and losing it must not change the verdict or wedge the
   join. *)
let portfolio_race_survives_member_kill () =
  with_metrics @@ fun () ->
  let budget () = Kit.Deadline.of_fuel 200_000 in
  let v =
    with_faults "kill@portfolio.balsep:1" (fun () ->
        Ghd.Portfolio.race ~budget fano ~k:3)
  in
  Alcotest.(check bool) "race still decides" true (v <> Ghd.Portfolio.All_timeout);
  let snap = Kit.Metrics.snapshot () in
  Alcotest.(check int) "the kill was counted" 1
    (Kit.Metrics.get snap "portfolio.member_crash")

(* --- parser truncation -------------------------------------------------------- *)

let truncated_parse_is_an_error () =
  let dir = Filename.temp_file "hb_trunc" "" in
  Sys.remove dir;
  let instances = List.filteri (fun i _ -> i < 3) (build ()) in
  B.Repository.save ~dir instances;
  (* Truncate the first instance's file mid-stream via the fault site:
     the load must skip it with a warning, not crash or mis-parse. *)
  let r =
    with_faults "truncate@hypergraph.parse:1x7" (fun () ->
        B.Repository.load ~dir)
  in
  (match r with
  | Error m -> Alcotest.fail m
  | Ok { B.Repository.instances = loaded; skipped } ->
      Alcotest.(check int) "one instance lost" (List.length instances - 1)
        (List.length loaded);
      Alcotest.(check int) "one warning" 1 (List.length skipped);
      (match skipped with
      | [ (_, msg) ] ->
          (* The unified Kit.Diag shape: "[file:]line:col: error: ...". *)
          Alcotest.(check bool) "diagnostic carries line:col info" true
            (Str.string_match
               (Str.regexp "\\(.*:\\)?[0-9]+:[0-9]+: error:") msg 0)
      | _ -> Alcotest.fail "expected a single skip entry"));
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir

(* --- journal: kill and resume -------------------------------------------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let campaign ?journal ?(resume = false) ~jobs () =
  match
    Experiments.prepare_campaign ~seed ~scale ~budget:fuel_budget ~max_k ~jobs
      ?journal ~resume ()
  with
  | Ok c -> c
  | Error m -> Alcotest.fail m

(* Everything the campaign renders, normalised for comparison across a
   kill/resume boundary: float literals (measured wall seconds) and the
   summary's resume/retry bookkeeping line are the only parts allowed to
   differ between an uninterrupted run and a resumed one. *)
let tables (c : Experiments.campaign) =
  String.concat "\n"
    [
      Experiments.table1 c.Experiments.context;
      Experiments.table2 c.Experiments.context;
      Experiments.figure3 c.Experiments.context;
      Experiments.figure4 c.Experiments.context;
      Experiments.table3 c.Experiments.context;
      Experiments.table4 c.Experiments.context;
      Experiments.table5 c.Experiments.context;
      Experiments.table6 c.Experiments.context;
      Experiments.campaign_summary c;
    ]
  |> strip_floats
  |> Str.global_replace (Str.regexp "  resumed from journal[^\n]*\n") ""

(* Kill-and-resume: truncate a finished journal after a prefix of entries
   plus a torn half-line (what a SIGKILL mid-append leaves behind), then
   resume. The resumed campaign must (a) rerun only the missing
   instances, (b) drop the torn line, and (c) reproduce the exact same
   tables as the uninterrupted run. *)
let journal_kill_and_resume () =
  let path = Filename.temp_file "hb_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      let full = campaign ~journal:path ~jobs:4 () in
      let reference = tables full in
      let n = List.length full.Experiments.tasks in
      let lines = read_lines path in
      Alcotest.(check int) "journal holds header + one line per instance"
        (n + 1) (List.length lines);
      (* Simulate the kill: keep the header and 10 entries, then a torn
         half-record with no newline. *)
      let keep = 10 in
      let oc = open_out_bin path in
      List.iteri
        (fun i l -> if i <= keep then Printf.fprintf oc "%s\n" l)
        lines;
      output_string oc "{\"instance\":\"torn";
      close_out oc;
      let resumed = campaign ~journal:path ~resume:true ~jobs:4 () in
      Alcotest.(check int) "resumed the recorded prefix" keep
        resumed.Experiments.resumed;
      Alcotest.(check int) "torn line detected" 1
        resumed.Experiments.journal_corrupt;
      Alcotest.(check string) "tables identical after resume" reference
        (tables resumed);
      (* The rewritten journal is complete and clean again. *)
      let lines = read_lines path in
      Alcotest.(check int) "journal complete after resume" (n + 1)
        (List.length lines);
      let resumed_again = campaign ~journal:path ~resume:true ~jobs:1 () in
      Alcotest.(check int) "everything resumed, nothing rerun" n
        resumed_again.Experiments.resumed;
      Alcotest.(check string) "tables identical on full resume" reference
        (tables resumed_again))

(* A campaign journaled with injected failures: resume does not rerun the
   failed instances either (their outcome is recorded), and the summary
   still reports them. *)
let journal_records_failures () =
  let path = Filename.temp_file "hb_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      let victim = (List.nth (build ()) 4).B.Instance.name in
      let c =
        with_faults
          (Printf.sprintf "crash@instance.%s:1" victim)
          (fun () -> campaign ~journal:path ~jobs:2 ())
      in
      let failed (c : Experiments.campaign) =
        List.filter_map
          (fun (t : B.Analysis.task) ->
            if Kit.Outcome.is_ok t.B.Analysis.result then None
            else
              Some
                ( t.B.Analysis.task_instance.B.Instance.name,
                  Kit.Outcome.label t.B.Analysis.result ))
          c.Experiments.tasks
      in
      Alcotest.(check bool) "the one injected crash is recorded" true
        (failed c = [ (victim, "crash") ]);
      (* No faults armed on resume: the crash must come back from the
         journal, not from a rerun. *)
      let resumed = campaign ~journal:path ~resume:true ~jobs:2 () in
      Alcotest.(check int) "all instances resumed" (List.length c.Experiments.tasks)
        resumed.Experiments.resumed;
      Alcotest.(check bool) "failure survives resume" true
        (failed resumed = [ (victim, "crash") ]);
      Alcotest.(check string) "tables identical" (tables c) (tables resumed))

(* A journal written under different campaign parameters must be refused,
   not silently mixed in. *)
let journal_header_mismatch () =
  let path = Filename.temp_file "hb_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      ignore (campaign ~journal:path ~jobs:1 ());
      match
        Experiments.prepare_campaign ~seed:(seed + 1) ~scale
          ~budget:fuel_budget ~max_k ~jobs:1 ~journal:path ~resume:true ()
      with
      | Error m ->
          Alcotest.(check bool) "error names the mismatch" true
            (String.length m > 0)
      | Ok _ -> Alcotest.fail "mismatched journal should be rejected")

let journal_read_skips_corruption () =
  let path = Filename.temp_file "hb_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "{\"format\":\"hyperbench-journal\"}\n";
      output_string oc "{\"instance\":\"a\"}\n";
      output_string oc "not json at all\n";
      output_string oc "{\"instance\":\"b\"}\n";
      output_string oc "{\"torn";
      close_out oc;
      match Experiments.Journal.read ~path with
      | Error m -> Alcotest.fail m
      | Ok { Experiments.Journal.header; entries; corrupt } ->
          Alcotest.(check bool) "header parsed" true (header <> None);
          Alcotest.(check int) "both valid entries kept" 2
            (List.length entries);
          Alcotest.(check int) "both corrupt lines counted" 2 corrupt)

let () =
  Alcotest.run "resilience"
    [
      ( "fault-matrix",
        [
          Alcotest.test_case "injected failures are contained" `Slow
            fault_matrix;
          Alcotest.test_case "retry recovers a transient fault" `Slow
            retry_recovers_transient_fault;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "member kill degrades gracefully" `Slow
            portfolio_survives_member_kill;
          Alcotest.test_case "race survives member kill" `Slow
            portfolio_race_survives_member_kill;
        ] );
      ( "parser",
        [
          Alcotest.test_case "truncation is a skip, not a crash" `Quick
            truncated_parse_is_an_error;
        ] );
      ( "journal",
        [
          Alcotest.test_case "kill and resume reproduces tables" `Slow
            journal_kill_and_resume;
          Alcotest.test_case "failures survive resume" `Slow
            journal_records_failures;
          Alcotest.test_case "header mismatch rejected" `Slow
            journal_header_mismatch;
          Alcotest.test_case "corrupt lines skipped" `Quick
            journal_read_skips_corruption;
        ] );
    ]
