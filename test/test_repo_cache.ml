(* The content-addressed persistence layer: canonical fingerprints, the
   binary repository codec, the result cache, and the four persistence
   bugfixes (filename collisions, atomic/validated saves, the
   journal-header rule, quoted-name round-trips).

   The heart is a seeded property sweep over ~500 generated hypergraphs
   with adversarial names; the pinned-fingerprint case additionally
   freezes the digest across versions (cache entries and packed
   repositories outlive the binary that wrote them). *)

module H = Hg.Hypergraph
module B = Benchlib
module Rng = Kit.Rng

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- seeded instance generator ---------- *)

(* Vertex-name pool mixing identifiers with names that need quoting in
   the text format: spaces, quotes, backslashes, parens, commas, the
   full stop that terminates the format, leading digits, non-ASCII
   bytes. *)
let name_pool =
  [|
    "x";
    "y0";
    "long_identifier_name";
    "A.b-c";
    "has space";
    "quo\"te";
    "back\\slash";
    "par(en,comma)";
    "dot.";
    "0starts_with_digit";
    "caf\xc3\xa9";
    "tab\tand\nnewline";
  |]

let gen_hg rng =
  let n_edges = 1 + Rng.int rng 7 in
  let edges =
    List.init n_edges (fun ei ->
        let arity = 1 + Rng.int rng 4 in
        let vs =
          List.init arity (fun _ -> Rng.pick rng name_pool)
          |> List.sort_uniq compare
        in
        (Printf.sprintf "e%d" ei, vs))
  in
  H.of_named_edges edges

(* Rebuild [h] with edges in a different order and vertex ids renumbered
   (interning order follows the permuted edge list), preserving the
   name-level structure. *)
let permuted rng h =
  let edges =
    Array.init h.H.n_edges (fun e ->
        let vs =
          Kit.Bitset.to_list (H.edge h e)
          |> List.map (H.vertex_name h)
          |> Array.of_list
        in
        Rng.shuffle rng vs;
        (Printf.sprintf "p%d" e, Array.to_list vs))
  in
  Rng.shuffle rng edges;
  H.of_named_edges (Array.to_list edges)

let n_cases = 500

(* ---------- the property sweep ---------- *)

let prop_fingerprint_permutation_invariant () =
  let rng = Rng.create 42 in
  for _ = 1 to n_cases do
    let h = gen_hg rng in
    let h' = permuted rng h in
    Alcotest.(check bool) "permutation preserves structure" true
      (H.equal_structure h h');
    Alcotest.(check string) "permutation preserves fingerprint"
      (H.fingerprint h) (H.fingerprint h')
  done

let prop_fingerprint_distinct () =
  (* Bucket 500 generated graphs by fingerprint: within a bucket every
     pair must be structurally equal, i.e. a shared fingerprint is never
     a collision between dedup_edges-distinct graphs. *)
  let rng = Rng.create 43 in
  let buckets : (string, H.t list) Hashtbl.t = Hashtbl.create 256 in
  for _ = 1 to n_cases do
    let h = H.dedup_edges (gen_hg rng) in
    let fp = H.fingerprint h in
    Hashtbl.replace buckets fp (h :: (try Hashtbl.find buckets fp with Not_found -> []))
  done;
  Alcotest.(check bool) "generator produced distinct graphs" true
    (Hashtbl.length buckets > 50);
  Hashtbl.iter
    (fun _ hs ->
      match hs with
      | [] | [ _ ] -> ()
      | h :: rest ->
          List.iter
            (fun h' ->
              Alcotest.(check bool) "same fingerprint => same structure" true
                (H.equal_structure h h'))
            rest)
    buckets

let prop_text_roundtrip () =
  let rng = Rng.create 44 in
  for _ = 1 to n_cases do
    let h = gen_hg rng in
    match H.parse (H.to_string h) with
    | Error m -> Alcotest.failf "text round-trip failed to parse: %s" m
    | Ok h' ->
        Alcotest.(check bool) "text round-trip preserves structure" true
          (H.equal_structure h h');
        Alcotest.(check string) "text round-trip preserves fingerprint"
          (H.fingerprint h) (H.fingerprint h')
  done

let prop_binary_roundtrip () =
  let rng = Rng.create 45 in
  for _ = 1 to n_cases do
    let h = gen_hg rng in
    match Hg.Binary.of_string (Hg.Binary.to_string h) with
    | Error m -> Alcotest.failf "binary round-trip failed: %s" m
    | Ok h' ->
        (* Binary is exact: ids and names survive bit-for-bit. *)
        Alcotest.(check (array string)) "vertex names" h.H.vertex_names
          h'.H.vertex_names;
        Alcotest.(check (array string)) "edge names" h.H.edge_names
          h'.H.edge_names;
        Alcotest.(check int) "n_edges" h.H.n_edges h'.H.n_edges;
        for e = 0 to h.H.n_edges - 1 do
          Alcotest.(check bool) "edge members" true
            (Kit.Bitset.equal (H.edge h e) (H.edge h' e))
        done;
        Alcotest.(check string) "fingerprint" (H.fingerprint h)
          (H.fingerprint h')
  done

let prop_text_binary_text () =
  (* The acceptance phrasing: text -> binary -> text preserves
     equal_structure (text cannot promise exact ids, binary can). *)
  let rng = Rng.create 46 in
  for _ = 1 to n_cases do
    let h = gen_hg rng in
    match Hg.Binary.of_string (Hg.Binary.to_string h) with
    | Error m -> Alcotest.failf "binary decode failed: %s" m
    | Ok hb -> (
        match H.parse (H.to_string hb) with
        | Error m -> Alcotest.failf "text re-parse failed: %s" m
        | Ok ht ->
            Alcotest.(check bool) "text->binary->text structure" true
              (H.equal_structure h ht))
  done

(* The fingerprint is a persistent cache/pack key: its value for a fixed
   graph is part of the format and must never drift across versions. *)
let fingerprint_pinned () =
  let h = H.of_named_edges [ ("e1", [ "x"; "y" ]); ("e2", [ "y"; "z" ]) ] in
  Alcotest.(check string) "pinned digest" "0c53e013d6f5e933" (H.fingerprint h);
  Alcotest.(check int) "16 hex chars" 16 (String.length (H.fingerprint h))

(* ---------- result cache ---------- *)

let tmpdir () =
  let d = Filename.temp_file "hbtest" "" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then (
    Sys.readdir path |> Array.iter (fun f -> rm_rf (Filename.concat path f));
    Sys.rmdir path)
  else Sys.remove path

let fuel () = Kit.Deadline.of_fuel 200_000

let cache_store_hit_roundtrip () =
  let dir = tmpdir () in
  let cache = B.Result_cache.create ~dir in
  let h = gen_hg (Rng.create 47) in
  (* Solve a few levels for real, store the definitive verdicts, then
     demand that every hit replays to the same (validated) verdict. *)
  for k = 1 to 3 do
    (match Detk.solve ~deadline:(fuel ()) h ~k with
    | Detk.Decomposition d ->
        B.Result_cache.store cache h ~meth:"detk" ~k (B.Result_cache.Yes d)
    | Detk.No_decomposition ->
        B.Result_cache.store cache h ~meth:"detk" ~k B.Result_cache.No
    | Detk.Timeout -> Alcotest.fail "unexpected timeout on tiny instance");
    match
      (Detk.solve ~deadline:(fuel ()) h ~k, B.Result_cache.find cache h ~meth:"detk" ~k)
    with
    | Detk.Decomposition _, Some (B.Result_cache.Yes d) ->
        Alcotest.(check bool) "replayed witness validates" true
          (Decomp.check_hd h d = []);
        Alcotest.(check bool) "replayed width within k" true
          (Decomp.width d <= k)
    | Detk.No_decomposition, Some B.Result_cache.No -> ()
    | _, None -> Alcotest.fail "stored verdict did not hit"
    | _ -> Alcotest.fail "cached verdict disagrees with solver"
  done;
  (* A different structure misses. *)
  let other = H.of_named_edges [ ("e", [ "only" ]) ] in
  Alcotest.(check bool) "distinct graph misses" true
    (B.Result_cache.find cache other ~meth:"detk" ~k:1 = None);
  rm_rf dir

let cache_entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun sub ->
         let p = Filename.concat dir sub in
         if Sys.is_directory p then
           Sys.readdir p |> Array.to_list
           |> List.map (fun f -> Filename.concat p f)
         else [ p ])

let cache_corruption_degrades () =
  let dir = tmpdir () in
  let cache = B.Result_cache.create ~dir in
  let h = gen_hg (Rng.create 48) in
  let k = H.arity h in
  (* arity-wide bags always exist: guaranteed Yes with a witness *)
  (match Detk.solve ~deadline:(fuel ()) h ~k with
  | Detk.Decomposition d ->
      B.Result_cache.store cache h ~meth:"detk" ~k (B.Result_cache.Yes d)
  | _ -> Alcotest.fail "expected a decomposition at k = arity");
  Alcotest.(check bool) "entry hits before tampering" true
    (B.Result_cache.find cache h ~meth:"detk" ~k <> None);
  let files = cache_entry_files dir in
  Alcotest.(check int) "one entry on disk" 1 (List.length files);
  Kit.Metrics.enabled := true;
  Kit.Metrics.reset ();
  List.iter
    (fun corrupt ->
      let oc = open_out (List.hd files) in
      output_string oc corrupt;
      close_out oc;
      Alcotest.(check bool) "tampered entry degrades to miss" true
        (B.Result_cache.find cache h ~meth:"detk" ~k = None))
    [
      "not json at all";
      (* witness for the wrong graph: parses, fails validation *)
      {|{"fingerprint":"0000000000000000","method":"detk","k":1,"verdict":"yes","width":1,"hd":"garbage"}|};
      {|{"fingerprint":"0000000000000000","method":"detk","k":1,"verdict":"maybe"}|};
    ];
  let snap = Kit.Metrics.snapshot () in
  let count name = try List.assoc name snap.Kit.Metrics.counters with Not_found -> 0 in
  Alcotest.(check int) "each tampering ticked cache.invalid" 3
    (count "cache.invalid");
  Kit.Metrics.enabled := false;
  Kit.Metrics.reset ();
  rm_rf dir

(* ---------- satellite (1): filename collisions ---------- *)

let instance name hg = B.Instance.make ~name ~group:B.Group.CQ_application ~source:"test" hg

let colliding_names_saved_distinctly () =
  Alcotest.(check bool) "a/b and a_b sanitise identically but get distinct files"
    true
    (B.Repository.hg_filename "a/b" <> B.Repository.hg_filename "a_b");
  let dir = tmpdir () in
  let ha = H.of_named_edges [ ("e", [ "u"; "v" ]) ] in
  let hb = H.of_named_edges [ ("e", [ "u"; "v" ]); ("f", [ "v"; "w" ]) ] in
  B.Repository.save ~dir [ instance "a/b" ha; instance "a_b" hb ];
  (match B.Repository.load ~dir with
  | Error m -> Alcotest.fail m
  | Ok { B.Repository.instances = loaded; skipped } ->
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped);
      Alcotest.(check int) "both instances survive" 2 (List.length loaded);
      List.iter
        (fun (i : B.Instance.t) ->
          let expect = if i.B.Instance.name = "a/b" then ha else hb in
          Alcotest.(check bool)
            (Printf.sprintf "%s keeps its own graph" i.B.Instance.name)
            true
            (H.equal_structure expect i.B.Instance.hg))
        loaded);
  rm_rf dir

let duplicate_names_refused () =
  let dir = tmpdir () in
  let h = H.of_named_edges [ ("e", [ "u" ]) ] in
  (try
     B.Repository.save ~dir [ instance "same" h; instance "same" h ];
     Alcotest.fail "duplicate names must be refused"
   with Invalid_argument _ -> ());
  if Sys.file_exists dir then rm_rf dir

(* ---------- satellite (2): atomic save, control chars refused ---------- *)

let control_chars_refused () =
  let dir = tmpdir () in
  let h = H.of_named_edges [ ("e", [ "u" ]) ] in
  List.iter
    (fun bad ->
      try
        B.Repository.save ~dir [ instance bad h ];
        Alcotest.failf "name %S must be refused" bad
      with Invalid_argument _ -> ())
    [ "has\ttab"; "has\nnewline"; "has\rreturn" ];
  (try
     B.Repository.save ~dir
       [ B.Instance.make ~name:"ok" ~group:B.Group.CQ_random ~source:"bad\tsource" h ];
     Alcotest.fail "tab in source must be refused"
   with Invalid_argument _ -> ());
  if Sys.file_exists dir then rm_rf dir

let save_leaves_no_temp_files () =
  let dir = tmpdir () in
  B.Repository.save ~dir
    [ instance "one" (H.of_named_edges [ ("e", [ "u"; "v" ]) ]) ];
  Sys.readdir dir
  |> Array.iter (fun f ->
         Alcotest.(check bool)
           (Printf.sprintf "no temp residue: %s" f)
           false
           (contains_sub f ".tmp."));
  rm_rf dir

(* ---------- satellite (3): only line 1 can be the journal header ---------- *)

let journal_corrupt_header_detected () =
  let path = Filename.temp_file "hbjournal" ".jsonl" in
  let header = {|{"seed":7,"scale":0.05,"max_k":5}|} in
  let entry = {|{"instance":"x","outcomes":[]}|} in
  let write lines =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  (* Healthy file parses. *)
  write [ header; entry ];
  (match Experiments.Journal.read ~path with
  | Error m -> Alcotest.fail m
  | Ok { Experiments.Journal.header = h; entries; corrupt } ->
      Alcotest.(check bool) "header parsed" true (h <> None);
      Alcotest.(check int) "entry kept" 1 (List.length entries);
      Alcotest.(check int) "no corruption" 0 corrupt);
  (* Truncated header: line 1 is half a JSON object. A valid entry on
     line 2 must NOT be promoted to header. *)
  write [ String.sub header 0 (String.length header / 2); entry ];
  (match Experiments.Journal.read ~path with
  | Error m -> Alcotest.fail m
  | Ok { Experiments.Journal.header = h; corrupt; _ } ->
      Alcotest.(check bool) "truncated header is None" true (h = None);
      Alcotest.(check bool) "truncated header counts corrupt" true (corrupt >= 1));
  Sys.remove path

let journal_corrupt_header_refuses_resume () =
  let path = Filename.temp_file "hbjournal" ".jsonl" in
  let oc = open_out path in
  output_string oc "corrupt first line!\n";
  output_string oc {|{"instance":"x","outcomes":[]}|};
  output_string oc "\n";
  close_out oc;
  (match
     Experiments.prepare_campaign ~seed:7 ~scale:0.05
       ~budget:(fun () -> Kit.Deadline.of_fuel 1_000)
       ~jobs:1 ~isolate:false ~journal:path ~resume:true ()
   with
  | Ok _ -> Alcotest.fail "corrupt header must refuse resume"
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error explains itself: %s" m)
        true
        (contains_sub m "header"));
  Sys.remove path

(* ---------- satellite (4): quoted names in the text format ---------- *)

let quoted_names_roundtrip () =
  let names = [ "plain"; "has space"; "quo\"te"; "back\\slash"; "a(b,c)."; "0digit" ] in
  let h = H.of_named_edges [ ("needs quoting too!", names) ] in
  let text = H.to_string h in
  match H.parse text with
  | Error m -> Alcotest.failf "quoted round-trip failed: %s\n%s" m text
  | Ok h' ->
      Alcotest.(check (array string)) "vertex names exact" h.H.vertex_names
        h'.H.vertex_names;
      Alcotest.(check (array string)) "edge names exact" h.H.edge_names
        h'.H.edge_names

(* ---------- pack / load_pack ---------- *)

let pack_roundtrip_sharded () =
  let dir = tmpdir () in
  let instances =
    B.Repository.build ~seed:7 ~scale:0.05 ()
    @ [ instance "wei\xc3\x9fe r\xc3\xbcbe" (H.of_named_edges [ ("e", [ "ä"; "has space" ]) ]) ]
  in
  B.Repository.pack ~dir ~shards:3 instances;
  Alcotest.(check int) "three shard files" 3
    (Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".hbr")
    |> List.length);
  (match B.Repository.load_pack ~dir with
  | Error m -> Alcotest.fail m
  | Ok { B.Repository.instances = loaded; skipped } ->
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped);
      Alcotest.(check int) "count" (List.length instances) (List.length loaded);
      List.iter2
        (fun (a : B.Instance.t) (b : B.Instance.t) ->
          Alcotest.(check string) "order and name preserved" a.B.Instance.name
            b.B.Instance.name;
          Alcotest.(check bool) "structure" true
            (H.equal_structure a.B.Instance.hg b.B.Instance.hg))
        instances loaded);
  rm_rf dir

let pack_detects_corruption () =
  let dir = tmpdir () in
  let instances = B.Repository.build ~seed:7 ~scale:0.05 () in
  (* Two shards: even if the flipped byte tears one shard's framing and
     the rest of that shard is abandoned, the other must survive. *)
  B.Repository.pack ~dir ~shards:2 instances;
  let shard =
    Sys.readdir dir |> Array.to_list
    |> List.find (fun f -> Filename.check_suffix f ".hbr")
    |> Filename.concat dir
  in
  let data =
    let ic = open_in_bin shard in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* Flip one byte well inside the first entries (past the file header,
     landing in an entry's fields or graph blob). *)
  let tampered = Bytes.of_string data in
  Bytes.set tampered 100
    (Char.chr (Char.code (Bytes.get tampered 100) lxor 0xff));
  let oc = open_out_bin shard in
  output_bytes oc tampered;
  close_out oc;
  (match B.Repository.load_pack ~dir with
  | Error m -> Alcotest.fail m
  | Ok { B.Repository.instances = loaded; skipped } ->
      Alcotest.(check bool) "corruption detected" true (skipped <> []);
      Alcotest.(check bool) "healthy entries survive" true
        (List.length loaded < List.length instances && loaded <> []));
  rm_rf dir

(* ---------- mutation properties (hostile bytes) ---------- *)

(* Byte-damaged binary blobs must decode to a clean [Error] or a graph
   that is internally consistent — never an exception, never a graph
   whose re-encoding disagrees with itself. (A mutation CAN decode Ok:
   e.g. a flipped byte inside a name changes the name, not the frame.) *)
let prop_binary_mutation_safe () =
  let rng = Rng.create 31 in
  let ok = ref 0 and err = ref 0 in
  for i = 0 to n_cases - 1 do
    let h = gen_hg rng in
    let blob = Hg.Binary.to_string h in
    let mutated = Kit.Fuzz.mutate rng blob in
    match Hg.Binary.of_string mutated with
    | Error _ -> incr err
    | Ok h' ->
        incr ok;
        (* Fingerprint cross-check: decode of re-encode agrees. *)
        let reencoded = Hg.Binary.to_string h' in
        (match Hg.Binary.of_string reencoded with
        | Error m -> Alcotest.failf "case %d: re-encode undecodable: %s" i m
        | Ok h'' ->
            if H.fingerprint h' <> H.fingerprint h'' then
              Alcotest.failf "case %d: fingerprint unstable after mutation" i)
    | exception e ->
        Alcotest.failf "case %d: decoder raised %s" i (Printexc.to_string e)
  done;
  (* The sweep must exercise both outcomes, else the property is vacuous. *)
  Alcotest.(check bool) "saw rejections" true (!err > 0);
  Alcotest.(check bool) "sweep ran" true (!ok + !err = n_cases)

(* Same property one level up: byte-damaged .hbr shards must load as
   [Ok] with entries skipped or a clean [Error] — and every instance
   that does load must carry a self-consistent graph. *)
let pack_mutation_safe () =
  let instances = B.Repository.build ~seed:7 ~scale:0.05 () in
  let rng = Rng.create 77 in
  for case = 0 to 49 do
    let dir = tmpdir () in
    B.Repository.pack ~dir ~shards:2 instances;
    let shards =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".hbr")
      |> List.map (Filename.concat dir)
    in
    let shard = List.nth shards (Rng.int rng (List.length shards)) in
    let data =
      let ic = open_in_bin shard in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let oc = open_out_bin shard in
    output_string oc (Kit.Fuzz.mutate rng data);
    close_out oc;
    (match B.Repository.load_pack ~dir with
    | Error _ -> ()
    | Ok { B.Repository.instances = loaded; skipped = _ } ->
        List.iter
          (fun (inst : B.Instance.t) ->
            let h = inst.B.Instance.hg in
            match Hg.Binary.of_string (Hg.Binary.to_string h) with
            | Ok h' when H.fingerprint h = H.fingerprint h' -> ()
            | _ -> Alcotest.failf "case %d: loaded instance inconsistent" case)
          loaded
    | exception e ->
        Alcotest.failf "case %d: load_pack raised %s" case
          (Printexc.to_string e));
    rm_rf dir
  done

let () =
  Alcotest.run "repo_cache"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "permutation invariant (500 cases)" `Quick
            prop_fingerprint_permutation_invariant;
          Alcotest.test_case "distinct graphs distinct (500 cases)" `Quick
            prop_fingerprint_distinct;
          Alcotest.test_case "pinned value" `Quick fingerprint_pinned;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "text (500 cases)" `Quick prop_text_roundtrip;
          Alcotest.test_case "binary exact (500 cases)" `Quick
            prop_binary_roundtrip;
          Alcotest.test_case "text->binary->text (500 cases)" `Quick
            prop_text_binary_text;
          Alcotest.test_case "quoted names" `Quick quoted_names_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/hit replays validated verdicts" `Slow
            cache_store_hit_roundtrip;
          Alcotest.test_case "corruption degrades to miss" `Slow
            cache_corruption_degrades;
        ] );
      ( "repository",
        [
          Alcotest.test_case "colliding names kept apart" `Quick
            colliding_names_saved_distinctly;
          Alcotest.test_case "duplicate names refused" `Quick
            duplicate_names_refused;
          Alcotest.test_case "control characters refused" `Quick
            control_chars_refused;
          Alcotest.test_case "no temp residue after save" `Quick
            save_leaves_no_temp_files;
          Alcotest.test_case "pack round-trip over 3 shards" `Quick
            pack_roundtrip_sharded;
          Alcotest.test_case "pack corruption skipped, not trusted" `Quick
            pack_detects_corruption;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "binary blobs (500 cases)" `Quick
            prop_binary_mutation_safe;
          Alcotest.test_case "pack shards (50 cases)" `Quick pack_mutation_safe;
        ] );
      ( "journal",
        [
          Alcotest.test_case "only line 1 can be the header" `Quick
            journal_corrupt_header_detected;
          Alcotest.test_case "corrupt header refuses resume" `Slow
            journal_corrupt_header_refuses_resume;
        ] );
    ]
