(* Tests for the process-level hard-isolation layer (Kit.Proc): worker
   pool mechanics, watchdog kills, memory caps, crash capture, retries,
   and races. Campaign-level isolation coverage lives further down. *)

module Proc = Kit.Proc
module Outcome = Kit.Outcome

let label_of = function
  | Outcome.Ok _ -> "ok"
  | o -> Outcome.label o

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let labels cs = Array.to_list (Array.map (fun c -> label_of c.Proc.outcome) cs)

(* --- Proc unit tests --------------------------------------------------- *)

let proc_ordered_results () =
  let tasks = Array.init 17 (fun i -> i) in
  let cs = Proc.run ~jobs:4 ~mem_mb:0 (fun ~attempt:_ x -> x * x) tasks in
  Alcotest.(check int) "one completion per task" 17 (Array.length cs);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) "indexed in input order" i c.Proc.index;
      Alcotest.(check int) "single attempt" 1 c.Proc.attempts;
      match c.Proc.outcome with
      | Outcome.Ok v -> Alcotest.(check int) "square" (i * i) v
      | o -> Alcotest.failf "task %d: expected ok, got %s" i (Outcome.label o))
    cs

let proc_watchdog_kills_hang () =
  let tasks = [| `Fine; `Hang; `Fine |] in
  let t0 = Unix.gettimeofday () in
  let cs =
    Proc.run ~jobs:3 ~mem_mb:0
      ~wall:(fun ~attempt:_ -> 0.4)
      (fun ~attempt:_ -> function
        | `Fine -> 1
        | `Hang ->
            (* Never polls a deadline: only the watchdog can stop it. *)
            let rec spin x = spin (Sys.opaque_identity (x lxor 1)) in
            spin 0)
      tasks
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check (list string))
    "hang killed, siblings fine" [ "ok"; "timeout"; "ok" ] (labels cs);
  Alcotest.(check bool)
    (Printf.sprintf "killed near the wall budget (%.2fs)" elapsed)
    true (elapsed < 5.0)

let proc_hard_memory_cap () =
  let tasks = [| `Greedy; `Modest |] in
  let cs =
    Proc.run ~jobs:2 ~mem_mb:64
      (fun ~attempt:_ -> function
        | `Modest -> 0
        | `Greedy ->
            (* Outgrow the cap no matter how the Gc behaves: keep every
               chunk reachable. *)
            let keep = ref [] in
            for _ = 1 to 1024 do
              keep := Bytes.create (8 * 1024 * 1024) :: !keep
            done;
            List.length !keep)
      tasks
  in
  Alcotest.(check (list string))
    "greedy capped, sibling untouched" [ "out_of_memory"; "ok" ] (labels cs)

let proc_crash_captures_stderr () =
  let tasks = [| `Die; `Fine |] in
  let cs =
    Proc.run ~jobs:2 ~mem_mb:0
      (fun ~attempt:_ -> function
        | `Fine -> 0
        | `Die ->
            prerr_string "separator stack exploded";
            flush stderr;
            Unix._exit 3)
      tasks
  in
  (match cs.(0).Proc.outcome with
  | Outcome.Crash msg ->
      Alcotest.(check bool)
        "exit code in message" true
        (contains ~sub:"code 3" msg);
      Alcotest.(check bool)
        "stderr tail captured" true
        (contains ~sub:"separator stack exploded" msg)
  | o -> Alcotest.failf "expected crash, got %s" (Outcome.label o));
  Alcotest.(check string) "sibling fine" "ok" (label_of cs.(1).Proc.outcome)

let proc_inband_exception () =
  let cs =
    Proc.run ~jobs:1 ~mem_mb:0
      (fun ~attempt:_ () -> failwith "solver exploded")
      [| () |]
  in
  match cs.(0).Proc.outcome with
  | Outcome.Crash msg ->
      Alcotest.(check bool)
        "carries the exception" true
        (contains ~sub:"solver exploded" msg)
  | o -> Alcotest.failf "expected crash, got %s" (Outcome.label o)

let proc_retries_rerun_task () =
  let cs =
    Proc.run ~jobs:2 ~mem_mb:0 ~retries:2
      (fun ~attempt x ->
        if attempt < x then failwith "flaky" else x * 10)
      [| 0; 2 |]
  in
  Alcotest.(check (list string)) "both recover" [ "ok"; "ok" ] (labels cs);
  Alcotest.(check int) "steady task: one attempt" 1 cs.(0).Proc.attempts;
  Alcotest.(check int) "flaky task: three attempts" 3 cs.(1).Proc.attempts;
  (match cs.(1).Proc.outcome with
  | Outcome.Ok v -> Alcotest.(check int) "final attempt's value" 20 v
  | o -> Alcotest.failf "expected ok, got %s" (Outcome.label o));
  (* Exhausted retries keep the last failure. *)
  let cs =
    Proc.run ~jobs:1 ~mem_mb:0 ~retries:1
      (fun ~attempt:_ () -> failwith "always")
      [| () |]
  in
  Alcotest.(check string) "still a crash" "crash" (label_of cs.(0).Proc.outcome);
  Alcotest.(check int) "both attempts consumed" 2 cs.(0).Proc.attempts

let proc_halt_on_race () =
  let tasks = [| `Hang; `Fast; `Hang |] in
  let t0 = Unix.gettimeofday () in
  let cs =
    Proc.run ~jobs:3 ~mem_mb:0
      ~wall:(fun ~attempt:_ -> 60.0)
      ~halt_on:(function Outcome.Ok _ -> true | _ -> false)
      (fun ~attempt:_ -> function
        | `Fast -> 42
        | `Hang ->
            let rec spin x = spin (Sys.opaque_identity (x lxor 1)) in
            spin 0)
      tasks
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check (list string))
    "winner ok, losers hard-killed" [ "timeout"; "ok"; "timeout" ] (labels cs);
  Alcotest.(check bool)
    (Printf.sprintf "race settled promptly (%.2fs)" elapsed)
    true (elapsed < 10.0)

let proc_worker_reuse () =
  (* Many more tasks than jobs: the pool must recycle workers rather
     than fork one per task. *)
  let cs =
    Proc.run ~jobs:2 ~mem_mb:0
      (fun ~attempt:_ x -> (x, Unix.getpid ()))
      (Array.init 12 (fun i -> i))
  in
  let pids =
    Array.to_list cs
    |> List.filter_map (fun c ->
           match c.Proc.outcome with
           | Outcome.Ok (_, pid) -> Some pid
           | _ -> None)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all tasks completed" 12 (Array.length cs);
  Alcotest.(check bool)
    (Printf.sprintf "at most 2 worker processes (saw %d)" (List.length pids))
    true
    (List.length pids <= 2)

(* --- campaign-level isolation ------------------------------------------ *)

module B = Benchlib

let seed = 7
let scale = 0.05
let max_k = 4
let fuel_budget () = Kit.Deadline.of_fuel 20_000

let build () = B.Repository.build ~seed ~scale ()

let with_faults spec f =
  (match Kit.Fault.configure spec with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Fun.protect ~finally:Kit.Fault.clear f

(* The budget- and jobs-independent skeleton of a record (as in
   test_resilience): everything except measured seconds. *)
let skeleton (r : B.Analysis.record) =
  ( r.B.Analysis.instance.B.Instance.name,
    r.B.Analysis.profile,
    List.map (fun (x : B.Analysis.hw_run) -> (x.k, x.outcome)) r.B.Analysis.hw_runs,
    r.B.Analysis.hw,
    r.B.Analysis.hd <> None,
    r.B.Analysis.stats.Kit.Metrics.counters )

let campaign ?journal ?mem_mb ?wall ~jobs () =
  match
    Experiments.prepare_campaign ~seed ~scale ~budget:fuel_budget ~max_k ~jobs
      ~isolate:true ?wall ?mem_mb ?journal ()
  with
  | Ok c -> c
  | Error m -> Alcotest.fail m

(* OCaml 5 refuses Unix.fork permanently once a process has ever spawned
   a domain, and each campaign's ghd/fractional passes run on a domain
   pool at jobs > 1 — so every campaign test gets a fresh forked process
   of its own, keeping the alcotest runner itself domain-free (and so
   fork-capable) throughout. Alcotest failures inside the child surface
   as a nonzero exit; its stderr shares ours, so the detail lands in the
   test log. *)
let in_subprocess f () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try
          f ();
          0
        with e ->
          Printf.eprintf "%s\n%!" (Printexc.to_string e);
          1
      in
      Unix._exit code
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n ->
          Alcotest.failf "campaign subprocess failed (exit %d, see log)" n
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
          Alcotest.failf "campaign subprocess killed by signal %d" s)

let with_journal f =
  let path = Filename.temp_file "hb_isolation" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path)

let journal_outcome ~path name =
  match Experiments.Journal.read ~path with
  | Error m -> Alcotest.fail m
  | Ok { Experiments.Journal.entries; _ } ->
      List.find_map
        (fun e ->
          match (Kit.Json.member "instance" e, Kit.Json.member "outcome" e) with
          | Some i, Some o when Kit.Json.string_value i = Some name ->
              Kit.Json.string_value o
          | _ -> None)
        entries

(* The acceptance scenario: a seeded hang@instance fault — a busy-loop
   that never polls Deadline — is hard-killed at the wall budget under
   isolation and journaled as timeout, while every surviving instance
   stays bit-identical (under fuel) to the fault-free run, at jobs 1
   and 4. *)
let isolated_campaign_contains_hang () =
  let victim = (List.nth (build ()) 5).B.Instance.name in
  let baseline = campaign ~jobs:1 () in
  List.iter
    (fun (t : B.Analysis.task) ->
      Alcotest.(check bool) "fault-free isolated run is all ok" true
        (Kit.Outcome.is_ok t.B.Analysis.result))
    baseline.Experiments.tasks;
  List.iter
    (fun jobs ->
      with_journal @@ fun path ->
      let c =
        with_faults
          (Printf.sprintf "hang@instance.%s:1" victim)
          (fun () ->
            campaign ~journal:path ~wall:(fun ~attempt:_ -> 2.0) ~jobs ())
      in
      List.iter2
        (fun (b : B.Analysis.task) (t : B.Analysis.task) ->
          let name = t.B.Analysis.task_instance.B.Instance.name in
          if name = victim then
            Alcotest.(check string)
              (Printf.sprintf "%s hard-killed (jobs=%d)" name jobs)
              "timeout"
              (Kit.Outcome.label t.B.Analysis.result)
          else
            match (b.B.Analysis.result, t.B.Analysis.result) with
            | Kit.Outcome.Ok rb, Kit.Outcome.Ok rt ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s identical to fault-free run (jobs=%d)"
                     name jobs)
                  true
                  (skeleton rb = skeleton rt)
            | _, o ->
                Alcotest.failf "%s: expected ok, got %s" name
                  (Kit.Outcome.label o))
        baseline.Experiments.tasks c.Experiments.tasks;
      Alcotest.(check (option string))
        (Printf.sprintf "journaled as timeout (jobs=%d)" jobs)
        (Some "timeout")
        (journal_outcome ~path victim))
    [ 1; 4 ]

(* A worker blowing its memory budget is journaled as out_of_memory and
   its siblings finish undisturbed. *)
let isolated_campaign_journals_oom () =
  let victim = (List.nth (build ()) 20).B.Instance.name in
  with_journal @@ fun path ->
  let c =
    with_faults
      (Printf.sprintf "oom@instance.%s:1" victim)
      (fun () -> campaign ~journal:path ~mem_mb:256 ~jobs:2 ())
  in
  List.iter
    (fun (t : B.Analysis.task) ->
      let name = t.B.Analysis.task_instance.B.Instance.name in
      if name = victim then
        Alcotest.(check string) "victim out of memory" "out_of_memory"
          (Kit.Outcome.label t.B.Analysis.result)
      else
        Alcotest.(check bool) (name ^ " undisturbed") true
          (Kit.Outcome.is_ok t.B.Analysis.result))
    c.Experiments.tasks;
  Alcotest.(check (option string))
    "journaled as out_of_memory" (Some "out_of_memory")
    (journal_outcome ~path victim)

(* --- machine-readable stdout ------------------------------------------- *)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --stats-json -: stdout must carry exactly one JSON document; all the
   human-facing chatter moves to stderr. *)
let stats_json_stdout_is_parseable () =
  (* The test binary lives in _build/default/test/; the CLI is its
     sibling at _build/default/bin/ (a declared dune dep). *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/hyperbench.exe"
  in
  let hg = Filename.temp_file "hb_iso" ".hg" in
  let out = Filename.temp_file "hb_iso" ".out" in
  let err = Filename.temp_file "hb_iso" ".err" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ hg; out; err ])
    (fun () ->
      let oc = open_out hg in
      output_string oc "e1(a,b,c),\ne2(c,d),\ne3(d,e,a).\n";
      close_out oc;
      let cmd =
        Printf.sprintf "%s analyze %s --max-k 3 --stats-json - >%s 2>%s"
          (Filename.quote exe) (Filename.quote hg) (Filename.quote out)
          (Filename.quote err)
      in
      Alcotest.(check int) "analyze exits 0" 0 (Sys.command cmd);
      (match Kit.Json.of_string (String.trim (read_whole out)) with
      | Ok (Kit.Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "stdout JSON is not an object"
      | Error m ->
          Alcotest.failf "stdout is not machine-parseable: %s\n---\n%s" m
            (read_whole out));
      Alcotest.(check bool) "chatter routed to stderr" true
        (String.length (read_whole err) > 0))

let () =
  Alcotest.run "isolation"
    [
      ( "proc",
        [
          Alcotest.test_case "ordered results" `Quick proc_ordered_results;
          Alcotest.test_case "watchdog kills hang" `Quick
            proc_watchdog_kills_hang;
          Alcotest.test_case "hard memory cap" `Quick proc_hard_memory_cap;
          Alcotest.test_case "crash captures stderr" `Quick
            proc_crash_captures_stderr;
          Alcotest.test_case "in-band exception" `Quick proc_inband_exception;
          Alcotest.test_case "retries rerun task" `Quick
            proc_retries_rerun_task;
          Alcotest.test_case "halt_on race" `Quick proc_halt_on_race;
          Alcotest.test_case "worker reuse" `Quick proc_worker_reuse;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "hang is contained and journaled" `Slow
            (in_subprocess isolated_campaign_contains_hang);
          Alcotest.test_case "oom is journaled, siblings undisturbed" `Slow
            (in_subprocess isolated_campaign_journals_oom);
        ] );
      ( "stdout",
        [
          Alcotest.test_case "--stats-json - is machine-parseable" `Quick
            stats_json_stdout_is_parseable;
        ] );
    ]
