(* Tests for the three GHD algorithms (GlobalBIP, LocalBIP, BalSep), the
   subedge machinery, and the portfolio. The key properties:
   - every "yes" produces a tree that passes the full GHD validator;
   - the three algorithms agree with each other;
   - ghw <= hw always (a "yes" for HD forces a "yes" for GHD);
   - a "no" from GHD at k forces a "no" from HD at k. *)

module Bitset = Kit.Bitset
module H = Hg.Hypergraph

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let fano =
  H.of_int_edges
    [
      [ 0; 1; 2 ];
      [ 0; 3; 4 ];
      [ 0; 5; 6 ];
      [ 1; 3; 5 ];
      [ 1; 4; 6 ];
      [ 2; 3; 6 ];
      [ 2; 4; 5 ];
    ]

let cycle n = H.of_int_edges (List.init n (fun i -> [ i; (i + 1) mod n ]))

(* The running example of using subedges: interlocking wide edges where a
   GHD can use parts of edges that an HD cannot. *)
let wide_overlap =
  H.of_int_edges
    [ [ 0; 1; 2; 3 ]; [ 2; 3; 4; 5 ]; [ 4; 5; 6; 7 ]; [ 6; 7; 0; 1 ] ]

type alg = Global | Local | Balsep

let run alg h k =
  match alg with
  | Global -> (Ghd.Global_bip.solve h ~k).Ghd.Global_bip.outcome
  | Local -> (Ghd.Local_bip.solve h ~k).Ghd.Local_bip.outcome
  | Balsep -> (Ghd.Bal_sep.solve h ~k).Ghd.Bal_sep.outcome

let alg_name = function Global -> "GlobalBIP" | Local -> "LocalBIP" | Balsep -> "BalSep"

let expect_yes alg h k name =
  match run alg h k with
  | Detk.Decomposition d ->
      (match Decomp.check_ghd h d with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s %s: invalid GHD: %a" (alg_name alg) name
            (Decomp.pp_violation h) v);
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: width <= %d" (alg_name alg) name k)
        true
        (Decomp.width d <= k)
  | Detk.No_decomposition -> Alcotest.failf "%s %s: expected yes at k=%d" (alg_name alg) name k
  | Detk.Timeout -> Alcotest.failf "%s %s: timeout" (alg_name alg) name

let expect_no alg h k name =
  match run alg h k with
  | Detk.No_decomposition -> ()
  | Detk.Decomposition _ -> Alcotest.failf "%s %s: expected no at k=%d" (alg_name alg) name k
  | Detk.Timeout -> Alcotest.failf "%s %s: timeout" (alg_name alg) name

let all_algs = [ Global; Local; Balsep ]

let ghw_triangle () =
  List.iter
    (fun a ->
      expect_yes a triangle 2 "triangle";
      expect_no a triangle 1 "triangle")
    all_algs

let ghw_cycles () =
  List.iter
    (fun a ->
      expect_yes a (cycle 4) 2 "C4";
      expect_no a (cycle 4) 1 "C4";
      expect_yes a (cycle 6) 2 "C6")
    all_algs

let ghw_fano () =
  (* ghw(Fano) = 3: the fractional width 7/3 rules out ghw = 2. *)
  List.iter
    (fun a ->
      expect_yes a fano 3 "fano";
      expect_no a fano 2 "fano")
    all_algs

let ghw_acyclic () =
  let path = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  List.iter (fun a -> expect_yes a path 1 "path") all_algs

let ghw_wide_overlap () =
  List.iter
    (fun a ->
      expect_yes a wide_overlap 2 "wide";
      expect_no a wide_overlap 1 "wide")
    all_algs

let ghw_disconnected () =
  let h = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 2 ] ] in
  List.iter (fun a -> expect_yes a h 2 "disconnected") all_algs

(* --- subedges ------------------------------------------------------------ *)

let subedges_small () =
  let h = H.of_int_edges [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 2; 3; 4 ] ] in
  let { Ghd.Subedges.candidates; complete } = Ghd.Subedges.f_global h ~k:2 in
  Alcotest.(check bool) "complete" true complete;
  (* Every subedge is a proper subset of its parent edge. *)
  List.iter
    (fun (c : Detk.candidate) ->
      match c.source with
      | Decomp.Subedge p ->
          Alcotest.(check bool) "subset of parent" true
            (Bitset.subset c.vertices (H.edge h p));
          Alcotest.(check bool) "proper" true
            (not (Bitset.equal c.vertices (H.edge h p)))
      | _ -> Alcotest.fail "expected subedge source")
    candidates;
  (* e0 ∩ e1 = {1,2}: the subedges must contain {1,2}, {1}, {2}. *)
  let sets = List.map (fun (c : Detk.candidate) -> Bitset.to_list c.vertices) candidates in
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "has %s" (String.concat "," (List.map string_of_int s)))
        true (List.mem s sets))
    [ [ 1; 2 ]; [ 1 ]; [ 2 ]; [ 2; 3 ]; [ 3 ] ]

let subedges_disjoint () =
  let h = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ] ] in
  let { Ghd.Subedges.candidates; complete } = Ghd.Subedges.f_global h ~k:2 in
  Alcotest.(check bool) "complete" true complete;
  Alcotest.(check int) "no intersections, no subedges" 0 (List.length candidates)

let subedges_truncation () =
  let big =
    H.of_int_edges
      (List.init 12 (fun i -> List.init 14 (fun j -> (i + (j * 5)) mod 40)))
  in
  let { Ghd.Subedges.complete; _ } = Ghd.Subedges.f_global ~max_subedges:50 big ~k:3 in
  Alcotest.(check bool) "reports truncation" false complete

let subedges_local_smaller () =
  let h = H.of_int_edges [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 2; 3; 4 ]; [ 4; 5; 0 ] ] in
  let global = (Ghd.Subedges.f_global h ~k:2).Ghd.Subedges.candidates in
  let comp = Bitset.of_list 4 [ 0; 1 ] in
  let local = (Ghd.Subedges.f_local h ~k:2 ~comp).Ghd.Subedges.candidates in
  Alcotest.(check bool) "local no bigger than global" true
    (List.length local <= List.length global)

(* --- portfolio ----------------------------------------------------------- *)

let portfolio_yes () =
  match Ghd.Portfolio.check triangle ~k:2 with
  | Ghd.Portfolio.Yes (d, _) ->
      Alcotest.(check bool) "valid" true (Decomp.is_valid_ghd triangle d)
  | _ -> Alcotest.fail "expected yes"

let portfolio_no () =
  match Ghd.Portfolio.check fano ~k:2 with
  | Ghd.Portfolio.No _ -> ()
  | _ -> Alcotest.fail "expected no"

let portfolio_timeout () =
  let budget () = Kit.Deadline.of_fuel 10 in
  match Ghd.Portfolio.check ~budget fano ~k:2 with
  | Ghd.Portfolio.All_timeout -> ()
  | _ -> Alcotest.fail "expected all-timeout with tiny fuel"

let balsep_timeout_propagates () =
  (* A fuel budget expiring mid-search must surface as Timeout (exact =
     false), never as a partial decomposition or an unproven "no". *)
  let a = Ghd.Bal_sep.solve ~deadline:(Kit.Deadline.of_fuel 5) fano ~k:2 in
  (match a.Ghd.Bal_sep.outcome with
  | Detk.Timeout -> ()
  | Detk.Decomposition _ | Detk.No_decomposition ->
      Alcotest.fail "expected a timeout with tiny fuel");
  Alcotest.(check bool) "timeout is inexact" false a.Ghd.Bal_sep.exact

let verdict_kind = function
  | Ghd.Portfolio.Yes _ -> `Yes
  | Ghd.Portfolio.No _ -> `No
  | Ghd.Portfolio.All_timeout -> `Timeout

let race_agrees_with_check () =
  List.iter
    (fun (name, h, k) ->
      let c = verdict_kind (Ghd.Portfolio.check h ~k) in
      let r = verdict_kind (Ghd.Portfolio.race h ~k) in
      Alcotest.(check bool)
        (Printf.sprintf "%s k=%d: race = check" name k)
        true (c = r))
    [
      ("triangle", triangle, 1); ("triangle", triangle, 2);
      ("fano", fano, 2); ("fano", fano, 3);
      ("C7", cycle 7, 2); ("wide-overlap", wide_overlap, 2);
    ]

let race_yes_is_valid () =
  match Ghd.Portfolio.race triangle ~k:2 with
  | Ghd.Portfolio.Yes (d, _) ->
      Alcotest.(check bool) "valid" true (Decomp.is_valid_ghd triangle d)
  | _ -> Alcotest.fail "expected yes"

let race_timeout () =
  let budget () = Kit.Deadline.of_fuel 10 in
  match Ghd.Portfolio.race ~budget fano ~k:2 with
  | Ghd.Portfolio.All_timeout -> ()
  | _ -> Alcotest.fail "expected all-timeout with tiny fuel"

(* --- race loser discipline ------------------------------------------------ *)

let with_metrics f =
  Kit.Metrics.reset ();
  Kit.Metrics.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Kit.Metrics.enabled := false;
      Kit.Metrics.reset ())
    f

let solver_metric n =
  List.exists
    (fun p ->
      String.length n >= String.length p && String.sub n 0 (String.length p) = p)
    [ "balsep."; "detk."; "parbalsep."; "localbip."; "globalbip."; "subedges." ]

(* A member whose cancel flag is already up contributes nothing to the
   solver counters: Deadline.check raises before any search metric ticks.
   Pinned for all four members, including the intra-parallel one. *)
let cancelled_member_never_ticks () =
  let c = Kit.Deadline.new_cancel () in
  Kit.Deadline.cancel c;
  let budget () = Kit.Deadline.with_cancel c Kit.Deadline.none in
  with_metrics (fun () ->
      (match
         Ghd.Portfolio.check ~budget ~members:Ghd.Portfolio.order_with_intra
           ~intra_jobs:4 fano ~k:2
       with
      | Ghd.Portfolio.All_timeout -> ()
      | _ -> Alcotest.fail "expected all-timeout under a cancelled flag");
      let snap = Kit.Metrics.snapshot () in
      List.iter
        (fun (n, v) ->
          if solver_metric n && v <> 0 then
            Alcotest.failf "cancelled member ticked %s = %d" n v)
        snap.Kit.Metrics.counters;
      List.iter
        (fun (n, (_, counts)) ->
          if solver_metric n && Array.fold_left ( + ) 0 counts > 0 then
            Alcotest.failf "cancelled member observed histogram %s" n)
        snap.Kit.Metrics.histograms)

(* The only post-cancellation traces a loser leaves are portfolio-side:
   exactly one cancelled_members tick paired with one cancel_latency
   span. Which members get cancelled (rather than finishing first) is
   schedule-dependent, so the test pins the pairing and the bound, not
   the count. *)
let race_cancel_accounting () =
  with_metrics (fun () ->
      ignore (Ghd.Portfolio.race wide_overlap ~k:2);
      ignore (Ghd.Portfolio.race fano ~k:2);
      let snap = Kit.Metrics.snapshot () in
      let cancelled = Kit.Metrics.get snap "portfolio.cancelled_members" in
      let spans, _ = Kit.Metrics.get_timer snap "portfolio.cancel_latency" in
      Alcotest.(check int) "one latency span per cancelled member" cancelled
        spans;
      Alcotest.(check bool) "at most members-1 cancelled per race" true
        (cancelled <= 2 * (List.length Ghd.Portfolio.order - 1)))

let portfolio_improvement () =
  (* hw(fano) = 3 and ghw(fano) = 3: no improvement possible. *)
  (match Ghd.Portfolio.ghw_improvement fano ~hw:3 with
  | `Not_improvable -> ()
  | `Improved _ -> Alcotest.fail "fano ghw cannot be 2"
  | `Unknown -> Alcotest.fail "unexpected timeout");
  match Ghd.Portfolio.ghw_improvement triangle ~hw:2 with
  | `Not_improvable -> ()
  | _ -> Alcotest.fail "hw 2 never improves"

(* --- cross-validation properties ----------------------------------------- *)

let random_hg_gen =
  QCheck.Gen.(
    let* n_edges = int_range 2 6 in
    let* edges =
      list_repeat n_edges
        (let* a = int_range 1 4 in
         list_repeat a (int_bound 6))
    in
    let edges = List.map (List.sort_uniq compare) edges in
    let edges = List.filter (( <> ) []) edges in
    return (if edges = [] then [ [ 0 ] ] else edges))

let verdict o = match o with
  | Detk.Decomposition _ -> `Yes
  | Detk.No_decomposition -> `No
  | Detk.Timeout -> `Timeout

let prop_algorithms_agree =
  QCheck.Test.make ~name:"GlobalBIP, LocalBIP and BalSep agree" ~count:120
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      List.for_all
        (fun k ->
          let g = verdict (run Global h k)
          and l = verdict (run Local h k)
          and b = verdict (run Balsep h k) in
          g = l && l = b)
        [ 1; 2 ])

let prop_ghd_valid =
  QCheck.Test.make ~name:"all produced GHDs validate" ~count:120
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      List.for_all
        (fun (alg, k) ->
          match run alg h k with
          | Detk.Decomposition d -> Decomp.is_valid_ghd h d && Decomp.width d <= k
          | Detk.No_decomposition | Detk.Timeout -> true)
        [ (Global, 1); (Global, 2); (Local, 2); (Balsep, 1); (Balsep, 2); (Balsep, 3) ])

let prop_ghw_le_hw =
  QCheck.Test.make ~name:"HD yes at k implies GHD yes at k" ~count:120
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      List.for_all
        (fun k ->
          match Detk.solve h ~k with
          | Detk.Decomposition _ ->
              List.for_all
                (fun alg ->
                  match run alg h k with
                  | Detk.Decomposition _ -> true
                  | Detk.No_decomposition | Detk.Timeout -> false)
                all_algs
          | Detk.No_decomposition | Detk.Timeout -> true)
        [ 1; 2 ])

let prop_ghd_no_implies_hd_no =
  QCheck.Test.make ~name:"GHD no at k implies HD no at k" ~count:120
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      match run Balsep h 2 with
      | Detk.No_decomposition -> (
          match Detk.solve h ~k:2 with
          | Detk.No_decomposition -> true
          | Detk.Decomposition _ | Detk.Timeout -> false)
      | Detk.Decomposition _ | Detk.Timeout -> true)

let prop_balsep_ablation_sound =
  (* Without subedges BalSep stays sound: any yes is a valid GHD. *)
  QCheck.Test.make ~name:"BalSep without subedges is sound" ~count:80
    (QCheck.make random_hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      match (Ghd.Bal_sep.solve ~use_subedges:false h ~k:2).Ghd.Bal_sep.outcome with
      | Detk.Decomposition d -> Decomp.is_valid_ghd h d && Decomp.width d <= 2
      | Detk.No_decomposition | Detk.Timeout -> true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ghd"
    [
      ( "known ghw",
        [
          Alcotest.test_case "triangle" `Quick ghw_triangle;
          Alcotest.test_case "cycles" `Quick ghw_cycles;
          Alcotest.test_case "fano" `Quick ghw_fano;
          Alcotest.test_case "acyclic" `Quick ghw_acyclic;
          Alcotest.test_case "wide overlap" `Quick ghw_wide_overlap;
          Alcotest.test_case "disconnected" `Quick ghw_disconnected;
        ] );
      ( "subedges",
        [
          Alcotest.test_case "small exact" `Quick subedges_small;
          Alcotest.test_case "disjoint edges" `Quick subedges_disjoint;
          Alcotest.test_case "truncation reported" `Quick subedges_truncation;
          Alcotest.test_case "local vs global" `Quick subedges_local_smaller;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "yes" `Quick portfolio_yes;
          Alcotest.test_case "no" `Quick portfolio_no;
          Alcotest.test_case "timeout" `Quick portfolio_timeout;
          Alcotest.test_case "balsep timeout propagates" `Quick
            balsep_timeout_propagates;
          Alcotest.test_case "race = check" `Quick race_agrees_with_check;
          Alcotest.test_case "race yes valid" `Quick race_yes_is_valid;
          Alcotest.test_case "race timeout" `Quick race_timeout;
          Alcotest.test_case "cancelled member never ticks" `Quick
            cancelled_member_never_ticks;
          Alcotest.test_case "race cancel accounting" `Quick
            race_cancel_accounting;
          Alcotest.test_case "improvement" `Quick portfolio_improvement;
        ] );
      ( "properties",
        [
          qt prop_algorithms_agree;
          qt prop_ghd_valid;
          qt prop_ghw_le_hw;
          qt prop_ghd_no_implies_hd_no;
          qt prop_balsep_ablation_sound;
        ] );
    ]
