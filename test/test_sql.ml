(* Tests for the SQL-to-hypergraph pipeline, built around the paper's own
   example queries (§5.2-5.4, Listings 1-3). *)

module H = Hg.Hypergraph

let tab_schema = Sql.Schema.of_list [ ("tab", [ "a"; "b"; "c" ]) ]

let convert ?(schema = tab_schema) src =
  match Sql.Convert.sql_to_hypergraphs ~schema src with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok results -> results

let hypergraph_of conv =
  match conv.Sql.Convert.hypergraph with
  | Some h -> h
  | None -> Alcotest.fail "expected a hypergraph"

(* Listing 1: the conjunctive core keeps the join, drops the comparison
   with a constant (>) and the disequality. *)
let query1 () =
  let results =
    convert
      {| SELECT * FROM tab t1, tab t2
         WHERE t1.a = t2.a AND t1.b > 5 AND t1.c <> t2.c; |}
  in
  Alcotest.(check int) "one simple query" 1 (List.length results);
  let h = hypergraph_of (snd (List.hd results)) in
  Alcotest.(check int) "two edges" 2 h.H.n_edges;
  (* 6 attribute vertices, one merge (t1.a = t2.a). *)
  Alcotest.(check int) "five vertices" 5 h.H.n_vertices;
  Alcotest.(check int) "edges share exactly the join vertex" 1
    (Kit.Bitset.inter_cardinal (H.edge h 0) (H.edge h 1));
  Alcotest.(check int) "arity 3" 3 (H.arity h)

(* Listing 2: the IN-subquery is extracted separately; the correlated
   EXISTS subquery is discarded (cycle in the dependency graph). *)
let query2 () =
  let results =
    convert
      {| SELECT * FROM tab t1, tab t2
         WHERE t1.a = t2.a
         AND t1.b IN (SELECT tab.b FROM tab WHERE tab.c = 'ok')
         AND EXISTS (SELECT * FROM differentTable dt WHERE dt.a = t1.a); |}
  in
  (* Main query + the one uncorrelated subquery. *)
  Alcotest.(check int) "two simple queries" 2 (List.length results);
  let ids = List.map fst results in
  Alcotest.(check bool) "main query present" true (List.mem "q" ids);
  Alcotest.(check bool) "subquery present" true (List.mem "q.sub1" ids);
  (* The correlated subquery must be reported dropped. *)
  let main = List.assoc "q" results in
  Alcotest.(check bool) "correlated drop warned" true
    (List.exists
       (fun w ->
         let re = Str.regexp_string "correlated" in
         try ignore (Str.search_forward re w 0); true with Not_found -> false)
       main.Sql.Convert.warnings);
  (* Subquery hypergraph: single tab edge with c removed (constant). *)
  let sub = hypergraph_of (List.assoc "q.sub1" results) in
  Alcotest.(check int) "subquery edges" 1 sub.H.n_edges;
  Alcotest.(check int) "subquery vertices (c removed)" 2 sub.H.n_vertices

(* Listing 3: view expansion creates the combined hypergraph of Figure 2:
   4 edges of arity 3, 7 vertices after the 5 merges, and it is cyclic. *)
let query3 () =
  let results =
    convert
      {| WITH crossView AS (
           SELECT t1.a a1, t1.c c1, t2.a a2, t2.c c2
           FROM tab t1, tab t2
           WHERE t1.b = t2.b )
         SELECT *
         FROM tab t1, tab t2, crossView cr
         WHERE t1.a = cr.a1 AND t1.c = cr.a2 AND t2.a = cr.c1 AND t2.c = cr.c2; |}
  in
  Alcotest.(check int) "one simple query" 1 (List.length results);
  let h = hypergraph_of (snd (List.hd results)) in
  Alcotest.(check int) "four edges" 4 h.H.n_edges;
  Alcotest.(check int) "seven vertices" 7 h.H.n_vertices;
  Alcotest.(check int) "arity 3" 3 (H.arity h);
  (* The combined query is cyclic: hw = 2. *)
  (match Detk.solve h ~k:1 with
  | Detk.No_decomposition -> ()
  | _ -> Alcotest.fail "expected cyclic (hw > 1)");
  match Detk.solve h ~k:2 with
  | Detk.Decomposition d ->
      Alcotest.(check bool) "valid" true (Decomp.is_valid_hd h d)
  | _ -> Alcotest.fail "expected hw = 2"

let setop_split () =
  let results =
    convert
      {| SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a
         UNION
         SELECT * FROM tab t3, tab t4 WHERE t3.b = t4.b; |}
  in
  Alcotest.(check int) "two operand queries" 2 (List.length results);
  List.iter
    (fun (_, conv) ->
      let h = hypergraph_of conv in
      Alcotest.(check int) "two edges each" 2 h.H.n_edges)
    results

let join_on_syntax () =
  let results =
    convert
      {| SELECT t1.a FROM tab t1 JOIN tab t2 ON t1.a = t2.a
         LEFT OUTER JOIN tab t3 ON t2.b = t3.b; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  Alcotest.(check int) "three edges" 3 h.H.n_edges;
  (* chain t1 - t2 - t3: acyclic *)
  match Detk.solve h ~k:1 with
  | Detk.Decomposition _ -> ()
  | _ -> Alcotest.fail "join chain should be acyclic"

let or_conditions_dropped () =
  let results =
    convert
      {| SELECT * FROM tab t1, tab t2
         WHERE (t1.a = t2.a OR t1.b = t2.b) AND t1.c = t2.c; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  (* Only the top-level conjunct t1.c = t2.c merges; the OR is dropped. *)
  Alcotest.(check int) "one merge only" 5 h.H.n_vertices

let constant_deletion_propagates () =
  (* a = const and a = b deletes the whole class {a, b}. *)
  let results =
    convert
      {| SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a AND t2.a = 1; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  (* t1: {b,c}, t2: {b,c}; disjoint after the class deletion. *)
  Alcotest.(check int) "four vertices" 4 h.H.n_vertices;
  Alcotest.(check int) "no shared vertices" 0
    (Kit.Bitset.inter_cardinal (H.edge h 0) (H.edge h 1))

let duplicate_edges_dropped () =
  let results =
    convert {| SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a AND t1.b = t2.b AND t1.c = t2.c; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  Alcotest.(check int) "identical instances collapse" 1 h.H.n_edges

let schemaless_inference () =
  (* Without a schema, attributes are the referenced columns. *)
  let results =
    convert ~schema:Sql.Schema.empty
      {| SELECT r.u FROM r, s WHERE r.x = s.y AND s.w = r.u; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  (* r = {u, x}, s = {y~x, w~u}: both classes shared, but r and s remain
     distinct edges only through their referenced columns; here they merge
     to the same member set, so dedup must collapse them. *)
  Alcotest.(check int) "edges collapse" 1 h.H.n_edges;
  Alcotest.(check int) "two merged classes" 2 h.H.n_vertices;
  (* A query where the two relations keep distinct attribute sets. *)
  let results =
    convert ~schema:Sql.Schema.empty
      {| SELECT r.u FROM r, s WHERE r.x = s.y AND r.z > 1 AND s.v IS NOT NULL; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  Alcotest.(check int) "two edges" 2 h.H.n_edges;
  (* r = {u, x, z}, s = {x (merged), v}: classes u, x~y, z, v. *)
  Alcotest.(check int) "four vertices" 4 h.H.n_vertices

let parse_errors () =
  (match Sql.Parser.parse "SELECT FROM WHERE" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage should fail");
  (match Sql.Parser.parse "SELECT * FROM t WHERE a =" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated should fail");
  match Sql.Parser.parse "SELECT * FROM t; leftover" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing should fail"

let lexer_features () =
  (match Sql.Lexer.create "SELECT 'it''s' -- comment\n /* block */ x" with
  | Error d -> Alcotest.fail d.Kit.Diag.message
  | Ok (l, diags) ->
      Alcotest.(check int) "no diagnostics" 0 (List.length diags);
      let rec all acc =
        match Sql.Lexer.next l with
        | Sql.Lexer.Eof -> List.rev acc
        | t -> all (t :: acc)
      in
      Alcotest.(check int) "three tokens" 3 (List.length (all [])));
  (* The lexer recovers from an unterminated string: the statement still
     tokenizes, with one diagnostic pointing at the opening quote. *)
  match Sql.Lexer.create "SELECT 'unterminated" with
  | Error d -> Alcotest.fail d.Kit.Diag.message
  | Ok (_, diags) -> (
      match diags with
      | [ d ] ->
          Alcotest.(check bool) "mentions the string" true
            (String.length d.Kit.Diag.message > 0);
          Alcotest.(check int) "span starts at the quote" 7
            d.Kit.Diag.span.Kit.Diag.start
      | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds))

(* Tentpole acceptance: a file with three independent mistakes reports
   several distinct file:line:col diagnostics with carets in one pass. *)
let multi_error_report () =
  let src =
    "SELECT a FROM WHERE x = 1;\n\
     SELECT 'unterminated;\n\
     SELECT b FROM t GROUP BY;\n"
  in
  match Sql.Parser.parse_report src with
  | Ok _ -> Alcotest.fail "broken file must not parse"
  | Error ds ->
      Alcotest.(check bool)
        (Printf.sprintf "at least 2 diagnostics (got %d)" (List.length ds))
        true
        (List.length ds >= 2);
      (* Diagnostics must land on at least two distinct lines. *)
      let lines =
        List.sort_uniq compare
          (List.map
             (fun d ->
               (Kit.Diag.position src d.Kit.Diag.span.Kit.Diag.start)
                 .Kit.Diag.line)
             ds)
      in
      Alcotest.(check bool) "distinct lines" true (List.length lines >= 2);
      let rendered = Kit.Diag.render_all ~file:"bad.sql" ~source:src ds in
      Alcotest.(check bool) "file:line:col prefix" true
        (String.length rendered > 0
        && Str.string_match (Str.regexp "bad\\.sql:[0-9]+:[0-9]+: error:")
             rendered 0);
      Alcotest.(check bool) "carets rendered" true
        (String.contains rendered '^')

let depth_bound () =
  (* A parenthesis bomb twice the depth bound must come back as a clean
     Error naming the knob — not Stack_overflow. *)
  let depth = Kit.Limits.max_depth () * 2 in
  let src =
    "SELECT " ^ String.make depth '(' ^ "x" ^ String.make depth ')'
    ^ " FROM t"
  in
  (match Sql.Parser.parse src with
  | Error m ->
      Alcotest.(check bool) "names the knob" true
        (let re = Str.regexp_string "HB_PARSE_DEPTH" in
         try
           ignore (Str.search_forward re m 0);
           true
         with Not_found -> false)
  | Ok _ -> Alcotest.fail "paren bomb must not parse");
  (* NOT chains recurse through a different path. *)
  let nots = String.concat " " (List.init depth (fun _ -> "NOT")) in
  match Sql.Parser.parse ("SELECT a FROM t WHERE " ^ nots ^ " a = 1") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "NOT bomb must not parse"

let select_spans () =
  let src = "SELECT a FROM t WHERE a = 1" in
  match Sql.Parser.parse src with
  | Error m -> Alcotest.fail m
  | Ok { body = Select s; _ } ->
      Alcotest.(check int) "span starts at SELECT" 0 s.Sql.Ast.span.Kit.Diag.start;
      Alcotest.(check int) "span covers the statement" (String.length src)
        s.Sql.Ast.span.Kit.Diag.stop
  | Ok _ -> Alcotest.fail "expected a plain select"

let aggregates_and_groupby () =
  let results =
    convert
      {| SELECT t1.a, COUNT(*) FROM tab t1, tab t2
         WHERE t1.a = t2.a GROUP BY t1.a HAVING COUNT(*) > 1 ORDER BY t1.a DESC LIMIT 10; |}
  in
  let h = hypergraph_of (snd (List.hd results)) in
  Alcotest.(check int) "structure unaffected by aggregation" 2 h.H.n_edges

let scalar_subquery () =
  let results =
    convert
      {| SELECT * FROM tab t1 WHERE t1.a = (SELECT tab.a FROM tab WHERE tab.b = 2); |}
  in
  Alcotest.(check int) "scalar subquery extracted" 2 (List.length results)

let nested_uncorrelated_depth2 () =
  let results =
    convert
      {| SELECT * FROM tab t1 WHERE t1.a IN
           (SELECT t2.a FROM tab t2 WHERE t2.b IN
             (SELECT t3.b FROM tab t3 WHERE t3.c = 'x')); |}
  in
  let ids = List.map fst results |> List.sort compare in
  Alcotest.(check (list string)) "all three levels extracted"
    [ "q"; "q.sub1"; "q.sub1.sub1" ] ids

let () =
  Alcotest.run "sql"
    [
      ( "paper examples",
        [
          Alcotest.test_case "listing 1" `Quick query1;
          Alcotest.test_case "listing 2" `Quick query2;
          Alcotest.test_case "listing 3 (view)" `Quick query3;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "set operations split" `Quick setop_split;
          Alcotest.test_case "JOIN ... ON" `Quick join_on_syntax;
          Alcotest.test_case "OR dropped" `Quick or_conditions_dropped;
          Alcotest.test_case "constant deletes class" `Quick constant_deletion_propagates;
          Alcotest.test_case "duplicate edges dropped" `Quick duplicate_edges_dropped;
          Alcotest.test_case "schemaless inference" `Quick schemaless_inference;
          Alcotest.test_case "aggregates ignored" `Quick aggregates_and_groupby;
          Alcotest.test_case "scalar subquery" `Quick scalar_subquery;
          Alcotest.test_case "nested depth 2" `Quick nested_uncorrelated_depth2;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "parse errors" `Quick parse_errors;
          Alcotest.test_case "lexer" `Quick lexer_features;
          Alcotest.test_case "multi-error report" `Quick multi_error_report;
          Alcotest.test_case "depth bound" `Quick depth_bound;
          Alcotest.test_case "select spans" `Quick select_spans;
        ] );
    ]
