(* Tests for the hypergraph substrate: construction, I/O, components,
   invariants. *)

module Bitset = Kit.Bitset
module H = Hg.Hypergraph
module C = Hg.Components
module P = Hg.Properties

(* Named reference hypergraphs used across suites. *)
let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]
let path3 = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ] ]
let cycle4 = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ]

let fano =
  (* The Fano plane: 7 points, 7 lines of 3 points each. *)
  H.of_int_edges
    [
      [ 0; 1; 2 ];
      [ 0; 3; 4 ];
      [ 0; 5; 6 ];
      [ 1; 3; 5 ];
      [ 1; 4; 6 ];
      [ 2; 3; 6 ];
      [ 2; 4; 5 ];
    ]

let construction () =
  let h = H.of_named_edges [ ("r", [ "x"; "y" ]); ("s", [ "y"; "z" ]) ] in
  Alcotest.(check int) "vertices" 3 h.H.n_vertices;
  Alcotest.(check int) "edges" 2 h.H.n_edges;
  Alcotest.(check string) "edge name" "s" (H.edge_name h 1);
  Alcotest.(check string) "vertex name" "z" (H.vertex_name h 2);
  Alcotest.(check int) "arity" 2 (H.arity h);
  Alcotest.(check (list int)) "edge 0" [ 0; 1 ] (Bitset.to_list (H.edge h 0))

let construction_errors () =
  Alcotest.check_raises "empty edge"
    (Invalid_argument "Hypergraph.create: empty edge") (fun () ->
      ignore (H.of_named_edges [ ("r", []) ]))

let incidence () =
  let h = triangle in
  Alcotest.(check (list int))
    "vertex 1 in edges 0,1" [ 0; 1 ]
    (Bitset.to_list h.H.incidence.(1));
  let touching = H.edges_touching h (Bitset.of_list 3 [ 0 ]) in
  Alcotest.(check (list int)) "edges touching v0" [ 0; 2 ] (Bitset.to_list touching)

let vertices_of_edges () =
  let vs = H.vertices_of_edges cycle4 (Bitset.of_list 4 [ 0; 2 ]) in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (Bitset.to_list vs)

let dedup () =
  let h =
    H.of_named_edges
      [ ("a", [ "x"; "y" ]); ("b", [ "y"; "x" ]); ("c", [ "x" ]) ]
  in
  let h' = H.dedup_edges h in
  Alcotest.(check int) "dedup drops duplicate" 2 h'.H.n_edges

let roundtrip () =
  let s = H.to_string fano in
  match H.parse s with
  | Error m -> Alcotest.fail m
  | Ok h' ->
      Alcotest.(check bool) "structure preserved" true (H.equal_structure fano h')

let parse_flexible () =
  let text = "% a comment\n r1 (x, y),\n r2(y,z),\nr3(z , x)." in
  match H.parse text with
  | Error m -> Alcotest.fail m
  | Ok h ->
      Alcotest.(check int) "edges" 3 h.H.n_edges;
      let expected =
        H.of_named_edges
          [ ("a", [ "x"; "y" ]); ("b", [ "y"; "z" ]); ("c", [ "z"; "x" ]) ]
      in
      Alcotest.(check bool) "triangle over x,y,z" true (H.equal_structure h expected);
      (* equal_structure compares via names, so the int-edge triangle
         (named v0..v2) differs. *)
      Alcotest.(check bool) "names matter" false (H.equal_structure h triangle)

let parse_errors () =
  (match H.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should fail");
  (match H.parse "r(x," with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unclosed should fail");
  match H.parse "r(x). garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing should fail"

let parse_file_robust () =
  let path = Filename.temp_file "hb" ".hg" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let text = H.to_string fano in
  write text;
  (match H.parse_file path with
  | Ok h -> Alcotest.(check bool) "roundtrip" true (H.equal_structure fano h)
  | Error m -> Alcotest.fail m);
  (* Truncate mid-edge (right after the last '('): always Error, never an
     escaped exception, and the channel must not leak — exercised well
     past the typical 1024-fd limit. *)
  write (String.sub text 0 (String.rindex text '(' + 1));
  for _ = 1 to 1100 do
    match H.parse_file path with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "truncated file should not parse"
  done;
  match H.parse_file (path ^ ".does-not-exist") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should fail"

(* --- components --------------------------------------------------------- *)

let components_empty_separator () =
  let comps = C.components path3 ~within:(H.all_edges path3) (Bitset.empty 3) in
  Alcotest.(check int) "connected -> one component" 1 (List.length comps)

let components_cut_vertex () =
  (* Removing the middle vertex of the path disconnects it. *)
  let comps = C.components path3 ~within:(H.all_edges path3) (Bitset.of_list 3 [ 1 ]) in
  Alcotest.(check int) "two components" 2 (List.length comps)

let components_absorbed_edges () =
  (* Edges fully inside the separator vanish from all components. *)
  let h = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let comps = C.components h ~within:(H.all_edges h) (Bitset.of_list 4 [ 1; 2 ]) in
  let sizes = List.map Bitset.cardinal comps |> List.sort compare in
  Alcotest.(check (list int)) "middle edge absorbed" [ 1; 1 ] sizes

let components_partition () =
  (* Components partition the non-absorbed edges of [within]. *)
  let h = cycle4 in
  let u = Bitset.of_list 4 [ 0; 2 ] in
  let comps = C.components h ~within:(H.all_edges h) u in
  Alcotest.(check int) "cycle split by opposite vertices" 2 (List.length comps);
  let all = List.fold_left Bitset.union (Bitset.empty 4) comps in
  Alcotest.(check int) "all edges present" 4 (Bitset.cardinal all)

let components_within_subset () =
  let h = cycle4 in
  let within = Bitset.of_list 4 [ 0; 1 ] in
  let comps = C.components h ~within (Bitset.empty 4) in
  Alcotest.(check int) "edges 0-1 share vertex 1" 1 (List.length comps)

let components_extended_special () =
  (* A special edge glues two otherwise disconnected ordinary edges. *)
  let h = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ] ] in
  let special = [| Bitset.of_list 4 [ 1; 2 ] |] in
  let comps = C.components_extended h ~within:(H.all_edges h) ~special (Bitset.empty 4) in
  Alcotest.(check int) "one glued component" 1 (List.length comps);
  let es, sps = List.hd comps in
  Alcotest.(check int) "ordinary edges" 2 (Bitset.cardinal es);
  Alcotest.(check (list int)) "special edges" [ 0 ] sps

let components_extended_separated () =
  let h = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ] ] in
  let special = [| Bitset.of_list 4 [ 1; 2 ] |] in
  (* Separate exactly on the special edge's vertices. *)
  let comps =
    C.components_extended h ~within:(H.all_edges h) ~special (Bitset.of_list 4 [ 1; 2 ])
  in
  Alcotest.(check int) "two components, special absorbed" 2 (List.length comps);
  List.iter (fun (_, sps) -> Alcotest.(check (list int)) "no special" [] sps) comps

let balanced_separator () =
  let h = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  (* Vertex 2 splits the path of 4 edges into components of size 2 and 2. *)
  Alcotest.(check bool)
    "middle is balanced" true
    (C.is_balanced h ~within:(H.all_edges h) ~special:[||] (Bitset.of_list 5 [ 2 ]));
  (* Vertex 0 leaves a single component with all 4 edges: unbalanced. *)
  Alcotest.(check bool)
    "end is not balanced" false
    (C.is_balanced h ~within:(H.all_edges h) ~special:[||] (Bitset.of_list 5 [ 0 ]))

let connected_check () =
  Alcotest.(check bool) "triangle connected" true (C.connected triangle);
  let h = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "two islands" false (C.connected h)

(* --- properties --------------------------------------------------------- *)

let degree () =
  Alcotest.(check int) "triangle degree" 2 (P.degree triangle);
  Alcotest.(check int) "fano degree" 3 (P.degree fano);
  let star = H.of_int_edges [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 0; 4 ] ] in
  Alcotest.(check int) "star degree" 4 (P.degree star)

let intersection_size () =
  Alcotest.(check int) "triangle bip" 1 (P.intersection_size triangle);
  Alcotest.(check int) "fano bip" 1 (P.intersection_size fano);
  let h = H.of_int_edges [ [ 0; 1; 2; 3 ]; [ 1; 2; 3; 4 ] ] in
  Alcotest.(check int) "large overlap" 3 (P.intersection_size h);
  let single = H.of_int_edges [ [ 0; 1 ] ] in
  Alcotest.(check int) "single edge has bip 0" 0 (P.intersection_size single)

let multi_intersection () =
  let h =
    H.of_int_edges [ [ 0; 1; 2; 9 ]; [ 0; 1; 2; 8 ]; [ 0; 1; 3; 7 ]; [ 0; 4; 5; 6 ] ]
  in
  Alcotest.(check int) "bip = pairwise" 3 (P.multi_intersection_size h ~c:2);
  Alcotest.(check int) "3-bmip" 2 (P.multi_intersection_size h ~c:3);
  Alcotest.(check int) "4-bmip" 1 (P.multi_intersection_size h ~c:4);
  Alcotest.(check int) "c larger than m" 0 (P.multi_intersection_size h ~c:5)

let multi_intersection_agrees_with_pairwise =
  (* Random hypergraphs: c=2 must agree with the dedicated pairwise scan. *)
  QCheck.Test.make ~name:"2-bmip equals intersection_size" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 8) (list_size (int_range 1 5) (int_bound 9))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (fun e -> e <> []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      P.multi_intersection_size h ~c:2 = P.intersection_size h)

let vc_dimension () =
  (* A single edge shatters nothing: even a singleton {v} needs the empty
     trace, i.e. an edge avoiding v. *)
  let single = H.of_int_edges [ [ 0; 1; 2 ] ] in
  Alcotest.(check int) "single edge" 0 (P.vc_dimension single);
  Alcotest.(check int) "triangle" 1 (P.vc_dimension triangle);
  (* All four traces of {0,1} present (edge [2] provides the empty one). *)
  let pow2 = H.of_int_edges [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2 ] ] in
  Alcotest.(check int) "powerset of pair" 2 (P.vc_dimension pow2);
  Alcotest.(check int) "fano vc" 2 (P.vc_dimension fano)

let vc_dimension_empty_trace () =
  (* Shattering requires the empty trace: an edge avoiding the set. *)
  let h = H.of_int_edges [ [ 0; 1 ]; [ 0 ]; [ 1 ]; [ 2 ] ] in
  Alcotest.(check int) "vc 2 with empty trace via e3" 2 (P.vc_dimension h)

let vc_timeout () =
  let big =
    H.of_int_edges (List.init 40 (fun i -> List.init 15 (fun j -> (i * 7 + j * 3) mod 60)))
  in
  match P.vc_dimension ~deadline:(Kit.Deadline.of_fuel 10) big with
  | _ -> Alcotest.fail "expected timeout"
  | exception Kit.Deadline.Timed_out -> ()

let profile () =
  let p = P.profile fano in
  Alcotest.(check int) "vertices" 7 p.P.vertices;
  Alcotest.(check int) "edges" 7 p.P.edges;
  Alcotest.(check int) "arity" 3 p.P.arity;
  Alcotest.(check int) "degree" 3 p.P.degree;
  Alcotest.(check int) "bip" 1 p.P.bip;
  Alcotest.(check (option int)) "vc" (Some 2) p.P.vc_dim

let n_gt_m () =
  Alcotest.(check bool) "triangle n=m" false (P.has_more_vertices_than_edges triangle);
  let h = H.of_int_edges [ [ 0; 1; 2; 3; 4 ] ] in
  Alcotest.(check bool) "one big edge" true (P.has_more_vertices_than_edges h)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hypergraph"
    [
      ( "construction",
        [
          Alcotest.test_case "named edges" `Quick construction;
          Alcotest.test_case "errors" `Quick construction_errors;
          Alcotest.test_case "incidence" `Quick incidence;
          Alcotest.test_case "vertices_of_edges" `Quick vertices_of_edges;
          Alcotest.test_case "dedup" `Quick dedup;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick roundtrip;
          Alcotest.test_case "flexible input" `Quick parse_flexible;
          Alcotest.test_case "errors" `Quick parse_errors;
          Alcotest.test_case "file robustness" `Quick parse_file_robust;
        ] );
      ( "components",
        [
          Alcotest.test_case "empty separator" `Quick components_empty_separator;
          Alcotest.test_case "cut vertex" `Quick components_cut_vertex;
          Alcotest.test_case "absorbed edges" `Quick components_absorbed_edges;
          Alcotest.test_case "partition" `Quick components_partition;
          Alcotest.test_case "within subset" `Quick components_within_subset;
          Alcotest.test_case "special glue" `Quick components_extended_special;
          Alcotest.test_case "special separated" `Quick components_extended_separated;
          Alcotest.test_case "balanced" `Quick balanced_separator;
          Alcotest.test_case "connected" `Quick connected_check;
        ] );
      ( "properties",
        [
          Alcotest.test_case "degree" `Quick degree;
          Alcotest.test_case "intersection size" `Quick intersection_size;
          Alcotest.test_case "multi-intersection" `Quick multi_intersection;
          qt multi_intersection_agrees_with_pairwise;
          Alcotest.test_case "vc dimension" `Quick vc_dimension;
          Alcotest.test_case "vc empty trace" `Quick vc_dimension_empty_trace;
          Alcotest.test_case "vc timeout" `Quick vc_timeout;
          Alcotest.test_case "profile" `Quick profile;
          Alcotest.test_case "n > m" `Quick n_gt_m;
        ] );
    ]
