(* Property-based validation of every decomposition algorithm: ~200 seeded
   random hypergraphs, every Decomposition answer is re-checked against the
   formal HD/GHD conditions, exact "no" answers from Detk are cross-checked
   against an independent brute-force normal-form search on small
   instances, and the exact verdicts of the different GHD algorithms must
   agree with each other and with the HD solver. *)

module Bitset = Kit.Bitset
module Hypergraph = Hg.Hypergraph

let ks = [ 1; 2; 3 ]

(* Fuel, not wall clock: verdicts (and therefore this test) are
   bit-reproducible. The GHD solvers may time out on the larger draws —
   timeouts are skipped, never counted as verdicts. *)
let ghd_fuel () = Kit.Deadline.of_fuel 50_000

(* --- the instance corpus ---------------------------------------------------- *)

let corpus =
  lazy
    (let out = ref [] in
     let push name h = out := (name, h) :: !out in
     let rng = Kit.Rng.create 20190607 in
     (* 60 small random CQs. *)
     for i = 1 to 60 do
       let n_vertices = 4 + Kit.Rng.int rng 6 in
       let n_edges = 2 + Kit.Rng.int rng 5 in
       let max_arity = 3 + Kit.Rng.int rng 2 in
       push
         (Printf.sprintf "cq-small-%d" i)
         (Gen.Random_cq.random rng ~n_vertices ~n_edges ~max_arity)
     done;
     (* 30 chains and 30 stars: known acyclic, so hw = 1 exactly. *)
     for i = 1 to 30 do
       push
         (Printf.sprintf "chain-%d" i)
         (Gen.Random_cq.chain rng ~n_edges:(2 + Kit.Rng.int rng 6)
            ~arity:(2 + Kit.Rng.int rng 3))
     done;
     for i = 1 to 30 do
       push
         (Printf.sprintf "star-%d" i)
         (Gen.Random_cq.star rng ~n_edges:(2 + Kit.Rng.int rng 6)
            ~arity:(2 + Kit.Rng.int rng 3))
     done;
     (* 40 small CSPs: heavy vertex reuse, high degrees. *)
     for i = 1 to 40 do
       let n_variables = 5 + Kit.Rng.int rng 6 in
       let n_constraints = 4 + Kit.Rng.int rng 5 in
       push
         (Printf.sprintf "csp-small-%d" i)
         (Gen.Random_csp.random rng ~n_variables ~n_constraints ~max_arity:3)
     done;
     (* 40 bigger CQs: these exercise the k = 2, 3 levels properly. *)
     for i = 1 to 40 do
       let n_vertices = 8 + Kit.Rng.int rng 7 in
       let n_edges = 5 + Kit.Rng.int rng 5 in
       push
         (Printf.sprintf "cq-big-%d" i)
         (Gen.Random_cq.random rng ~n_vertices ~n_edges ~max_arity:4)
     done;
     List.rev !out)

(* --- independent brute-force Check(HD, k) ----------------------------------- *)

(* Naive implementation of the GLS normal-form characterisation: a width-k
   HD of a [comp] of edges with connector [conn] exists iff some λ of at
   most k full edges covers [conn] and, with the bag clipped to the
   subproblem's own vertices, every remaining component (all strictly
   smaller) recursively decomposes. No memoisation, no pruning, no shared
   code with Detk beyond the component computation. *)
let brute_force_hd h ~k =
  let n_edges = h.Hypergraph.n_edges in
  let edge_sets = Array.init n_edges (Hypergraph.edge h) in
  let rec subsets i size acc =
    if size = 0 then [ acc ]
    else if i >= n_edges then []
    else subsets (i + 1) (size - 1) (i :: acc) @ subsets (i + 1) size acc
  in
  let lambdas =
    List.concat_map (fun size -> subsets 0 size []) (List.init k (fun i -> i + 1))
  in
  let rec decomposable comp conn =
    if Bitset.is_empty comp then true
    else
      let comp_vertices = Hypergraph.vertices_of_edges h comp in
      let scope = Bitset.union comp_vertices conn in
      List.exists
        (fun lambda ->
          let cover =
            List.fold_left
              (fun acc e -> Bitset.union acc edge_sets.(e))
              (Bitset.empty h.Hypergraph.n_vertices)
              lambda
          in
          Bitset.subset conn cover
          &&
          let bag = Bitset.inter cover scope in
          Bitset.intersects bag comp_vertices
          &&
          let comps = Hg.Components.components h ~within:comp bag in
          List.for_all
            (fun c -> Bitset.cardinal c < Bitset.cardinal comp)
            comps
          && List.for_all
               (fun c ->
                 decomposable c
                   (Bitset.inter bag (Hypergraph.vertices_of_edges h c)))
               comps)
        lambdas
  in
  decomposable (Hypergraph.all_edges h) (Bitset.empty h.Hypergraph.n_vertices)

(* --- validation ------------------------------------------------------------- *)

let check_decomposition ~name ~algo ~kind ~k h d =
  let violations =
    match kind with
    | `Hd -> Decomp.check_hd h d
    | `Ghd -> Decomp.check_ghd h d
  in
  (match violations with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: %s produced an invalid %s at k=%d (%d violations)"
        name algo
        (match kind with `Hd -> "HD" | `Ghd -> "GHD")
        k (List.length vs));
  if Decomp.width d > k then
    Alcotest.failf "%s: %s returned width %d > k=%d" name algo
      (Decomp.width d) k

let hd_validation () =
  let validated = ref 0 in
  List.iter
    (fun (name, h) ->
      let first_yes = ref None in
      List.iter
        (fun k ->
          match Detk.solve h ~k with
          | Detk.Decomposition d ->
              check_decomposition ~name ~algo:"Detk" ~kind:`Hd ~k h d;
              incr validated;
              if !first_yes = None then first_yes := Some k
          | Detk.No_decomposition ->
              (* Monotonicity: no "no" above an established "yes". *)
              (match !first_yes with
              | Some k0 ->
                  Alcotest.failf "%s: Detk said yes at k=%d but no at k=%d"
                    name k0 k
              | None -> ());
              if h.Hypergraph.n_edges <= 6 && brute_force_hd h ~k then
                Alcotest.failf
                  "%s: Detk says no HD of width <= %d, brute force finds one"
                  name k
          | Detk.Timeout -> Alcotest.failf "%s: unbounded Detk timed out" name)
        ks;
      (* Brute-force agreement in the other direction on tiny instances. *)
      if h.Hypergraph.n_edges <= 6 then
        List.iter
          (fun k ->
            let brute = brute_force_hd h ~k in
            let solver =
              match Detk.solve h ~k with
              | Detk.Decomposition _ -> true
              | Detk.No_decomposition -> false
              | Detk.Timeout -> brute
            in
            if brute <> solver then
              Alcotest.failf "%s: brute force %b, Detk %b at k=%d" name brute
                solver k)
          ks;
      (* Chains and stars are acyclic by construction. *)
      if
        String.length name >= 5
        && (String.sub name 0 5 = "chain" || String.sub name 0 4 = "star")
      then
        match Detk.solve h ~k:1 with
        | Detk.Decomposition _ -> ()
        | _ -> Alcotest.failf "%s: acyclic instance not hw = 1" name)
    (Lazy.force corpus);
  Alcotest.(check bool)
    (Printf.sprintf "validated %d HDs (want >= 200)" !validated)
    true (!validated >= 200)

let ghd_validation () =
  let validated = ref 0 in
  List.iter
    (fun (name, h) ->
      List.iter
        (fun k ->
          (* hw from the exact solver, for cross-checks below. *)
          let hd_yes =
            match Detk.solve h ~k with
            | Detk.Decomposition _ -> Some true
            | Detk.No_decomposition -> Some false
            | Detk.Timeout -> None
          in
          let verdicts = ref [] in
          let consider algo (outcome : Detk.outcome) exact =
            match outcome with
            | Detk.Decomposition d ->
                check_decomposition ~name ~algo ~kind:`Ghd ~k h d;
                incr validated;
                verdicts := (algo, true) :: !verdicts
            | Detk.No_decomposition when exact ->
                verdicts := (algo, false) :: !verdicts
            | Detk.No_decomposition | Detk.Timeout -> ()
          in
          (let a = Ghd.Bal_sep.solve ~deadline:(ghd_fuel ()) h ~k in
           consider "BalSep" a.Ghd.Bal_sep.outcome a.Ghd.Bal_sep.exact);
          (let a = Ghd.Global_bip.solve ~deadline:(ghd_fuel ()) h ~k in
           consider "GlobalBIP" a.Ghd.Global_bip.outcome a.Ghd.Global_bip.exact);
          (let a = Ghd.Local_bip.solve ~deadline:(ghd_fuel ()) h ~k in
           consider "LocalBIP" a.Ghd.Local_bip.outcome a.Ghd.Local_bip.exact);
          (* All exact GHD verdicts must agree. *)
          (match !verdicts with
          | [] -> ()
          | (a0, v0) :: rest ->
              List.iter
                (fun (a, v) ->
                  if v <> v0 then
                    Alcotest.failf "%s k=%d: %s says %b but %s says %b" name k
                      a v a0 v0)
                rest);
          (* ghw <= hw: an HD of width k is a GHD of width k, so an exact
             GHD "no" contradicts an HD "yes". *)
          match (hd_yes, !verdicts) with
          | Some true, (algo, false) :: _ ->
              Alcotest.failf
                "%s k=%d: Detk finds an HD but %s denies any GHD" name k algo
          | _ -> ())
        ks)
    (Lazy.force corpus);
  Alcotest.(check bool)
    (Printf.sprintf "validated %d GHDs (want > 0)" !validated)
    true (!validated > 0)

(* Failure memoisation must not change any verdict: same classification
   with the cache on and off. Unbounded runs on small repository
   instances, so fuel accounting differences cannot masquerade as
   verdict differences. *)
let memoize_parity () =
  let instances =
    Benchlib.Repository.build ~seed:2019 ~scale:0.05 ()
    |> List.filter (fun i -> i.Benchlib.Instance.hg.Hypergraph.n_edges <= 12)
  in
  let compared = ref 0 in
  List.iter
    (fun (inst : Benchlib.Instance.t) ->
      let h = inst.Benchlib.Instance.hg in
      List.iter
        (fun k ->
          let classify memoize =
            match Detk.solve ~memoize h ~k with
            | Detk.Decomposition d ->
                check_decomposition ~name:inst.Benchlib.Instance.name
                  ~algo:
                    (if memoize then "Detk(memo)" else "Detk(no-memo)")
                  ~kind:`Hd ~k h d;
                `Yes
            | Detk.No_decomposition -> `No
            | Detk.Timeout -> `Timeout
          in
          incr compared;
          if classify true <> classify false then
            Alcotest.failf "%s k=%d: memoize on/off verdicts differ"
              inst.Benchlib.Instance.name k)
        ks)
    instances;
  Alcotest.(check bool)
    (Printf.sprintf "compared %d runs (want > 0)" !compared)
    true (!compared > 0)

let () =
  Alcotest.run "valid"
    [
      ( "decompositions",
        [
          Alcotest.test_case "HD solver vs checker and brute force" `Slow
            hd_validation;
          Alcotest.test_case "GHD solvers vs checker and each other" `Slow
            ghd_validation;
          Alcotest.test_case "memoize on/off parity" `Slow memoize_parity;
        ] );
    ]
