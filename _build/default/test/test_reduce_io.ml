(* Tests for the width-preserving hypergraph reductions and decomposition
   serialisation. *)

module H = Hg.Hypergraph
module Bitset = Kit.Bitset

(* --- Reduce ------------------------------------------------------------------ *)

let subsumed_edges () =
  let h = H.of_int_edges [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 1; 2 ]; [ 3; 0 ] ] in
  let r = Hg.Reduce.reduce h in
  Alcotest.(check (list int)) "e1 and e2 subsumed" [ 1; 2 ] r.Hg.Reduce.removed_edges;
  Alcotest.(check int) "two edges kept" 2 r.Hg.Reduce.reduced.H.n_edges

let duplicates () =
  let h = H.of_int_edges [ [ 0; 1 ]; [ 0; 1 ] ] in
  let r = Hg.Reduce.reduce h in
  Alcotest.(check int) "one survivor" 1 r.Hg.Reduce.reduced.H.n_edges

let twin_vertices () =
  (* Vertices 1 and 2 occur in exactly the same edges. *)
  let h = H.of_int_edges [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] in
  let r = Hg.Reduce.reduce h in
  Alcotest.(check int) "twins merged" 3 r.Hg.Reduce.reduced.H.n_vertices;
  Alcotest.(check bool) "not a noop" false (Hg.Reduce.is_noop r)

let noop_on_irreducible () =
  let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] in
  let r = Hg.Reduce.reduce triangle in
  Alcotest.(check bool) "triangle untouched" true (Hg.Reduce.is_noop r);
  Alcotest.(check bool) "structure preserved" true
    (H.equal_structure triangle r.Hg.Reduce.reduced)

let prop_reduction_preserves_hw =
  QCheck.Test.make ~name:"reduction preserves hypertree width" ~count:150
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 6) (list_size (int_range 1 4) (int_bound 7))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      let r = Hg.Reduce.reduce h in
      let hw g =
        match Detk.hypertree_width g with Some (k, _), _ -> Some k | None, _ -> None
      in
      hw h = hw r.Hg.Reduce.reduced)

let prop_reduction_never_grows =
  QCheck.Test.make ~name:"reduction never grows the hypergraph" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 8) (list_size (int_range 1 5) (int_bound 9))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      let r = Hg.Reduce.reduce h in
      r.Hg.Reduce.reduced.H.n_edges <= h.H.n_edges
      && r.Hg.Reduce.reduced.H.n_vertices <= h.H.n_vertices)

(* --- Decomp_io ---------------------------------------------------------------- *)

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let io_roundtrip () =
  match Detk.solve triangle ~k:2 with
  | Detk.Decomposition d -> (
      let text = Decomp_io.to_text triangle d in
      match Decomp_io.of_text triangle text with
      | Error m -> Alcotest.fail m
      | Ok d' ->
          Alcotest.(check bool) "valid after roundtrip" true
            (Decomp.is_valid_hd triangle d');
          Alcotest.(check int) "same width" (Decomp.width d) (Decomp.width d');
          Alcotest.(check int) "same size" (Decomp.size d) (Decomp.size d'))
  | _ -> Alcotest.fail "triangle decomposes"

let io_roundtrip_random =
  QCheck.Test.make ~name:"decomposition text roundtrip" ~count:80
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 6) (list_size (int_range 1 4) (int_bound 7))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      match Detk.hypertree_width h with
      | Some (_, d), _ -> (
          match Decomp_io.of_text h (Decomp_io.to_text h d) with
          | Ok d' ->
              Decomp.is_valid_hd h d' && Decomp.width d' = Decomp.width d
          | Error _ -> false)
      | None, _ -> true)

let io_subedges () =
  (* A decomposition whose cover uses a subedge must survive the trip. *)
  let sub : Decomp.cover_elt =
    {
      Decomp.label = "e0~{v0}";
      vertices = Bitset.of_list 3 [ 0 ];
      source = Decomp.Subedge 0;
    }
  in
  let elt e : Decomp.cover_elt =
    {
      Decomp.label = H.edge_name triangle e;
      vertices = H.edge triangle e;
      source = Decomp.Original e;
    }
  in
  let d : Decomp.node =
    { Decomp.bag = Bitset.of_list 3 [ 0; 1; 2 ]; cover = [ sub; elt 1 ]; children = [] }
  in
  let text = Decomp_io.to_text triangle d in
  match Decomp_io.of_text triangle text with
  | Error m -> Alcotest.fail m
  | Ok d' -> (
      match (List.hd d'.Decomp.cover).Decomp.source with
      | Decomp.Subedge 0 -> ()
      | _ -> Alcotest.fail "subedge source lost")

let io_errors () =
  List.iter
    (fun text ->
      match Decomp_io.of_text triangle text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should fail: %s" text)
    [
      "";
      "{v0, v1} [nonexistent]";
      "{bogus} [e0]";
      "  {v0} [e0]" (* indented root *);
      "{v0, v1} [e0]\n{v1, v2} [e1]" (* two roots *);
      "junk";
    ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "reduce_io"
    [
      ( "reduce",
        [
          Alcotest.test_case "subsumed edges" `Quick subsumed_edges;
          Alcotest.test_case "duplicates" `Quick duplicates;
          Alcotest.test_case "twin vertices" `Quick twin_vertices;
          Alcotest.test_case "noop" `Quick noop_on_irreducible;
          qt prop_reduction_preserves_hw;
          qt prop_reduction_never_grows;
        ] );
      ( "decomp_io",
        [
          Alcotest.test_case "roundtrip" `Quick io_roundtrip;
          qt io_roundtrip_random;
          Alcotest.test_case "subedges" `Quick io_subedges;
          Alcotest.test_case "errors" `Quick io_errors;
        ] );
    ]
