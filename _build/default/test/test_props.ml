(* Cross-cutting property tests: structural invariants that tie the
   subsystems together (component partitions, LP duality, rational field
   laws, width inequalities). *)

module H = Hg.Hypergraph
module Bitset = Kit.Bitset
module Rational = Kit.Rational

let hg_gen =
  QCheck.Gen.(
    let* edges =
      list_size (int_range 1 7) (list_size (int_range 1 4) (int_bound 8))
    in
    let edges = List.map (List.sort_uniq compare) edges in
    let edges = List.filter (( <> ) []) edges in
    return (if edges = [] then [ [ 0 ] ] else edges))

(* Components of [within] w.r.t. U partition the non-absorbed edges. *)
let prop_components_partition =
  QCheck.Test.make ~name:"components partition the non-absorbed edges" ~count:200
    (QCheck.make QCheck.Gen.(pair hg_gen (list_size (int_bound 4) (int_bound 8))))
    (fun (edges, u_list) ->
      let h = H.of_int_edges edges in
      let u =
        Bitset.of_list h.H.n_vertices
          (List.filter (fun v -> v < h.H.n_vertices) u_list)
      in
      let comps = Hg.Components.components h ~within:(H.all_edges h) u in
      (* Pairwise disjoint... *)
      let rec pairwise = function
        | [] -> true
        | c :: rest ->
            List.for_all (fun c' -> not (Bitset.intersects c c')) rest
            && pairwise rest
      in
      (* ... and their union is exactly the edges not inside u. *)
      let union = List.fold_left Bitset.union (Bitset.empty h.H.n_edges) comps in
      let expected =
        Bitset.filter
          (fun e -> not (Bitset.subset (H.edge h e) u))
          (H.all_edges h)
      in
      pairwise comps && Bitset.equal union expected)

(* Edges in the same component stay connected when the separator grows
   smaller (monotonicity of [U]-connectedness). *)
let prop_components_monotone =
  QCheck.Test.make ~name:"shrinking U merges components" ~count:150
    (QCheck.make QCheck.Gen.(pair hg_gen (list_size (int_bound 4) (int_bound 8))))
    (fun (edges, u_list) ->
      let h = H.of_int_edges edges in
      let u_big =
        Bitset.of_list h.H.n_vertices
          (List.filter (fun v -> v < h.H.n_vertices) u_list)
      in
      let u_small =
        match Bitset.choose u_big with Some v -> Bitset.remove v u_big | None -> u_big
      in
      let comps_small = Hg.Components.components h ~within:(H.all_edges h) u_small in
      let comps_big = Hg.Components.components h ~within:(H.all_edges h) u_big in
      (* Every big-U component's edges lie within one small-U component or
         are absorbed. *)
      List.for_all
        (fun cb ->
          let hosts =
            List.filter (fun cs -> Bitset.intersects cs cb) comps_small
          in
          List.length hosts <= 1
          ||
          (* edges absorbed under u_small cannot host *)
          false)
        comps_big)

(* LP weak duality on random covering/packing pairs: min cover >= max
   packing, and our solver should find them equal (strong duality). *)
let prop_lp_duality =
  QCheck.Test.make ~name:"LP strong duality on cover/packing pairs" ~count:100
    (QCheck.make hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      let x = H.vertices_of_edges h (H.all_edges h) in
      let n = h.H.n_edges in
      let vars_cover = n in
      (* Primal: min 1.x  s.t. for each v in x: sum_{e ∋ v} >= 1. *)
      let rows_cover =
        Bitset.fold
          (fun v acc ->
            ( Array.init vars_cover (fun e ->
                  if Bitset.mem v (H.edge h e) then 1.0 else 0.0),
              Lp.Ge, 1.0 )
            :: acc)
          x []
      in
      (* Dual: max 1.y  s.t. for each edge: sum_{v in e} y_v <= 1. *)
      let verts = Bitset.to_list x in
      let vpos = List.mapi (fun i v -> (v, i)) verts in
      let rows_pack =
        List.init n (fun e ->
            ( Array.of_list
                (List.map
                   (fun v -> if Bitset.mem v (H.edge h e) then 1.0 else 0.0)
                   verts),
              Lp.Le, 1.0 ))
      in
      ignore vpos;
      match
        ( Lp.minimize (Array.make vars_cover 1.0) rows_cover,
          Lp.maximize (Array.make (List.length verts) 1.0) rows_pack )
      with
      | Lp.Optimal p, Lp.Optimal d -> Float.abs (p.Lp.value -. d.Lp.value) < 1e-6
      | _ -> false)

(* rho* sits between the trivial bounds and matches the LP by duality. *)
let prop_width_chain =
  QCheck.Test.make ~name:"fractional <= integral widths on witnesses" ~count:100
    (QCheck.make hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      match Detk.hypertree_width h with
      | Some (hw, hd), _ ->
          let fw = Fhd.Improve_hd.improved_width h hd in
          fw <= float_of_int hw +. 1e-9 && fw >= 1.0 -. 1e-9
      | None, _ -> true)

(* Rational arithmetic: sampled field laws. *)
let rational_gen =
  QCheck.Gen.(
    let* num = int_range (-50) 50 in
    let* den = int_range 1 20 in
    return (Rational.make num den))

let prop_rational_laws =
  QCheck.Test.make ~name:"rational field laws" ~count:300
    (QCheck.make QCheck.Gen.(triple rational_gen rational_gen rational_gen))
    (fun (a, b, c) ->
      let open Rational in
      equal (add a b) (add b a)
      && equal (mul a b) (mul b a)
      && equal (add (add a b) c) (add a (add b c))
      && equal (mul (mul a b) c) (mul a (mul b c))
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (sub (add a b) b) a
      && (equal b zero || equal (div (mul a b) b) a))

let prop_rational_compare_total =
  QCheck.Test.make ~name:"rational compare is a total order" ~count:300
    (QCheck.make QCheck.Gen.(triple rational_gen rational_gen rational_gen))
    (fun (a, b, c) ->
      let open Rational in
      (compare a b = -compare b a)
      && ((not (compare a b <= 0 && compare b c <= 0)) || compare a c <= 0)
      && Float.abs (to_float (sub a b)) < 1e-12 = (compare a b = 0))

(* GYO vs treewidth: acyclic hypergraphs have primal treewidth
   <= arity - 1 (each edge is a clique; join-tree bags are edges). *)
let prop_acyclic_tw_bound =
  QCheck.Test.make ~name:"acyclic implies tw <= arity - 1" ~count:150
    (QCheck.make hg_gen) (fun edges ->
      let h = H.of_int_edges edges in
      if Hg.Gyo.is_acyclic h then
        fst (Hg.Primal.upper_bound h) <= Stdlib.max 1 (H.arity h) - 1
        || fst (Hg.Primal.upper_bound h) <= H.arity h - 1
      else true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "props"
    [
      ( "components",
        [ qt prop_components_partition; qt prop_components_monotone ] );
      ( "lp", [ qt prop_lp_duality ] );
      ( "widths", [ qt prop_width_chain; qt prop_acyclic_tw_bound ] );
      ( "rational",
        [ qt prop_rational_laws; qt prop_rational_compare_total ] );
    ]
