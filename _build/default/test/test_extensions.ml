(* Tests for the extension modules: GYO acyclicity, primal-graph treewidth
   heuristics, the Datalog-style CQ front-end and the BMIP subedge
   variant. *)

module H = Hg.Hypergraph
module Bitset = Kit.Bitset

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]
let path = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]

(* --- GYO ------------------------------------------------------------------- *)

let gyo_basics () =
  Alcotest.(check bool) "path acyclic" true (Hg.Gyo.is_acyclic path);
  Alcotest.(check bool) "triangle cyclic" false (Hg.Gyo.is_acyclic triangle);
  let star = H.of_int_edges [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
  Alcotest.(check bool) "star acyclic" true (Hg.Gyo.is_acyclic star);
  (* The classic alpha-acyclic example containing a "cycle" covered by a
     big edge. *)
  let covered =
    H.of_int_edges [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]
  in
  Alcotest.(check bool) "covered triangle acyclic" true (Hg.Gyo.is_acyclic covered)

let gyo_duplicates_and_islands () =
  let dup = H.of_int_edges [ [ 0; 1 ]; [ 0; 1 ] ] in
  Alcotest.(check bool) "duplicate edges acyclic" true (Hg.Gyo.is_acyclic dup);
  let islands = H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5; 6 ] ] in
  match Hg.Gyo.reduce islands with
  | Some jt ->
      Alcotest.(check int) "three roots" 3 (List.length jt.Hg.Gyo.roots)
  | None -> Alcotest.fail "islands are acyclic"

let gyo_join_tree_is_hd () =
  (* The Detk k=1 fast path materialises the join tree; it must validate. *)
  let cases =
    [
      path;
      H.of_int_edges [ [ 0; 1; 2; 3 ]; [ 3; 4; 5 ]; [ 5; 6 ]; [ 3; 7 ] ];
      H.of_int_edges [ [ 0; 1 ]; [ 2; 3 ] ];
    ]
  in
  List.iter
    (fun h ->
      match Detk.solve h ~k:1 with
      | Detk.Decomposition d ->
          Alcotest.(check bool) "valid width-1 HD" true (Decomp.is_valid_hd h d);
          Alcotest.(check int) "width" 1 (Decomp.width d)
      | _ -> Alcotest.fail "expected acyclic")
    cases

let gyo_agrees_with_search =
  QCheck.Test.make ~name:"GYO agrees with DetKDecomp at k=1" ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 7) (list_size (int_range 1 4) (int_bound 8))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      let gyo = Hg.Gyo.is_acyclic h in
      let search =
        match Detk.solve ~gyo_fast_path:false h ~k:1 with
        | Detk.Decomposition _ -> true
        | Detk.No_decomposition -> false
        | Detk.Timeout -> gyo (* don't fail on timeouts *)
      in
      gyo = search)

(* --- primal graph / treewidth ------------------------------------------------ *)

let primal_graph () =
  let adj = Hg.Primal.graph triangle in
  Alcotest.(check (list int)) "neighbours of 0" [ 1; 2 ] (Bitset.to_list adj.(0));
  let h = H.of_int_edges [ [ 0; 1; 2 ] ] in
  let adj = Hg.Primal.graph h in
  Alcotest.(check bool) "edge is clique" true
    (Hg.Primal.is_clique adj (Bitset.of_list 3 [ 0; 1; 2 ]))

let treewidth_known () =
  (* Trees: tw 1. Cycles: tw 2. Cliques: tw n-1. *)
  let check name h expect =
    let ub, order = Hg.Primal.upper_bound h in
    Alcotest.(check int) (name ^ " upper") expect ub;
    Alcotest.(check int) (name ^ " order covers all") h.H.n_vertices
      (List.length order);
    let lb = Hg.Primal.lower_bound h in
    Alcotest.(check bool) (name ^ " lower <= upper") true (lb <= ub)
  in
  check "path" path 1;
  check "triangle" triangle 2;
  let c6 = H.of_int_edges (List.init 6 (fun i -> [ i; (i + 1) mod 6 ])) in
  check "C6" c6 2;
  let k5 =
    H.of_int_edges
      (List.concat_map (fun i -> List.filter_map (fun j -> if j > i then Some [ i; j ] else None) [ 0; 1; 2; 3; 4 ]) [ 0; 1; 2; 3; 4 ])
  in
  check "K5" k5 4;
  Alcotest.(check int) "K5 lower bound exact" 4 (Hg.Primal.lower_bound k5)

let treewidth_heuristics_agree_on_easy () =
  let ub_fill, _ = Hg.Primal.upper_bound ~heuristic:Hg.Primal.Min_fill path in
  let ub_deg, _ = Hg.Primal.upper_bound ~heuristic:Hg.Primal.Min_degree path in
  Alcotest.(check int) "min-fill" 1 ub_fill;
  Alcotest.(check int) "min-degree" 1 ub_deg

let prop_tw_bounds_consistent =
  QCheck.Test.make ~name:"treewidth lower <= upper" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 8) (list_size (int_range 1 4) (int_bound 9))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      Hg.Primal.lower_bound h <= fst (Hg.Primal.upper_bound h))

(* --- CQ front-end ------------------------------------------------------------- *)

let cq_parse () =
  match Cq.parse "answer(X, Z) :- r(X, Y), s(Y, Z), t(Z, 'a', 3)." with
  | Error m -> Alcotest.fail m
  | Ok rule ->
      Alcotest.(check bool) "head present" true (rule.Cq.head <> None);
      Alcotest.(check int) "three atoms" 3 (List.length rule.Cq.body);
      let t = List.nth rule.Cq.body 2 in
      Alcotest.(check int) "constants kept in AST" 3 (List.length t.Cq.terms)

let cq_hypergraph () =
  match Cq.read "q(X) :- r(X, Y), s(Y, Z), t(Z, X)." with
  | Error m -> Alcotest.fail m
  | Ok h ->
      Alcotest.(check int) "3 edges" 3 h.H.n_edges;
      Alcotest.(check int) "3 variables" 3 h.H.n_vertices;
      (* The triangle: hw 2. *)
      (match Detk.solve h ~k:1 with
      | Detk.No_decomposition -> ()
      | _ -> Alcotest.fail "triangle CQ is cyclic")

let cq_headless_and_constants () =
  (match Cq.read "r(X, b), s(X, 1)." with
  | Ok h ->
      Alcotest.(check int) "constants are not vertices" 1 h.H.n_vertices;
      Alcotest.(check int) "two atoms" 2 h.H.n_edges
  | Error m -> Alcotest.fail m);
  match Cq.read "r(a, b)." with
  | Error _ -> () (* no variables at all *)
  | Ok _ -> Alcotest.fail "constant-only CQ must fail"

let cq_errors () =
  List.iter
    (fun src ->
      match Cq.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should fail: %s" src)
    [ "r(X"; "r(X,)."; ":- r(X)."; "r(X). garbage"; "" ]

(* --- BMIP variant ---------------------------------------------------------------- *)

let bmip_subedges_smaller_base () =
  (* Two edges overlapping in a large set; a third trims the triple
     intersection down: c=3 yields the small multi-intersections that c=2
     cannot see as single base sets. *)
  let h =
    H.of_int_edges
      [ [ 0; 1; 2; 3; 4; 5 ]; [ 0; 1; 2; 3; 4; 6 ]; [ 0; 1; 7; 8 ] ]
  in
  let sets c =
    (Ghd.Subedges.f_global ~expand_limit:3 ~c h ~k:1).Ghd.Subedges.candidates
    |> List.map (fun (x : Detk.candidate) -> Bitset.to_list x.vertices)
  in
  let s2 = sets 2 and s3 = sets 3 in
  (* c=3 includes the triple intersection {0,1} as a base set. *)
  Alcotest.(check bool) "c=3 has triple intersection" true (List.mem [ 0; 1 ] s3);
  Alcotest.(check bool) "c=3 superset of c=2 bases" true
    (List.for_all (fun s -> List.mem s s3) s2)

let bmip_agrees_with_bip =
  QCheck.Test.make ~name:"GlobalBIP with c=3 agrees with c=2" ~count:80
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 2 5) (list_size (int_range 1 4) (int_bound 6))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (List.length edges >= 2);
      let h = H.of_int_edges edges in
      let verdict c =
        match (Ghd.Global_bip.solve ~c h ~k:2).Ghd.Global_bip.outcome with
        | Detk.Decomposition _ -> `Yes
        | Detk.No_decomposition -> `No
        | Detk.Timeout -> `Timeout
      in
      verdict 2 = verdict 3)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "gyo",
        [
          Alcotest.test_case "basics" `Quick gyo_basics;
          Alcotest.test_case "duplicates and islands" `Quick gyo_duplicates_and_islands;
          Alcotest.test_case "join tree is an HD" `Quick gyo_join_tree_is_hd;
          qt gyo_agrees_with_search;
        ] );
      ( "treewidth",
        [
          Alcotest.test_case "primal graph" `Quick primal_graph;
          Alcotest.test_case "known widths" `Quick treewidth_known;
          Alcotest.test_case "heuristics" `Quick treewidth_heuristics_agree_on_easy;
          qt prop_tw_bounds_consistent;
        ] );
      ( "cq",
        [
          Alcotest.test_case "parse" `Quick cq_parse;
          Alcotest.test_case "hypergraph" `Quick cq_hypergraph;
          Alcotest.test_case "headless + constants" `Quick cq_headless_and_constants;
          Alcotest.test_case "errors" `Quick cq_errors;
        ] );
      ( "bmip",
        [
          Alcotest.test_case "multi-intersection bases" `Quick bmip_subedges_smaller_base;
          qt bmip_agrees_with_bip;
        ] );
    ]
