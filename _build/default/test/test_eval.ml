(* Tests for the decomposition-guided evaluation engine: the relation
   algebra against hand-computed results, and Yannakakis evaluation
   cross-validated against the naive join on random databases. *)

module H = Hg.Hypergraph
module R = Eval.Relation
module Y = Eval.Yannakakis

let row l = Array.of_list l

let relation_basics () =
  let r = R.create ~columns:[ 2; 0 ] [ row [ 10; 1 ]; row [ 20; 2 ]; row [ 10; 1 ] ] in
  (* Columns are normalised to sorted order, rows permuted along. *)
  Alcotest.(check (list int)) "sorted columns" [ 0; 2 ] (R.columns r);
  Alcotest.(check int) "duplicates dropped" 2 (R.cardinality r);
  Alcotest.(check bool) "row present" true
    (List.exists (fun x -> x = row [ 1; 10 ]) (R.rows r))

let relation_project () =
  let r = R.create ~columns:[ 0; 1 ] [ row [ 1; 2 ]; row [ 1; 3 ]; row [ 2; 3 ] ] in
  let p = R.project r [ 0 ] in
  Alcotest.(check int) "projection dedups" 2 (R.cardinality p)

let relation_join () =
  let r = R.create ~columns:[ 0; 1 ] [ row [ 1; 2 ]; row [ 3; 4 ] ] in
  let s = R.create ~columns:[ 1; 2 ] [ row [ 2; 5 ]; row [ 2; 6 ]; row [ 9; 9 ] ] in
  let j = R.join r s in
  Alcotest.(check (list int)) "join columns" [ 0; 1; 2 ] (R.columns j);
  Alcotest.(check int) "two matches" 2 (R.cardinality j);
  Alcotest.(check bool) "tuple" true
    (List.exists (fun x -> x = row [ 1; 2; 5 ]) (R.rows j))

let relation_join_disjoint_is_product () =
  let r = R.create ~columns:[ 0 ] [ row [ 1 ]; row [ 2 ] ] in
  let s = R.create ~columns:[ 1 ] [ row [ 7 ]; row [ 8 ]; row [ 9 ] ] in
  Alcotest.(check int) "cross product" 6 (R.cardinality (R.join r s))

let relation_semijoin () =
  let r = R.create ~columns:[ 0; 1 ] [ row [ 1; 2 ]; row [ 3; 4 ] ] in
  let s = R.create ~columns:[ 1; 2 ] [ row [ 2; 5 ] ] in
  let sj = R.semijoin r s in
  Alcotest.(check int) "one survivor" 1 (R.cardinality sj);
  Alcotest.(check (list int)) "columns unchanged" [ 0; 1 ] (R.columns sj)

let relation_unit () =
  let r = R.create ~columns:[ 0 ] [ row [ 1 ] ] in
  Alcotest.(check bool) "unit is identity" true
    (R.equal r (R.join R.unit_relation r))

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let db_of_lists h lists =
  List.mapi
    (fun e rows ->
      (e, R.create ~columns:(Kit.Bitset.to_list (H.edge h e)) (List.map row rows)))
    lists

let triangle_db =
  (* r(0,1) = {(1,2),(2,3)}; s(1,2) = {(2,4),(3,5)}; t(2,0) -> columns
     sorted to (0,2): {(1,4),(9,9)}. One triangle: 1-2-4. *)
  db_of_lists triangle
    [ [ [ 1; 2 ]; [ 2; 3 ] ]; [ [ 2; 4 ]; [ 3; 5 ] ]; [ [ 1; 4 ] ] ]

let naive_triangle () =
  let result = Y.naive_join triangle triangle_db in
  Alcotest.(check int) "one triangle" 1 (R.cardinality result);
  Alcotest.(check bool) "the tuple" true
    (List.exists (fun x -> x = row [ 1; 2; 4 ]) (R.rows result))

let guided_triangle () =
  match Detk.solve triangle ~k:2 with
  | Detk.Decomposition d ->
      let result = Y.evaluate triangle triangle_db d in
      Alcotest.(check bool) "matches naive" true
        (R.equal result (Y.naive_join triangle triangle_db));
      Alcotest.(check bool) "boolean satisfiable" true
        (Y.boolean triangle triangle_db d)
  | _ -> Alcotest.fail "triangle decomposes at 2"

let unsatisfiable () =
  let db =
    db_of_lists triangle [ [ [ 1; 2 ] ]; [ [ 2; 4 ] ]; [ [ 7; 7 ] ] ]
  in
  match Detk.solve triangle ~k:2 with
  | Detk.Decomposition d ->
      Alcotest.(check bool) "boolean no" false (Y.boolean triangle db d);
      Alcotest.(check int) "empty result" 0 (R.cardinality (Y.evaluate triangle db d))
  | _ -> Alcotest.fail "triangle decomposes at 2"

let check_db_validation () =
  (match Y.check_db triangle triangle_db with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match Y.check_db triangle (List.tl triangle_db) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing relation must be reported"

(* The central property: decomposition-guided evaluation agrees with the
   naive join, for HDs from the solver on random hypergraphs and random
   databases. *)
let prop_guided_matches_naive =
  QCheck.Test.make ~name:"Yannakakis over HD = naive join" ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 10_000)
           (list_size (int_range 1 5) (list_size (int_range 1 3) (int_bound 5)))))
    (fun (seed, edges) ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      let rng = Kit.Rng.create seed in
      let db = Y.random_db rng ~rows:12 ~domain:4 h in
      match Detk.hypertree_width h with
      | Some (_, d), _ ->
          let guided = Y.evaluate h db d in
          let naive = Y.naive_join h db in
          R.equal guided naive
          && Y.boolean h db d = not (R.is_empty naive)
      | None, _ -> true)

let prop_guided_matches_naive_balsep =
  QCheck.Test.make ~name:"Yannakakis over BalSep GHD = naive join" ~count:40
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 10_000)
           (list_size (int_range 2 5) (list_size (int_range 1 3) (int_bound 5)))))
    (fun (seed, edges) ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      let rng = Kit.Rng.create seed in
      let db = Y.random_db rng ~rows:10 ~domain:4 h in
      match (Ghd.Bal_sep.solve h ~k:3).Ghd.Bal_sep.outcome with
      | Detk.Decomposition d ->
          R.equal (Y.evaluate h db d) (Y.naive_join h db)
      | Detk.No_decomposition | Detk.Timeout -> true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eval"
    [
      ( "relation",
        [
          Alcotest.test_case "create/normalise" `Quick relation_basics;
          Alcotest.test_case "project" `Quick relation_project;
          Alcotest.test_case "join" `Quick relation_join;
          Alcotest.test_case "cross product" `Quick relation_join_disjoint_is_product;
          Alcotest.test_case "semijoin" `Quick relation_semijoin;
          Alcotest.test_case "unit" `Quick relation_unit;
        ] );
      ( "yannakakis",
        [
          Alcotest.test_case "naive triangle" `Quick naive_triangle;
          Alcotest.test_case "guided triangle" `Quick guided_triangle;
          Alcotest.test_case "unsatisfiable" `Quick unsatisfiable;
          Alcotest.test_case "db validation" `Quick check_db_validation;
          qt prop_guided_matches_naive;
          qt prop_guided_matches_naive_balsep;
        ] );
    ]
