(* Tests for the simplex LP solver and fractional covers / fractionally
   improved decompositions. *)

module Bitset = Kit.Bitset
module H = Hg.Hypergraph

let feq = Alcotest.float 1e-6

let lp_basic_min () =
  match Lp.minimize [| 1.0; 1.0 |] [ ([| 1.0; 1.0 |], Lp.Ge, 1.0) ] with
  | Lp.Optimal { value; _ } -> Alcotest.check feq "min x+y, x+y>=1" 1.0 value
  | _ -> Alcotest.fail "expected optimal"

let lp_basic_max () =
  match
    Lp.maximize [| 3.0; 2.0 |]
      [
        ([| 1.0; 0.0 |], Lp.Le, 4.0);
        ([| 0.0; 1.0 |], Lp.Le, 3.0);
        ([| 1.0; 1.0 |], Lp.Le, 5.0);
      ]
  with
  | Lp.Optimal { value; x } ->
      Alcotest.check feq "max 3x+2y" 14.0 value;
      Alcotest.check feq "x" 4.0 x.(0);
      Alcotest.check feq "y" 1.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let lp_equality () =
  match
    Lp.minimize [| 1.0; 1.0 |]
      [ ([| 1.0; 2.0 |], Lp.Eq, 4.0); ([| 1.0; -1.0 |], Lp.Eq, 1.0) ]
  with
  | Lp.Optimal { value; x } ->
      Alcotest.check feq "value" 3.0 value;
      Alcotest.check feq "x" 2.0 x.(0);
      Alcotest.check feq "y" 1.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let lp_infeasible () =
  match
    Lp.minimize [| 1.0 |]
      [ ([| 1.0 |], Lp.Le, 1.0); ([| 1.0 |], Lp.Ge, 2.0) ]
  with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let lp_infeasible_negative_bound () =
  (* x <= -1 with x >= 0 is infeasible. *)
  match Lp.minimize [| 1.0 |] [ ([| 1.0 |], Lp.Le, -1.0) ] with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let lp_unbounded () =
  match Lp.maximize [| 1.0; 0.0 |] [ ([| 0.0; 1.0 |], Lp.Le, 1.0) ] with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let lp_degenerate () =
  (* Redundant constraints exercise the artificial-variable cleanup. *)
  match
    Lp.minimize [| 2.0; 3.0 |]
      [
        ([| 1.0; 1.0 |], Lp.Ge, 2.0);
        ([| 2.0; 2.0 |], Lp.Ge, 4.0);
        ([| 1.0; 1.0 |], Lp.Eq, 2.0);
      ]
  with
  | Lp.Optimal { value; _ } -> Alcotest.check feq "degenerate" 4.0 value
  | _ -> Alcotest.fail "expected optimal"

let lp_fractional_optimum () =
  (* The triangle covering LP has the fractional optimum 3/2. *)
  match
    Lp.minimize
      [| 1.0; 1.0; 1.0 |]
      [
        ([| 1.0; 0.0; 1.0 |], Lp.Ge, 1.0);
        ([| 1.0; 1.0; 0.0 |], Lp.Ge, 1.0);
        ([| 0.0; 1.0; 1.0 |], Lp.Ge, 1.0);
      ]
  with
  | Lp.Optimal { value; _ } -> Alcotest.check feq "3/2" 1.5 value
  | _ -> Alcotest.fail "expected optimal"

(* --- fractional covers --------------------------------------------------- *)

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let fano =
  H.of_int_edges
    [
      [ 0; 1; 2 ];
      [ 0; 3; 4 ];
      [ 0; 5; 6 ];
      [ 1; 3; 5 ];
      [ 1; 4; 6 ];
      [ 2; 3; 6 ];
      [ 2; 4; 5 ];
    ]

let rho_star_triangle () =
  match Fhd.Frac_cover.rho_star triangle (Bitset.full 3) with
  | Some c ->
      Alcotest.check feq "rho* = 3/2" 1.5 c.Fhd.Frac_cover.weight;
      Alcotest.(check bool)
        "verified" true
        (Fhd.Frac_cover.verify triangle (Bitset.full 3) c)
  | None -> Alcotest.fail "coverable"

let rho_star_fano () =
  match Fhd.Frac_cover.rho_star fano (Bitset.full 7) with
  | Some c -> Alcotest.check feq "rho*(fano) = 7/3" (7.0 /. 3.0) c.Fhd.Frac_cover.weight
  | None -> Alcotest.fail "coverable"

let rho_star_exact_values () =
  (match Fhd.Frac_cover.rho_star_exact triangle (Bitset.full 3) with
  | Some r -> Alcotest.(check string) "3/2" "3/2" (Kit.Rational.to_string r)
  | None -> Alcotest.fail "exact triangle");
  match Fhd.Frac_cover.rho_star_exact fano (Bitset.full 7) with
  | Some r -> Alcotest.(check string) "7/3" "7/3" (Kit.Rational.to_string r)
  | None -> Alcotest.fail "exact fano"

let rho_star_subset () =
  (* Covering only one vertex costs 1. *)
  match Fhd.Frac_cover.rho_star triangle (Bitset.of_list 3 [ 0 ]) with
  | Some c -> Alcotest.check feq "single vertex" 1.0 c.Fhd.Frac_cover.weight
  | None -> Alcotest.fail "coverable"

let rho_star_empty () =
  match Fhd.Frac_cover.rho_star triangle (Bitset.empty 3) with
  | Some c -> Alcotest.check feq "empty set" 0.0 c.Fhd.Frac_cover.weight
  | None -> Alcotest.fail "empty is coverable"

let rho_star_restricted_edges () =
  (* Restrict candidates to edge 0 = {0,1}: vertex 2 becomes uncoverable. *)
  match
    Fhd.Frac_cover.rho_star ~edges:(Bitset.of_list 3 [ 0 ]) triangle (Bitset.full 3)
  with
  | None -> ()
  | Some _ -> Alcotest.fail "vertex 2 is not coverable by edge 0"

let prop_rho_star_bounds =
  (* 1 <= rho*(X) <= |X| for nonempty coverable X; and rho* is monotone
     under taking subsets of X. *)
  QCheck.Test.make ~name:"rho* within bounds and verified" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 7) (list_size (int_range 1 4) (int_bound 7))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      (* Only vertices that occur in edges: of_int_edges may leave holes in
         the id range, and isolated ids are legitimately uncoverable. *)
      let x = H.vertices_of_edges h (H.all_edges h) in
      match Fhd.Frac_cover.rho_star h x with
      | None -> false (* every used vertex is in some edge *)
      | Some c ->
          c.Fhd.Frac_cover.weight >= 1.0 -. 1e-6
          && c.Fhd.Frac_cover.weight <= float_of_int (Bitset.cardinal x) +. 1e-6
          && Fhd.Frac_cover.verify h x c)

(* --- ImproveHD / FracImproveHD ------------------------------------------ *)

let improve_hd_triangle () =
  match Detk.solve triangle ~k:2 with
  | Detk.Decomposition d ->
      let fhd = Fhd.Improve_hd.improve triangle d in
      Alcotest.check feq "width 1.5" 1.5 (Decomp.Fractional.width fhd);
      Alcotest.(check bool)
        "valid FHD" true
        (Decomp.Fractional.is_valid_fhd triangle fhd)
  | _ -> Alcotest.fail "triangle has hw 2"

let improve_hd_never_worse =
  QCheck.Test.make ~name:"ImproveHD never increases width" ~count:80
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 6) (list_size (int_range 1 4) (int_bound 6))))
    (fun edges ->
      let edges = List.map (List.sort_uniq compare) edges in
      let edges = List.filter (( <> ) []) edges in
      QCheck.assume (edges <> []);
      let h = H.of_int_edges edges in
      match Detk.hypertree_width h with
      | Some (hw, d), _ ->
          let fhd = Fhd.Improve_hd.improve h d in
          Decomp.Fractional.width fhd <= float_of_int hw +. 1e-6
          && Decomp.Fractional.is_valid_fhd h fhd
      | None, _ -> true)

let frac_improve_check () =
  (* The triangle has an HD of width 2 whose bags have rho* <= 1.5. *)
  (match Fhd.Frac_improve_hd.check triangle ~k:2 ~k':1.5 with
  | Fhd.Frac_improve_hd.Improved (fhd, w) ->
      Alcotest.check feq "achieved width" 1.5 w;
      Alcotest.(check bool)
        "valid" true
        (Decomp.Fractional.is_valid_fhd triangle fhd)
  | _ -> Alcotest.fail "expected improvement");
  (* ... but none with rho* <= 1.4. *)
  match Fhd.Frac_improve_hd.check triangle ~k:2 ~k':1.4 with
  | Fhd.Frac_improve_hd.No_improvement -> ()
  | _ -> Alcotest.fail "1.4 must be impossible"

let frac_improve_best () =
  match Fhd.Frac_improve_hd.best triangle ~k:2 with
  | Some (_, w) -> Alcotest.check feq "best = 1.5" 1.5 w
  | None -> Alcotest.fail "expected a result"

let frac_improve_acyclic () =
  (* Acyclic instance: integral width 1 cannot be fractionally improved. *)
  let path = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ] ] in
  match Fhd.Frac_improve_hd.best path ~k:1 with
  | Some (_, w) -> Alcotest.check feq "width 1" 1.0 w
  | None -> Alcotest.fail "expected a result"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lp_fhd"
    [
      ( "simplex",
        [
          Alcotest.test_case "min" `Quick lp_basic_min;
          Alcotest.test_case "max" `Quick lp_basic_max;
          Alcotest.test_case "equality" `Quick lp_equality;
          Alcotest.test_case "infeasible" `Quick lp_infeasible;
          Alcotest.test_case "infeasible negative b" `Quick lp_infeasible_negative_bound;
          Alcotest.test_case "unbounded" `Quick lp_unbounded;
          Alcotest.test_case "degenerate" `Quick lp_degenerate;
          Alcotest.test_case "fractional optimum" `Quick lp_fractional_optimum;
        ] );
      ( "frac_cover",
        [
          Alcotest.test_case "triangle 3/2" `Quick rho_star_triangle;
          Alcotest.test_case "fano 7/3" `Quick rho_star_fano;
          Alcotest.test_case "exact rationals" `Quick rho_star_exact_values;
          Alcotest.test_case "subset" `Quick rho_star_subset;
          Alcotest.test_case "empty" `Quick rho_star_empty;
          Alcotest.test_case "restricted edges" `Quick rho_star_restricted_edges;
          qt prop_rho_star_bounds;
        ] );
      ( "improve",
        [
          Alcotest.test_case "ImproveHD triangle" `Quick improve_hd_triangle;
          qt improve_hd_never_worse;
          Alcotest.test_case "FracImproveHD check" `Quick frac_improve_check;
          Alcotest.test_case "FracImproveHD best" `Quick frac_improve_best;
          Alcotest.test_case "acyclic no improvement" `Quick frac_improve_acyclic;
        ] );
    ]
