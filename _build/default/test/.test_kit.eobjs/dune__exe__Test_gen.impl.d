test/test_gen.ml: Alcotest Array Detk Gen Hg Kit List Option String
