test/test_lp_fhd.ml: Alcotest Array Decomp Detk Fhd Hg Kit List Lp QCheck QCheck_alcotest
