test/test_reduce_io.mli:
