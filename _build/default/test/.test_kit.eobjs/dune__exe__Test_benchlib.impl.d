test/test_benchlib.ml: Alcotest Array Benchlib Decomp Detk Experiments Filename Hg Kit List String Sys
