test/test_detk.mli:
