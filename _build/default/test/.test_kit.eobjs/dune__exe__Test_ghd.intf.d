test/test_ghd.mli:
