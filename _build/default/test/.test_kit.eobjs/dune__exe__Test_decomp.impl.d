test/test_decomp.ml: Alcotest Decomp Hg Kit List String
