test/test_ghd.ml: Alcotest Decomp Detk Ghd Hg Kit List Printf QCheck QCheck_alcotest String
