test/test_detk.ml: Alcotest Decomp Detk Hg Kit List QCheck QCheck_alcotest
