test/test_eval.ml: Alcotest Array Detk Eval Ghd Hg Kit List QCheck QCheck_alcotest
