test/test_xcsp.mli:
