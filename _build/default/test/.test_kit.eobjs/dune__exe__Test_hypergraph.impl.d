test/test_hypergraph.ml: Alcotest Array Hg Kit List QCheck QCheck_alcotest
