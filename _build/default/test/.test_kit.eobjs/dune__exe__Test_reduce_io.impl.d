test/test_reduce_io.ml: Alcotest Decomp Decomp_io Detk Hg Kit List QCheck QCheck_alcotest
