test/test_props.ml: Alcotest Array Detk Fhd Float Hg Kit List Lp QCheck QCheck_alcotest Stdlib
