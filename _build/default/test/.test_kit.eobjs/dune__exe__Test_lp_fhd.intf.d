test/test_lp_fhd.mli:
