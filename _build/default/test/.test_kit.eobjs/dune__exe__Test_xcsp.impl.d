test/test_xcsp.ml: Alcotest Gen Hg Kit List Option Printf String Xcsp3
