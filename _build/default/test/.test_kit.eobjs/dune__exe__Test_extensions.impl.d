test/test_extensions.ml: Alcotest Array Cq Decomp Detk Ghd Hg Kit List QCheck QCheck_alcotest
