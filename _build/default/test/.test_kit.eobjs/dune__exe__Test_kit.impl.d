test/test_kit.ml: Alcotest Array Kit List Printf QCheck QCheck_alcotest
