test/test_sql.ml: Alcotest Decomp Detk Hg Kit List Sql Str
