(* Direct tests of the decomposition validators: hand-crafted
   decompositions violating each condition in turn must be rejected with
   the right violation, and repaired versions accepted. These validators
   gate every algorithm test, so they get their own scrutiny. *)

module H = Hg.Hypergraph
module Bitset = Kit.Bitset

let triangle = H.of_int_edges [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

let elt h e : Decomp.cover_elt =
  {
    Decomp.label = H.edge_name h e;
    vertices = H.edge h e;
    source = Decomp.Original e;
  }

let node bag cover children : Decomp.node = { Decomp.bag; cover; children }

let bag l = Bitset.of_list 3 l

(* A correct single-node GHD/HD of the triangle: bag {0,1,2}, cover
   {e0, e1}. *)
let good = node (bag [ 0; 1; 2 ]) [ elt triangle 0; elt triangle 1 ] []

let accepts_valid () =
  Alcotest.(check bool) "valid HD accepted" true (Decomp.is_valid_hd triangle good);
  Alcotest.(check bool) "valid GHD accepted" true (Decomp.is_valid_ghd triangle good);
  Alcotest.(check int) "width" 2 (Decomp.width good);
  Alcotest.(check int) "size" 1 (Decomp.size good)

let detects_uncovered_edge () =
  (* Bag misses vertex 2, so edges e1 = {1,2} and e2 = {2,0} have no home. *)
  let d = node (bag [ 0; 1 ]) [ elt triangle 0 ] [] in
  let violations = Decomp.check_td triangle d in
  Alcotest.(check bool) "edge violation found" true
    (List.exists (function Decomp.Edge_not_covered _ -> true | _ -> false) violations)

let detects_disconnected_vertex () =
  (* Vertex 0 appears in two bags whose connecting node omits it. *)
  let d =
    node (bag [ 0; 1 ])
      [ elt triangle 0 ]
      [
        node (bag [ 1; 2 ])
          [ elt triangle 1 ]
          [ node (bag [ 2; 0 ]) [ elt triangle 2 ] [] ];
      ]
  in
  let violations = Decomp.check_td triangle d in
  Alcotest.(check bool) "connectedness violation" true
    (List.exists
       (function Decomp.Vertex_not_connected 0 -> true | _ -> false)
       violations)

let detects_bag_not_covered () =
  (* Bag {0,1,2} but cover only e0 = {0,1}. *)
  let d = node (bag [ 0; 1; 2 ]) [ elt triangle 0 ] [] in
  let violations = Decomp.check_ghd triangle d in
  Alcotest.(check bool) "cover violation" true
    (List.exists (function Decomp.Bag_not_covered _ -> true | _ -> false) violations)

let detects_fake_cover_element () =
  (* A cover element that is not a subset of any edge. *)
  let fake : Decomp.cover_elt =
    { Decomp.label = "fake"; vertices = bag [ 0; 1; 2 ]; source = Decomp.Original 0 }
  in
  let d = node (bag [ 0; 1; 2 ]) [ fake ] [] in
  let violations = Decomp.check_ghd triangle d in
  Alcotest.(check bool) "fake element rejected" true
    (List.exists (function Decomp.Cover_not_an_edge _ -> true | _ -> false) violations)

let detects_special_condition () =
  (* Root covers e0 = {0,1} with bag forced down to {0}; vertex 1 of
     B(lambda_root) reappears below without being in the root bag. *)
  let h = H.of_int_edges [ [ 0; 1 ]; [ 0; 1; 2 ] ] in
  let d =
    {
      Decomp.bag = Bitset.of_list 3 [ 0 ];
      cover =
        [ { Decomp.label = "e0"; vertices = H.edge h 0; source = Decomp.Original 0 } ];
      children =
        [
          {
            Decomp.bag = Bitset.of_list 3 [ 0; 1; 2 ];
            cover =
              [ { Decomp.label = "e1"; vertices = H.edge h 1; source = Decomp.Original 1 } ];
            children = [];
          };
        ];
    }
  in
  (* As a GHD this is fine (bags covered, edges covered, connected)... *)
  Alcotest.(check bool) "valid GHD" true (Decomp.is_valid_ghd h d);
  (* ... but the special condition fails at the root: 1 ∈ V(T_root) ∩
     B(lambda_root) yet 1 ∉ B_root. *)
  let violations = Decomp.check_hd h d in
  Alcotest.(check bool) "special condition violation" true
    (List.exists (function Decomp.Special_condition _ -> true | _ -> false) violations)

let subedge_cover_elements_ok () =
  (* Subedge sources are legal cover elements when ⊆ their parent. *)
  let sub : Decomp.cover_elt =
    { Decomp.label = "e0~1"; vertices = bag [ 0 ]; source = Decomp.Subedge 0 }
  in
  let d =
    node (bag [ 0; 1; 2 ]) [ sub; elt triangle 1; elt triangle 2 ] []
  in
  Alcotest.(check bool) "subedge accepted" true (Decomp.is_valid_ghd triangle d);
  let bad : Decomp.cover_elt =
    { Decomp.label = "bad"; vertices = bag [ 2 ]; source = Decomp.Subedge 0 }
  in
  let d = node (bag [ 0; 1; 2 ]) [ elt triangle 0; elt triangle 1; bad ] [] in
  Alcotest.(check bool) "non-subset subedge rejected" false
    (Decomp.is_valid_ghd triangle d)

let special_sources_rejected () =
  let sp : Decomp.cover_elt =
    { Decomp.label = "__sp"; vertices = bag [ 0; 1 ]; source = Decomp.Special }
  in
  let d = node (bag [ 0; 1; 2 ]) [ sp; elt triangle 1 ] [] in
  Alcotest.(check bool) "special edge in final GHD rejected" false
    (Decomp.is_valid_ghd triangle d)

let map_covers_and_nodes () =
  let d =
    node (bag [ 0; 1 ]) [ elt triangle 0 ]
      [ node (bag [ 1; 2 ]) [ elt triangle 1 ] [] ]
  in
  Alcotest.(check int) "nodes" 2 (List.length (Decomp.nodes d));
  let upper = Decomp.map_covers (fun e -> { e with Decomp.label = String.uppercase_ascii e.Decomp.label }) d in
  let labels =
    List.concat_map (fun n -> List.map (fun c -> c.Decomp.label) n.Decomp.cover) (Decomp.nodes upper)
  in
  Alcotest.(check (list string)) "mapped labels" [ "E0"; "E1" ] labels

let to_dot_renders () =
  let dot = Decomp.to_dot triangle good in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 8 && String.sub dot 0 7 = "digraph")

let fractional_validator () =
  let fhd =
    {
      Decomp.Fractional.fbag = bag [ 0; 1; 2 ];
      fcover = [ (0, 0.5); (1, 0.5); (2, 0.5) ];
      fchildren = [];
    }
  in
  Alcotest.(check bool) "half weights cover the triangle" true
    (Decomp.Fractional.is_valid_fhd triangle fhd);
  Alcotest.(check (float 1e-9)) "width" 1.5 (Decomp.Fractional.width fhd);
  let under =
    { fhd with Decomp.Fractional.fcover = [ (0, 0.5); (1, 0.5) ] }
  in
  Alcotest.(check bool) "undercovered bag rejected" false
    (Decomp.Fractional.is_valid_fhd triangle under)

let fractional_of_integral () =
  let f = Decomp.Fractional.of_integral good in
  Alcotest.(check (float 1e-9)) "weight-1 view" 2.0 (Decomp.Fractional.width f);
  Alcotest.(check bool) "valid" true (Decomp.Fractional.is_valid_fhd triangle f)

let () =
  Alcotest.run "decomp"
    [
      ( "validators",
        [
          Alcotest.test_case "accepts valid" `Quick accepts_valid;
          Alcotest.test_case "uncovered edge" `Quick detects_uncovered_edge;
          Alcotest.test_case "disconnected vertex" `Quick detects_disconnected_vertex;
          Alcotest.test_case "bag not covered" `Quick detects_bag_not_covered;
          Alcotest.test_case "fake cover element" `Quick detects_fake_cover_element;
          Alcotest.test_case "special condition" `Quick detects_special_condition;
          Alcotest.test_case "subedge elements" `Quick subedge_cover_elements_ok;
          Alcotest.test_case "special sources" `Quick special_sources_rejected;
        ] );
      ( "utilities",
        [
          Alcotest.test_case "map/nodes" `Quick map_covers_and_nodes;
          Alcotest.test_case "to_dot" `Quick to_dot_renders;
        ] );
      ( "fractional",
        [
          Alcotest.test_case "validator" `Quick fractional_validator;
          Alcotest.test_case "of_integral" `Quick fractional_of_integral;
        ] );
    ]
