(* Tests for the workload generators and the repository assembly. *)

module H = Hg.Hypergraph

let rng () = Kit.Rng.create 123

let hw h =
  match Detk.hypertree_width ~max_k:8 h with
  | Some (k, _), _ -> Some k
  | None, _ -> None

let chain_acyclic () =
  let g = rng () in
  for _ = 1 to 10 do
    let h = Gen.Random_cq.chain g ~n_edges:6 ~arity:4 in
    Alcotest.(check (option int)) "chain hw 1" (Some 1) (hw h);
    Alcotest.(check int) "edge count" 6 h.H.n_edges
  done

let star_acyclic () =
  let g = rng () in
  let h = Gen.Random_cq.star g ~n_edges:5 ~arity:3 in
  Alcotest.(check (option int)) "star hw 1" (Some 1) (hw h);
  Alcotest.(check int) "edges" 5 h.H.n_edges;
  (* All edges share the centre. *)
  let centre = Kit.Bitset.of_list h.H.n_vertices [ 0 ] in
  Array.iter
    (fun e -> Alcotest.(check bool) "centre" true (Kit.Bitset.intersects e centre))
    h.H.edges

let random_bounds () =
  let g = rng () in
  for _ = 1 to 20 do
    let h = Gen.Random_cq.random g ~n_vertices:20 ~n_edges:10 ~max_arity:5 in
    Alcotest.(check bool) "vertices bound" true (h.H.n_vertices <= 20);
    Alcotest.(check int) "edges" 10 h.H.n_edges;
    Alcotest.(check bool) "arity bound" true (H.arity h <= 5);
    (* No isolated vertices by construction. *)
    Array.iter
      (fun inc -> Alcotest.(check bool) "no isolated" false (Kit.Bitset.is_empty inc))
      h.H.incidence
  done

let generators_deterministic () =
  let h1 = Gen.Random_cq.paper_parameters (Kit.Rng.create 9) in
  let h2 = Gen.Random_cq.paper_parameters (Kit.Rng.create 9) in
  Alcotest.(check bool) "same seed same hypergraph" true (H.equal_structure h1 h2)

let grid_widths () =
  (* Pebbling grids are the hard family: width grows with the side. *)
  let g33 = Gen.Structured.grid ~rows:3 ~cols:3 in
  let g44 = Gen.Structured.grid ~rows:4 ~cols:4 in
  Alcotest.(check int) "3x3 has 4 edges" 4 g33.H.n_edges;
  Alcotest.(check int) "4x4 has 9 edges" 9 g44.H.n_edges;
  let w33 = Option.get (hw g33) and w44 = Option.get (hw g44) in
  Alcotest.(check bool) "monotone width" true (w33 <= w44);
  Alcotest.(check bool) "4x4 cyclic" true (w44 >= 2)

let circuit_shape () =
  let h = Gen.Structured.circuit (rng ()) ~n_gates:20 ~n_inputs:4 in
  Alcotest.(check bool) "edges present" true (h.H.n_edges > 0);
  Alcotest.(check bool) "arity <= 3" true (H.arity h <= 3)

let configuration_shape () =
  let h = Gen.Structured.configuration (rng ()) ~n_clusters:4 ~cluster_size:5 ~backbone:3 in
  Alcotest.(check bool) "wide arity" true (H.arity h >= 6);
  (* Low intersection sizes: the Daimler-like profile of Table 2. *)
  Alcotest.(check bool) "small bip" true (Hg.Properties.intersection_size h <= 3)

let scheduling_cyclic () =
  let h = Gen.Structured.scheduling (rng ()) ~jobs:4 ~machines:4 in
  match hw h with
  | Some w -> Alcotest.(check bool) "cyclic" true (w >= 2)
  | None -> Alcotest.fail "width should be found"

let coloring_binary () =
  let h = Gen.Structured.coloring (rng ()) ~n_vertices:12 ~avg_degree:3.0 in
  Alcotest.(check int) "binary edges" 2 (H.arity h);
  Alcotest.(check bool) "connected" true (Hg.Components.connected h)

let sparql_cyclic () =
  let g = rng () in
  List.iter
    (fun shape ->
      for _ = 1 to 5 do
        let h = Gen.Sparql_gen.generate g shape in
        Alcotest.(check bool) "arity <= 3" true (H.arity h <= 3);
        match hw h with
        | Some w -> Alcotest.(check bool) "hw >= 2" true (w >= 2)
        | None -> Alcotest.fail "hw should be small"
      done)
    [ Gen.Sparql_gen.Cycle; Gen.Sparql_gen.Theta; Gen.Sparql_gen.Flower;
      Gen.Sparql_gen.Double_cycle; Gen.Sparql_gen.Clique ]

let acyclic_families () =
  let g = rng () in
  List.iter
    (fun (name, gen) ->
      for _ = 1 to 5 do
        let h = gen g in
        Alcotest.(check (option int)) (name ^ " acyclic") (Some 1) (hw h)
      done)
    [ ("deep", Gen.Workloads.deep); ("ibench", Gen.Workloads.ibench);
      ("doctors", Gen.Workloads.doctors) ]

let tpch_pipeline () =
  let results =
    Gen.Workloads.convert_workload Gen.Workloads.tpch_schema Gen.Workloads.tpch_queries
  in
  (* Every embedded query yields at least one hypergraph; q2 and q18 yield
     two (an uncorrelated subquery each). *)
  Alcotest.(check bool) "at least 10 hypergraphs" true (List.length results >= 10);
  List.iter
    (fun (name, h) ->
      Alcotest.(check bool) (name ^ " nonempty") true (h.H.n_edges >= 1);
      match hw h with
      | Some w -> Alcotest.(check bool) (name ^ " low hw") true (w <= 3)
      | None -> Alcotest.failf "%s: hw should be found" name)
    results

let job_cyclic_instance () =
  let results =
    Gen.Workloads.convert_workload Gen.Workloads.job_schema Gen.Workloads.job_queries
  in
  let name, h =
    List.find (fun (n, _) -> String.length n >= 10 && String.sub n 0 10 = "job_cyclic") results
  in
  match hw h with
  | Some w -> Alcotest.(check int) (name ^ " hw") 2 w
  | None -> Alcotest.fail "job_cyclic hw"

let () =
  Alcotest.run "gen"
    [
      ( "random cq",
        [
          Alcotest.test_case "chain" `Quick chain_acyclic;
          Alcotest.test_case "star" `Quick star_acyclic;
          Alcotest.test_case "random bounds" `Quick random_bounds;
          Alcotest.test_case "deterministic" `Quick generators_deterministic;
        ] );
      ( "structured",
        [
          Alcotest.test_case "grids" `Quick grid_widths;
          Alcotest.test_case "circuit" `Quick circuit_shape;
          Alcotest.test_case "configuration" `Quick configuration_shape;
          Alcotest.test_case "scheduling" `Quick scheduling_cyclic;
          Alcotest.test_case "coloring" `Quick coloring_binary;
        ] );
      ( "sparql", [ Alcotest.test_case "cyclic shapes" `Quick sparql_cyclic ] );
      ( "workloads",
        [
          Alcotest.test_case "acyclic families" `Quick acyclic_families;
          Alcotest.test_case "tpch pipeline" `Quick tpch_pipeline;
          Alcotest.test_case "job cyclic" `Quick job_cyclic_instance;
        ] );
    ]
