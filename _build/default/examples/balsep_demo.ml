(* The balanced-separator effect (paper §4.4, §6.4): on negative instances
   ("no GHD of width k exists"), BalSep only needs to discover that no
   balanced separator works at the top, while the DetKDecomp-style search
   has to exhaust all combinations in every branch. This demo races the
   three GHD algorithms on instances where the answer is "no".

   Run with: dune exec examples/balsep_demo.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let verdict = function
  | Detk.Decomposition _ -> "yes"
  | Detk.No_decomposition -> "no"
  | Detk.Timeout -> "timeout"

let race name h k =
  Printf.printf "%s, Check(GHD,%d):\n" name k;
  let budget () = Kit.Deadline.of_seconds 5.0 in
  let global, tg =
    time (fun () -> (Ghd.Global_bip.solve ~deadline:(budget ()) h ~k).Ghd.Global_bip.outcome)
  in
  let local, tl =
    time (fun () -> (Ghd.Local_bip.solve ~deadline:(budget ()) h ~k).Ghd.Local_bip.outcome)
  in
  let balsep, tb =
    time (fun () -> (Ghd.Bal_sep.solve ~deadline:(budget ()) h ~k).Ghd.Bal_sep.outcome)
  in
  Printf.printf "  GlobalBIP: %-8s %7.3fs\n" (verdict global) tg;
  Printf.printf "  LocalBIP:  %-8s %7.3fs\n" (verdict local) tl;
  Printf.printf "  BalSep:    %-8s %7.3fs\n\n" (verdict balsep) tb

let () =
  (* Grids are the classic family where width grows with the side length,
     so Check(GHD, k) is "no" for small k. *)
  race "grid 4x4" (Gen.Structured.grid ~rows:4 ~cols:4) 2;
  race "grid 5x5" (Gen.Structured.grid ~rows:5 ~cols:5) 2;
  let rng = Kit.Rng.create 11 in
  let csp = Gen.Random_csp.random rng ~n_variables:18 ~n_constraints:30 ~max_arity:3 in
  race "random CSP" csp 2;
  (* And one positive instance for contrast. *)
  race "fano plane"
    (Hg.Hypergraph.of_int_edges
       [ [ 0; 1; 2 ]; [ 0; 3; 4 ]; [ 0; 5; 6 ]; [ 1; 3; 5 ]; [ 1; 4; 6 ];
         [ 2; 3; 6 ]; [ 2; 4; 5 ] ])
    3
