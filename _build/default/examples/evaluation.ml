(* Decomposition-guided query evaluation (the paper's closing future-work
   item, and the original motivation from Ghionna et al. cited in §2):
   answer CQs by materialising decomposition bags and running Yannakakis'
   semijoin program on the join tree, versus a naive left-deep join.

   Run with: dune exec examples/evaluation.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let compare_methods name h db =
  match Detk.hypertree_width h with
  | Some (hw, hd), _ ->
      let naive, t_naive = time (fun () -> Eval.Yannakakis.naive_join h db) in
      let guided, t_guided = time (fun () -> Eval.Yannakakis.evaluate h db hd) in
      assert (Eval.Relation.equal naive guided);
      Printf.printf
        "%-22s hw=%d  answers=%-6d  naive %.4fs  guided %.4fs  (x%.1f)\n" name hw
        (Eval.Relation.cardinality naive) t_naive t_guided
        (if t_guided > 0.0 then t_naive /. t_guided else 0.0)
  | None, _ -> Printf.printf "%s: width not found\n" name

(* Replace one edge's relation with a very small one: most tuples of the
   other relations become dangling, which is where semijoin reduction
   pays off. *)
let make_selective db edge keep =
  List.map
    (fun (e, r) ->
      if e = edge then
        (e, Eval.Relation.create ~columns:(Eval.Relation.columns r)
              (List.filteri (fun i _ -> i < keep) (Eval.Relation.rows r)))
      else (e, r))
    db

let () =
  let rng = Kit.Rng.create 99 in
  print_endline "Naive join vs decomposition-guided Yannakakis evaluation:";
  (* A long chain query with a selective final atom: the naive left-deep
     join builds large intermediates that die at the last step; the
     semijoin passes prune them before any join happens. *)
  let chain = Gen.Random_cq.chain rng ~n_edges:8 ~arity:2 in
  let db = Eval.Yannakakis.random_db rng ~rows:250 ~domain:100 chain in
  let db = make_selective db (chain.Hg.Hypergraph.n_edges - 1) 3 in
  compare_methods "selective chain (8)" chain db;
  (* A star: every atom shares only the centre. *)
  let star = Gen.Random_cq.star rng ~n_edges:5 ~arity:2 in
  let db = Eval.Yannakakis.random_db rng ~rows:120 ~domain:60 star in
  compare_methods "star of 5 atoms" star db;
  (* A cyclic query: the decomposition covers the cycle with width 2. *)
  let cycle = Hg.Hypergraph.of_int_edges (List.init 6 (fun i -> [ i; (i + 1) mod 6 ])) in
  let db = Eval.Yannakakis.random_db rng ~rows:150 ~domain:50 cycle in
  compare_methods "6-cycle" cycle db;
  (* Boolean satisfiability is cheaper still: only the upward pass. *)
  let db = Eval.Yannakakis.random_db rng ~rows:300 ~domain:150 chain in
  match Detk.hypertree_width chain with
  | Some (_, hd), _ ->
      let sat, t = time (fun () -> Eval.Yannakakis.boolean chain db hd) in
      Printf.printf "boolean check on the chain: %b in %.4fs\n" sat t
  | None, _ -> ()
