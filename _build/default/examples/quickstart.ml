(* Quickstart: build a hypergraph, compute its hypertree width, a GHD, and
   a fractionally improved decomposition.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* The hypergraph of the conjunctive query
       q(x,y,z,u,v) :- r(x,y), s(y,z), t(z,u), w(u,v), p(v,x).
     — a 5-cycle of binary atoms. *)
  let h =
    Hg.Hypergraph.of_named_edges
      [
        ("r", [ "x"; "y" ]);
        ("s", [ "y"; "z" ]);
        ("t", [ "z"; "u" ]);
        ("w", [ "u"; "v" ]);
        ("p", [ "v"; "x" ]);
      ]
  in
  Printf.printf "Hypergraph (%d vertices, %d edges):\n%s\n"
    h.Hg.Hypergraph.n_vertices h.Hg.Hypergraph.n_edges
    (Hg.Hypergraph.to_string h);

  (* Structural profile: degree, intersection sizes, VC dimension. *)
  let profile = Hg.Properties.profile h in
  Format.printf "Profile: %a@.@." Hg.Properties.pp_profile profile;

  (* Hypertree width via DetKDecomp. *)
  (match Detk.hypertree_width h with
  | Some (hw, hd), _ ->
      Printf.printf "hw = %d, witness HD:\n" hw;
      Format.printf "%a@." (fun fmt -> Decomp.pp h fmt) hd;
      assert (Decomp.is_valid_hd h hd)
  | None, k -> Printf.printf "hw computation open at k = %d\n" k);

  (* Generalized hypertree width: try to beat hw with the GHD portfolio. *)
  (match Ghd.Portfolio.check h ~k:1 with
  | Ghd.Portfolio.Yes _ -> print_endline "ghw = 1 (acyclic)"
  | Ghd.Portfolio.No _ -> print_endline "ghw >= 2: cycles need width 2"
  | Ghd.Portfolio.All_timeout -> print_endline "ghw: timeout");

  (* Fractional improvement (paper §6.5). *)
  match Fhd.Frac_improve_hd.best h ~k:2 with
  | Some (fhd, width) ->
      Printf.printf "\nbest fractionally improved width at k=2: %.3f\n" width;
      Format.printf "%a@." (fun fmt -> Decomp.Fractional.pp h fmt) fhd
  | None -> print_endline "no fractional improvement found"
