examples/sql_pipeline.mli:
