examples/quickstart.ml: Decomp Detk Fhd Format Ghd Hg Printf
