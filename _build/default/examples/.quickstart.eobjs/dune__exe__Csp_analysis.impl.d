examples/csp_analysis.ml: Detk Gen Hg Kit Printf Xcsp3
