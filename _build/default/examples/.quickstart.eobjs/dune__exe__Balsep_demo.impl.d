examples/balsep_demo.ml: Detk Gen Ghd Hg Kit Printf Unix
