examples/sql_pipeline.ml: Decomp Detk Format Gen Hg List Printf Sql
