examples/evaluation.mli:
