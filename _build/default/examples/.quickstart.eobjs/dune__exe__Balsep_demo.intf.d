examples/balsep_demo.mli:
