examples/quickstart.mli:
