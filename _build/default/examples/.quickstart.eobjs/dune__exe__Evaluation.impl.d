examples/evaluation.ml: Detk Eval Gen Hg Kit List Printf Unix
