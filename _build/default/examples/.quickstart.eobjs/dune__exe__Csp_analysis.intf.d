examples/csp_analysis.mli:
