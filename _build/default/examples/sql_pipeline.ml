(* The SQL-to-hypergraph pipeline on a realistic decision-support workload
   (paper §5.2-5.4): parse TPC-H-shaped queries, extract their simple
   conjunctive queries (splitting set operations, expanding views,
   discarding correlated subqueries), convert each to a hypergraph, and
   report structural properties and hypertree widths.

   Run with: dune exec examples/sql_pipeline.exe *)

let () =
  let schema = Gen.Workloads.tpch_schema in
  List.iter
    (fun (name, sql) ->
      Printf.printf "=== %s ===\n" name;
      match Sql.Convert.sql_to_hypergraphs ~schema sql with
      | Error m -> Printf.printf "  parse error: %s\n" m
      | Ok results ->
          List.iter
            (fun (id, conv) ->
              List.iter (Printf.printf "  [%s]\n") conv.Sql.Convert.warnings;
              match conv.Sql.Convert.hypergraph with
              | None -> Printf.printf "  %s: no hypergraph\n" id
              | Some h ->
                  let p = Hg.Properties.profile h in
                  let hw =
                    match Detk.hypertree_width ~max_k:5 h with
                    | Some (k, _), _ -> string_of_int k
                    | None, k -> Printf.sprintf ">= %d?" k
                  in
                  Printf.printf
                    "  %s: %d atoms, %d variables, arity %d, bip %d, hw %s\n" id
                    h.Hg.Hypergraph.n_edges h.Hg.Hypergraph.n_vertices
                    p.Hg.Properties.arity p.Hg.Properties.bip hw)
            results)
    Gen.Workloads.tpch_queries;
  (* One cyclic JOB-style query end to end, with the decomposition shown. *)
  print_endline "\n=== JOB-style cyclic query ===";
  let cyclic = List.assoc "job_cyclic" Gen.Workloads.job_queries in
  match Sql.Convert.sql_to_hypergraphs ~schema:Gen.Workloads.job_schema cyclic with
  | Error m -> Printf.printf "parse error: %s\n" m
  | Ok [ (_, conv) ] | Ok ((_, conv) :: _) -> (
      match conv.Sql.Convert.hypergraph with
      | Some h -> (
          print_string (Hg.Hypergraph.to_string h);
          match Detk.hypertree_width h with
          | Some (hw, hd), _ ->
              Printf.printf "hw = %d\n" hw;
              Format.printf "%a@." (fun fmt -> Decomp.pp h fmt) hd
          | None, _ -> print_endline "hw: open")
      | None -> print_endline "no hypergraph")
  | Ok [] -> print_endline "no queries extracted"
