(* CSP analysis in the style of the paper's empirical study (§5.5, §6.1):
   generate CSP instances, serialise them through the XCSP format (so the
   XML reader is part of the loop, exactly like the paper's use of the
   XCSP3 parser), and analyse structural properties and hypertree width.

   Run with: dune exec examples/csp_analysis.exe *)

let analyze name h =
  let p = Hg.Properties.profile h in
  let hw =
    match Detk.hypertree_width ~deadline:(Kit.Deadline.of_seconds 2.0) ~max_k:6 h with
    | Some (k, _), _ -> string_of_int k
    | None, k -> Printf.sprintf "? (open at %d)" k
    | exception Kit.Deadline.Timed_out -> "timeout"
  in
  Printf.printf "%-22s %4d vars %4d cons  deg=%-3d bip=%-2d vc=%-2s hw=%s\n" name
    p.Hg.Properties.vertices p.Hg.Properties.edges p.Hg.Properties.degree
    p.Hg.Properties.bip
    (match p.Hg.Properties.vc_dim with Some v -> string_of_int v | None -> "?")
    hw

let roundtrip name h =
  (* Serialise to XCSP and read back: the analysis below runs on the
     parsed instance, not the original. *)
  let xml = Xcsp3.Xcsp.to_xml ~name h in
  match Xcsp3.Xcsp.read xml with
  | Ok h' ->
      assert (Hg.Hypergraph.equal_structure h h');
      analyze name h'
  | Error m -> Printf.printf "%s: XCSP round-trip failed: %s\n" name m

let () =
  let rng = Kit.Rng.create 42 in
  print_endline "Structured CSPs (application-like):";
  roundtrip "scheduling-4x4" (Gen.Structured.scheduling rng ~jobs:4 ~machines:4);
  roundtrip "coloring-15" (Gen.Structured.coloring rng ~n_vertices:15 ~avg_degree:3.0);
  roundtrip "config-5x5" (Gen.Structured.configuration rng ~n_clusters:5 ~cluster_size:5 ~backbone:3);
  roundtrip "circuit-25" (Gen.Structured.circuit rng ~n_gates:25 ~n_inputs:5);
  print_endline "\nHard instances (CSP Other):";
  roundtrip "grid-4x4" (Gen.Structured.grid ~rows:4 ~cols:4);
  roundtrip "grid-5x5" (Gen.Structured.grid ~rows:5 ~cols:5);
  print_endline "\nRandom CSPs:";
  for i = 1 to 4 do
    roundtrip (Printf.sprintf "random-%d" i) (Gen.Random_csp.typical rng)
  done
