module Bitset = Kit.Bitset

type reduction = {
  reduced : Hypergraph.t;
  removed_edges : int list;
  twin_of : int array;
  edge_map : int array;
  vertex_map : int array;
}

let reduce h =
  let n = h.Hypergraph.n_vertices and m = h.Hypergraph.n_edges in
  (* 1. Twin vertices: group by incidence set. *)
  let twin_of = Array.init n Fun.id in
  let by_incidence = Hashtbl.create n in
  for v = 0 to n - 1 do
    let key = Bitset.to_list h.Hypergraph.incidence.(v) in
    match Hashtbl.find_opt by_incidence key with
    | Some rep -> twin_of.(v) <- rep
    | None -> Hashtbl.replace by_incidence key v
  done;
  (* 2. Subsumed edges: after twin merging, an edge is subsumed when its
     merged vertex set is contained in another's (ties broken by id so
     exactly one of two equal edges survives). *)
  let merged_edge e =
    Bitset.fold
      (fun v acc -> Bitset.add twin_of.(v) acc)
      h.Hypergraph.edges.(e) (Bitset.empty n)
  in
  let merged = Array.init m merged_edge in
  let subsumed = Array.make m false in
  for e = 0 to m - 1 do
    if not subsumed.(e) then
      for e' = 0 to m - 1 do
        if
          e' <> e
          && (not subsumed.(e'))
          && Bitset.subset merged.(e) merged.(e')
          && ((not (Bitset.equal merged.(e) merged.(e'))) || e' < e)
        then subsumed.(e) <- true
      done
  done;
  let kept_edges =
    List.filter (fun e -> not subsumed.(e)) (List.init m Fun.id)
  in
  let removed_edges = List.filter (fun e -> subsumed.(e)) (List.init m Fun.id) in
  (* 3. Rebuild with kept vertices (twin representatives occurring in kept
     edges) renumbered densely. *)
  let used = Array.make n false in
  List.iter (fun e -> Bitset.iter (fun v -> used.(v) <- true) merged.(e)) kept_edges;
  let vertex_map = ref [] in
  let renumber = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if used.(v) then begin
      renumber.(v) <- !next;
      vertex_map := v :: !vertex_map;
      incr next
    end
  done;
  let vertex_map = Array.of_list (List.rev !vertex_map) in
  let reduced =
    Hypergraph.create
      ~vertex_names:(Array.map (fun v -> h.Hypergraph.vertex_names.(v)) vertex_map)
      ~edge_names:
        (Array.of_list
           (List.map (fun e -> h.Hypergraph.edge_names.(e)) kept_edges))
      (Array.of_list
         (List.map
            (fun e -> List.map (fun v -> renumber.(v)) (Bitset.to_list merged.(e)))
            kept_edges))
  in
  {
    reduced;
    removed_edges;
    twin_of;
    edge_map = Array.of_list kept_edges;
    vertex_map;
  }

let is_noop r =
  r.removed_edges = []
  && Array.length r.vertex_map = Array.length r.twin_of
