lib/hypergraph/reduce.mli: Hypergraph
