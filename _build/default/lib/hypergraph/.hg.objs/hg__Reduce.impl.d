lib/hypergraph/reduce.ml: Array Fun Hashtbl Hypergraph Kit List
