lib/hypergraph/hypergraph.mli: Format Kit
