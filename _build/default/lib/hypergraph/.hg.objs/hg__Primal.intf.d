lib/hypergraph/primal.mli: Hypergraph Kit
