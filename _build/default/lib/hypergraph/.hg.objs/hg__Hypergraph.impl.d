lib/hypergraph/hypergraph.ml: Array Format Fun Hashtbl Kit List Printf Stdlib String
