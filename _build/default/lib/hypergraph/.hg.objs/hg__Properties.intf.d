lib/hypergraph/properties.mli: Format Hypergraph Kit
