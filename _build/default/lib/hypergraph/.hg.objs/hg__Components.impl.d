lib/hypergraph/components.ml: Array Hypergraph Kit List
