lib/hypergraph/gyo.ml: Array Hypergraph Kit
