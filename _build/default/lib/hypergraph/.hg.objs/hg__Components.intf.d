lib/hypergraph/components.mli: Hypergraph Kit
