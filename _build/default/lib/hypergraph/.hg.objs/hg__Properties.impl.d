lib/hypergraph/properties.ml: Array Format Hashtbl Hypergraph Kit List Stdlib
