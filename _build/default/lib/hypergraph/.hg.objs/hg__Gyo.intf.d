lib/hypergraph/gyo.mli: Hypergraph
