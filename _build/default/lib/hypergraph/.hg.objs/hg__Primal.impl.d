lib/hypergraph/primal.ml: Array Fun Hypergraph Kit List Stdlib
