(** Structural hypergraph invariants from paper §3.5 and Table 2.

    All computations are exact. The VC-dimension and multi-intersection
    searches accept a {!Kit.Deadline.t} because they are worst-case
    exponential resp. polynomial of high degree; on expiry they raise
    {!Kit.Deadline.Timed_out} like the paper's 3600 s cluster timeout. *)

val degree : Hypergraph.t -> int
(** Maximum number of edges any vertex occurs in (Definition 4). *)

val intersection_size : Hypergraph.t -> int
(** BIP: max over edge pairs of |e1 ∩ e2| (Definition 2 with c = 2). *)

val multi_intersection_size :
  ?deadline:Kit.Deadline.t -> Hypergraph.t -> c:int -> int
(** c-multi-intersection size: max over c distinct edges of the cardinality
    of their common intersection (Definition 2). [c >= 2]. *)

val vc_dimension : ?deadline:Kit.Deadline.t -> Hypergraph.t -> int
(** Exact VC-dimension (Definition 5). Uses the fact that a shattered set
    must be contained in some edge (the full trace is required), so the
    search runs inside single edges. *)

val has_more_vertices_than_edges : Hypergraph.t -> bool
(** The n > m test from the edge-clique-cover discussion in §2. *)

type profile = {
  vertices : int;
  edges : int;
  arity : int;
  degree : int;
  bip : int;
  bmip3 : int;
  bmip4 : int;
  vc_dim : int option;  (** [None] when the computation timed out *)
}

val profile : ?deadline:Kit.Deadline.t -> Hypergraph.t -> profile
(** All invariants at once; only [vc_dim] may be missing on timeout. *)

val pp_profile : Format.formatter -> profile -> unit
