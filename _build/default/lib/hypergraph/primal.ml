module Bitset = Kit.Bitset

let graph h =
  let n = h.Hypergraph.n_vertices in
  let adj = Array.make n (Bitset.empty n) in
  Array.iter
    (fun e -> Bitset.iter (fun v -> adj.(v) <- Bitset.union adj.(v) e) e)
    h.Hypergraph.edges;
  Array.mapi (fun v s -> Bitset.remove v s) adj

type heuristic = Min_fill | Min_degree

let is_clique adj s =
  Bitset.for_all
    (fun v -> Bitset.subset (Bitset.remove v s) adj.(v))
    s

(* Number of missing edges among the neighbours of v. *)
let fill_count adj v =
  let nbrs = adj.(v) in
  let missing = ref 0 in
  Bitset.iter
    (fun a ->
      let non_adjacent = Bitset.diff (Bitset.remove a nbrs) adj.(a) in
      missing := !missing + Bitset.cardinal non_adjacent)
    nbrs;
  !missing / 2

let upper_bound ?(heuristic = Min_fill) h =
  let n = h.Hypergraph.n_vertices in
  if n = 0 then (0, [])
  else begin
    (* Work on a mutable copy of the adjacency structure. *)
    let adj = Array.map Fun.id (graph h) in
    let alive = Array.make n true in
    let width = ref 0 in
    let order = ref [] in
    for _ = 1 to n do
      (* Pick the next vertex by the greedy score. *)
      let best = ref (-1) in
      let best_score = ref max_int in
      for v = 0 to n - 1 do
        if alive.(v) then begin
          let score =
            match heuristic with
            | Min_degree -> Bitset.cardinal adj.(v)
            | Min_fill -> fill_count adj v
          in
          if score < !best_score then begin
            best_score := score;
            best := v
          end
        end
      done;
      let v = !best in
      order := v :: !order;
      width := Stdlib.max !width (Bitset.cardinal adj.(v));
      (* Eliminate: make the neighbourhood a clique, then remove v. *)
      let nbrs = adj.(v) in
      Bitset.iter
        (fun a ->
          adj.(a) <- Bitset.remove v (Bitset.union adj.(a) (Bitset.remove a nbrs)))
        nbrs;
      alive.(v) <- false;
      adj.(v) <- Bitset.empty n
    done;
    (!width, List.rev !order)
  end

let lower_bound h =
  let n = h.Hypergraph.n_vertices in
  if n = 0 then 0
  else begin
    let adj = Array.map Fun.id (graph h) in
    let alive = Array.make n true in
    let best = ref 0 in
    for _ = 1 to n do
      let v = ref (-1) and deg = ref max_int in
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let d = Bitset.cardinal adj.(u) in
          if d < !deg then begin
            deg := d;
            v := u
          end
        end
      done;
      best := Stdlib.max !best !deg;
      Bitset.iter (fun a -> adj.(a) <- Bitset.remove !v adj.(a)) adj.(!v);
      alive.(!v) <- false;
      adj.(!v) <- Bitset.empty n
    done;
    !best
  end
