module Bitset = Kit.Bitset

(* Components are grown by BFS over the "region" of vertices outside [u]
   reached so far: any candidate edge intersecting the region joins the
   component and extends the region with its own vertices outside [u]. *)

let components_extended h ~within ~special u =
  let n_special = Array.length special in
  let outside e = Bitset.diff e u in
  (* Candidates: ordinary edges not fully inside u. *)
  let remaining = ref (Bitset.filter (fun e -> not (Bitset.is_empty (outside h.Hypergraph.edges.(e)))) within) in
  let special_left = Array.map (fun s -> not (Bitset.subset s u)) special in
  let result = ref [] in
  let next_seed () =
    match Bitset.choose !remaining with
    | Some e -> Some (`Edge e)
    | None ->
        let rec find i =
          if i >= n_special then None
          else if special_left.(i) then Some (`Special i)
          else find (i + 1)
        in
        find 0
  in
  let rec grow comp specials region =
    (* Ordinary edges touching the region. *)
    let touch = Bitset.inter (Hypergraph.edges_touching h region) !remaining in
    (* Special edges touching the region. *)
    let new_specials = ref [] in
    for i = 0 to n_special - 1 do
      if special_left.(i) && Bitset.intersects (outside special.(i)) region then begin
        special_left.(i) <- false;
        new_specials := i :: !new_specials
      end
    done;
    if Bitset.is_empty touch && !new_specials = [] then (comp, specials)
    else begin
      remaining := Bitset.diff !remaining touch;
      let added_verts =
        List.fold_left
          (fun acc i -> Bitset.union acc (outside special.(i)))
          (outside (Hypergraph.vertices_of_edges h touch))
          !new_specials
      in
      grow (Bitset.union comp touch) (!new_specials @ specials)
        (Bitset.union region added_verts)
    end
  in
  let rec loop () =
    match next_seed () with
    | None -> List.rev !result
    | Some seed ->
        let comp0, sp0, region0 =
          match seed with
          | `Edge e ->
              remaining := Bitset.remove e !remaining;
              (Bitset.singleton h.Hypergraph.n_edges e, [], outside h.Hypergraph.edges.(e))
          | `Special i ->
              special_left.(i) <- false;
              (Bitset.empty h.Hypergraph.n_edges, [ i ], outside special.(i))
        in
        let comp, specials = grow comp0 sp0 region0 in
        result := (comp, List.sort compare specials) :: !result;
        loop ()
  in
  loop ()

let components h ~within u =
  List.map fst (components_extended h ~within ~special:[||] u)

let separates h ~within u =
  let total = Bitset.cardinal within in
  match components h ~within u with
  | [] -> total > 0
  | [ c ] -> Bitset.cardinal c < total
  | _ :: _ :: _ -> true

let is_balanced h ~within ~special u =
  let total = Bitset.cardinal within + Array.length special in
  let bound = total / 2 in
  let comps = components_extended h ~within ~special u in
  List.for_all
    (fun (es, sps) -> Bitset.cardinal es + List.length sps <= bound)
    comps

let connected h =
  match components h ~within:(Hypergraph.all_edges h) (Bitset.empty h.Hypergraph.n_vertices) with
  | [] | [ _ ] -> true
  | _ -> false
