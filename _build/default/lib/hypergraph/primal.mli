(** The primal (Gaifman) graph of a hypergraph, and treewidth estimates on
    it. Bonifati et al.'s SPARQL studies cited in the paper report
    treewidth for graph-like queries (tw <= 2 for arity-2 CQs, tw <= 4 for
    C2RPQ+); these heuristics let the benchmark report the same metric.

    Treewidth bounds come from elimination orderings: {!upper_bound}
    simulates vertex elimination with the min-fill or min-degree greedy
    rule (exact on chordal graphs, near-optimal on small instances);
    {!lower_bound} is the classical MMD (maximum minimum degree over
    subgraph sequences, here via repeated min-degree removal). *)

val graph : Hypergraph.t -> Kit.Bitset.t array
(** Adjacency sets over the vertex universe: two vertices are adjacent iff
    they share an edge. No self-loops. *)

type heuristic = Min_fill | Min_degree

val upper_bound :
  ?heuristic:heuristic -> Hypergraph.t -> int * int list
(** Treewidth upper bound and the elimination order that witnesses it.
    Default heuristic: {!Min_fill}. The empty hypergraph has bound 0. *)

val lower_bound : Hypergraph.t -> int
(** MMD treewidth lower bound. *)

val is_clique : Kit.Bitset.t array -> Kit.Bitset.t -> bool
(** Is the vertex set a clique in the adjacency structure? (Exposed for
    tests.) *)
