module Bitset = Kit.Bitset
module Deadline = Kit.Deadline

let degree h =
  Array.fold_left
    (fun m inc -> Stdlib.max m (Bitset.cardinal inc))
    0 h.Hypergraph.incidence

let intersection_size h =
  let m = h.Hypergraph.n_edges in
  let best = ref 0 in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let c = Bitset.inter_cardinal h.Hypergraph.edges.(i) h.Hypergraph.edges.(j) in
      if c > !best then best := c
    done
  done;
  !best

(* Branch-and-bound over ordered edge tuples: extend a partial intersection
   only while its cardinality still beats the best value found so far. *)
let multi_intersection_size ?(deadline = Deadline.none) h ~c =
  if c < 2 then invalid_arg "multi_intersection_size: c must be >= 2";
  let m = h.Hypergraph.n_edges in
  let best = ref 0 in
  let rec extend depth first inter =
    Deadline.check deadline;
    if depth = c then begin
      let card = Bitset.cardinal inter in
      if card > !best then best := card
    end
    else
      for j = first to m - 1 do
        let inter' = Bitset.inter inter h.Hypergraph.edges.(j) in
        (* Pruning: a smaller-or-equal intersection cannot improve. *)
        if Bitset.cardinal inter' > !best then extend (depth + 1) (j + 1) inter'
      done
  in
  if m >= c then
    for i = 0 to m - 1 do
      extend 1 (i + 1) h.Hypergraph.edges.(i)
    done;
  !best

(* A set X is shattered iff every subset of X is a trace X ∩ e. Since the
   full trace X itself is required, X must be a subset of some edge; we
   therefore search inside each edge. The trace table is a bitmask over
   2^|X| cells. *)
let shattered h xs =
  let d = List.length xs in
  let arr = Array.of_list xs in
  let want = 1 lsl d in
  let seen = Array.make want false in
  let found = ref 0 in
  (try
     Array.iter
       (fun e ->
         let mask = ref 0 in
         for i = 0 to d - 1 do
           if Bitset.mem arr.(i) e then mask := !mask lor (1 lsl i)
         done;
         if not seen.(!mask) then begin
           seen.(!mask) <- true;
           incr found;
           if !found = want then raise Exit
         end)
       h.Hypergraph.edges
   with Exit -> ());
  !found = want

let vc_dimension ?(deadline = Deadline.none) h =
  if h.Hypergraph.n_edges = 0 then 0
  else begin
    let best = ref 0 in
    (* Memoise rejected candidate sets across edges. *)
    let rejected = Hashtbl.create 256 in
    let rec extend candidates xs size =
      Deadline.check deadline;
      if size > !best then best := size;
      match candidates with
      | [] -> ()
      | v :: rest ->
          (* Try including v. *)
          let xs' = v :: xs in
          let key = List.sort compare xs' in
          if not (Hashtbl.mem rejected key) then begin
            if shattered h xs' then extend rest xs' (size + 1)
            else Hashtbl.add rejected key ()
          end;
          (* Try skipping v, but only if enough candidates remain to win. *)
          if size + List.length rest > !best then extend rest xs size
    in
    Array.iter
      (fun e ->
        let members = Bitset.to_list e in
        if List.length members > !best then extend members [] 0)
      h.Hypergraph.edges;
    !best
  end

let has_more_vertices_than_edges h =
  h.Hypergraph.n_vertices > h.Hypergraph.n_edges

type profile = {
  vertices : int;
  edges : int;
  arity : int;
  degree : int;
  bip : int;
  bmip3 : int;
  bmip4 : int;
  vc_dim : int option;
}

let profile ?(deadline = Deadline.none) h =
  let vc_dim =
    try Some (vc_dimension ~deadline h) with Deadline.Timed_out -> None
  in
  {
    vertices = h.Hypergraph.n_vertices;
    edges = h.Hypergraph.n_edges;
    arity = Hypergraph.arity h;
    degree = degree h;
    bip = intersection_size h;
    bmip3 = multi_intersection_size ~deadline h ~c:3;
    bmip4 = multi_intersection_size ~deadline h ~c:4;
    vc_dim;
  }

let pp_profile fmt p =
  Format.fprintf fmt
    "vertices=%d edges=%d arity=%d degree=%d bip=%d 3-bmip=%d 4-bmip=%d vc=%s"
    p.vertices p.edges p.arity p.degree p.bip p.bmip3 p.bmip4
    (match p.vc_dim with Some v -> string_of_int v | None -> "timeout")
