module Bitset = Kit.Bitset

type join_tree = {
  roots : int list;
  parent : int array;
  order : int list;
}

(* An edge e (still alive) is an ear iff the set of its vertices occurring
   in OTHER alive edges is contained in a single alive edge w != e. A
   duplicate-free acyclic hypergraph always has an ear; we iterate until
   nothing is removable. Duplicate edges (same vertex set) are handled by
   treating one as the witness of the other. *)
let reduce h =
  let m = h.Hypergraph.n_edges in
  if m = 0 then Some { roots = []; parent = [||]; order = [] }
  else begin
    let alive = Array.make m true in
    let alive_count = ref m in
    let parent = Array.make m (-1) in
    let order = ref [] in
    let roots = ref [] in
    (* Vertices of e shared with other alive edges. *)
    let shared e =
      let others =
        Bitset.fold
          (fun v acc ->
            let inc = Bitset.remove e h.Hypergraph.incidence.(v) in
            if Bitset.exists (fun e' -> alive.(e')) inc then Bitset.add v acc
            else acc)
          h.Hypergraph.edges.(e)
          (Bitset.empty h.Hypergraph.n_vertices)
      in
      others
    in
    let find_witness e =
      let s = shared e in
      if Bitset.is_empty s then Some (-1) (* isolated component root *)
      else begin
        (* Any alive edge (other than e) containing all of s. *)
        let candidates = Hypergraph.edges_touching h s in
        let exception Found of int in
        try
          Bitset.iter
            (fun w ->
              if w <> e && alive.(w) && Bitset.subset s h.Hypergraph.edges.(w)
              then raise (Found w))
            candidates;
          None
        with Found w -> Some w
      end
    in
    let progress = ref true in
    while !progress && !alive_count > 0 do
      progress := false;
      for e = 0 to m - 1 do
        if alive.(e) && !alive_count > 1 then begin
          match find_witness e with
          | Some w ->
              alive.(e) <- false;
              decr alive_count;
              progress := true;
              order := e :: !order;
              if w >= 0 then parent.(e) <- w else roots := e :: !roots
          | None -> ()
        end
      done
    done;
    if !alive_count > 1 then None
    else begin
      (* The final edge is the root of the last component. *)
      Array.iteri
        (fun e a ->
          if a then begin
            roots := e :: !roots;
            order := e :: !order
          end)
        alive;
      Some { roots = !roots; parent; order = !order }
    end
  end

let is_acyclic h = reduce h <> None
