(** Width-preserving hypergraph simplifications.

    The paper's follow-up work (Gottlob, Okulmus, Pichler, IJCAI 2020 —
    cited in §2 as [29]) proposes simplifying the input hypergraph before
    decomposing. Two classical reductions preserve hw, ghw and fhw:

    - {b subsumed edges}: an edge contained in another edge can be removed
      (any bag covering the big edge covers it, and the small edge's cover
      can be replaced by the big one);
    - {b twin vertices}: vertices with identical incidence sets can be
      merged (bags and covers treat them identically).

    Both shrink the search space of every algorithm in this repository;
    the ablation bench measures by how much. A decomposition of the
    reduced hypergraph maps back to the original by translating vertices
    through [vertex_map], re-adding merged twins (via [twin_of]) to every
    bag containing their representative, and translating cover edges
    through [edge_map]; subsumed edges are then covered automatically. *)

type reduction = {
  reduced : Hypergraph.t;
  removed_edges : int list;  (** original ids of subsumed edges *)
  twin_of : int array;
      (** original vertex -> representative original vertex (identity for
          kept vertices) *)
  edge_map : int array;  (** reduced edge id -> original edge id *)
  vertex_map : int array;  (** reduced vertex id -> original vertex id *)
}

val reduce : Hypergraph.t -> reduction
(** Apply both reductions to a fixpoint. Names are preserved for kept
    vertices and edges. *)

val is_noop : reduction -> bool
