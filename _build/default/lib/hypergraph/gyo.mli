(** GYO reduction: α-acyclicity testing and join-tree construction.

    A hypergraph is α-acyclic — equivalently, hw = ghw = fhw = 1 — iff
    repeatedly removing "ears" empties it. An ear is an edge e whose
    vertices shared with the rest of the hypergraph are covered by a
    single other edge (its witness); edges sharing nothing are ears too.
    This classical Graham / Yu–Özsoyoğlu reduction decides Check(HD,1) in
    polynomial time without search — the k = 1 line of the paper's
    Figure 4 at a fraction of DetKDecomp's cost.

    Parenting every ear to its witness yields a join tree, i.e. a
    width-1 hypertree decomposition (materialised by {!Detk.solve}'s fast
    path). *)

type join_tree = {
  roots : int list;  (** one edge per connected component *)
  parent : int array;  (** witness edge of each ear; -1 at roots *)
  order : int list;  (** ear elimination order *)
}

val reduce : Hypergraph.t -> join_tree option
(** [Some tree] iff the hypergraph is acyclic. *)

val is_acyclic : Hypergraph.t -> bool
