(** Hypergraph decompositions and their validators (paper §3.2).

    A decomposition is a rooted tree of nodes; every node has a bag (vertex
    set) and an integral edge cover. Cover elements remember where they came
    from: an original edge, a subedge of an original edge (produced by the
    GHD algorithms of §4), or a special edge (internal to BalSep; none
    survive in final results). Validation distinguishes tree decompositions,
    GHDs (conditions 1-3) and HDs (plus the special condition 4).

    Fractional covers for FHDs live in {!Fractional}. *)

type source =
  | Original of int  (** edge id in the hypergraph *)
  | Subedge of int  (** subset of the edge with this id *)
  | Special  (** BalSep-internal special edge *)

type cover_elt = {
  label : string;
  vertices : Kit.Bitset.t;
  source : source;
}

type node = {
  bag : Kit.Bitset.t;
  cover : cover_elt list;
  children : node list;
}

type t = node

val width : t -> int
(** Maximum cover size over all nodes. *)

val size : t -> int
(** Number of nodes. *)

val nodes : t -> node list
(** Preorder list of all nodes. *)

val map_covers : (cover_elt -> cover_elt) -> t -> t

type violation =
  | Edge_not_covered of int  (** TD condition 1 *)
  | Vertex_not_connected of int  (** TD condition 2 *)
  | Bag_not_covered of Kit.Bitset.t  (** GHD condition 3 *)
  | Cover_not_an_edge of string  (** cover element is not ⊆ an edge of H *)
  | Special_condition of Kit.Bitset.t  (** HD condition 4 *)

val pp_violation : Hg.Hypergraph.t -> Format.formatter -> violation -> unit

val check_td : Hg.Hypergraph.t -> t -> violation list
(** Conditions 1 and 2 of a tree decomposition. *)

val check_ghd : Hg.Hypergraph.t -> t -> violation list
(** TD conditions plus: each bag covered by its cover, and each cover
    element a subset of an original edge. An empty list means the tree is
    a valid GHD of the hypergraph. *)

val check_hd : Hg.Hypergraph.t -> t -> violation list
(** GHD conditions plus the special condition: for every node [u],
    V(T_u) ∩ B(λ_u) ⊆ B_u. *)

val is_valid_ghd : Hg.Hypergraph.t -> t -> bool
val is_valid_hd : Hg.Hypergraph.t -> t -> bool

val pp : Hg.Hypergraph.t -> Format.formatter -> t -> unit
(** Indented tree with named bags and covers. *)

val to_dot : Hg.Hypergraph.t -> t -> string
(** GraphViz rendering. *)

module Fractional : sig
  type fnode = {
    fbag : Kit.Bitset.t;
    fcover : (int * float) list;  (** (edge id, weight), weights in (0,1] *)
    fchildren : fnode list;
  }

  type fhd = fnode

  val width : fhd -> float
  (** Maximum total cover weight over all nodes. *)

  val nodes : fhd -> fnode list

  val of_integral : t -> fhd
  (** Weight-1 fractional view of an integral decomposition. Cover elements
      that are subedges keep their parent edge id.
      @raise Invalid_argument on special edges. *)

  val check_fhd : ?eps:float -> Hg.Hypergraph.t -> fhd -> violation list
  (** TD conditions plus fractional coverage of each bag: every bag vertex
      must accumulate weight >= 1 - eps from cover edges containing it. *)

  val is_valid_fhd : ?eps:float -> Hg.Hypergraph.t -> fhd -> bool

  val pp : Hg.Hypergraph.t -> Format.formatter -> fhd -> unit
end
