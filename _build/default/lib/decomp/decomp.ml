module Bitset = Kit.Bitset
module Hypergraph = Hg.Hypergraph

type source = Original of int | Subedge of int | Special

type cover_elt = { label : string; vertices : Bitset.t; source : source }

type node = { bag : Bitset.t; cover : cover_elt list; children : node list }

type t = node

let rec width t =
  List.fold_left (fun m c -> Stdlib.max m (width c)) (List.length t.cover) t.children

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let nodes t =
  let rec go acc t = List.fold_left go (t :: acc) t.children in
  List.rev (go [] t)

let rec map_covers f t =
  { t with cover = List.map f t.cover; children = List.map (map_covers f) t.children }

type violation =
  | Edge_not_covered of int
  | Vertex_not_connected of int
  | Bag_not_covered of Bitset.t
  | Cover_not_an_edge of string
  | Special_condition of Bitset.t

let pp_violation h fmt = function
  | Edge_not_covered e ->
      Format.fprintf fmt "edge %s not covered by any bag" (Hypergraph.edge_name h e)
  | Vertex_not_connected v ->
      Format.fprintf fmt "vertex %s induces a disconnected subtree"
        (Hypergraph.vertex_name h v)
  | Bag_not_covered b -> Format.fprintf fmt "bag %a not covered by its lambda" Bitset.pp b
  | Cover_not_an_edge l -> Format.fprintf fmt "cover element %s is not a subedge" l
  | Special_condition b ->
      Format.fprintf fmt "special condition violated at bag %a" Bitset.pp b

(* Condition 2: for each vertex the nodes containing it must form a
   connected subtree. In a tree, a subset of nodes is connected iff
   (#nodes in subset) - (#tree edges with both ends in subset) = 1. *)
let connectedness_violations h t =
  let n = h.Hypergraph.n_vertices in
  let node_count = Array.make n 0 in
  let link_count = Array.make n 0 in
  let rec visit u =
    Bitset.iter (fun v -> node_count.(v) <- node_count.(v) + 1) u.bag;
    List.iter
      (fun c ->
        Bitset.iter (fun v -> link_count.(v) <- link_count.(v) + 1)
          (Bitset.inter u.bag c.bag);
        visit c)
      u.children
  in
  visit t;
  let violations = ref [] in
  for v = n - 1 downto 0 do
    if node_count.(v) > 0 && node_count.(v) - link_count.(v) <> 1 then
      violations := Vertex_not_connected v :: !violations
  done;
  !violations

let coverage_violations h t =
  let all = nodes t in
  let missing = ref [] in
  for e = h.Hypergraph.n_edges - 1 downto 0 do
    let edge = Hypergraph.edge h e in
    if not (List.exists (fun u -> Bitset.subset edge u.bag) all) then
      missing := Edge_not_covered e :: !missing
  done;
  !missing

let check_td h t = coverage_violations h t @ connectedness_violations h t

let cover_vertices cover =
  match cover with
  | [] -> None
  | c :: rest ->
      Some (List.fold_left (fun acc e -> Bitset.union acc e.vertices) c.vertices rest)

let ghd_extra_violations h t =
  let check_node u acc =
    let acc =
      match cover_vertices u.cover with
      | Some b when Bitset.subset u.bag b -> acc
      | Some _ | None ->
          if Bitset.is_empty u.bag then acc else Bag_not_covered u.bag :: acc
    in
    List.fold_left
      (fun acc elt ->
        let ok =
          match elt.source with
          | Original e | Subedge e ->
              e >= 0 && e < h.Hypergraph.n_edges
              && Bitset.subset elt.vertices (Hypergraph.edge h e)
          | Special -> false
        in
        if ok then acc else Cover_not_an_edge elt.label :: acc)
      acc u.cover
  in
  List.fold_left (fun acc u -> check_node u acc) [] (nodes t)

let check_ghd h t = check_td h t @ List.rev (ghd_extra_violations h t)

(* Condition 4: V(T_u) ∩ B(λ_u) ⊆ B_u for every node u, where V(T_u) is the
   union of the bags in the subtree rooted at u. Computed bottom-up. *)
let special_condition_violations h t =
  let violations = ref [] in
  let rec subtree_vertices u =
    let below =
      List.fold_left
        (fun acc c -> Bitset.union acc (subtree_vertices c))
        (Bitset.empty h.Hypergraph.n_vertices)
        u.children
    in
    let v_tu = Bitset.union u.bag below in
    (match cover_vertices u.cover with
    | Some b_lambda ->
        if not (Bitset.subset (Bitset.inter v_tu b_lambda) u.bag) then
          violations := Special_condition u.bag :: !violations
    | None -> ());
    v_tu
  in
  ignore (subtree_vertices t);
  !violations

let check_hd h t = check_ghd h t @ special_condition_violations h t

let is_valid_ghd h t = check_ghd h t = []
let is_valid_hd h t = check_hd h t = []

let pp h fmt t =
  let pp_bag fmt b =
    Format.fprintf fmt "{%s}"
      (String.concat ","
         (List.map (Hypergraph.vertex_name h) (Bitset.to_list b)))
  in
  let rec go indent u =
    Format.fprintf fmt "%s%a  cover=[%s]@." indent pp_bag u.bag
      (String.concat "; " (List.map (fun c -> c.label) u.cover));
    List.iter (go (indent ^ "  ")) u.children
  in
  go "" t

let to_dot h t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph decomposition {\n  node [shape=box];\n";
  let counter = ref 0 in
  let rec go u =
    let id = !counter in
    incr counter;
    let bag =
      String.concat ","
        (List.map (Hypergraph.vertex_name h) (Bitset.to_list u.bag))
    in
    let cover = String.concat "; " (List.map (fun c -> c.label) u.cover) in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"{%s}\\n[%s]\"];\n" id bag cover);
    List.iter
      (fun c ->
        let cid = go c in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id cid))
      u.children;
    id
  in
  ignore (go t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Fractional = struct
  type fnode = {
    fbag : Bitset.t;
    fcover : (int * float) list;
    fchildren : fnode list;
  }

  type fhd = fnode

  let rec width t =
    let w = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 t.fcover in
    List.fold_left (fun m c -> Stdlib.max m (width c)) w t.fchildren

  let nodes t =
    let rec go acc t = List.fold_left go (t :: acc) t.fchildren in
    List.rev (go [] t)

  let rec of_integral (u : node) =
    let fcover =
      List.map
        (fun elt ->
          match elt.source with
          | Original e | Subedge e -> (e, 1.0)
          | Special -> invalid_arg "Fractional.of_integral: special edge")
        u.cover
    in
    { fbag = u.bag; fcover; fchildren = List.map of_integral u.children }

  (* Reuse the TD checks by viewing the fractional tree as an integral one
     with empty covers. *)
  let rec to_bare (u : fnode) : node =
    { bag = u.fbag; cover = []; children = List.map to_bare u.fchildren }

  let check_fhd ?(eps = 1e-6) h t =
    let bare = to_bare t in
    let td = coverage_violations h bare @ connectedness_violations h bare in
    let frac =
      List.fold_left
        (fun acc u ->
          let uncovered =
            Bitset.filter
              (fun v ->
                let w =
                  List.fold_left
                    (fun acc (e, x) ->
                      if Bitset.mem v (Hypergraph.edge h e) then acc +. x else acc)
                    0.0 u.fcover
                in
                w < 1.0 -. eps)
              u.fbag
          in
          if Bitset.is_empty uncovered then acc else Bag_not_covered u.fbag :: acc)
        [] (nodes t)
    in
    td @ List.rev frac

  let is_valid_fhd ?eps h t = check_fhd ?eps h t = []

  let pp h fmt t =
    let rec go indent u =
      let bag =
        String.concat ","
          (List.map (Hypergraph.vertex_name h) (Bitset.to_list u.fbag))
      in
      let cover =
        String.concat "; "
          (List.map
             (fun (e, w) -> Printf.sprintf "%s:%.3f" (Hypergraph.edge_name h e) w)
             u.fcover)
      in
      Format.fprintf fmt "%s{%s}  gamma=[%s]@." indent bag cover;
      List.iter (go (indent ^ "  ")) u.fchildren
    in
    go "" t
end
