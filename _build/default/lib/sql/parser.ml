open Ast

exception Parse_error of string

let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "BY"; "UNION";
    "INTERSECT"; "EXCEPT"; "JOIN"; "ON"; "AS"; "INNER"; "LEFT"; "RIGHT";
    "FULL"; "CROSS"; "OUTER"; "WITH"; "AND"; "OR"; "NOT"; "IN"; "EXISTS";
    "BETWEEN"; "IS"; "NULL"; "LIKE"; "LIMIT"; "OFFSET"; "DISTINCT"; "ALL";
    "ASC"; "DESC"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
  ]

let fail l msg =
  raise (Parse_error (Printf.sprintf "parse error near token %d: %s" (Lexer.pos l) msg))

let upper = String.uppercase_ascii

let is_kw l kw =
  match Lexer.peek l with Lexer.Ident s -> upper s = kw | _ -> false

let eat_kw l kw =
  if is_kw l kw then begin ignore (Lexer.next l); true end else false

let expect_kw l kw =
  if not (eat_kw l kw) then fail l (Printf.sprintf "expected %s" kw)

let is_punct l p = Lexer.peek l = Lexer.Punct p

let eat_punct l p =
  if is_punct l p then begin ignore (Lexer.next l); true end else false

let expect_punct l p =
  if not (eat_punct l p) then fail l (Printf.sprintf "expected '%s'" p)

let ident l =
  match Lexer.peek l with
  | Lexer.Ident s when not (List.mem (upper s) reserved) ->
      ignore (Lexer.next l);
      s
  | _ -> fail l "expected identifier"

(* --- expressions --------------------------------------------------------- *)

let rec parse_expr l = parse_additive l

and parse_additive l =
  let rec go acc =
    if is_punct l "+" || is_punct l "-" || is_punct l "||" then begin
      let op = match Lexer.next l with Lexer.Punct p -> p | _ -> assert false in
      let rhs = parse_multiplicative l in
      go (Binop (op, acc, rhs))
    end
    else acc
  in
  go (parse_multiplicative l)

and parse_multiplicative l =
  let rec go acc =
    if is_punct l "*" || is_punct l "/" || is_punct l "%" then begin
      let op = match Lexer.next l with Lexer.Punct p -> p | _ -> assert false in
      let rhs = parse_factor l in
      go (Binop (op, acc, rhs))
    end
    else acc
  in
  go (parse_factor l)

and parse_factor l =
  match Lexer.peek l with
  | Lexer.Number n ->
      ignore (Lexer.next l);
      if String.contains n '.' then Lit (Float (float_of_string n))
      else Lit (Int (int_of_string n))
  | Lexer.String s ->
      ignore (Lexer.next l);
      Lit (String s)
  | Lexer.Punct "-" ->
      ignore (Lexer.next l);
      Binop ("-", Lit (Int 0), parse_factor l)
  | Lexer.Punct "*" ->
      ignore (Lexer.next l);
      Star
  | Lexer.Punct "(" ->
      ignore (Lexer.next l);
      let e = parse_expr l in
      expect_punct l ")";
      e
  | Lexer.Ident s when upper s = "NULL" ->
      ignore (Lexer.next l);
      Lit Null
  | Lexer.Ident s when upper s = "CASE" -> parse_case l
  | Lexer.Ident _ -> (
      let name = ident_or_function_name l in
      match Lexer.peek l with
      | Lexer.Punct "(" ->
          ignore (Lexer.next l);
          (* Aggregates: COUNT of star / COUNT DISTINCT etc. *)
          ignore (eat_kw l "DISTINCT");
          let args =
            if eat_punct l ")" then []
            else begin
              let rec args_loop acc =
                let e = parse_expr l in
                if eat_punct l "," then args_loop (e :: acc)
                else begin
                  expect_punct l ")";
                  List.rev (e :: acc)
                end
              in
              args_loop []
            end
          in
          Fun (name, args)
      | Lexer.Punct "." ->
          ignore (Lexer.next l);
          if is_punct l "*" then begin
            ignore (Lexer.next l);
            Star
          end
          else
            let col =
              match Lexer.peek l with
              | Lexer.Ident c ->
                  ignore (Lexer.next l);
                  c
              | _ -> fail l "expected column after '.'"
            in
            Col (Some name, col)
      | _ -> Col (None, name))
  | _ -> fail l "expected expression"

and ident_or_function_name l =
  (* Function names may collide with keywords we do not reserve; plain
     identifiers must not be reserved. *)
  match Lexer.peek l with
  | Lexer.Ident s when not (List.mem (upper s) reserved) ->
      ignore (Lexer.next l);
      s
  | _ -> fail l "expected identifier"

and parse_case l =
  (* CASE [expr] WHEN c THEN e ... [ELSE e] END — structure-irrelevant;
     collapse to a function of the mentioned column expressions. *)
  expect_kw l "CASE";
  let parts = ref [] in
  let rec go () =
    if eat_kw l "END" then ()
    else if eat_kw l "WHEN" then begin
      (* Conditions inside CASE are rare in our corpora; parse as expr
         followed by optional comparison. *)
      let e = parse_expr l in
      parts := e :: !parts;
      (match Lexer.peek l with
      | Lexer.Punct ("=" | "<" | ">" | "<=" | ">=" | "<>") ->
          ignore (Lexer.next l);
          parts := parse_expr l :: !parts
      | _ -> ());
      expect_kw l "THEN";
      parts := parse_expr l :: !parts;
      go ()
    end
    else if eat_kw l "ELSE" then begin
      parts := parse_expr l :: !parts;
      go ()
    end
    else fail l "malformed CASE expression"
  in
  go ();
  Fun ("case", List.rev !parts)

(* --- conditions ----------------------------------------------------------- *)

let cmp_of_punct = function
  | "=" -> Some Eq
  | "<>" -> Some Neq
  | "<" -> Some Lt
  | ">" -> Some Gt
  | "<=" -> Some Le
  | ">=" -> Some Ge
  | _ -> None

let rec parse_cond l = parse_or l

and parse_or l =
  let rec go acc =
    if eat_kw l "OR" then go (Or (acc, parse_and l)) else acc
  in
  go (parse_and l)

and parse_and l =
  let rec go acc =
    if eat_kw l "AND" then go (And (acc, parse_not l)) else acc
  in
  go (parse_not l)

and parse_not l =
  if eat_kw l "NOT" then Not (parse_not l) else parse_primary_cond l

and parse_primary_cond l =
  if is_kw l "EXISTS" then begin
    expect_kw l "EXISTS";
    expect_punct l "(";
    let q = parse_query_inner l in
    expect_punct l ")";
    Exists q
  end
  else if is_punct l "(" then begin
    (* Ambiguity: '(cond)' vs '(expr) cmp ...'. Try condition first and
       fall back to an expression-led predicate. *)
    let mark = Lexer.save l in
    match
      ignore (Lexer.next l);
      let c = parse_cond l in
      expect_punct l ")";
      c
    with
    | c -> (
        (* If a comparison operator follows, it was an expression after
           all: re-parse. *)
        match Lexer.peek l with
        | Lexer.Punct p when cmp_of_punct p <> None ->
            Lexer.restore l mark;
            parse_predicate l
        | _ -> c)
    | exception Parse_error _ ->
        Lexer.restore l mark;
        parse_predicate l
  end
  else parse_predicate l

and parse_predicate l =
  let e = parse_expr l in
  let negated = eat_kw l "NOT" in
  if is_kw l "IN" then begin
    expect_kw l "IN";
    expect_punct l "(";
    let c =
      if is_kw l "SELECT" then begin
        let q = parse_query_inner l in
        In_query (e, q)
      end
      else begin
        let rec items acc =
          let x = parse_expr l in
          if eat_punct l "," then items (x :: acc) else List.rev (x :: acc)
        in
        In_list (e, items [])
      end
    in
    expect_punct l ")";
    if negated then Not c else c
  end
  else if is_kw l "BETWEEN" then begin
    expect_kw l "BETWEEN";
    let lo = parse_expr l in
    expect_kw l "AND";
    let hi = parse_expr l in
    let c = Between (e, lo, hi) in
    if negated then Not c else c
  end
  else if is_kw l "LIKE" then begin
    expect_kw l "LIKE";
    match Lexer.next l with
    | Lexer.String s -> Like (e, s, not negated)
    | _ -> fail l "expected string after LIKE"
  end
  else if is_kw l "IS" then begin
    expect_kw l "IS";
    let neg = eat_kw l "NOT" in
    expect_kw l "NULL";
    Is_null (e, not neg)
  end
  else if negated then fail l "expected IN/BETWEEN/LIKE after NOT"
  else
    match Lexer.peek l with
    | Lexer.Punct p when cmp_of_punct p <> None -> (
        ignore (Lexer.next l);
        let op = Option.get (cmp_of_punct p) in
        (* Scalar subquery on the right-hand side? *)
        if is_punct l "(" then begin
          let mark = Lexer.save l in
          ignore (Lexer.next l);
          if is_kw l "SELECT" then begin
            let q = parse_query_inner l in
            expect_punct l ")";
            Cmp_query (op, e, q)
          end
          else begin
            Lexer.restore l mark;
            Cmp (op, e, parse_expr l)
          end
        end
        else
          match (is_kw l "ANY", is_kw l "SOME", is_kw l "ALL") with
          | false, false, false -> Cmp (op, e, parse_expr l)
          | _ ->
              ignore (Lexer.next l);
              expect_punct l "(";
              let q = parse_query_inner l in
              expect_punct l ")";
              Cmp_query (op, e, q))
    | _ -> fail l "expected comparison operator"

(* --- FROM clause ----------------------------------------------------------- *)

and parse_table_ref l =
  if is_punct l "(" then begin
    ignore (Lexer.next l);
    let q = parse_query_inner l in
    expect_punct l ")";
    ignore (eat_kw l "AS");
    let alias = ident l in
    Derived (q, alias)
  end
  else begin
    let name = ident l in
    ignore (eat_kw l "AS");
    match Lexer.peek l with
    | Lexer.Ident s when not (List.mem (upper s) reserved) ->
        ignore (Lexer.next l);
        Table (name, Some s)
    | _ -> Table (name, None)
  end

and parse_from l =
  (* Returns the table refs plus the conjunction of all ON conditions. *)
  let conds = ref [] in
  let rec joins acc =
    let is_join_kw () =
      is_kw l "JOIN" || is_kw l "INNER" || is_kw l "LEFT" || is_kw l "RIGHT"
      || is_kw l "FULL" || is_kw l "CROSS"
    in
    if is_join_kw () then begin
      ignore (eat_kw l "INNER");
      ignore (eat_kw l "LEFT");
      ignore (eat_kw l "RIGHT");
      ignore (eat_kw l "FULL");
      ignore (eat_kw l "CROSS");
      ignore (eat_kw l "OUTER");
      expect_kw l "JOIN";
      let t = parse_table_ref l in
      if eat_kw l "ON" then conds := parse_cond l :: !conds;
      joins (t :: acc)
    end
    else if eat_punct l "," then joins (parse_table_ref l :: acc)
    else List.rev acc
  in
  let refs = joins [ parse_table_ref l ] in
  (refs, List.rev !conds)

(* --- SELECT core ----------------------------------------------------------- *)

and parse_select l =
  expect_kw l "SELECT";
  let distinct = eat_kw l "DISTINCT" in
  ignore (eat_kw l "ALL");
  let select_list =
    if is_punct l "*" then begin
      ignore (Lexer.next l);
      []
    end
    else begin
      let item () =
        let e = parse_expr l in
        let alias =
          if eat_kw l "AS" then Some (ident l)
          else
            match Lexer.peek l with
            | Lexer.Ident s when not (List.mem (upper s) reserved) ->
                ignore (Lexer.next l);
                Some s
            | _ -> None
        in
        (e, alias)
      in
      let rec items acc =
        let it = item () in
        if eat_punct l "," then items (it :: acc) else List.rev (it :: acc)
      in
      items []
    end
  in
  expect_kw l "FROM";
  let from, join_conds = parse_from l in
  let where =
    if eat_kw l "WHERE" then Some (parse_cond l) else None
  in
  let where = Ast.conjoin (join_conds @ Option.to_list where) in
  let group_by =
    if is_kw l "GROUP" then begin
      expect_kw l "GROUP";
      expect_kw l "BY";
      let rec exprs acc =
        let e = parse_expr l in
        if eat_punct l "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if eat_kw l "HAVING" then Some (parse_cond l) else None in
  let order_by =
    if is_kw l "ORDER" then begin
      expect_kw l "ORDER";
      expect_kw l "BY";
      let rec exprs acc =
        let e = parse_expr l in
        ignore (eat_kw l "ASC");
        ignore (eat_kw l "DESC");
        if eat_punct l "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  if eat_kw l "LIMIT" then ignore (Lexer.next l);
  if eat_kw l "OFFSET" then ignore (Lexer.next l);
  Select { distinct; select_list; from; where; group_by; having; order_by }

and parse_query_inner l =
  let lhs = parse_select l in
  let rec setops acc =
    if is_kw l "UNION" then begin
      expect_kw l "UNION";
      let all = eat_kw l "ALL" in
      let rhs = parse_select l in
      setops (Setop ((if all then Union_all else Union), acc, rhs))
    end
    else if is_kw l "INTERSECT" then begin
      expect_kw l "INTERSECT";
      ignore (eat_kw l "ALL");
      setops (Setop (Intersect, acc, parse_select l))
    end
    else if is_kw l "EXCEPT" then begin
      expect_kw l "EXCEPT";
      ignore (eat_kw l "ALL");
      setops (Setop (Except, acc, parse_select l))
    end
    else acc
  in
  setops lhs

let parse_statement l =
  let views =
    if is_kw l "WITH" then begin
      expect_kw l "WITH";
      let rec view_list acc =
        let name = ident l in
        expect_kw l "AS";
        expect_punct l "(";
        let q = parse_query_inner l in
        expect_punct l ")";
        if eat_punct l "," then view_list ((name, q) :: acc)
        else List.rev ((name, q) :: acc)
      in
      view_list []
    end
    else []
  in
  let body = parse_query_inner l in
  ignore (eat_punct l ";");
  (match Lexer.peek l with
  | Lexer.Eof -> ()
  | _ -> fail l "trailing input");
  { views; body }

let parse src =
  match Lexer.create src with
  | Error _ as e -> e
  | Ok l -> ( try Ok (parse_statement l) with Parse_error m -> Error m)

let parse_query src =
  match parse src with
  | Ok { views = []; body } -> Ok body
  | Ok _ -> Error "unexpected WITH clause"
  | Error _ as e -> e
