(** Relation schemas (attribute lists per relation), matched
    case-insensitively. *)

type t

val empty : t
val of_list : (string * string list) list -> t
val add : string -> string list -> t -> t
val attrs : t -> string -> string list option
val mem : t -> string -> bool
val has_attr : t -> string -> string -> bool
