(** SQL tokenizer. Keywords are not distinguished from identifiers here;
    the parser matches identifiers case-insensitively. *)

type token =
  | Ident of string
  | Number of string
  | String of string  (** contents without quotes *)
  | Punct of string  (** operators and punctuation, e.g. "(", "<=", "," *)
  | Eof

type t

val create : string -> (t, string) result
(** Tokenize the whole input eagerly; reports unterminated strings or
    comments and illegal characters with their offset. *)

val peek : t -> token
val next : t -> token
(** Return the current token and advance. *)

val pos : t -> int
(** Index of the current token (for error messages). *)

val save : t -> int
val restore : t -> int -> unit
(** Save/restore the cursor: the parser backtracks at one ambiguity
    (parenthesised condition vs. parenthesised expression). *)
