(** Recursive-descent parser for the SQL fragment of paper §5.2:
    SELECT-FROM-WHERE with explicit JOIN ... ON, WITH views, set
    operations, and nested subqueries via IN, EXISTS and scalar
    comparisons. GROUP BY / HAVING / ORDER BY / LIMIT are parsed and
    retained but play no role in the hypergraph structure. *)

val parse : string -> (Ast.statement, string) result

val parse_query : string -> (Ast.query, string) result
(** Like {!parse} but without the WITH prefix. *)
