type token =
  | Ident of string
  | Number of string
  | String of string
  | Punct of string
  | Eof

type t = { tokens : token array; mutable index : int }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let len = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let error msg = Error (Printf.sprintf "SQL lexer error at offset %d: %s" !i msg) in
  let rec loop () =
    if !i >= len then Ok (List.rev (Eof :: !out))
    else begin
      let c = src.[!i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        incr i;
        loop ()
      end
      else if c = '-' && !i + 1 < len && src.[!i + 1] = '-' then begin
        while !i < len && src.[!i] <> '\n' do incr i done;
        loop ()
      end
      else if c = '/' && !i + 1 < len && src.[!i + 1] = '*' then begin
        let closed = ref false in
        i := !i + 2;
        while (not !closed) && !i + 1 < len do
          if src.[!i] = '*' && src.[!i + 1] = '/' then begin
            closed := true;
            i := !i + 2
          end
          else incr i
        done;
        if !closed then loop () else error "unterminated comment"
      end
      else if is_ident_start c then begin
        let start = !i in
        while !i < len && is_ident_char src.[!i] do incr i done;
        out := Ident (String.sub src start (!i - start)) :: !out;
        loop ()
      end
      else if is_digit c then begin
        let start = !i in
        while !i < len && (is_digit src.[!i] || src.[!i] = '.') do incr i done;
        out := Number (String.sub src start (!i - start)) :: !out;
        loop ()
      end
      else if c = '\'' then begin
        (* SQL strings; '' escapes a quote. *)
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= len then error "unterminated string"
          else if src.[!i] = '\'' then
            if !i + 1 < len && src.[!i + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              i := !i + 2;
              scan ()
            end
            else begin
              incr i;
              out := String (Buffer.contents buf) :: !out;
              loop ()
            end
          else begin
            Buffer.add_char buf src.[!i];
            incr i;
            scan ()
          end
        in
        scan ()
      end
      else if c = '"' then begin
        (* Double-quoted identifiers. *)
        let close = try String.index_from src (!i + 1) '"' with Not_found -> -1 in
        if close < 0 then error "unterminated quoted identifier"
        else begin
          out := Ident (String.sub src (!i + 1) (close - !i - 1)) :: !out;
          i := close + 1;
          loop ()
        end
      end
      else begin
        let two =
          if !i + 1 < len then String.sub src !i 2 else ""
        in
        match two with
        | "<=" | ">=" | "<>" | "!=" | "==" | "||" ->
            out := Punct (if two = "!=" then "<>" else if two = "==" then "=" else two) :: !out;
            i := !i + 2;
            loop ()
        | _ -> (
            match c with
            | '(' | ')' | ',' | '.' | '=' | '<' | '>' | '+' | '-' | '*' | '/'
            | ';' | '%' ->
                out := Punct (String.make 1 c) :: !out;
                incr i;
                loop ()
            | _ -> error (Printf.sprintf "unexpected character %C" c))
      end
    end
  in
  loop ()

let create src =
  match tokenize src with
  | Ok tokens -> Ok { tokens = Array.of_list tokens; index = 0 }
  | Error _ as e -> e

let peek t = t.tokens.(t.index)

let next t =
  let tok = t.tokens.(t.index) in
  if tok <> Eof then t.index <- t.index + 1;
  tok

let pos t = t.index

let save t = t.index

let restore t i = t.index <- i
