(* Relation schemas: attribute lists per relation name, matched
   case-insensitively. Used to give table instances their full attribute
   sets during hypergraph conversion and to resolve unqualified columns. *)

type t = (string * string list) list

let empty : t = []

let norm = String.lowercase_ascii

let of_list l : t = List.map (fun (n, attrs) -> (norm n, attrs)) l

let add name attrs (t : t) : t = (norm name, attrs) :: t

let attrs (t : t) name = List.assoc_opt (norm name) t

let mem (t : t) name = List.mem_assoc (norm name) t

let has_attr (t : t) name attr =
  match attrs t name with
  | None -> false
  | Some l -> List.exists (fun a -> norm a = norm attr) l
