lib/sql/transform.mli: Ast Schema
