lib/sql/convert.mli: Ast Hg Schema
