lib/sql/schema.mli:
