lib/sql/lexer.mli:
