lib/sql/ast.ml: List
