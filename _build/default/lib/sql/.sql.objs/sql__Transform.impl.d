lib/sql/transform.ml: Ast Hashtbl List Option Printf Schema String
