lib/sql/convert.ml: Array Ast Hashtbl Hg Kit List Option Parser Printf Schema String Transform
