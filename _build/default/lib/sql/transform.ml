open Ast

type simple = {
  id : string;
  select : Ast.select;
}

type outcome = {
  simples : simple list;
  schema : Schema.t;
  warnings : string list;
}

(* --- generic traversals -------------------------------------------------- *)

let rec expr_cols e acc =
  match e with
  | Col (q, c) -> (q, c) :: acc
  | Lit _ | Star -> acc
  | Fun (_, args) -> List.fold_right expr_cols args acc
  | Binop (_, a, b) -> expr_cols a (expr_cols b acc)

let rec cond_cols c acc =
  match c with
  | And (a, b) | Or (a, b) -> cond_cols a (cond_cols b acc)
  | Not a -> cond_cols a acc
  | Cmp (_, a, b) -> expr_cols a (expr_cols b acc)
  | In_query (e, _) | Cmp_query (_, e, _) -> expr_cols e acc
  | In_list (e, es) -> expr_cols e (List.fold_right expr_cols es acc)
  | Exists _ -> acc
  | Between (e, lo, hi) -> expr_cols e (expr_cols lo (expr_cols hi acc))
  | Is_null (e, _) | Like (e, _, _) -> expr_cols e acc

(* All column references of a query, including nested subqueries. *)
let rec query_cols q acc =
  match q with
  | Setop (_, a, b) -> query_cols a (query_cols b acc)
  | Select s ->
      let acc = List.fold_right (fun (e, _) -> expr_cols e) s.select_list acc in
      let acc = match s.where with Some c -> deep_cond_cols c acc | None -> acc in
      let acc = List.fold_right expr_cols s.group_by acc in
      let acc = match s.having with Some c -> deep_cond_cols c acc | None -> acc in
      let acc = List.fold_right expr_cols s.order_by acc in
      List.fold_right
        (fun tr acc ->
          match tr with Derived (q', _) -> query_cols q' acc | Table _ -> acc)
        s.from acc

and deep_cond_cols c acc =
  let acc = cond_cols c acc in
  match c with
  | In_query (_, q) | Cmp_query (_, _, q) | Exists q -> query_cols q acc
  | And (a, b) | Or (a, b) -> deep_cond_cols a (deep_cond_cols b acc)
  | Not a -> deep_cond_cols a acc
  | Cmp _ | In_list _ | Between _ | Is_null _ | Like _ -> acc

let bindings_of_select s = List.map Ast.binding_name s.from

(* --- view expansion ------------------------------------------------------ *)

(* Environment: expanded view bodies by (lowercased) name. *)
let norm = String.lowercase_ascii

(* Reset at each [extract] so that repeated runs produce identical alias
   names (the benchmark repository relies on this determinism). *)
let alias_counter = ref 0

let fresh_alias base =
  incr alias_counter;
  Printf.sprintf "%s_%d" base !alias_counter

(* Output columns of a view: alias if given, else the column name for plain
   column items. *)
let view_columns (s : select) =
  List.filter_map
    (fun (e, alias) ->
      match (alias, e) with
      | Some a, _ -> Some (a, e)
      | None, Col (_, c) -> Some (c, e)
      | None, _ -> None)
    s.select_list

let rec rewrite_expr map e =
  match e with
  | Col (Some q, c) -> (
      match List.assoc_opt (norm q, norm c) map with
      | Some e' -> e'
      | None -> (
          match List.assoc_opt (norm q, "*") map with
          | Some (Col (Some q', _)) -> Col (Some q', c)
          | _ -> e))
  | Col (None, _) | Lit _ | Star -> e
  | Fun (f, args) -> Fun (f, List.map (rewrite_expr map) args)
  | Binop (op, a, b) -> Binop (op, rewrite_expr map a, rewrite_expr map b)

let rec rewrite_cond map c =
  match c with
  | And (a, b) -> And (rewrite_cond map a, rewrite_cond map b)
  | Or (a, b) -> Or (rewrite_cond map a, rewrite_cond map b)
  | Not a -> Not (rewrite_cond map a)
  | Cmp (op, a, b) -> Cmp (op, rewrite_expr map a, rewrite_expr map b)
  | In_query (e, q) -> In_query (rewrite_expr map e, q)
  | Cmp_query (op, e, q) -> Cmp_query (op, rewrite_expr map e, q)
  | In_list (e, es) -> In_list (rewrite_expr map e, List.map (rewrite_expr map) es)
  | Exists q -> Exists q
  | Between (e, lo, hi) ->
      Between (rewrite_expr map e, rewrite_expr map lo, rewrite_expr map hi)
  | Is_null (e, b) -> Is_null (rewrite_expr map e, b)
  | Like (e, s, b) -> Like (rewrite_expr map e, s, b)

(* A select is inlineable when it is a plain conjunctive shape: no
   grouping, no distinct (distinct is harmless for structure, but keep it
   simple), and its FROM contains only base tables. *)
let inlineable (s : select) =
  s.group_by = [] && s.having = None
  && List.for_all (function Table _ -> true | Derived _ -> false) s.from

(* Inline [view_body] (an inlineable select) into [outer] replacing the
   table_ref bound as [alias]. Returns the updated select. *)
let inline_view ~alias ~(view_body : select) (outer : select) =
  (* Fresh aliases for the view's internal bindings. *)
  let renaming =
    List.map
      (fun tr ->
        let b = Ast.binding_name tr in
        (norm b, fresh_alias b))
      view_body.from
  in
  let rename_expr e =
    rewrite_expr
      (List.map (fun (old, fresh) -> ((old, "*"), Col (Some fresh, "*"))) renaming)
      e
  in
  let rename_cond c =
    rewrite_cond
      (List.map (fun (old, fresh) -> ((old, "*"), Col (Some fresh, "*"))) renaming)
      c
  in
  let renamed_from =
    List.map
      (fun tr ->
        match tr with
        | Table (name, _) ->
            Table (name, Some (List.assoc (norm (Ast.binding_name tr)) renaming))
        | Derived _ -> assert false)
      view_body.from
  in
  (* Map view output columns to renamed inner expressions. *)
  let col_map =
    List.map
      (fun (out_col, e) -> ((norm alias, norm out_col), rename_expr e))
      (view_columns view_body)
  in
  let from =
    List.concat_map
      (fun tr ->
        if norm (Ast.binding_name tr) = norm alias then renamed_from else [ tr ])
      outer.from
  in
  let inner_where = Option.map rename_cond view_body.where in
  let where =
    Ast.conjoin
      (Option.to_list (Option.map (rewrite_cond col_map) outer.where)
      @ Option.to_list inner_where)
  in
  {
    outer with
    from;
    where;
    select_list = List.map (fun (e, a) -> (rewrite_expr col_map e, a)) outer.select_list;
    group_by = List.map (rewrite_expr col_map) outer.group_by;
    order_by = List.map (rewrite_expr col_map) outer.order_by;
  }

(* --- the main extraction ------------------------------------------------- *)

let extract ?(schema = Schema.empty) (stmt : statement) =
  alias_counter := 0;
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let schema = ref schema in
  let simples = ref [] in
  (* Expanded views by name; opaque views are registered in the schema. *)
  let views : (string, select option) Hashtbl.t = Hashtbl.create 8 in

  (* Stage 1+2+3 are interleaved: walk a query; [path] names it; [outer]
     is the list of binding sets of all ancestor queries (for the
     correlation test of §5.3). *)
  let rec walk_query path outer q =
    match q with
    | Setop (_, a, b) ->
        walk_query (path ^ ".u1") outer a;
        walk_query (path ^ ".u2") outer b
    | Select s -> walk_select path outer s

  and resolve_from path s =
    (* Expand view references and FROM-subqueries. Fixpoint because an
       inlined view can re-introduce view references (views may use other
       views). *)
    let changed = ref false in
    let s =
      List.fold_left
        (fun s tr ->
          match tr with
          | Derived (q', alias) -> (
              match q' with
              | Select inner when inlineable inner ->
                  changed := true;
                  inline_view ~alias ~view_body:inner s
              | _ ->
                  (* Opaque derived table: register output columns. *)
                  changed := true;
                  let cols =
                    match q' with
                    | Select inner -> List.map fst (view_columns inner)
                    | Setop _ -> []
                  in
                  schema := Schema.add alias cols !schema;
                  walk_query (path ^ "." ^ alias) [] q';
                  {
                    s with
                    from =
                      List.map
                        (fun tr' ->
                          if tr' == tr then Table (alias, Some alias) else tr')
                        s.from;
                  })
          | Table (name, alias_opt) -> (
              match Hashtbl.find_opt views (norm name) with
              | Some (Some body) ->
                  changed := true;
                  let alias = Option.value alias_opt ~default:name in
                  inline_view ~alias ~view_body:body s
              | Some None | None -> s))
        s s.from
    in
    if !changed then resolve_from path s else s

  and walk_select path outer s =
    let s = resolve_from path s in
    let my_bindings = List.map norm (bindings_of_select s) in
    (* Correlation test: does a (sub)query reference a binding that is not
       local to it but belongs to an ancestor? *)
    let correlated q =
      let cols = query_cols q [] in
      let local = local_bindings q in
      List.exists
        (fun (qual, _) ->
          match qual with
          | None -> false
          | Some b ->
              let b = norm b in
              (not (List.mem b local))
              && List.exists (List.mem b) (my_bindings :: outer))
        cols
    in
    (* Emit this query as a simple one. *)
    simples := { id = path; select = s } :: !simples;
    (* Extract uncorrelated WHERE-subqueries as independent queries. *)
    let counter = ref 0 in
    let rec visit_cond c =
      match c with
      | And (a, b) | Or (a, b) ->
          visit_cond a;
          visit_cond b
      | Not a -> visit_cond a
      | In_query (_, q) | Cmp_query (_, _, q) | Exists q ->
          incr counter;
          if correlated q then
            warn "%s: dropped correlated subquery #%d (cycle in dependency graph)"
              path !counter
          else walk_query (Printf.sprintf "%s.sub%d" path !counter) (my_bindings :: outer) q
      | Cmp _ | In_list _ | Between _ | Is_null _ | Like _ -> ()
    in
    Option.iter visit_cond s.where;
    Option.iter visit_cond s.having

  and local_bindings q =
    (* Bindings defined anywhere inside q (its own FROM and nested). *)
    match q with
    | Setop (_, a, b) -> local_bindings a @ local_bindings b
    | Select s ->
        List.map norm (bindings_of_select s)
        @ List.concat_map
            (fun tr ->
              match tr with Derived (q', _) -> local_bindings q' | Table _ -> [])
            s.from
        @
        let rec sub_cond c =
          match c with
          | And (a, b) | Or (a, b) -> sub_cond a @ sub_cond b
          | Not a -> sub_cond a
          | In_query (_, q') | Cmp_query (_, _, q') | Exists q' -> local_bindings q'
          | Cmp _ | In_list _ | Between _ | Is_null _ | Like _ -> []
        in
        (match s.where with Some c -> sub_cond c | None -> [])
  in

  (* Register WITH views first (they may reference earlier views). *)
  List.iter
    (fun (name, q) ->
      match q with
      | Select body when inlineable body ->
          (* Expand references to earlier views inside this body. *)
          let body = resolve_from ("view:" ^ name) body in
          Hashtbl.replace views (norm name) (Some body)
      | _ ->
          let cols =
            match q with
            | Select body -> List.map fst (view_columns body)
            | Setop _ -> []
          in
          schema := Schema.add name cols !schema;
          Hashtbl.replace views (norm name) None;
          walk_query ("view:" ^ name) [] q)
    stmt.views;

  walk_query "q" [] stmt.body;
  {
    simples = List.rev !simples;
    schema = !schema;
    warnings = List.rev !warnings;
  }

(* --- conjunctive core ----------------------------------------------------- *)

let is_constant = function Lit _ -> true | _ -> false

let conjunctive_core (s : select) =
  let keep c =
    match c with
    | Cmp (Eq, Col _, Col _) -> true
    | Cmp (Eq, Col _, e) when is_constant e -> true
    | Cmp (Eq, e, Col _) when is_constant e -> true
    | _ -> false
  in
  let where =
    match s.where with
    | None -> None
    | Some c -> Ast.conjoin (List.filter keep (Ast.conjuncts c))
  in
  { s with where; group_by = []; having = None; order_by = [] }
