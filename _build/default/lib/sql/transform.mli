(** Query decomposition into simple conjunctive-core queries
    (paper §5.2–5.3).

    The pipeline: (1) WITH views and FROM-subqueries are expanded inline
    when they are plain SELECTs (aggregating or set-operation views are
    kept as opaque relations and their output columns registered as a
    synthetic schema); (2) set operations split into their operand
    queries; (3) WHERE-subqueries are organised in the dependency graph of
    §5.3 — subqueries that reference tables of an ancestor (correlated
    subqueries, i.e. cycles in the graph) are discarded together with
    their descendants, all others are extracted as independent simple
    queries. *)

type simple = {
  id : string;  (** derived name, e.g. ["q"], ["q.sub1"], ["q.u2"] *)
  select : Ast.select;  (** FROM contains base tables only *)
}

type outcome = {
  simples : simple list;
  schema : Schema.t;  (** input schema extended with opaque-view schemas *)
  warnings : string list;
}

val extract : ?schema:Schema.t -> Ast.statement -> outcome

val conjunctive_core : Ast.select -> Ast.select
(** Keep only the FROM list and the equality conjuncts
    [col = col] / [col = const] of WHERE; everything else — including any
    condition below OR or NOT — is dropped (paper §5.2). *)
