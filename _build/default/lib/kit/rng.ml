(* splitmix64: fast, high-quality, splittable. State is a single int64. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value is non-negative as a native 63-bit int. *)
  let x = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  x mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t n k =
  if k > n then invalid_arg "Rng.sample: k > n";
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
