(** Exact rational arithmetic over native integers.

    Numerators and denominators are kept reduced (gcd 1, positive
    denominator). Intended for the small numbers arising in fractional
    edge-cover widths; native-int overflow is not guarded against. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den]. @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator at most [max_den]
    (default 1024), via continued fractions. *)

val ceil : t -> int
val floor : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
