(* Immutable bitsets backed by int arrays. The universe size is stored in
   the first cell so that sets over different universes cannot be mixed
   silently. Words hold [bits] elements each. *)

let bits = Sys.int_size

type t = int array
(* t.(0) = universe size; t.(1..) = bit words. *)

let words n = (n + bits - 1) / bits

let empty n =
  assert (n >= 0);
  Array.make (1 + words n) 0 |> fun a -> a.(0) <- n; a

let universe s = s.(0)

let check_elt s x =
  if x < 0 || x >= s.(0) then
    invalid_arg (Printf.sprintf "Bitset: element %d outside universe %d" x s.(0))

let full n =
  let s = empty n in
  let w = words n in
  for i = 1 to w do s.(i) <- -1 done;
  (* Clear the bits beyond n in the last word. *)
  let rem = n mod bits in
  if w > 0 && rem <> 0 then s.(w) <- s.(w) land ((1 lsl rem) - 1);
  s

let mem x s =
  check_elt s x;
  s.(1 + x / bits) land (1 lsl (x mod bits)) <> 0

let add x s =
  check_elt s x;
  let s' = Array.copy s in
  s'.(1 + x / bits) <- s'.(1 + x / bits) lor (1 lsl (x mod bits));
  s'

let remove x s =
  check_elt s x;
  let s' = Array.copy s in
  s'.(1 + x / bits) <- s'.(1 + x / bits) land lnot (1 lsl (x mod bits));
  s'

let singleton n x = add x (empty n)

let of_list n xs = List.fold_left (fun s x -> add x s) (empty n) xs

let same_universe a b =
  if a.(0) <> b.(0) then
    invalid_arg
      (Printf.sprintf "Bitset: universes differ (%d vs %d)" a.(0) b.(0))

let map2 f a b =
  same_universe a b;
  let r = Array.copy a in
  for i = 1 to Array.length a - 1 do r.(i) <- f a.(i) b.(i) done;
  r

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let is_empty s =
  let rec go i = i >= Array.length s || (s.(i) = 0 && go (i + 1)) in
  go 1

let equal a b =
  same_universe a b;
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 1

let compare a b =
  same_universe a b;
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 1

let subset a b =
  same_universe a b;
  let rec go i =
    i >= Array.length a || (a.(i) land lnot b.(i) = 0 && go (i + 1))
  in
  go 1

let intersects a b =
  same_universe a b;
  let rec go i =
    i < Array.length a && (a.(i) land b.(i) <> 0 || go (i + 1))
  in
  go 1

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal s =
  let c = ref 0 in
  for i = 1 to Array.length s - 1 do c := !c + popcount s.(i) done;
  !c

let inter_cardinal a b =
  same_universe a b;
  let c = ref 0 in
  for i = 1 to Array.length a - 1 do c := !c + popcount (a.(i) land b.(i)) done;
  !c

let iter f s =
  for i = 1 to Array.length s - 1 do
    let w = ref s.(i) in
    while !w <> 0 do
      let b = !w land - !w in
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      f (((i - 1) * bits) + log2 b 0);
      w := !w land (!w - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun x -> acc := f x !acc) s;
  !acc

let to_list s = List.rev (fold (fun x l -> x :: l) s [])

let choose s =
  let exception Found of int in
  try iter (fun x -> raise (Found x)) s; None with Found x -> Some x

let for_all p s =
  let exception Fail in
  try iter (fun x -> if not (p x) then raise Fail) s; true
  with Fail -> false

let exists p s = not (for_all (fun x -> not (p x)) s)

let filter p s = fold (fun x acc -> if p x then add x acc else acc) s (empty s.(0))

let hash s =
  let h = ref 5381 in
  for i = 1 to Array.length s - 1 do
    h := (!h * 33) lxor s.(i)
  done;
  !h land max_int

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat ", " (List.map string_of_int (to_list s)))
