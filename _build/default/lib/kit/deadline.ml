exception Timed_out

type kind =
  | No_limit
  | Wall of float (* absolute deadline *)
  | Fuel of int ref

type t = { kind : kind; started : float; mutable ticks : int }

let now () = Unix.gettimeofday ()

let none = { kind = No_limit; started = 0.0; ticks = 0 }

let of_seconds s = { kind = Wall (now () +. s); started = now (); ticks = 0 }

let of_fuel n = { kind = Fuel (ref n); started = now (); ticks = 0 }

let expired t =
  match t.kind with
  | No_limit -> false
  | Wall d -> now () > d
  | Fuel r -> !r <= 0

let check t =
  match t.kind with
  | No_limit -> ()
  | Fuel r ->
      decr r;
      if !r <= 0 then raise Timed_out
  | Wall d ->
      t.ticks <- t.ticks + 1;
      if t.ticks land 1023 = 0 && now () > d then raise Timed_out

let elapsed t = if t.started = 0.0 then 0.0 else now () -. t.started
