lib/kit/rational.ml: Float Format Int Printf
