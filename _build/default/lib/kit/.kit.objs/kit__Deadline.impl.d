lib/kit/deadline.ml: Unix
