lib/kit/rng.ml: Array Int64
