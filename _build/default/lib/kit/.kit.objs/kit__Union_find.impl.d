lib/kit/union_find.ml: Array
