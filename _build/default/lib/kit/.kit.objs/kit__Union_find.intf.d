lib/kit/union_find.mli:
