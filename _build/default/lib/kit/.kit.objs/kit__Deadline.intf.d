lib/kit/deadline.mli:
