lib/kit/bitset.ml: Array Format Int List Printf String Sys
