lib/kit/names.mli:
