lib/kit/bitset.mli: Format
