lib/kit/rng.mli:
