lib/kit/rational.mli: Format
