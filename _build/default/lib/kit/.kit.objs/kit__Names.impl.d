lib/kit/names.ml: Array Hashtbl Printf
