(** Deterministic splittable pseudo-random numbers (splitmix64).

    Used by every workload generator so that the benchmark repository is
    reproducible bit-for-bit across runs and machines. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> int -> int list
(** [sample t n k] draws [k] distinct integers from [0, n). *)
