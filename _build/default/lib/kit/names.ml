type t = {
  tbl : (string, int) Hashtbl.t;
  mutable arr : string array;
  mutable count : int;
}

let create () = { tbl = Hashtbl.create 64; arr = Array.make 16 ""; count = 0 }

let intern t name =
  match Hashtbl.find_opt t.tbl name with
  | Some id -> id
  | None ->
      let id = t.count in
      if id >= Array.length t.arr then begin
        let arr = Array.make (2 * Array.length t.arr) "" in
        Array.blit t.arr 0 arr 0 t.count;
        t.arr <- arr
      end;
      t.arr.(id) <- name;
      t.count <- id + 1;
      Hashtbl.add t.tbl name id;
      id

let find_opt t name = Hashtbl.find_opt t.tbl name

let name t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Names.name: unknown id %d" id);
  t.arr.(id)

let count t = t.count

let to_array t = Array.sub t.arr 0 t.count
