(** Cooperative deadlines for long-running searches.

    The paper runs every algorithm with a 3600 s timeout on a cluster; we
    reproduce the behaviour in-process. Search loops call {!check}
    periodically; when the wall-clock budget (or the deterministic fuel
    budget used in tests) is exhausted, {!Timed_out} is raised and the
    caller reports a timeout instead of an answer. *)

exception Timed_out

type t

val none : t
(** Never times out. *)

val of_seconds : float -> t
(** Budget starting now. *)

val of_fuel : int -> t
(** Deterministic budget: times out after [n] checks. *)

val check : t -> unit
(** @raise Timed_out when the budget is exhausted. Cheap: the wall clock is
    consulted only every 1024 calls. *)

val expired : t -> bool
(** Non-raising variant of {!check}. *)

val elapsed : t -> float
(** Seconds since the deadline was created (0 for [none]/fuel budgets
    created without a clock). *)
