(** String interning: a bijective mapping between names and dense ids.

    Hypergraph vertices and edges are represented internally by integers;
    this table remembers the original names for printing and parsing. *)

type t

val create : unit -> t
val intern : t -> string -> int
(** Id of [name], allocating a fresh id on first sight. *)

val find_opt : t -> string -> int option
val name : t -> int -> string
(** @raise Invalid_argument on an unknown id. *)

val count : t -> int
val to_array : t -> string array
(** Names in id order. *)
