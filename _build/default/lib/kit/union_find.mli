(** Classic union-find with path compression and union by rank.

    Used for connected components and for the attribute-merging step of the
    SQL-to-hypergraph conversion. *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes 0..n-1. *)

val find : t -> int -> int
(** Canonical representative of the class of [x]. *)

val union : t -> int -> int -> unit
(** Merge the classes of the two elements. *)

val same : t -> int -> int -> bool

val groups : t -> int list array
(** All classes as lists, indexed by representative; non-representative
    slots hold the empty list. *)
