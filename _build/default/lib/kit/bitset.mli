(** Immutable fixed-universe bitsets.

    All sets created from the same [universe] size are compatible; mixing
    sets of different universe sizes is a programming error and is rejected
    by an assertion. Elements are integers in [0, universe). *)

type t

val empty : int -> t
(** [empty n] is the empty set over universe size [n]. *)

val full : int -> t
(** [full n] is {0, ..., n-1}. *)

val universe : t -> int
(** Universe size this set was created with. *)

val singleton : int -> int -> t
(** [singleton n x] is the set {x} over universe size [n]. *)

val of_list : int -> int list -> t
val to_list : t -> int list

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val intersects : t -> t -> bool
(** [intersects a b] is true iff [a] and [b] share an element. *)

val cardinal : t -> int
val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] = [cardinal (inter a b)] without allocating. *)

val choose : t -> int option
(** Smallest element, if any. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 5}]. *)
