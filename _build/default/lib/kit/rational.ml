type t = { num : int; den : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)
let div a b = make (a.num * b.den) (a.den * b.num)
let neg a = { a with num = -a.num }

let compare a b = Int.compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_float a = float_of_int a.num /. float_of_int a.den

(* Stern–Brocot / continued-fraction approximation. *)
let of_float_approx ?(max_den = 1024) x =
  if Float.is_nan x || Float.is_integer x then of_int (int_of_float x)
  else begin
    let neg_input = x < 0.0 in
    let x = Float.abs x in
    let p0 = ref 0 and q0 = ref 1 and p1 = ref 1 and q1 = ref 0 in
    let r = ref x in
    (try
       while true do
         let a = int_of_float (Float.floor !r) in
         let p2 = (a * !p1) + !p0 and q2 = (a * !q1) + !q0 in
         if q2 > max_den then raise Exit;
         p0 := !p1; q0 := !q1; p1 := p2; q1 := q2;
         let frac = !r -. Float.of_int a in
         if frac < 1e-12 then raise Exit;
         r := 1.0 /. frac
       done
     with Exit -> ());
    let v = make !p1 !q1 in
    if neg_input then neg v else v
  end

let floor a =
  if a.num >= 0 then a.num / a.den
  else if a.num mod a.den = 0 then a.num / a.den
  else (a.num / a.den) - 1

let ceil a = - (floor (neg a))

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)
