(** A small XML parser, sufficient for XCSP3-style instance files:
    elements, attributes (single or double quoted), text, comments,
    processing instructions/declarations, self-closing tags and the five
    predefined entities. No DTD, CDATA or namespace handling. *)

type node =
  | Element of string * (string * string) list * node list
  | Text of string

val parse : string -> (node, string) result
(** Parse a document; returns its single root element. *)

val tag : node -> string option
val attr : node -> string -> string option
val children : node -> node list
val text_content : node -> string
(** Concatenated text of the node and its descendants. *)

val find_child : node -> string -> node option
val find_children : node -> string -> node list
(** Direct children by tag name. *)
