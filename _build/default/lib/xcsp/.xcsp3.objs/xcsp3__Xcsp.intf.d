lib/xcsp/xcsp.mli: Hg
