lib/xcsp/xcsp.ml: Array Buffer Hashtbl Hg Kit List Option Printf String Xml
