lib/xcsp/xml.ml: Buffer List Printf String
