lib/xcsp/xml.mli:
