(** Fractional edge covers and fractionally improved decompositions
    (paper §6.5).

    [rho_star] is the fractional edge cover number ρ*(X): the optimum of
    the covering LP min Σ γ_e subject to Σ_{e ∋ v} γ_e >= 1 for every
    v ∈ X, γ >= 0. {!Improve_hd} replaces the integral covers of an
    existing (G)HD by fractional ones; {!Frac_improve_hd} searches over
    all HDs of integral width <= k for one whose fractional width is
    <= k'. *)

module Frac_cover : sig
  type t = { weight : float; gamma : (int * float) list }
  (** An optimal fractional cover: total weight and per-edge weights
      (edges with weight 0 omitted). *)

  val rho_star :
    ?edges:Kit.Bitset.t -> Hg.Hypergraph.t -> Kit.Bitset.t -> t option
  (** ρ*(X) using the given candidate edges (default: all edges of the
      hypergraph). [None] when X cannot be covered at all (some vertex of
      X lies in no candidate edge). *)

  val rho_star_exact :
    ?edges:Kit.Bitset.t ->
    ?max_den:int ->
    Hg.Hypergraph.t ->
    Kit.Bitset.t ->
    Kit.Rational.t option
  (** Exact rational value of ρ*(X), obtained by rounding the simplex
      optimum to a small-denominator rational and re-verifying the cover
      constraints exactly. [None] if no verified reconstruction exists
      within [max_den] (default 1024) or X is uncoverable. *)

  val verify : Hg.Hypergraph.t -> Kit.Bitset.t -> t -> bool
  (** Does [gamma] really cover X (within tolerance) with total weight
      equal to [weight]? *)
end

module Improve_hd : sig
  val improve : Hg.Hypergraph.t -> Decomp.t -> Decomp.Fractional.fhd
  (** ImproveHD: keep the tree and bags of an HD/GHD, replace every
      integral cover λ_u by an optimal fractional cover γ_u of B_u.
      The result is a valid FHD of width <= the integral width. *)

  val improved_width : Hg.Hypergraph.t -> Decomp.t -> float
  (** Fractional width of the improved decomposition. *)
end

module Frac_improve_hd : sig
  type outcome =
    | Improved of Decomp.Fractional.fhd * float
    | No_improvement
    | Timeout

  val check :
    ?deadline:Kit.Deadline.t ->
    Hg.Hypergraph.t ->
    k:int ->
    k':float ->
    outcome
  (** FracImproveHD check: is there an HD of width <= k all of whose bags
      have ρ* <= k'? Searches with DetKDecomp plus a bag filter; ρ*
      values are memoised per bag. *)

  val best :
    ?deadline:Kit.Deadline.t ->
    ?step:float ->
    Hg.Hypergraph.t ->
    k:int ->
    (Decomp.Fractional.fhd * float) option
  (** Smallest fractional width reachable (to [step] granularity, default
      0.1) over all HDs of width <= k: repeatedly lowers k' until the
      check fails or times out. [None] when even the initial HD search
      fails or times out. *)
end
