module Bitset = Kit.Bitset
module Rational = Kit.Rational
module Hypergraph = Hg.Hypergraph

module Frac_cover = struct
  type t = { weight : float; gamma : (int * float) list }

  let eps = 1e-7

  let rho_star ?edges h x =
    if Bitset.is_empty x then Some { weight = 0.0; gamma = [] }
    else begin
      let candidate_pool =
        match edges with Some e -> e | None -> Hypergraph.all_edges h
      in
      (* Only edges meeting X can contribute. *)
      let cands =
        Bitset.to_list (Bitset.inter candidate_pool (Hypergraph.edges_touching h x))
      in
      let n = List.length cands in
      if n = 0 then None
      else begin
        let cand_arr = Array.of_list cands in
        let rows =
          Bitset.fold
            (fun v acc ->
              let row =
                Array.map
                  (fun e -> if Bitset.mem v (Hypergraph.edge h e) then 1.0 else 0.0)
                  cand_arr
              in
              (row, Lp.Ge, 1.0) :: acc)
            x []
        in
        (* A vertex of X in no candidate edge yields an all-zero >=1 row,
           which the solver correctly reports as infeasible. *)
        match Lp.minimize (Array.make n 1.0) rows with
        | Lp.Optimal { value; x = sol } ->
            let gamma = ref [] in
            Array.iteri
              (fun i w -> if w > eps then gamma := (cand_arr.(i), w) :: !gamma)
              sol;
            Some { weight = value; gamma = List.rev !gamma }
        | Lp.Infeasible -> None
        | Lp.Unbounded -> assert false (* covering objective is >= 0 *)
      end
    end

  let verify h x { weight; gamma } =
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 gamma in
    Float.abs (total -. weight) <= 1e-5
    && List.for_all (fun (_, w) -> w >= -.eps && w <= 1.0 +. eps) gamma
    && Bitset.for_all
         (fun v ->
           let cover =
             List.fold_left
               (fun acc (e, w) ->
                 if Bitset.mem v (Hypergraph.edge h e) then acc +. w else acc)
               0.0 gamma
           in
           cover >= 1.0 -. 1e-5)
         x

  (* Exact value by rational reconstruction: rationalise every weight and
     the total, then re-check all constraints in exact arithmetic. *)
  let rho_star_exact ?edges ?(max_den = 1024) h x =
    match rho_star ?edges h x with
    | None -> None
    | Some { weight; gamma } ->
        let rat_gamma =
          List.map (fun (e, w) -> (e, Rational.of_float_approx ~max_den w)) gamma
        in
        let total =
          List.fold_left (fun acc (_, w) -> Rational.add acc w) Rational.zero rat_gamma
        in
        let covers_exactly =
          Bitset.for_all
            (fun v ->
              let cover =
                List.fold_left
                  (fun acc (e, w) ->
                    if Bitset.mem v (Hypergraph.edge h e) then Rational.add acc w
                    else acc)
                  Rational.zero rat_gamma
              in
              Rational.compare cover Rational.one >= 0)
            x
        in
        if covers_exactly && Float.abs (Rational.to_float total -. weight) < 1e-4
        then Some total
        else None
end

module Improve_hd = struct
  let fractional_cover_of_bag h bag =
    match Frac_cover.rho_star h bag with
    | Some c -> c.Frac_cover.gamma
    | None ->
        (* Bags produced by our HD algorithms are always coverable. *)
        assert false

  let rec improve h (u : Decomp.node) : Decomp.Fractional.fnode =
    {
      Decomp.Fractional.fbag = u.Decomp.bag;
      fcover = fractional_cover_of_bag h u.Decomp.bag;
      fchildren = List.map (improve h) u.Decomp.children;
    }

  let improved_width h d = Decomp.Fractional.width (improve h d)
end

module Frac_improve_hd = struct
  type outcome =
    | Improved of Decomp.Fractional.fhd * float
    | No_improvement
    | Timeout

  let check ?deadline h ~k ~k' =
    (* Memoise ρ* per bag: the same bags recur across branches. *)
    let cache = Hashtbl.create 256 in
    let rho bag =
      let key = Bitset.to_list bag in
      match Hashtbl.find_opt cache key with
      | Some v -> v
      | None ->
          let v =
            match Frac_cover.rho_star h bag with
            | Some c -> c.Frac_cover.weight
            | None -> infinity
          in
          Hashtbl.add cache key v;
          v
    in
    let bag_filter bag = rho bag <= k' +. 1e-6 in
    match
      Detk.solve_gen ?deadline ~bag_filter
        ~candidates:(Detk.candidates_of_edges h) h ~k
    with
    | Detk.Decomposition d ->
        let fhd = Improve_hd.improve h d in
        Improved (fhd, Decomp.Fractional.width fhd)
    | Detk.No_decomposition -> No_improvement
    | Detk.Timeout -> Timeout

  let best ?deadline ?(step = 0.1) h ~k =
    (* Start from any HD of width <= k, then tighten the threshold. *)
    match Detk.solve ?deadline h ~k with
    | Detk.No_decomposition | Detk.Timeout -> None
    | Detk.Decomposition d ->
        let initial = Improve_hd.improve h d in
        let rec tighten best_fhd best_width =
          let target = best_width -. step in
          if target < 1.0 -. 1e-9 then Some (best_fhd, best_width)
          else
            match check ?deadline h ~k ~k':target with
            | Improved (fhd, w) ->
                (* The returned width can beat the target; keep tightening
                   from the actually achieved width. *)
                tighten fhd (Float.min w target)
            | No_improvement | Timeout -> Some (best_fhd, best_width)
        in
        tighten initial (Decomp.Fractional.width initial)
end
