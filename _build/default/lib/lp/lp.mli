(** A small dense linear-programming solver (two-phase primal simplex).

    Built from scratch because no LP package ships with this environment;
    fractional hypertree widths (paper §6.5) need one. Bland's rule is used
    throughout, so the solver cannot cycle; numerics are plain floats with
    an absolute tolerance, which is ample for the tiny edge-cover programs
    arising here (tens of variables and constraints). *)

type op = Le | Ge | Eq

type problem = {
  minimize : bool;
  objective : float array;
  rows : (float array * op * float) list;
      (** Each row [(a, op, b)] encodes [a · x op b]; variables are
          implicitly non-negative. *)
}

type solution = { value : float; x : float array }

type result = Optimal of solution | Infeasible | Unbounded

val solve : problem -> result

val minimize : float array -> (float array * op * float) list -> result
(** [minimize c rows] solves min c·x subject to [rows], x >= 0. *)

val maximize : float array -> (float array * op * float) list -> result
