type atom = {
  predicate : string;
  terms : term list;
}

and term = Var of string | Const of string

type rule = {
  head : atom option;
  body : atom list;
}

(* --- parsing ---------------------------------------------------------------- *)

exception Fail of string

let parse src =
  let pos = ref 0 in
  let len = String.length src in
  let fail msg = raise (Fail (Printf.sprintf "CQ parse error at offset %d: %s" !pos msg)) in
  let skip_ws () =
    let again = ref true in
    while !again do
      again := false;
      while
        !pos < len
        && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done;
      if !pos < len && src.[!pos] = '%' then begin
        while !pos < len && src.[!pos] <> '\n' do incr pos done;
        again := true
      end
    done
  in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let token () =
    skip_ws ();
    let start = !pos in
    while !pos < len && is_ident src.[!pos] do incr pos done;
    if !pos = start then fail "expected identifier";
    String.sub src start (!pos - start)
  in
  let expect c =
    skip_ws ();
    if !pos < len && src.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let peek_char () =
    skip_ws ();
    if !pos < len then Some src.[!pos] else None
  in
  let term_of_token t =
    let c = t.[0] in
    if (c >= 'A' && c <= 'Z') || c = '_' then Var t else Const t
  in
  let atom () =
    let predicate = token () in
    expect '(';
    let rec terms acc =
      let t = term_of_token (token ()) in
      match peek_char () with
      | Some ',' ->
          incr pos;
          terms (t :: acc)
      | Some ')' ->
          incr pos;
          List.rev (t :: acc)
      | _ -> fail "expected ',' or ')'"
    in
    { predicate; terms = terms [] }
  in
  try
    let first = atom () in
    skip_ws ();
    let head, first_body =
      if !pos + 1 < len && src.[!pos] = ':' && src.[!pos + 1] = '-' then begin
        pos := !pos + 2;
        (Some first, [ atom () ])
      end
      else (None, [ first ])
    in
    let rec body acc =
      match peek_char () with
      | Some ',' ->
          incr pos;
          body (atom () :: acc)
      | Some '.' ->
          incr pos;
          skip_ws ();
          if !pos < len then fail "trailing input after '.'" else List.rev acc
      | None -> List.rev acc
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    Ok { head; body = body (List.rev first_body) }
  with Fail m -> Error m

(* --- conversion -------------------------------------------------------------- *)

let variables atom =
  List.filter_map (function Var v -> Some v | Const _ -> None) atom.terms
  |> List.sort_uniq compare

let to_hypergraph rule =
  let named =
    List.mapi
      (fun i a ->
        (Printf.sprintf "%s.%d" a.predicate i, variables a))
      rule.body
    |> List.filter (fun (_, vs) -> vs <> [])
  in
  if named = [] then Error "CQ has no variables"
  else Ok (Hg.Hypergraph.of_named_edges named)

let read src =
  match parse src with Error _ as e -> e | Ok rule -> to_hypergraph rule
