(** Conjunctive queries in rule (Datalog) notation.

    The paper treats CQs and CSPs as {∃,∧} first-order formulae; this
    front-end accepts the usual written form

    {[ answer(X, Z) :- r(X, Y), s(Y, Z), t(Z, 'a', 3). ]}

    and produces the query hypergraph H_ϕ of §3.1: one vertex per
    variable, one edge per atom over the variables occurring in it.
    Variables start with an uppercase letter or [_]; anything else
    (lowercase identifiers, numbers, quoted strings) is a constant and —
    like the constants of the SQL translation — does not appear in the
    hypergraph. A headless form "r(X), s(X)." is also accepted. *)

type atom = {
  predicate : string;
  terms : term list;
}

and term = Var of string | Const of string

type rule = {
  head : atom option;
  body : atom list;
}

val parse : string -> (rule, string) result

val to_hypergraph : rule -> (Hg.Hypergraph.t, string) result
(** Fails when every atom is constant-only (no vertices). Atoms with no
    variables are dropped; duplicate atom bodies are kept (they collapse
    only under {!Hg.Hypergraph.dedup_edges}). *)

val read : string -> (Hg.Hypergraph.t, string) result
(** [parse] composed with [to_hypergraph]. *)
