module Bitset = Kit.Bitset
module Hypergraph = Hg.Hypergraph

type db = (int * Relation.t) list

let check_db h db =
  let m = h.Hypergraph.n_edges in
  let rec go e =
    if e >= m then Ok ()
    else
      match List.assoc_opt e db with
      | None ->
          Error (Printf.sprintf "no relation for edge %s" (Hypergraph.edge_name h e))
      | Some r ->
          if Relation.columns r <> Bitset.to_list (Hypergraph.edge h e) then
            Error
              (Printf.sprintf "relation columns mismatch edge %s"
                 (Hypergraph.edge_name h e))
          else go (e + 1)
  in
  go 0

let naive_join h db =
  let m = h.Hypergraph.n_edges in
  let acc = ref Relation.unit_relation in
  for e = 0 to m - 1 do
    acc := Relation.join !acc (List.assoc e db)
  done;
  !acc

(* Materialise the bag relation of one decomposition node: join the cover
   relations and project to the bag. A cover element that is a subedge
   uses its parent's relation projected to the subedge first. *)
let bag_relation db (u : Decomp.node) =
  let cover_rel (elt : Decomp.cover_elt) =
    match elt.Decomp.source with
    | Decomp.Original e -> List.assoc e db
    | Decomp.Subedge e ->
        Relation.project (List.assoc e db) (Bitset.to_list elt.Decomp.vertices)
    | Decomp.Special -> invalid_arg "Yannakakis: special edge in decomposition"
  in
  let joined =
    List.fold_left
      (fun acc elt -> Relation.join acc (cover_rel elt))
      Relation.unit_relation u.Decomp.cover
  in
  Relation.project joined (Bitset.to_list u.Decomp.bag)

(* A mutable mirror of the decomposition tree holding bag relations. *)
type node = { mutable rel : Relation.t; children : node list }

(* Upward pass: every parent is semijoin-reduced by its children. *)
let rec reduce_up t =
  List.iter reduce_up t.children;
  List.iter (fun c -> t.rel <- Relation.semijoin t.rel c.rel) t.children

(* Downward pass: every child is reduced by its (already reduced) parent. *)
let rec reduce_down t =
  List.iter
    (fun c ->
      c.rel <- Relation.semijoin c.rel t.rel;
      reduce_down c)
    t.children

(* Which edges does the decomposition cover at which node? Every edge must
   be joined in somewhere to enforce its own tuples, not just the bag
   projections: an edge e is "charged" to the first node whose bag
   contains it. *)
type charged_tree =
  | Charged of Decomp.node * int list * charged_tree list

let charge_edges h (root : Decomp.node) =
  let m = h.Hypergraph.n_edges in
  let charged = Array.make m false in
  let rec go (u : Decomp.node) =
    let here =
      List.filter_map
        (fun e ->
          if (not charged.(e)) && Bitset.subset (Hypergraph.edge h e) u.Decomp.bag
          then begin
            charged.(e) <- true;
            Some e
          end
          else None)
        (List.init m Fun.id)
    in
    Charged (u, here, List.map go u.Decomp.children)
  in
  let tree = go root in
  if Array.for_all Fun.id charged then Some tree else None

let evaluate h db (root : Decomp.node) =
  (* Bag relations joined with the relations of the edges charged to each
     node (so that every atom's tuples constrain the result). *)
  let rec build (Charged (u, charged, children)) =
    let base = bag_relation db u in
    let rel =
      List.fold_left (fun acc e -> Relation.join acc (List.assoc e db)) base charged
    in
    { rel; children = List.map build children }
  in
  match charge_edges h root with
  | None -> invalid_arg "Yannakakis.evaluate: decomposition does not cover all edges"
  | Some tree ->
      let t = build tree in
      reduce_up t;
      reduce_down t;
      (* Final upward join. *)
      let rec join_up t =
        List.fold_left (fun acc c -> Relation.join acc (join_up c)) t.rel t.children
      in
      join_up t

let boolean h db root =
  match charge_edges h root with
  | None -> invalid_arg "Yannakakis.boolean: decomposition does not cover all edges"
  | Some tree ->
      let rec build (Charged (u, charged, children)) =
        let base = bag_relation db u in
        let rel =
          List.fold_left (fun acc e -> Relation.join acc (List.assoc e db)) base charged
        in
        { rel; children = List.map build children }
      in
      let t = build tree in
      reduce_up t;
      not (Relation.is_empty t.rel)

let random_db rng ?(rows = 30) ?(domain = 8) h =
  List.init h.Hypergraph.n_edges (fun e ->
      let cols = Bitset.to_list (Hypergraph.edge h e) in
      let width = List.length cols in
      let tuples =
        List.init rows (fun _ ->
            Array.init width (fun _ -> Kit.Rng.int rng domain))
      in
      (e, Relation.create ~columns:cols tuples))
