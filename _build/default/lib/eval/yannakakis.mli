(** Decomposition-guided conjunctive query evaluation.

    This implements the paper's final future-work item — "test the
    practical feasibility of using decompositions to evaluate CQs" — with
    the textbook machinery hypertree decompositions were designed for:

    - a database assigns a relation to every edge of the query hypergraph
      (columns = the edge's vertices);
    - for an HD/GHD, every node's bag relation is the join of its cover
      relations projected to the bag (at most [width] joins per node);
    - Yannakakis' algorithm on the join tree — an upward and a downward
      semijoin pass (full reduction) followed by an upward join — yields
      the full answer with intermediate results bounded by the output (for
      the reduction passes).

    [naive_join] is the baseline the speed-ups are measured against. *)

type db = (int * Relation.t) list
(** One relation per edge id; columns must equal the edge's vertices. *)

val check_db : Hg.Hypergraph.t -> db -> (unit, string) result
(** Every edge has exactly one relation with the right columns. *)

val naive_join : Hg.Hypergraph.t -> db -> Relation.t
(** Left-deep join of all edge relations in id order. *)

val evaluate : Hg.Hypergraph.t -> db -> Decomp.t -> Relation.t
(** Full join result via the decomposition: bag materialisation, full
    semijoin reduction, upward join. Agrees with {!naive_join} on every
    valid decomposition of the query. *)

val boolean : Hg.Hypergraph.t -> db -> Decomp.t -> bool
(** Satisfiability only: stops after the upward semijoin pass (the
    O(|db| log |db|) part), never materialising the answer. *)

val random_db :
  Kit.Rng.t -> ?rows:int -> ?domain:int -> Hg.Hypergraph.t -> db
(** A random database: [rows] tuples per edge (default 30) over a [domain]
    (default 8). With a small domain most joins are satisfiable. *)
