(* Rows are stored in column-sorted order; a relation is a sorted column
   list plus a hash-set of rows. *)

module Row_set = Set.Make (struct
  type t = int array

  let compare = Stdlib.compare
end)

type t = {
  cols : int list;  (* sorted *)
  data : Row_set.t;
}

let columns t = t.cols
let rows t = Row_set.elements t.data
let cardinality t = Row_set.cardinal t.data
let is_empty t = Row_set.is_empty t.data

let unit_relation = { cols = []; data = Row_set.singleton [||] }

let create ~columns rows =
  let n = List.length columns in
  if List.length (List.sort_uniq compare columns) <> n then
    invalid_arg "Relation.create: duplicate columns";
  (* Store rows permuted into sorted-column order. *)
  let order =
    List.mapi (fun i c -> (c, i)) columns |> List.sort compare |> List.map snd
  in
  let sorted_cols = List.sort compare columns in
  let perm = Array.of_list order in
  let data =
    List.fold_left
      (fun acc row ->
        if Array.length row <> n then
          invalid_arg "Relation.create: row arity mismatch";
        Row_set.add (Array.map (fun i -> row.(i)) perm) acc)
      Row_set.empty rows
  in
  { cols = sorted_cols; data }

(* Positions of [sub] columns within [cols]. *)
let positions cols sub =
  let indexed = List.mapi (fun i c -> (c, i)) cols in
  List.map
    (fun c ->
      match List.assoc_opt c indexed with
      | Some i -> i
      | None -> invalid_arg "Relation: column not present")
    sub

let key_of positions row = List.map (fun i -> row.(i)) positions

let project t cols =
  let cols = List.sort_uniq compare cols in
  let pos = positions t.cols cols in
  let data =
    Row_set.fold
      (fun row acc -> Row_set.add (Array.of_list (key_of pos row)) acc)
      t.data Row_set.empty
  in
  { cols; data }

let shared_columns a b = List.filter (fun c -> List.mem c b.cols) a.cols

let group_by_key pos t =
  let tbl = Hashtbl.create (max 16 (Row_set.cardinal t.data)) in
  Row_set.iter
    (fun row ->
      let key = key_of pos row in
      Hashtbl.replace tbl key (row :: (Option.value (Hashtbl.find_opt tbl key) ~default:[])))
    t.data;
  tbl

let join a b =
  let shared = shared_columns a b in
  let pa = positions a.cols shared and pb = positions b.cols shared in
  let index = group_by_key pb b in
  (* Output columns: all of a's plus b's non-shared, in sorted order. *)
  let b_extra = List.filter (fun c -> not (List.mem c a.cols)) b.cols in
  let out_cols = List.sort compare (a.cols @ b_extra) in
  let a_indexed = List.mapi (fun i x -> (x, i)) a.cols in
  let b_indexed = List.mapi (fun i x -> (x, i)) b.cols in
  (* For each output column: where to fetch it from. *)
  let fetch =
    List.map
      (fun c ->
        match List.assoc_opt c a_indexed with
        | Some i -> `A i
        | None -> `B (List.assoc c b_indexed))
      out_cols
  in
  let data =
    Row_set.fold
      (fun ra acc ->
        let key = key_of pa ra in
        match Hashtbl.find_opt index key with
        | None -> acc
        | Some matches ->
            List.fold_left
              (fun acc rb ->
                let out =
                  Array.of_list
                    (List.map
                       (function `A i -> ra.(i) | `B i -> rb.(i))
                       fetch)
                in
                Row_set.add out acc)
              acc matches)
      a.data Row_set.empty
  in
  { cols = out_cols; data }

let semijoin a b =
  let shared = shared_columns a b in
  let pa = positions a.cols shared and pb = positions b.cols shared in
  let keys = Hashtbl.create 64 in
  Row_set.iter (fun rb -> Hashtbl.replace keys (key_of pb rb) ()) b.data;
  let data = Row_set.filter (fun ra -> Hashtbl.mem keys (key_of pa ra)) a.data in
  { a with data }

let equal a b = a.cols = b.cols && Row_set.equal a.data b.data

let pp fmt t =
  Format.fprintf fmt "cols[%s] %d rows"
    (String.concat "," (List.map string_of_int t.cols))
    (cardinality t)
