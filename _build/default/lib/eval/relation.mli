(** In-memory relations over hypergraph vertices.

    Columns are vertex ids of the query hypergraph; rows are integer
    tuples. This is the substrate for decomposition-guided CQ evaluation
    (the paper's closing future-work item: "test the practical feasibility
    of using decompositions to evaluate CQs"). *)

type t

val create : columns:int list -> int array list -> t
(** Rows must have the same length as [columns]; duplicates are dropped
    (set semantics, as for CQ answers).
    @raise Invalid_argument on arity mismatch. *)

val columns : t -> int list
(** Sorted column (vertex) ids. *)

val rows : t -> int array list
val cardinality : t -> int
val is_empty : t -> bool

val unit_relation : t
(** The relation with no columns and one (empty) row — the join
    identity. *)

val project : t -> int list -> t
(** Keep only the given columns (must be a subset). *)

val join : t -> t -> t
(** Natural join on the shared columns (hash join). *)

val semijoin : t -> t -> t
(** Rows of the first relation that agree with some row of the second on
    their shared columns. *)

val equal : t -> t -> bool
(** Same columns and same set of rows. *)

val pp : Format.formatter -> t -> unit
