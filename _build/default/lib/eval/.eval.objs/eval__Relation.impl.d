lib/eval/relation.ml: Array Format Hashtbl List Option Set Stdlib String
