lib/eval/yannakakis.mli: Decomp Hg Kit Relation
