lib/eval/yannakakis.ml: Array Decomp Fun Hg Kit List Printf Relation
