lib/eval/relation.mli: Format
