(** The subedge sets f(H,k) and f_u(H,k) of paper §4 (Equations 1 and 2).

    For every edge [e], f(H,k) contains all subsets of intersections of [e]
    with unions of up to [k] other edges. For hypergraphs with intersection
    size [d] these sets have polynomial size; we additionally guard against
    blow-up with two caps:

    - [expand_limit] (default 10): full powerset expansion of an
      intersection union happens only when the union has at most this many
      vertices; larger unions contribute themselves and their singleton
      subsets only.
    - [max_subedges] (default 20_000): hard cap on the number of generated
      subedges.

    When either cap truncates, the [complete] flag of the result is false:
    a subsequent "no" answer of a GHD algorithm is then only an
    approximation (the paper's implementations share this caveat for large
    inputs). *)

type result = {
  candidates : Detk.candidate list;
  complete : bool;
}

val f_global :
  ?deadline:Kit.Deadline.t ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  ?c:int ->
  Hg.Hypergraph.t ->
  k:int ->
  result
(** Equation 1: subedges from intersections with unions of up to [k] edges
    anywhere in H. [c] (default 2) selects the multi-intersection variant:
    base intersections use up to [c - 1] partner edges each — the BMIP
    algorithm the paper lists as future work. *)

val f_local :
  ?deadline:Kit.Deadline.t ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  ?c:int ->
  Hg.Hypergraph.t ->
  k:int ->
  comp:Kit.Bitset.t ->
  result
(** Equation 2: like {!f_global} but the union partners e1..ej range only
    over the edges of the current component [comp]. *)
