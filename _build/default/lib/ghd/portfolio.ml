type algorithm = Bal_sep_alg | Local_bip_alg | Global_bip_alg

let algorithm_name = function
  | Bal_sep_alg -> "BalSep"
  | Local_bip_alg -> "LocalBIP"
  | Global_bip_alg -> "GlobalBIP"

type verdict =
  | Yes of Decomp.t * algorithm
  | No of algorithm
  | All_timeout

let default_budget () = Kit.Deadline.none

let check ?(budget = default_budget) h ~k =
  let run alg =
    let { Bal_sep.outcome; exact } =
      match alg with
      | Bal_sep_alg -> Bal_sep.solve ~deadline:(budget ()) h ~k
      | Local_bip_alg ->
          let { Local_bip.outcome; exact } = Local_bip.solve ~deadline:(budget ()) h ~k in
          { Bal_sep.outcome; exact }
      | Global_bip_alg ->
          let { Global_bip.outcome; exact } = Global_bip.solve ~deadline:(budget ()) h ~k in
          { Bal_sep.outcome; exact }
    in
    match outcome with
    | Detk.Decomposition d -> Some (Yes (d, alg))
    | Detk.No_decomposition when exact -> Some (No alg)
    | Detk.No_decomposition | Detk.Timeout -> None
  in
  let rec first = function
    | [] -> All_timeout
    | alg :: rest -> ( match run alg with Some v -> v | None -> first rest)
  in
  first [ Bal_sep_alg; Local_bip_alg; Global_bip_alg ]

let ghw_improvement ?budget h ~hw =
  if hw <= 2 then `Not_improvable (* hw <= 2 implies ghw = hw, §6.4 *)
  else
    match check ?budget h ~k:(hw - 1) with
    | Yes (d, _) -> `Improved (hw - 1, d)
    | No _ -> `Not_improvable
    | All_timeout -> `Unknown
