(** BalSep (paper §4.4, Algorithm 2): GHD computation via balanced
    separators.

    The recursion works on extended subhypergraphs H' ∪ Sp, where Sp is a
    set of special edges (vertex sets standing for bags created higher up).
    At each step only separators λ whose vertex set B(λ) is a {e balanced}
    separator are considered: every [B(λ)]-component of H' ∪ Sp may contain
    at most half of its edges (Lemma 1 guarantees a normal-form GHD with
    such a root exists). This shrinks every subproblem geometrically and,
    as the paper's experiments show, detects "no" instances quickly.

    Separator candidates are full edges first; combinations containing
    subedges from f(H,k) are tried only afterwards (same caveat on
    completeness as GlobalBIP when the subedge set is truncated). *)

type answer = {
  outcome : Detk.outcome;
  exact : bool;
}

val solve :
  ?deadline:Kit.Deadline.t ->
  ?memoize:bool ->
  ?use_subedges:bool ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  Hg.Hypergraph.t ->
  k:int ->
  answer
(** [use_subedges] (default true) enables the f(H,k) fallback phase of the
    separator iterator; switching it off gives the ablation variant that
    searches over full edges only (sound, possibly incomplete). *)
