(** GlobalBIP (paper §4.2, Algorithm 1): solve Check(GHD,k) by computing
    the full subedge set f(H,k) up front, running the HD machinery on the
    enlarged hypergraph, and fixing subedge covers back to original edges.

    Sound for "yes" answers unconditionally (every returned decomposition
    is a validated GHD). "No" answers are exact whenever the subedge
    generation reports completeness — always the case when
    [intersection size * k] stays below the expansion cap. *)

type answer = {
  outcome : Detk.outcome;
  exact : bool;  (** false when the subedge set was truncated *)
}

val solve :
  ?deadline:Kit.Deadline.t ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  ?c:int ->
  Hg.Hypergraph.t ->
  k:int ->
  answer
(** [c] (default 2) switches the subedge generation to the
    c-multi-intersection variant (BMIP, §3.5) — useful when pairwise
    intersections are large but triple intersections are small. *)

val fix_covers : Hg.Hypergraph.t -> Decomp.t -> Decomp.t
(** Replace subedge cover elements by the original edges containing them
    (Algorithm 1, lines 6-10). Shared by all three GHD algorithms. *)
