lib/ghd/subedges.ml: Array Decomp Detk Hashtbl Hg Kit List Printf
