lib/ghd/local_bip.ml: Detk Global_bip Hashtbl Kit Subedges
