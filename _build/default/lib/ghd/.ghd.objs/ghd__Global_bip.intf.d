lib/ghd/global_bip.mli: Decomp Detk Hg Kit
