lib/ghd/subedges.mli: Detk Hg Kit
