lib/ghd/global_bip.ml: Decomp Detk Hg Kit Subedges
