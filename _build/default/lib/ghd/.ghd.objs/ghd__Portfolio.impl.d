lib/ghd/portfolio.ml: Bal_sep Decomp Detk Global_bip Kit Local_bip
