lib/ghd/bal_sep.mli: Detk Hg Kit
