lib/ghd/local_bip.mli: Detk Hg Kit
