lib/ghd/bal_sep.ml: Array Decomp Detk Global_bip Hashtbl Hg Kit List Printf Subedges
