lib/ghd/portfolio.mli: Decomp Hg Kit
