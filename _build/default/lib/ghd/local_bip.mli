(** LocalBIP (paper §4.3): like GlobalBIP, but the subedge sets f_u(H,k)
    are computed lazily, per search node, and only after all combinations
    of full edges have failed for that subproblem. The subedges at a node
    come from intersections with unions of edges of the current component
    only (Equation 2). *)

type answer = {
  outcome : Detk.outcome;
  exact : bool;  (** false when some local subedge set was truncated *)
}

val solve :
  ?deadline:Kit.Deadline.t ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  Hg.Hypergraph.t ->
  k:int ->
  answer
