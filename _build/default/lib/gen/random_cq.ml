module Rng = Kit.Rng

let chain rng ~n_edges ~arity =
  if n_edges < 1 || arity < 2 then invalid_arg "Random_cq.chain";
  let edges = ref [] in
  let next = ref 0 in
  let tail = ref (-1) in
  for _ = 1 to n_edges do
    let a = 2 + Rng.int rng (arity - 1) in
    let fresh_count = if !tail >= 0 then a - 1 else a in
    let fresh = List.init fresh_count (fun i -> !next + i) in
    next := !next + fresh_count;
    let members = if !tail >= 0 then !tail :: fresh else fresh in
    tail := List.nth members (List.length members - 1);
    edges := members :: !edges
  done;
  Hg.Hypergraph.of_int_edges (List.rev !edges)

let star rng ~n_edges ~arity =
  if n_edges < 1 || arity < 2 then invalid_arg "Random_cq.star";
  let next = ref 1 in
  let edges =
    List.init n_edges (fun _ ->
        let a = 2 + Rng.int rng (arity - 1) in
        let members = 0 :: List.init (a - 1) (fun i -> !next + i) in
        next := !next + a - 1;
        members)
  in
  Hg.Hypergraph.of_int_edges edges

let random rng ~n_vertices ~n_edges ~max_arity =
  if n_vertices < 2 || n_edges < 1 || max_arity < 2 then
    invalid_arg "Random_cq.random";
  let max_arity = Stdlib.min max_arity n_vertices in
  let edges =
    List.init n_edges (fun _ ->
        let a = 2 + Rng.int rng (max_arity - 1) in
        Rng.sample rng n_vertices (Stdlib.min a n_vertices))
  in
  (* Re-number to the used vertices so none are isolated. *)
  let used = List.sort_uniq compare (List.concat edges) in
  let renumber = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace renumber v i) used;
  Hg.Hypergraph.of_int_edges
    (List.map (List.map (Hashtbl.find renumber)) edges)

let paper_parameters rng =
  let n_vertices = Rng.int_in rng 5 100 in
  let n_edges = Rng.int_in rng 3 50 in
  let max_arity = Rng.int_in rng 3 20 in
  random rng ~n_vertices ~n_edges ~max_arity
