lib/gen/structured.mli: Hg Kit
