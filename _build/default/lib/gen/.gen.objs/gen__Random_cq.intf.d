lib/gen/random_cq.mli: Hg Kit
