lib/gen/workloads.mli: Hg Kit Sql
