lib/gen/sparql_gen.ml: Hg Kit List
