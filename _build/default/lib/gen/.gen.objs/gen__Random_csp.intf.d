lib/gen/random_csp.mli: Hg Kit
