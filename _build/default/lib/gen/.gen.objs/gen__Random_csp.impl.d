lib/gen/random_csp.ml: Hashtbl Hg Kit List Stdlib
