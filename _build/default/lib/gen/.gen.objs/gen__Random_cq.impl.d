lib/gen/random_cq.ml: Hashtbl Hg Kit List Stdlib
