lib/gen/workloads.ml: Array Hg Kit List Printf Random_cq Sql
