lib/gen/structured.ml: Array Hashtbl Hg Kit List Stdlib
