lib/gen/sparql_gen.mli: Hg Kit
