(** Random conjunctive-query hypergraphs in the style of the
    Pottinger–Halevy query generator used for the paper's "CQ Random"
    group (§5.6): chain and star queries (trivially acyclic) plus the
    unrestricted random option with the paper's parameter ranges —
    5–100 vertices, 3–50 edges, arities 3–20. *)

val chain : Kit.Rng.t -> n_edges:int -> arity:int -> Hg.Hypergraph.t
(** Edges overlap their successor in one vertex; acyclic. *)

val star : Kit.Rng.t -> n_edges:int -> arity:int -> Hg.Hypergraph.t
(** All edges share one centre vertex; acyclic. *)

val random :
  Kit.Rng.t -> n_vertices:int -> n_edges:int -> max_arity:int -> Hg.Hypergraph.t
(** Unrestricted random hypergraph: each edge samples between 2 and
    [max_arity] distinct vertices. Isolated vertices are avoided by
    construction (the vertex universe is shrunk to the used vertices). *)

val paper_parameters : Kit.Rng.t -> Hg.Hypergraph.t
(** One draw with the paper's CQ Random parameter ranges. *)
