module Rng = Kit.Rng

let random rng ~n_variables ~n_constraints ~max_arity =
  if n_variables < 2 || n_constraints < 1 || max_arity < 2 then
    invalid_arg "Random_csp.random";
  let max_arity = Stdlib.min max_arity n_variables in
  let scopes =
    List.init n_constraints (fun _ ->
        let a = 2 + Rng.int rng (max_arity - 1) in
        Kit.Rng.sample rng n_variables a)
  in
  let used = List.sort_uniq compare (List.concat scopes) in
  let renumber = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace renumber v i) used;
  Hg.Hypergraph.of_int_edges (List.map (List.map (Hashtbl.find renumber)) scopes)
  |> Hg.Hypergraph.dedup_edges

let typical rng =
  let n_variables = Rng.int_in rng 20 60 in
  let n_constraints = Rng.int_in rng 25 90 in
  let max_arity = Rng.int_in rng 2 5 in
  random rng ~n_variables ~n_constraints
    ~max_arity:(Stdlib.max 2 max_arity)
