module Rng = Kit.Rng

let grid ~rows ~cols =
  if rows < 2 || cols < 2 then invalid_arg "Structured.grid";
  let v i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 2 do
    for j = 0 to cols - 2 do
      edges := [ v i j; v i (j + 1); v (i + 1) j; v (i + 1) (j + 1) ] :: !edges
    done
  done;
  Hg.Hypergraph.of_int_edges (List.rev !edges)

let circuit rng ~n_gates ~n_inputs =
  if n_gates < 1 || n_inputs < 2 then invalid_arg "Structured.circuit";
  (* Signals 0..n_inputs-1 are primary inputs; each gate g adds signal
     n_inputs+g driven by two earlier signals (preferring recent ones, as
     in real netlists). *)
  let edges = ref [] in
  for g = 0 to n_gates - 1 do
    let out = n_inputs + g in
    let pick () =
      if Rng.float rng < 0.7 && g > 0 then
        n_inputs + Stdlib.max 0 (g - 1 - Rng.int rng (Stdlib.min g 8))
      else Rng.int rng out
    in
    let i1 = pick () in
    let i2 =
      let rec retry n =
        let x = pick () in
        if x <> i1 || n > 5 then x else retry (n + 1)
      in
      retry 0
    in
    edges := List.sort_uniq compare [ out; i1; i2 ] :: !edges
  done;
  Hg.Hypergraph.of_int_edges (List.rev !edges) |> Hg.Hypergraph.dedup_edges |> Hg.Hypergraph.compact

let configuration rng ~n_clusters ~cluster_size ~backbone =
  if n_clusters < 1 || cluster_size < 1 || backbone < 1 then
    invalid_arg "Structured.configuration";
  (* Vertices: 0..backbone-1 are global options; each cluster has its own
     private block plus 1-2 backbone vertices. *)
  let edges = ref [] in
  let next = ref backbone in
  for _ = 1 to n_clusters do
    let privates = List.init cluster_size (fun i -> !next + i) in
    next := !next + cluster_size;
    let b1 = Rng.int rng backbone in
    let shared =
      if backbone > 1 && Rng.bool rng then
        let b2 = (b1 + 1 + Rng.int rng (backbone - 1)) mod backbone in
        [ b1; b2 ]
      else [ b1 ]
    in
    (* The cluster-wide constraint... *)
    edges := (shared @ privates) :: !edges;
    (* ... plus a few local sub-constraints. *)
    if cluster_size >= 3 then begin
      let p = Array.of_list privates in
      edges := [ p.(0); p.(1); p.(2) ] :: !edges;
      if cluster_size >= 4 then
        edges := [ p.(cluster_size - 2); p.(cluster_size - 1); List.hd shared ] :: !edges
    end
  done;
  Hg.Hypergraph.of_int_edges (List.rev !edges) |> Hg.Hypergraph.dedup_edges |> Hg.Hypergraph.compact

let coloring rng ~n_vertices ~avg_degree =
  if n_vertices < 2 then invalid_arg "Structured.coloring";
  let target_edges =
    Stdlib.max (n_vertices - 1)
      (int_of_float (avg_degree *. float_of_int n_vertices /. 2.0))
  in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  (* A random spanning path keeps the instance connected. *)
  let order = Array.init n_vertices (fun i -> i) in
  Rng.shuffle rng order;
  for i = 0 to n_vertices - 2 do
    let a = Stdlib.min order.(i) order.(i + 1)
    and b = Stdlib.max order.(i) order.(i + 1) in
    Hashtbl.replace seen (a, b) ();
    edges := [ a; b ] :: !edges
  done;
  let attempts = ref 0 in
  while List.length !edges < target_edges && !attempts < target_edges * 20 do
    incr attempts;
    let a = Rng.int rng n_vertices and b = Rng.int rng n_vertices in
    if a <> b then begin
      let key = (Stdlib.min a b, Stdlib.max a b) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        edges := [ fst key; snd key ] :: !edges
      end
    end
  done;
  Hg.Hypergraph.of_int_edges !edges

let scheduling rng ~jobs ~machines =
  if jobs < 2 || machines < 2 then invalid_arg "Structured.scheduling";
  let v j m = (j * machines) + m in
  let edges = ref [] in
  (* Row constraints: each job's slots. *)
  for j = 0 to jobs - 1 do
    edges := List.init machines (fun m -> v j m) :: !edges
  done;
  (* Column constraints: each machine's slots, in overlapping chunks to
     keep arity moderate. *)
  for m = 0 to machines - 1 do
    let chunk = 3 in
    let rec chunks start =
      if start >= jobs - 1 then ()
      else begin
        let stop = Stdlib.min (jobs - 1) (start + chunk) in
        edges := List.init (stop - start + 1) (fun i -> v (start + i) m) :: !edges;
        chunks stop
      end
    in
    chunks 0
  done;
  (* A few random precedence constraints. *)
  let extra = Rng.int rng (jobs + machines) in
  for _ = 1 to extra do
    let j1 = Rng.int rng jobs and j2 = Rng.int rng jobs in
    let m1 = Rng.int rng machines and m2 = Rng.int rng machines in
    if v j1 m1 <> v j2 m2 then edges := [ v j1 m1; v j2 m2 ] :: !edges
  done;
  Hg.Hypergraph.of_int_edges (List.rev !edges) |> Hg.Hypergraph.dedup_edges |> Hg.Hypergraph.compact
