(** SPARQL-style CQ hypergraphs (arity <= 3) for the paper's SPARQL and
    Wikidata groups (§5.6). Those corpora were filtered to hw >= 2, so the
    shapes here are the cyclic ones observed there: cycles, theta-shapes,
    flowers with cyclic petals and combinations; plus the occasional
    ternary (variable-predicate) triple pattern. *)

type shape = Cycle | Theta | Flower | Double_cycle | Clique
(** [Clique]: a dense K5-like pattern — the rare hw = 3 queries the
    SPARQL logs contain (8 out of 26M in the paper's corpus). *)

val generate : Kit.Rng.t -> shape -> Hg.Hypergraph.t
(** All generated instances are cyclic (hw >= 2). *)

val random_shape : Kit.Rng.t -> Hg.Hypergraph.t
