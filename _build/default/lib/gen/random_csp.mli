(** Random CSP hypergraphs mirroring the paper's "CSP Random" group
    (§5.5): heavy vertex reuse yields the high degrees observed in
    Table 2 (nearly all random CSPs have degree > 5) while intersection
    sizes stay small. *)

val random :
  Kit.Rng.t -> n_variables:int -> n_constraints:int -> max_arity:int -> Hg.Hypergraph.t
(** Every constraint samples 2..max_arity distinct variables uniformly —
    with far fewer variables than constraint slots, degrees grow large. *)

val typical : Kit.Rng.t -> Hg.Hypergraph.t
(** A draw with parameter ranges producing paper-like CSP Random
    instances (20-60 variables, 25-90 constraints, arity 2-5). *)
