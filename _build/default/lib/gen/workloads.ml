module Rng = Kit.Rng

(* --- TPC-H ---------------------------------------------------------------- *)

let tpch_schema =
  Sql.Schema.of_list
    [
      ("region", [ "r_regionkey"; "r_name"; "r_comment" ]);
      ("nation", [ "n_nationkey"; "n_name"; "n_regionkey"; "n_comment" ]);
      ( "supplier",
        [ "s_suppkey"; "s_name"; "s_address"; "s_nationkey"; "s_phone"; "s_acctbal"; "s_comment" ] );
      ( "customer",
        [ "c_custkey"; "c_name"; "c_address"; "c_nationkey"; "c_phone"; "c_acctbal"; "c_mktsegment"; "c_comment" ] );
      ( "part",
        [ "p_partkey"; "p_name"; "p_mfgr"; "p_brand"; "p_type"; "p_size"; "p_container"; "p_retailprice"; "p_comment" ] );
      ("partsupp", [ "ps_partkey"; "ps_suppkey"; "ps_availqty"; "ps_supplycost"; "ps_comment" ]);
      ( "orders",
        [ "o_orderkey"; "o_custkey"; "o_orderstatus"; "o_totalprice"; "o_orderdate"; "o_orderpriority"; "o_clerk"; "o_shippriority"; "o_comment" ] );
      ( "lineitem",
        [ "l_orderkey"; "l_partkey"; "l_suppkey"; "l_linenumber"; "l_quantity"; "l_extendedprice"; "l_discount"; "l_tax"; "l_returnflag"; "l_linestatus"; "l_shipdate"; "l_commitdate"; "l_receiptdate"; "l_shipinstruct"; "l_shipmode"; "l_comment" ] );
    ]

let tpch_queries =
  [
    ( "q2",
      {| SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey
         FROM part p, supplier s, partsupp ps, nation n, region r
         WHERE p.p_partkey = ps.ps_partkey
           AND s.s_suppkey = ps.ps_suppkey
           AND p.p_size = 15
           AND s.s_nationkey = n.n_nationkey
           AND n.n_regionkey = r.r_regionkey
           AND r.r_name = 'EUROPE'
           AND ps.ps_supplycost = (SELECT ps2.ps_supplycost
                                   FROM partsupp ps2, supplier s2, nation n2, region r2
                                   WHERE s2.s_suppkey = ps2.ps_suppkey
                                     AND s2.s_nationkey = n2.n_nationkey
                                     AND n2.n_regionkey = r2.r_regionkey
                                     AND r2.r_name = 'EUROPE'); |} );
    ( "q3",
      {| SELECT l.l_orderkey, o.o_orderdate, o.o_shippriority
         FROM customer c, orders o, lineitem l
         WHERE c.c_mktsegment = 'BUILDING'
           AND c.c_custkey = o.o_custkey
           AND l.l_orderkey = o.o_orderkey; |} );
    ( "q5",
      {| SELECT n.n_name
         FROM customer c, orders o, lineitem l, supplier s, nation n, region r
         WHERE c.c_custkey = o.o_custkey
           AND l.l_orderkey = o.o_orderkey
           AND l.l_suppkey = s.s_suppkey
           AND c.c_nationkey = s.s_nationkey
           AND s.s_nationkey = n.n_nationkey
           AND n.n_regionkey = r.r_regionkey
           AND r.r_name = 'ASIA'; |} );
    ( "q7",
      {| SELECT n1.n_name, n2.n_name, l.l_shipdate
         FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
         WHERE s.s_suppkey = l.l_suppkey
           AND o.o_orderkey = l.l_orderkey
           AND c.c_custkey = o.o_custkey
           AND s.s_nationkey = n1.n_nationkey
           AND c.c_nationkey = n2.n_nationkey; |} );
    ( "q9",
      {| SELECT n.n_name, o.o_orderdate
         FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
         WHERE s.s_suppkey = l.l_suppkey
           AND ps.ps_suppkey = l.l_suppkey
           AND ps.ps_partkey = l.l_partkey
           AND p.p_partkey = l.l_partkey
           AND o.o_orderkey = l.l_orderkey
           AND s.s_nationkey = n.n_nationkey
           AND p.p_name LIKE 'green'; |} );
    ( "q10",
      {| SELECT c.c_custkey, c.c_name, n.n_name
         FROM customer c, orders o, lineitem l, nation n
         WHERE c.c_custkey = o.o_custkey
           AND l.l_orderkey = o.o_orderkey
           AND l.l_returnflag = 'R'
           AND c.c_nationkey = n.n_nationkey; |} );
    ( "q18",
      {| SELECT c.c_name, o.o_orderdate, o.o_totalprice
         FROM customer c, orders o, lineitem l
         WHERE o.o_orderkey IN (SELECT l2.l_orderkey
                                FROM lineitem l2
                                WHERE l2.l_quantity > 300)
           AND c.c_custkey = o.o_custkey
           AND o.o_orderkey = l.l_orderkey; |} );
    ( "q21",
      {| SELECT s.s_name
         FROM supplier s, lineitem l1, orders o, nation n
         WHERE s.s_suppkey = l1.l_suppkey
           AND o.o_orderkey = l1.l_orderkey
           AND o.o_orderstatus = 'F'
           AND s.s_nationkey = n.n_nationkey
           AND EXISTS (SELECT * FROM lineitem l2
                       WHERE l2.l_orderkey = l1.l_orderkey)
           AND n.n_name = 'SAUDI ARABIA'; |} );
    ( "qview",
      {| WITH big_suppliers AS (
           SELECT ps.ps_suppkey sk, ps.ps_partkey pk
           FROM partsupp ps, supplier s
           WHERE ps.ps_suppkey = s.s_suppkey AND s.s_acctbal > 1000 )
         SELECT p.p_name
         FROM part p, big_suppliers b, lineitem l
         WHERE p.p_partkey = b.pk
           AND l.l_partkey = b.pk
           AND l.l_suppkey = b.sk; |} );
  ]

(* --- TPC-DS-like ----------------------------------------------------------- *)

let tpcds_schema =
  Sql.Schema.of_list
    [
      ( "store_sales",
        [ "ss_sold_date_sk"; "ss_item_sk"; "ss_customer_sk"; "ss_store_sk"; "ss_promo_sk"; "ss_quantity"; "ss_net_paid" ] );
      ( "catalog_sales",
        [ "cs_sold_date_sk"; "cs_item_sk"; "cs_bill_customer_sk"; "cs_quantity" ] );
      ("date_dim", [ "d_date_sk"; "d_year"; "d_moy"; "d_dom" ]);
      ("item", [ "i_item_sk"; "i_brand_id"; "i_category"; "i_manufact_id" ]);
      ("customer", [ "c_customer_sk"; "c_current_addr_sk"; "c_first_name"; "c_last_name" ]);
      ("customer_address", [ "ca_address_sk"; "ca_state"; "ca_zip" ]);
      ("store", [ "s_store_sk"; "s_store_name"; "s_state" ]);
      ("promotion", [ "p_promo_sk"; "p_channel_email" ]);
    ]

let tpcds_queries =
  [
    ( "ds_q3",
      {| SELECT d.d_year, i.i_brand_id
         FROM date_dim d, store_sales ss, item i
         WHERE d.d_date_sk = ss.ss_sold_date_sk
           AND ss.ss_item_sk = i.i_item_sk
           AND i.i_manufact_id = 128 AND d.d_moy = 11; |} );
    ( "ds_q7",
      {| SELECT i.i_item_sk
         FROM store_sales ss, date_dim d, item i, promotion p, customer c
         WHERE ss.ss_sold_date_sk = d.d_date_sk
           AND ss.ss_item_sk = i.i_item_sk
           AND ss.ss_promo_sk = p.p_promo_sk
           AND ss.ss_customer_sk = c.c_customer_sk
           AND d.d_year = 2000; |} );
    ( "ds_q19",
      {| SELECT i.i_brand_id, s.s_store_name
         FROM date_dim d, store_sales ss, item i, customer c, customer_address ca, store s
         WHERE d.d_date_sk = ss.ss_sold_date_sk
           AND ss.ss_item_sk = i.i_item_sk
           AND ss.ss_customer_sk = c.c_customer_sk
           AND c.c_current_addr_sk = ca.ca_address_sk
           AND ss.ss_store_sk = s.s_store_sk; |} );
    ( "ds_union",
      {| SELECT ss.ss_item_sk FROM store_sales ss, date_dim d
         WHERE ss.ss_sold_date_sk = d.d_date_sk
         UNION
         SELECT cs.cs_item_sk FROM catalog_sales cs, date_dim d2
         WHERE cs.cs_sold_date_sk = d2.d_date_sk; |} );
    ( "ds_cross_channel",
      {| SELECT c.c_customer_sk
         FROM customer c, store_sales ss, catalog_sales cs, item i
         WHERE ss.ss_customer_sk = c.c_customer_sk
           AND cs.cs_bill_customer_sk = c.c_customer_sk
           AND ss.ss_item_sk = i.i_item_sk
           AND cs.cs_item_sk = i.i_item_sk; |} );
  ]

(* --- JOB-like (IMDB) -------------------------------------------------------- *)

let job_schema =
  Sql.Schema.of_list
    [
      ("title", [ "id"; "kind_id"; "production_year"; "title" ]);
      ("movie_companies", [ "movie_id"; "company_id"; "company_type_id" ]);
      ("company_name", [ "id"; "name"; "country_code" ]);
      ("company_type", [ "id"; "kind" ]);
      ("cast_info", [ "movie_id"; "person_id"; "role_id" ]);
      ("name", [ "id"; "name"; "gender" ]);
      ("role_type", [ "id"; "role" ]);
      ("movie_keyword", [ "movie_id"; "keyword_id" ]);
      ("keyword", [ "id"; "keyword" ]);
      ("movie_info", [ "movie_id"; "info_type_id"; "info" ]);
      ("info_type", [ "id"; "info" ]);
      ("kind_type", [ "id"; "kind" ]);
    ]

let job_queries =
  [
    ( "job_1a",
      {| SELECT t.title
         FROM title t, movie_companies mc, company_name cn, company_type ct
         WHERE t.id = mc.movie_id
           AND mc.company_id = cn.id
           AND mc.company_type_id = ct.id
           AND ct.kind = 'production companies'; |} );
    ( "job_3b",
      {| SELECT t.title
         FROM title t, movie_keyword mk, keyword k, movie_info mi, info_type it
         WHERE t.id = mk.movie_id
           AND mk.keyword_id = k.id
           AND t.id = mi.movie_id
           AND mi.info_type_id = it.id
           AND k.keyword = 'sequel'; |} );
    ( "job_8c",
      {| SELECT n.name
         FROM cast_info ci, name n, role_type rt, title t, movie_companies mc, company_name cn
         WHERE ci.person_id = n.id
           AND ci.role_id = rt.id
           AND ci.movie_id = t.id
           AND mc.movie_id = t.id
           AND mc.company_id = cn.id; |} );
    ( "job_cyclic",
      {| SELECT ci.role_id
         FROM cast_info ci, movie_keyword mk, movie_info mi
         WHERE ci.movie_id = mk.movie_id
           AND mk.keyword_id = mi.info_type_id
           AND mi.movie_id = ci.person_id; |} );
    ( "job_13d",
      {| SELECT t.title
         FROM title t, kind_type kt, movie_info mi, info_type it,
              movie_companies mc, company_name cn, company_type ct
         WHERE t.kind_id = kt.id
           AND t.id = mi.movie_id
           AND mi.info_type_id = it.id
           AND t.id = mc.movie_id
           AND mc.company_id = cn.id
           AND mc.company_type_id = ct.id; |} );
  ]

let convert_workload schema queries =
  List.concat_map
    (fun (name, sql) ->
      match Sql.Convert.sql_to_hypergraphs ~schema sql with
      | Error m -> failwith (Printf.sprintf "workload query %s: %s" name m)
      | Ok results ->
          List.filter_map
            (fun (id, conv) ->
              match conv.Sql.Convert.hypergraph with
              | Some h when h.Hg.Hypergraph.n_edges >= 1 ->
                  Some (Printf.sprintf "%s.%s" name id, h)
              | _ -> None)
            results)
    queries

(* --- direct generators ------------------------------------------------------ *)

let lubm rng =
  (* Star or small tree over binary/ternary atoms; 1 in 5 has a cycle. *)
  let atoms = Rng.int_in rng 3 8 in
  let next = ref 1 in
  let edges = ref [] in
  let nodes = ref [ 0 ] in
  for _ = 1 to atoms do
    let parent = Rng.pick rng (Array.of_list !nodes) in
    let v = !next in
    incr next;
    nodes := v :: !nodes;
    if Rng.float rng < 0.25 then begin
      let w = !next in
      incr next;
      edges := [ parent; v; w ] :: !edges;
      nodes := w :: !nodes
    end
    else edges := [ parent; v ] :: !edges
  done;
  if Rng.float rng < 0.2 && List.length !nodes >= 3 then begin
    let arr = Array.of_list !nodes in
    let a = Rng.pick rng arr and b = Rng.pick rng arr in
    if a <> b then edges := [ a; b ] :: !edges
  end;
  Hg.Hypergraph.of_int_edges !edges |> Hg.Hypergraph.dedup_edges |> Hg.Hypergraph.compact

let deep rng =
  let len = Rng.int_in rng 5 25 in
  Random_cq.chain rng ~n_edges:len ~arity:(Rng.int_in rng 2 4)

let ibench rng =
  (* Acyclic wide-arity tree joins: each child atom shares one variable
     with its parent atom. *)
  let atoms = Rng.int_in rng 2 7 in
  let next = ref 0 in
  let edges = ref [] in
  let fresh n =
    let vs = List.init n (fun i -> !next + i) in
    next := !next + n;
    vs
  in
  let root = fresh (Rng.int_in rng 3 8) in
  edges := [ root ];
  for _ = 2 to atoms do
    let parent = Rng.pick rng (Array.of_list !edges) in
    let link = Rng.pick rng (Array.of_list parent) in
    let body = fresh (Rng.int_in rng 2 7) in
    edges := (link :: body) :: !edges
  done;
  Hg.Hypergraph.of_int_edges !edges

let doctors rng =
  (* Small mapping/cleaning joins: 2-4 atoms of arity 4-6 sharing key
     variables pairwise along a path. *)
  let atoms = Rng.int_in rng 2 4 in
  let next = ref 0 in
  let edges = ref [] in
  let prev_key = ref (-1) in
  for _ = 1 to atoms do
    let a = Rng.int_in rng 4 6 in
    let fresh_count = if !prev_key >= 0 then a - 1 else a in
    let fresh = List.init fresh_count (fun i -> !next + i) in
    next := !next + fresh_count;
    let members = if !prev_key >= 0 then !prev_key :: fresh else fresh in
    prev_key := List.nth members (List.length members - 1);
    edges := members :: !edges
  done;
  Hg.Hypergraph.of_int_edges (List.rev !edges)

let sqlshare rng =
  let style = Rng.int rng 3 in
  match style with
  | 0 -> Random_cq.chain rng ~n_edges:(Rng.int_in rng 3 8) ~arity:(Rng.int_in rng 2 5)
  | 1 -> Random_cq.star rng ~n_edges:(Rng.int_in rng 3 7) ~arity:(Rng.int_in rng 2 4)
  | _ ->
      (* Chain with one closing edge: a long cycle. *)
      let n = Rng.int_in rng 3 7 in
      let h = Random_cq.chain rng ~n_edges:n ~arity:2 in
      let last = h.Hg.Hypergraph.n_vertices - 1 in
      Hg.Hypergraph.of_int_edges
        (List.map
           (fun e -> Kit.Bitset.to_list e)
           (Array.to_list h.Hg.Hypergraph.edges)
        @ [ [ 0; last ] ])
