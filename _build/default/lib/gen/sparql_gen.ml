module Rng = Kit.Rng

type shape = Cycle | Theta | Flower | Double_cycle | Clique

(* Triple patterns are binary edges {subject, object}; with probability
   ~15% a variable predicate turns one into a ternary edge. *)
let maybe_ternary rng next_var edges =
  List.map
    (fun e ->
      match e with
      | [ _; _ ] when Rng.float rng < 0.15 ->
          let p = !next_var in
          incr next_var;
          e @ [ p ]
      | _ -> e)
    edges

let cycle_edges n = List.init n (fun i -> [ i; (i + 1) mod n ])

let generate rng shape =
  let edges, n_base =
    match shape with
    | Cycle ->
        let n = Rng.int_in rng 3 8 in
        (cycle_edges n, n)
    | Theta ->
        (* Two hub vertices joined by three internally-disjoint paths. *)
        let path_len = Rng.int_in rng 1 3 in
        let next = ref 2 in
        let paths =
          List.concat
            (List.init 3 (fun _ ->
                 let inner = List.init path_len (fun i -> !next + i) in
                 next := !next + path_len;
                 let nodes = (0 :: inner) @ [ 1 ] in
                 let rec pairs = function
                   | a :: (b :: _ as rest) -> [ a; b ] :: pairs rest
                   | _ -> []
                 in
                 pairs nodes))
        in
        (paths, !next)
    | Flower ->
        (* A centre with acyclic petals plus one cyclic petal. *)
        let petals = Rng.int_in rng 2 5 in
        let next = ref 1 in
        let star =
          List.init petals (fun _ ->
              let v = !next in
              incr next;
              [ 0; v ])
        in
        let c1 = !next and c2 = !next + 1 in
        next := !next + 2;
        (star @ [ [ 0; c1 ]; [ c1; c2 ]; [ c2; 0 ] ], !next)
    | Clique ->
        (* K5 as binary triple patterns: hw 3. *)
        let n = 5 in
        let edges = ref [] in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            edges := [ i; j ] :: !edges
          done
        done;
        (List.rev !edges, n)
    | Double_cycle ->
        (* Two cycles sharing one vertex: hw 2 but more complex. *)
        let n1 = Rng.int_in rng 3 5 and n2 = Rng.int_in rng 3 5 in
        let first = cycle_edges n1 in
        let second =
          List.init n2 (fun i ->
              let a = if i = 0 then 0 else n1 + i - 1 in
              let b = if i = n2 - 1 then 0 else n1 + i in
              [ a; b ])
        in
        (first @ second, n1 + n2 - 1)
  in
  let next_var = ref n_base in
  let edges = maybe_ternary rng next_var edges in
  Hg.Hypergraph.of_int_edges edges

let random_shape rng =
  (* Cliques are rare in the logs; keep them rare here too. *)
  let shapes =
    [| Cycle; Theta; Flower; Double_cycle; Cycle; Theta; Flower;
       Double_cycle; Cycle; Clique |]
  in
  generate rng (Rng.pick rng shapes)
