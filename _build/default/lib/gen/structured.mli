(** Structured instance families for the "CSP Application" and "CSP Other"
    groups (§5.5): grids from pebbling problems, ISCAS-like circuits,
    Daimler-Chrysler-like configuration instances, graph colouring, and
    scheduling-style instances. These provide the hard-to-decompose and
    the realistically-easy ends of the spectrum. *)

val grid : rows:int -> cols:int -> Hg.Hypergraph.t
(** Pebbling-style grid: one 4-vertex hyperedge per unit square. Width
    grows with min(rows, cols): the paper's hard CSP Other instances. *)

val circuit : Kit.Rng.t -> n_gates:int -> n_inputs:int -> Hg.Hypergraph.t
(** ISCAS-like combinational circuit: each gate is an edge
    {output, input1, input2} over earlier signals; low hypertree width,
    degree grows with fanout. *)

val configuration :
  Kit.Rng.t -> n_clusters:int -> cluster_size:int -> backbone:int -> Hg.Hypergraph.t
(** Daimler-like product configuration: wide constraint clusters sharing a
    small global backbone of option variables — large arity, small BIP. *)

val coloring : Kit.Rng.t -> n_vertices:int -> avg_degree:float -> Hg.Hypergraph.t
(** Binary-constraint random graph (colouring style). *)

val scheduling : Kit.Rng.t -> jobs:int -> machines:int -> Hg.Hypergraph.t
(** Job/machine grid with row and column constraints (allDifferent rows,
    capacity columns): moderately cyclic. *)
