(** Realistic CQ workloads for the application groups of Table 1.

    TPC-H/TPC-DS/JOB-shaped queries are embedded as actual SQL text and
    run through the full SQL-to-hypergraph pipeline of §5.2–5.4 — so this
    module exercises exactly the code path the paper's hg-tools used on
    the original benchmarks. The remaining sources (LUBM, iBench, Doctors,
    Deep, SQLShare) are produced as structurally-faithful hypergraph
    generators. *)

val tpch_schema : Sql.Schema.t
val tpch_queries : (string * string) list
(** (name, SQL text): join structures modeled on TPC-H Q2, Q3, Q5, Q7,
    Q9, Q10, Q18 and Q21, including nested subqueries and a view. *)

val tpcds_schema : Sql.Schema.t
val tpcds_queries : (string * string) list
(** Snowflake joins in the style of TPC-DS. *)

val job_schema : Sql.Schema.t
val job_queries : (string * string) list
(** Join-Order-Benchmark-style queries over the IMDB schema: 3-16 joins,
    some cyclic. *)

val convert_workload :
  Sql.Schema.t -> (string * string) list -> (string * Hg.Hypergraph.t) list
(** Run the pipeline on each query; one entry per extracted simple query
    with at least 1 edge, named ["<query>/<simple-id>"].
    @raise Failure if any embedded query fails to parse (a bug, caught by
    tests). *)

val lubm : Kit.Rng.t -> Hg.Hypergraph.t
(** Semantic-web style: small tree/star CQs over binary and ternary
    atoms, occasionally with one cycle. *)

val deep : Kit.Rng.t -> Hg.Hypergraph.t
(** Deep chains (the chase-benchmark "Deep" scenario): long acyclic
    paths. *)

val ibench : Kit.Rng.t -> Hg.Hypergraph.t
(** Data-integration mappings: acyclic wide-arity trees. *)

val doctors : Kit.Rng.t -> Hg.Hypergraph.t
(** Mapping/cleaning scenario queries: small acyclic joins of arity 4-6. *)

val sqlshare : Kit.Rng.t -> Hg.Hypergraph.t
(** Ad-hoc science queries: mostly chains and stars with 3-8 atoms,
    mixed arity, a rare cycle. *)
