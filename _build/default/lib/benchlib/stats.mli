(** Descriptive statistics over analysis records: the bucket histograms of
    Table 2 and Figure 3 and the correlation matrix of Figure 5. *)

val property_histogram :
  (Analysis.record -> int option) -> Analysis.record list -> int array
(** 7 buckets: value 0, 1, 2, 3, 4, 5, and > 5 (Table 2 rows). Records
    where the metric is unavailable (timeout) are skipped. *)

val size_buckets : (Analysis.record -> int) -> Analysis.record list -> int array
(** 6 buckets: 1-10, 11-20, 21-30, 31-40, 41-50, > 50 (Figure 3,
    vertices/edges panels). *)

val arity_buckets : Analysis.record list -> int array
(** 5 buckets: 1-5, 6-10, 11-15, 16-20, > 20 (Figure 3, arity panel). *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either side is constant. *)

val correlation_matrix :
  Analysis.record list -> string array * float array array
(** Figure 5: pairwise correlations of vertices, edges, arity, degree,
    bip, 3-bmip, 4-bmip, vc-dim and hw over the records where both
    metrics are known. *)
