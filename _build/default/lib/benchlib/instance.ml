(* One benchmark instance: a named hypergraph with its group and source
   collection (the "Benchmark" column of Table 1). *)

type t = {
  name : string;
  group : Group.t;
  source : string;  (* e.g. "TPC-H", "SPARQL", "Grids" *)
  hg : Hg.Hypergraph.t;
}

let make ~name ~group ~source hg = { name; group; source; hg }
