lib/benchlib/analysis.ml: Decomp Detk Fhd Ghd Hg Instance Kit List Unix
