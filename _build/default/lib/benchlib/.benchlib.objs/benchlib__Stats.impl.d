lib/benchlib/stats.ml: Analysis Array Hg List Option Stdlib
