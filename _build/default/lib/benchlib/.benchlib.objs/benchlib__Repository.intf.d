lib/benchlib/repository.mli: Group Instance
