lib/benchlib/stats.mli: Analysis
