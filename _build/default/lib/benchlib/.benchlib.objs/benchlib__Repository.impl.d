lib/benchlib/repository.ml: Filename Gen Group Hashtbl Hg Instance Kit List Printf Stdlib String Sys
