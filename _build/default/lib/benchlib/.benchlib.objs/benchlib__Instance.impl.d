lib/benchlib/instance.ml: Group Hg
