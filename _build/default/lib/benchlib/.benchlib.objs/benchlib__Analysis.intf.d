lib/benchlib/analysis.mli: Decomp Ghd Hg Instance Kit
