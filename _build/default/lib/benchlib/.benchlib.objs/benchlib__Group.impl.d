lib/benchlib/group.ml: Stdlib String
