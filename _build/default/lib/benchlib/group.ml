(* The five instance groups of the HyperBench benchmark (§5.6). *)

type t =
  | CQ_application
  | CQ_random
  | CSP_application
  | CSP_random
  | CSP_other

let all = [ CQ_application; CQ_random; CSP_application; CSP_random; CSP_other ]

let name = function
  | CQ_application -> "CQ Application"
  | CQ_random -> "CQ Random"
  | CSP_application -> "CSP Application"
  | CSP_random -> "CSP Random"
  | CSP_other -> "CSP Other"

let id = function
  | CQ_application -> "cq-application"
  | CQ_random -> "cq-random"
  | CSP_application -> "csp-application"
  | CSP_random -> "csp-random"
  | CSP_other -> "csp-other"

let of_id s =
  match String.lowercase_ascii s with
  | "cq-application" -> Some CQ_application
  | "cq-random" -> Some CQ_random
  | "csp-application" -> Some CSP_application
  | "csp-random" -> Some CSP_random
  | "csp-other" -> Some CSP_other
  | _ -> None

let compare = Stdlib.compare
