let property_histogram metric records =
  let buckets = Array.make 7 0 in
  List.iter
    (fun r ->
      match metric r with
      | None -> ()
      | Some v ->
          let idx = if v > 5 then 6 else Stdlib.max 0 v in
          buckets.(idx) <- buckets.(idx) + 1)
    records;
  buckets

let size_buckets metric records =
  let buckets = Array.make 6 0 in
  List.iter
    (fun r ->
      let v = metric r in
      let idx = if v > 50 then 5 else Stdlib.max 0 ((v - 1) / 10) in
      buckets.(idx) <- buckets.(idx) + 1)
    records;
  buckets

let arity_buckets records =
  let buckets = Array.make 5 0 in
  List.iter
    (fun (r : Analysis.record) ->
      let v = r.Analysis.profile.Hg.Properties.arity in
      let idx = if v > 20 then 4 else Stdlib.max 0 ((v - 1) / 5) in
      buckets.(idx) <- buckets.(idx) + 1)
    records;
  buckets

let pearson xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys);
  if n < 2 then 0.0
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    for i = 0 to n - 1 do
      let a = xs.(i) -. mx and b = ys.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b)
    done;
    if !dx <= 0.0 || !dy <= 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)
  end

let metrics : (string * (Analysis.record -> float option)) list =
  let p f (r : Analysis.record) = Some (float_of_int (f r.Analysis.profile)) in
  [
    ("vertices", p (fun pr -> pr.Hg.Properties.vertices));
    ("edges", p (fun pr -> pr.Hg.Properties.edges));
    ("arity", p (fun pr -> pr.Hg.Properties.arity));
    ("degree", p (fun pr -> pr.Hg.Properties.degree));
    ("bip", p (fun pr -> pr.Hg.Properties.bip));
    ("3-BMIP", p (fun pr -> pr.Hg.Properties.bmip3));
    ("4-BMIP", p (fun pr -> pr.Hg.Properties.bmip4));
    ( "VC-dim",
      fun r ->
        Option.map float_of_int r.Analysis.profile.Hg.Properties.vc_dim );
    ( "HW",
      fun r -> Option.map float_of_int (Analysis.hw_bound r) );
  ]

let correlation_matrix records =
  let names = Array.of_list (List.map fst metrics) in
  let fs = Array.of_list (List.map snd metrics) in
  let n = Array.length names in
  let matrix = Array.make_matrix n n 1.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* Use only records where both metrics are defined. *)
      let pairs =
        List.filter_map
          (fun r ->
            match (fs.(i) r, fs.(j) r) with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
          records
      in
      let xs = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      let c = pearson xs ys in
      matrix.(i).(j) <- c;
      matrix.(j).(i) <- c
    done
  done;
  (names, matrix)
