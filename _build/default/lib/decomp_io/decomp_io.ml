module Bitset = Kit.Bitset
module Hypergraph = Hg.Hypergraph

let to_text h (d : Decomp.t) =
  let buf = Buffer.create 256 in
  let rec go depth (u : Decomp.node) =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    let bag =
      Bitset.to_list u.Decomp.bag
      |> List.map (Hypergraph.vertex_name h)
      |> String.concat ", "
    in
    let cover_elt (c : Decomp.cover_elt) =
      match c.Decomp.source with
      | Decomp.Original e -> Hypergraph.edge_name h e
      | Decomp.Subedge e ->
          Printf.sprintf "%s~{%s}" (Hypergraph.edge_name h e)
            (Bitset.to_list c.Decomp.vertices
            |> List.map (Hypergraph.vertex_name h)
            |> String.concat ",")
      | Decomp.Special -> "__special"
    in
    Buffer.add_string buf
      (Printf.sprintf "{%s} [%s]\n" bag
         (String.concat ", " (List.map cover_elt u.Decomp.cover)));
    List.iter (go (depth + 1)) u.Decomp.children
  in
  go 0 d;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

let split_names s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")

let parse_line h line =
  let line_body = String.trim line in
  (* "{bag} [cover]" *)
  match (String.index_opt line_body '}', String.index_opt line_body '[') with
  | Some close_bag, Some open_cover when line_body.[0] = '{' ->
      let bag_names = split_names (String.sub line_body 1 (close_bag - 1)) in
      let close_cover = String.rindex line_body ']' in
      let cover_str =
        String.sub line_body (open_cover + 1) (close_cover - open_cover - 1)
      in
      let vertex name =
        match
          Array.to_seq h.Hypergraph.vertex_names
          |> Seq.mapi (fun i n -> (i, n))
          |> Seq.find (fun (_, n) -> n = name)
        with
        | Some (i, _) -> Ok i
        | None -> Error (Printf.sprintf "unknown vertex %s" name)
      in
      let edge name =
        match
          Array.to_seq h.Hypergraph.edge_names
          |> Seq.mapi (fun i n -> (i, n))
          |> Seq.find (fun (_, n) -> n = name)
        with
        | Some (i, _) -> Ok i
        | None -> Error (Printf.sprintf "unknown edge %s" name)
      in
      let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
      let rec map_all f = function
        | [] -> Ok []
        | x :: rest ->
            let* y = f x in
            let* ys = map_all f rest in
            Ok (y :: ys)
      in
      let* bag_ids = map_all vertex bag_names in
      (* Cover elements are separated by ", " but subedge braces may
         contain commas: split on top level only. *)
      let cover_items =
        let items = ref [] and buf = Buffer.create 16 and depth = ref 0 in
        String.iter
          (fun c ->
            match c with
            | '{' ->
                incr depth;
                Buffer.add_char buf c
            | '}' ->
                decr depth;
                Buffer.add_char buf c
            | ',' when !depth = 0 ->
                items := Buffer.contents buf :: !items;
                Buffer.clear buf
            | c -> Buffer.add_char buf c)
          cover_str;
        if String.trim (Buffer.contents buf) <> "" then
          items := Buffer.contents buf :: !items;
        (* !items is in reverse insertion order; rev_map restores it. *)
        List.rev_map String.trim !items |> List.filter (( <> ) "")
      in
      let parse_cover item =
        match String.index_opt item '~' with
        | None ->
            let* e = edge item in
            Ok
              {
                Decomp.label = item;
                vertices = Hypergraph.edge h e;
                source = Decomp.Original e;
              }
        | Some tilde ->
            let parent = String.sub item 0 tilde in
            let rest = String.sub item (tilde + 1) (String.length item - tilde - 1) in
            let inner = String.sub rest 1 (String.length rest - 2) in
            let* e = edge parent in
            let* vs = map_all vertex (split_names inner) in
            Ok
              {
                Decomp.label = item;
                vertices = Bitset.of_list h.Hypergraph.n_vertices vs;
                source = Decomp.Subedge e;
              }
      in
      let* cover = map_all parse_cover cover_items in
      Ok (Bitset.of_list h.Hypergraph.n_vertices bag_ids, cover)
  | _ -> Error (Printf.sprintf "malformed node line: %s" line)

let indent_of line =
  let i = ref 0 in
  while !i < String.length line && line.[!i] = ' ' do incr i done;
  !i / 2

let of_text h text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty decomposition"
  | _ -> (
      (* Parse into (depth, bag, cover) triples, then fold into a tree via
         a stack of (depth, pending children) frames. *)
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match parse_line h line with
            | Error _ as e -> e
            | Ok (bag, cover) -> parse_all ((indent_of line, bag, cover) :: acc) rest)
      in
      match parse_all [] lines with
      | Error m -> Error m
      | Ok [] -> Error "empty decomposition"
      | Ok ((d0, _, _) :: _) when d0 <> 0 -> Error "first node must be unindented"
      | Ok triples ->
          (* Build recursively: node at depth d owns following nodes of
             depth > d until one of depth <= d appears. *)
          let rec build depth = function
            | (d, bag, cover) :: rest when d = depth ->
                let children, rest' = build_children (depth + 1) rest in
                (Some ({ Decomp.bag; cover; children } : Decomp.node), rest')
            | rest -> (None, rest)
          and build_children depth rest =
            match build depth rest with
            | Some node, rest' ->
                let siblings, rest'' = build_children depth rest' in
                (node :: siblings, rest'')
            | None, rest' -> ([], rest')
          in
          (match build 0 triples with
          | Some root, [] -> Ok root
          | Some _, _ :: _ -> Error "multiple roots or bad indentation"
          | None, _ -> Error "no root node"))
