(* The HyperBench command-line tool: our stand-in for the paper's
   web interface (http://hyperbench.dbai.tuwien.ac.at). It manages a
   repository of hypergraphs on disk, reports their structural properties,
   runs the decomposition algorithms, and converts SQL / XCSP inputs to
   hypergraphs. *)

open Cmdliner

(* Distinct exit codes per failure category, so scripts and CI can tell a
   malformed input from a decomposition or journal problem without parsing
   stderr (1 and 123-125 belong to cmdliner). *)
let exit_hypergraph = 2
let exit_xcsp = 3
let exit_sql = 4
let exit_decomp = 5
let exit_repo = 6
let exit_fuzz = 8
let exit_uncaught = 125

(* Commands are [int Term.t]s under [Cmd.eval']: a failed step prints one
   diagnostic line on stderr and becomes the command's exit code. *)
let ( let* ) r f =
  match r with
  | Error (code, m) ->
      Printf.eprintf "hyperbench: %s\n%!" m;
      code
  | Ok v -> f v

let tag code = Result.map_error (fun m -> (code, m))

(* Diagnostics lead with the file (parse errors already carry "line N:",
   giving file:line); Sys_error messages name the file themselves. *)
let with_path path =
  Result.map_error (fun m ->
      if String.length m >= String.length path
         && String.sub m 0 (String.length path) = path
      then m
      else path ^ ": " ^ m)

(* --- shared arguments ----------------------------------------------------- *)

let dir_arg =
  Arg.(
    value
    & opt string "hyperbench-data"
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Repository directory.")

let k_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Width bound k.")

let timeout_arg =
  Arg.(
    value
    & opt float 60.0
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-run timeout in seconds.")

let jobs_arg =
  Arg.(
    value
    & opt int (Kit.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Number of domains for parallel work (default: \\$(b,HB_JOBS) or \
           all cores). 1 forces sequential execution.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print search metrics (Kit.Metrics) after the run.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write search metrics as JSON to $(docv). With $(docv) = $(b,-) \
           the JSON is the only thing printed on stdout — every table, \
           summary and warning is routed to stderr — so the output can be \
           piped straight into a JSON parser.")

let isolate_arg =
  Arg.(
    value & flag
    & info [ "isolate" ]
        ~doc:
          "Hard isolation: run each task in its own forked worker process, \
           killed by a wall-clock watchdog ($(b,HB_WALL), default the \
           escalated per-attempt budget plus a grace second) and capped by \
           a hard memory rlimit at the soft budget. Implied by \
           $(b,HB_ISOLATE=1).")

(* Enable the metrics registry around [f] when either output was requested,
   then render the table and/or write the JSON file.

   [--stats-json -] is the machine mode: the real stdout is saved, stdout
   is pointed at stderr for the whole run (so every existing print in the
   tool lands on stderr without rewiring each one), and the JSON snapshot
   is written to the saved descriptor at the end — stdout carries exactly
   one JSON document. *)
let with_stats ~stats ~stats_json f =
  if not (stats || stats_json <> None) then f ()
  else begin
    Kit.Metrics.enabled := true;
    let machine_fd =
      if stats_json = Some "-" then begin
        flush stdout;
        let fd = Unix.dup Unix.stdout in
        Unix.dup2 Unix.stderr Unix.stdout;
        Some fd
      end
      else None
    in
    let r = f () in
    let snap = Kit.Metrics.snapshot () in
    Kit.Metrics.enabled := false;
    if stats then print_string (Kit.Metrics.to_table snap);
    (match stats_json with
    | Some "-" | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Kit.Metrics.to_json snap));
        Printf.eprintf "wrote metrics to %s\n" path);
    (match machine_fd with
    | Some fd ->
        flush stdout;
        let b = Bytes.of_string (Kit.Metrics.to_json snap ^ "\n") in
        let rec put off len =
          if len > 0 then begin
            let k = Unix.write fd b off len in
            put (off + k) (len - k)
          end
        in
        put 0 (Bytes.length b);
        Unix.dup2 fd Unix.stdout;
        Unix.close fd
    | None -> ());
    r
  end

let load_hypergraph path =
  if Filename.check_suffix path ".xml" then
    tag exit_xcsp (with_path path (Xcsp3.Xcsp.read_file path))
  else tag exit_hypergraph (with_path path (Hg.Hypergraph.parse_file path))

(* All whole-file reads go through here: the channel is closed on every
   path, and truncation mid-read surfaces as [Error] instead of an escaped
   End_of_file. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception End_of_file -> Error (path ^ ": truncated file")
          | exception Sys_error m -> Error m)

(* Tolerant repository load: corrupt entries become stderr warnings, not
   failures — a damaged instance must not take the rest of the repository
   (or a whole campaign) down with it. *)
let load_repository ~dir =
  match Benchlib.Repository.load ~dir with
  | Error m -> Error (exit_repo, m)
  | Ok { Benchlib.Repository.instances; skipped } ->
      List.iter
        (fun (label, msg) ->
          Printf.eprintf "warning: skipped %s: %s\n%!" label msg)
        skipped;
      Ok instances

(* --- build ----------------------------------------------------------------- *)

let build_cmd =
  let run dir seed scale =
    let instances = Benchlib.Repository.build ~seed ~scale () in
    Benchlib.Repository.save ~dir instances;
    Printf.printf "wrote %d instances to %s\n" (List.length instances) dir;
    0
  in
  let seed =
    Arg.(value & opt int 2019 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
  in
  let scale =
    Arg.(
      value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Repository scale factor.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Generate the benchmark repository on disk.")
    Term.(const run $ dir_arg $ seed $ scale)

(* --- list ------------------------------------------------------------------ *)

let list_cmd =
  let run dir group source =
    let* instances = load_repository ~dir in
    let instances =
      match group with
      | None -> instances
      | Some g ->
          List.filter
            (fun i ->
              Benchlib.Group.of_id g = Some i.Benchlib.Instance.group)
            instances
    in
    let instances =
      match source with
      | None -> instances
      | Some s -> List.filter (fun i -> i.Benchlib.Instance.source = s) instances
    in
    Printf.printf "%-24s %-16s %-12s %9s %7s %6s\n" "name" "group" "source"
      "vertices" "edges" "arity";
    List.iter
      (fun i ->
        let h = i.Benchlib.Instance.hg in
        Printf.printf "%-24s %-16s %-12s %9d %7d %6d\n" i.Benchlib.Instance.name
          (Benchlib.Group.id i.Benchlib.Instance.group)
          i.Benchlib.Instance.source h.Hg.Hypergraph.n_vertices
          h.Hg.Hypergraph.n_edges (Hg.Hypergraph.arity h))
      instances;
    0
  in
  let group =
    Arg.(
      value
      & opt (some string) None
      & info [ "group" ] ~docv:"GROUP"
          ~doc:"Filter by group id (e.g. cq-application).")
  in
  let source =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"SOURCE" ~doc:"Filter by source collection.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List repository instances.")
    Term.(const run $ dir_arg $ group $ source)

(* --- analyze ----------------------------------------------------------------- *)

let analyze_cmd =
  let run path timeout max_k stats stats_json =
    let* h = load_hypergraph path in
    with_stats ~stats ~stats_json (fun () ->
        let deadline () = Kit.Deadline.of_seconds timeout in
        let p = Hg.Properties.profile ~deadline:(deadline ()) h in
        Format.printf "%a@." Hg.Properties.pp_profile p;
        Printf.printf "acyclic (GYO): %b\n" (Hg.Gyo.is_acyclic h);
        let tw_ub, _ = Hg.Primal.upper_bound h in
        Printf.printf "primal treewidth: %d <= tw <= %d\n"
          (Hg.Primal.lower_bound h) tw_ub;
        let rec levels k =
          if k > max_k then Printf.printf "hw > %d (gave up at cap)\n" max_k
          else
            match Detk.solve ~deadline:(deadline ()) h ~k with
            | Detk.Decomposition _ -> Printf.printf "hw = %d\n" k
            | Detk.No_decomposition -> levels (k + 1)
            | Detk.Timeout ->
                Printf.printf "hw >= %d (timeout at k = %d)\n" k k
        in
        levels 1;
        0)
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Hypergraph file (.hg) or XCSP file (.xml).")
  in
  let max_k =
    Arg.(value & opt int 10 & info [ "max-k" ] ~docv:"K" ~doc:"Largest k to try.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Structural properties and hypertree width.")
    Term.(const run $ path $ timeout_arg $ max_k $ stats_arg $ stats_json_arg)

(* --- decompose --------------------------------------------------------------- *)

let method_conv =
  Arg.enum
    [ ("hd", `Hd); ("globalbip", `Global); ("localbip", `Local);
      ("balsep", `Balsep); ("parbalsep", `Parbalsep);
      ("portfolio", `Portfolio) ]

(* HB_INTRA=1 turns intra-instance parallelism on by default; the
   --par-intra flag does the same per invocation. *)
let intra_env () =
  match Sys.getenv_opt "HB_INTRA" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let decompose_cmd =
  let run path k meth timeout jobs isolate par_intra dot save stats stats_json
      =
    let isolate = isolate || Kit.Proc.enabled () in
    let par_intra = par_intra || intra_env () in
    let* h = load_hypergraph path in
    with_stats ~stats ~stats_json @@ fun () ->
    let deadline () = Kit.Deadline.of_seconds timeout in
    let outcome =
      match meth with
      | `Hd -> Detk.solve ~deadline:(deadline ()) h ~k
      | `Global -> (Ghd.Global_bip.solve ~deadline:(deadline ()) h ~k).Ghd.Global_bip.outcome
      | `Local -> (Ghd.Local_bip.solve ~deadline:(deadline ()) h ~k).Ghd.Local_bip.outcome
      | `Balsep -> (Ghd.Bal_sep.solve ~deadline:(deadline ()) h ~k).Ghd.Bal_sep.outcome
      | `Parbalsep ->
          (Ghd.Par_bal_sep.solve ~jobs ~deadline:(deadline ()) h ~k)
            .Ghd.Bal_sep.outcome
      | `Portfolio -> (
          (* With more than one job the algorithms race on separate
             domains and the first exact verdict cancels the rest
             cooperatively; under --isolate they race as forked processes
             and the winner SIGKILLs the losers. With --par-intra (or
             HB_INTRA=1) the work-stealing BalSep joins the portfolio,
             using [jobs] domains inside its member slot — except under
             isolation, where members always run intra-sequentially. *)
          let members =
            if par_intra then Ghd.Portfolio.order_with_intra
            else Ghd.Portfolio.order
          in
          let portfolio ~budget h ~k =
            if isolate then
              Ghd.Portfolio.race_isolated ~budget ~members
                ~wall:(timeout +. 1.0) h ~k
            else if jobs > 1 then
              Ghd.Portfolio.race ~budget ~members ~intra_jobs:jobs h ~k
            else Ghd.Portfolio.check ~budget ~members ~intra_jobs:jobs h ~k
          in
          match portfolio ~budget:deadline h ~k with
          | Ghd.Portfolio.Yes (d, alg) ->
              Printf.printf "decided by %s\n" (Ghd.Portfolio.algorithm_name alg);
              Detk.Decomposition d
          | Ghd.Portfolio.No alg ->
              Printf.printf "decided by %s\n" (Ghd.Portfolio.algorithm_name alg);
              Detk.No_decomposition
          | Ghd.Portfolio.All_timeout -> Detk.Timeout)
    in
    (* The scheduler's own traffic lives outside Kit.Metrics (it is
       schedule-dependent, and the metrics registry is reserved for
       deterministic counters) — print it alongside the table. *)
    if stats then begin
      let t = Kit.Steal.totals () in
      if t.Kit.Steal.forked > 0 then
        Printf.printf
          "steal scheduler: forked %d, executed %d, stolen %d, inlined %d\n"
          t.Kit.Steal.forked t.Kit.Steal.executed t.Kit.Steal.stolen
          t.Kit.Steal.inlined
    end;
    (match outcome with
    | Detk.Decomposition d ->
        Printf.printf "width <= %d: YES (width %d)\n" k (Decomp.width d);
        (match save with
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc (Decomp_io.to_text h d));
            Printf.printf "saved to %s\n" path
        | None -> ());
        if dot then print_string (Decomp.to_dot h d)
        else Format.printf "%a" (fun fmt -> Decomp.pp h fmt) d
    | Detk.No_decomposition -> Printf.printf "width <= %d: NO\n" k
    | Detk.Timeout -> Printf.printf "width <= %d: TIMEOUT\n" k);
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Hypergraph file.")
  in
  let meth =
    Arg.(
      value
      & opt method_conv `Hd
      & info [ "m"; "method" ] ~docv:"METHOD"
          ~doc:"hd | globalbip | localbip | balsep | parbalsep | portfolio.")
  in
  let par_intra =
    Arg.(
      value & flag
      & info [ "par-intra" ]
          ~doc:
            "Add the work-stealing intra-parallel BalSep to the portfolio \
             (method $(b,portfolio) only; $(b,parbalsep) selects it \
             directly). The member uses $(b,--jobs) domains inside one \
             instance. Implied by $(b,HB_INTRA=1).")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz instead of text.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the decomposition to a file.")
  in
  Cmd.v
    (Cmd.info "decompose" ~doc:"Compute an HD or GHD of width at most k.")
    Term.(
      const run $ path $ k_arg $ meth $ timeout_arg $ jobs_arg $ isolate_arg
      $ par_intra $ dot $ save $ stats_arg $ stats_json_arg)

(* --- validate ------------------------------------------------------------------ *)

let validate_cmd =
  let run hg_path decomp_path strict =
    let* h = load_hypergraph hg_path in
    let* text = tag exit_decomp (read_file decomp_path) in
    let* d = tag exit_decomp (with_path decomp_path (Decomp_io.of_text h text)) in
    let violations = if strict then Decomp.check_hd h d else Decomp.check_ghd h d in
    (match violations with
    | [] ->
        Printf.printf "VALID %s of width %d (%d nodes)\n"
          (if strict then "HD" else "GHD")
          (Decomp.width d) (Decomp.size d)
    | vs ->
        Printf.printf "INVALID: %d violation(s)\n" (List.length vs);
        List.iter (fun v -> Format.printf "  %a@." (Decomp.pp_violation h) v) vs);
    0
  in
  let hg_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HYPERGRAPH" ~doc:"Hypergraph file.")
  in
  let decomp_path =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DECOMPOSITION" ~doc:"Decomposition file.")
  in
  let strict =
    Arg.(value & flag & info [ "hd" ] ~doc:"Check the HD special condition too.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check a stored decomposition against a hypergraph (the upper bounds are more reliable than lower bounds, section 2).")
    Term.(const run $ hg_path $ decomp_path $ strict)

(* --- improve ------------------------------------------------------------------ *)

let improve_cmd =
  let run path k timeout frac stats stats_json =
    let* h = load_hypergraph path in
    with_stats ~stats ~stats_json @@ fun () ->
    let deadline () = Kit.Deadline.of_seconds timeout in
    (match Detk.solve ~deadline:(deadline ()) h ~k with
    | Detk.Decomposition d ->
        let base = Fhd.Improve_hd.improve h d in
        Printf.printf "integral width: %d\nImproveHD width: %.3f\n"
          (Decomp.width d)
          (Decomp.Fractional.width base);
        if frac then begin
          match Fhd.Frac_improve_hd.best ~deadline:(deadline ()) h ~k with
          | Some (fhd, w) ->
              Printf.printf "FracImproveHD width: %.3f\n" w;
              Format.printf "%a" (fun fmt -> Decomp.Fractional.pp h fmt) fhd
          | None -> Printf.printf "FracImproveHD: no result\n"
        end
    | Detk.No_decomposition -> Printf.printf "no HD of width <= %d\n" k
    | Detk.Timeout -> Printf.printf "timeout\n");
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Hypergraph file.")
  in
  let frac =
    Arg.(value & flag & info [ "frac" ] ~doc:"Also run FracImproveHD.")
  in
  Cmd.v
    (Cmd.info "improve" ~doc:"Fractionally improve an HD (paper §6.5).")
    Term.(
      const run $ path $ k_arg $ timeout_arg $ frac $ stats_arg
      $ stats_json_arg)

(* --- convert ------------------------------------------------------------------- *)

let read_schema_file path =
  (* Format: one "table: col1, col2" line per relation; # comments. *)
  match read_file path with
  | Error _ as e -> e
  | Ok text ->
  let rec go acc = function
    | [] -> Ok (Sql.Schema.of_list (List.rev acc))
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc rest
        else (
          match String.index_opt line ':' with
          | None -> Error (Printf.sprintf "bad schema line: %s" line)
          | Some i ->
              let name = String.trim (String.sub line 0 i) in
              let cols =
                String.sub line (i + 1) (String.length line - i - 1)
                |> String.split_on_char ','
                |> List.map String.trim
                |> List.filter (( <> ) "")
              in
              go ((name, cols) :: acc) rest)
  in
  go [] (String.split_on_char '\n' text)

let convert_sql_cmd =
  let run path schema_path =
    let* sql = tag exit_sql (read_file path) in
    let* schema =
      match schema_path with
      | None -> Ok Sql.Schema.empty
      | Some p -> tag exit_sql (with_path p (read_schema_file p))
    in
    let* results =
      match Sql.Convert.sql_to_hypergraphs_report ~schema sql with
      | Ok r -> Ok r
      | Error ds ->
          (* The caret report is the diagnostic; the summary line below it
             (via [let*]) keeps the one-line-on-stderr contract. *)
          prerr_string (Kit.Diag.render_all ~file:path ~source:sql ds);
          Error
            ( exit_sql,
              Printf.sprintf "%s: %d error%s" path (List.length ds)
                (if List.length ds = 1 then "" else "s") )
    in
    List.iter
      (fun (id, conv) ->
        Printf.printf "%% query %s\n" id;
        List.iter (Printf.printf "%% warning: %s\n") conv.Sql.Convert.warnings;
        match conv.Sql.Convert.hypergraph with
        | Some h -> print_string (Hg.Hypergraph.to_string h)
        | None -> print_endline "% (no hypergraph)")
      results;
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SQL file.")
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"FILE" ~doc:"Schema file (table: col1, col2).")
  in
  Cmd.v
    (Cmd.info "convert-sql" ~doc:"SQL query to hypergraph(s) (paper §5.2-5.4).")
    Term.(const run $ path $ schema)

let convert_xcsp_cmd =
  let run path =
    let* src = tag exit_xcsp (with_path path (read_file path)) in
    let* h =
      match Xcsp3.Xcsp.read_report src with
      | Ok h -> Ok h
      | Error ds ->
          prerr_string (Kit.Diag.render_all ~file:path ~source:src ds);
          Error
            ( exit_xcsp,
              Printf.sprintf "%s: %d error%s" path (List.length ds)
                (if List.length ds = 1 then "" else "s") )
    in
    print_string (Hg.Hypergraph.to_string h);
    0
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XCSP XML file.")
  in
  Cmd.v
    (Cmd.info "convert-xcsp" ~doc:"XCSP instance to hypergraph (paper §5.5).")
    Term.(const run $ path)

(* --- stats ---------------------------------------------------------------------- *)

let stats_cmd =
  let run dir =
    let* instances = load_repository ~dir in
    Printf.printf "%-16s %10s %12s %10s %8s\n" "group" "instances" "max edges"
      "max vert" "arity";
    List.iter
      (fun (g, insts) ->
        if insts <> [] then begin
          let stat f = List.fold_left (fun m i -> Stdlib.max m (f i.Benchlib.Instance.hg)) 0 insts in
          Printf.printf "%-16s %10d %12d %10d %8d\n" (Benchlib.Group.id g)
            (List.length insts)
            (stat (fun h -> h.Hg.Hypergraph.n_edges))
            (stat (fun h -> h.Hg.Hypergraph.n_vertices))
            (stat Hg.Hypergraph.arity)
        end)
      (Benchlib.Repository.by_group instances);
    0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summary statistics of a repository.")
    Term.(const run $ dir_arg)

(* --- repo (packed binary repository) --------------------------------------------- *)

let pack_dir_arg =
  Arg.(
    value
    & opt string "hyperbench-pack"
    & info [ "out"; "pack" ] ~docv:"DIR" ~doc:"Packed repository directory.")

let repo_pack_cmd =
  let run dir out shards =
    let* instances = load_repository ~dir in
    match Benchlib.Repository.pack ~dir:out ~shards instances with
    | () ->
        Printf.printf "packed %d instances into %d shard(s) in %s\n"
          (List.length instances) shards out;
        0
    | exception Invalid_argument m ->
        Printf.eprintf "hyperbench: %s\n%!" m;
        exit_repo
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Split into $(docv) shard files; instance i goes to shard i mod \
             N — the same split as campaign $(b,--shard).")
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Pack a text repository ($(b,--dir)) into the compact binary \
          format: varint-framed entries with per-instance fingerprints, \
          one atomic file per shard.")
    Term.(const run $ dir_arg $ pack_dir_arg $ shards)

let repo_verify_cmd =
  let run dir =
    match Benchlib.Repository.load_pack ~dir with
    | Error m ->
        Printf.eprintf "hyperbench: %s\n%!" m;
        exit_repo
    | Ok { Benchlib.Repository.instances; skipped } ->
        Printf.printf "verified %d instance(s)\n" (List.length instances);
        if skipped = [] then 0
        else begin
          List.iter
            (fun (label, msg) ->
              Printf.eprintf "hyperbench: corrupt entry %s: %s\n%!" label msg)
            skipped;
          Printf.eprintf "hyperbench: %d corrupt entr(ies)\n%!"
            (List.length skipped);
          exit_repo
        end
  in
  let dir =
    Arg.(
      value
      & opt string "hyperbench-pack"
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Packed repository directory.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Decode every packed entry and recompute its fingerprint; any \
          mismatch or undecodable entry is reported and fails the command.")
    Term.(const run $ dir)

let repo_cmd =
  Cmd.group
    (Cmd.info "repo"
       ~doc:"Compact binary repository: pack and integrity-verify.")
    [ repo_pack_cmd; repo_verify_cmd ]

(* --- merge-journals --------------------------------------------------------------- *)

let merge_journals_cmd =
  let run into paths =
    match Experiments.merge_journals ~into paths with
    | Error m ->
        Printf.eprintf "hyperbench: %s\n%!" m;
        exit_repo
    | Ok (entries, corrupt) ->
        Printf.printf "merged %d entr(ies) into %s\n" entries into;
        if corrupt > 0 then
          Printf.eprintf "warning: skipped %d corrupt line(s)\n%!" corrupt;
        0
  in
  let into =
    Arg.(
      required
      & opt (some string) None
      & info [ "into" ] ~docv:"FILE" ~doc:"Output journal path.")
  in
  let paths =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"JOURNAL" ~doc:"Shard journals to merge.")
  in
  Cmd.v
    (Cmd.info "merge-journals"
       ~doc:
         "Merge per-shard campaign journals into one journal equal to the \
          unsharded run's (dedup by instance, repository order; headers \
          must match).")
    Term.(const run $ into $ paths)

(* --- campaign ------------------------------------------------------------------- *)

let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (i, n)
        | _ -> Error (`Msg "expected I/N with 0 <= I < N"))
    | _ -> Error (`Msg "expected shard as I/N, e.g. 0/2")
  in
  Arg.conv (parse, fun fmt (i, n) -> Format.fprintf fmt "%d/%d" i n)

let campaign_cmd =
  let run seed scale timeout fuel max_k jobs journal resume retries mem_limit
      isolate shard cache_dir tables stats stats_json =
    let isolate = isolate || Kit.Proc.enabled () in
    (* --cache DIR wins over the HB_CACHE knob; neither set means no
       cache and no cache.* metric ticks. *)
    let cache =
      match cache_dir with
      | Some dir -> Some (Benchlib.Result_cache.create ~dir)
      | None -> Benchlib.Result_cache.of_env ()
    in
    (* --resume FILE implies journaling to that same file. *)
    let journal = match resume with Some p -> Some p | None -> journal in
    (* Retries escalate the budget: attempt i gets 2^i times the base, so
       a genuinely-too-tight budget can succeed on retry while a
       deterministic crash just fails identically and gets recorded. *)
    let budget, budget_for =
      match fuel with
      | Some f ->
          ( (fun () -> Kit.Deadline.of_fuel f),
            fun ~attempt () -> Kit.Deadline.of_fuel (f * (1 lsl attempt)) )
      | None ->
          ( (fun () -> Kit.Deadline.of_seconds timeout),
            fun ~attempt () ->
              Kit.Deadline.of_seconds (timeout *. float_of_int (1 lsl attempt))
          )
    in
    (* The watchdog shadows the cooperative budget: HB_WALL when set; the
       escalated per-attempt timeout plus a grace second otherwise (a
       well-behaved task always hits its soft deadline first); for fuel
       budgets, whose wall-clock cost is unknown, the 3600 s default. *)
    let wall ~attempt =
      match (Sys.getenv_opt "HB_WALL", fuel) with
      | Some _, _ | None, Some _ -> Kit.Proc.default_wall ()
      | None, None -> (timeout *. float_of_int (1 lsl attempt)) +. 1.0
    in
    with_stats ~stats ~stats_json @@ fun () ->
    let* c =
      tag exit_repo
        (Experiments.prepare_campaign ~seed ~scale ~budget ~budget_for
           ?retries ?mem_mb:mem_limit ~max_k ~jobs ~intra:(intra_env ())
           ~isolate ~wall ?shard ?cache ?journal ~resume:(resume <> None) ())
    in
    print_string (Experiments.campaign_summary c);
    (match journal with
    | Some path -> Printf.eprintf "journal: %s\n" path
    | None -> ());
    if tables then begin
      let ctx = c.Experiments.context in
      print_newline ();
      List.iter
        (fun render -> print_string (render ctx ^ "\n"))
        [
          Experiments.table1; Experiments.table2; Experiments.figure3;
          Experiments.figure4; Experiments.figure5; Experiments.table3;
          Experiments.table4; Experiments.table5; Experiments.table6;
        ]
    end;
    0
  in
  let seed =
    Arg.(value & opt int 2019 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
  in
  let scale =
    Arg.(
      value & opt float 0.2
      & info [ "scale" ] ~docv:"S" ~doc:"Repository scale factor.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Deterministic per-run budget in solver steps (overrides \
             $(b,--timeout); same results at any $(b,--jobs)).")
  in
  let max_k =
    Arg.(value & opt int 8 & info [ "max-k" ] ~docv:"K" ~doc:"Largest k to try.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write a crash-safe JSONL journal: one line per finished \
             instance, flushed immediately.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from journal $(docv): recorded instances are not \
             rerun, and new outcomes are appended to the same journal.")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failed instance up to $(docv) times with doubling \
             budget (default: $(b,HB_RETRIES) or 0).")
  in
  let mem_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-limit" ] ~docv:"MB"
          ~doc:
            "Soft memory budget: record out_of_memory for the running \
             instance when the live heap exceeds $(docv) MB (default: \
             $(b,HB_MEM_MB); 0 disables). Under $(b,--isolate) the same \
             value is also installed as a hard per-worker rlimit.")
  in
  let tables =
    Arg.(
      value & flag
      & info [ "tables" ] ~doc:"Also print every table and figure.")
  in
  let shard =
    Arg.(
      value
      & opt (some shard_conv) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Run only instances with index mod N = I (deterministic by \
             repository index). Journals of the N shards merge with \
             $(b,merge-journals) into the unsharded journal.")
  in
  let cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache: reuse validated verdicts \
             keyed by hypergraph fingerprint, method and k (default: the \
             $(b,HB_CACHE) environment knob).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-tolerant full analysis: per-instance crash containment, \
          outcome journal, checkpoint/resume, retry with escalating \
          budgets, and optional hard process isolation ($(b,--isolate)).")
    Term.(
      const run $ seed $ scale $ timeout_arg $ fuel $ max_k $ jobs_arg
      $ journal $ resume $ retries $ mem_limit $ isolate_arg $ shard $ cache
      $ tables $ stats_arg $ stats_json_arg)

(* --- serve ---------------------------------------------------------------- *)

let serve_cmd =
  let run host port jobs queue rate max_body timeout isolate mem_mb cache =
    (* The daemon always records: /metrics is part of the surface. *)
    Kit.Metrics.enabled := true;
    let scfg =
      {
        (Serve.Server.default_config ()) with
        host;
        port;
        jobs;
        queue;
        rate;
        burst = Float.max rate 8.;
        max_body;
      }
    in
    let svc =
      {
        (Benchlib.Service.default_config ()) with
        Benchlib.Service.cache =
          (match cache with
          | Some dir -> Some (Benchlib.Result_cache.create ~dir)
          | None -> Benchlib.Result_cache.of_env ());
        isolate = isolate || Kit.Proc.enabled ();
        mem_mb;
        default_timeout = timeout;
      }
    in
    match Serve.Server.create scfg (Benchlib.Service.handler svc) with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "hyperbench: cannot bind %s:%d: %s\n%!" host port
          (Unix.error_message e);
        exit_repo
    | server ->
        (* The startup line is part of the protocol: tests and scripts
           parse the bound port from it (needed with --port 0). *)
        Printf.printf "hyperbenchd listening on http://%s:%d\n%!" host
          (Serve.Server.port server);
        let stop _ = Serve.Server.stop server in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Serve.Server.serve server;
        0
  in
  let dcfg = Serve.Server.default_config () in
  let host =
    Arg.(
      value
      & opt string dcfg.Serve.Server.host
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value
      & opt int dcfg.Serve.Server.port
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "TCP port (default: $(b,HB_PORT) or 8080); 0 picks an \
             ephemeral port, printed in the startup line.")
  in
  let queue =
    Arg.(
      value
      & opt int dcfg.Serve.Server.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue depth (default: $(b,HB_QUEUE) or 64); beyond \
             it new connections get 429 + Retry-After.")
  in
  let rate =
    Arg.(
      value
      & opt float dcfg.Serve.Server.rate
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Per-client token-bucket rate limit in requests/second \
             (default: $(b,HB_RATE); 0 disables).")
  in
  let max_body =
    Arg.(
      value
      & opt int dcfg.Serve.Server.max_body
      & info [ "max-body" ] ~docv:"BYTES"
          ~doc:
            "Request body cap (default: $(b,HB_MAX_BODY) or 8 MiB); larger \
             payloads get 413.")
  in
  let req_timeout =
    Arg.(
      value
      & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Default per-request solve budget (clients may lower it).")
  in
  let mem_limit =
    Arg.(
      value
      & opt (some int) (Kit.Guard.mem_budget_mb ())
      & info [ "mem-limit" ] ~docv:"MB"
          ~doc:
            "Hard memory rlimit per isolated request (default: \
             $(b,HB_MEM_MB)); needs $(b,--isolate).")
  in
  let cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Serve repeat queries from the content-addressed result cache \
             (default: the $(b,HB_CACHE) environment knob).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run hyperbenchd: a persistent HTTP daemon answering POST \
          /decompose with width and decomposition JSON, with /healthz \
          (per-subsystem circuit-breaker state) and /metrics. Crashed \
          solve workers are restarted with backoff; persistent failures \
          open a breaker and the daemon degrades to cached answers or \
          honest 503 + Retry-After. Graceful drain on SIGTERM/SIGINT: \
          stop accepting, answer everything already accepted, exit 0. \
          Timeouts come from $(b,HB_IDLE) (keep-alive idle, 5 s), \
          $(b,HB_READ_TIMEOUT) (mid-request stall budget, 10 s), \
          $(b,HB_WRITE_TIMEOUT) (response send budget, 30 s) and \
          $(b,HB_DRAIN) (drain grace, 0.25 s); $(b,HB_FAULT) arms the \
          chaos harness, including the network kinds \
          stall/reset/torn at serve.read and serve.write and worker \
          kills at serve.worker.")
    Term.(
      const run $ host $ port $ jobs_arg $ queue $ rate $ max_body
      $ req_timeout $ isolate_arg $ mem_limit $ cache)

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run format cases seed out =
    let* formats =
      if format = "all" then Ok Benchlib.Fuzz_driver.all_formats
      else
        match Benchlib.Fuzz_driver.format_of_string format with
        | Some f -> Ok [ f ]
        | None ->
            Error
              ( exit_fuzz,
                "unknown format: " ^ format ^ " (expected sql|xcsp|hg|hbx|all)"
              )
    in
    let crashed = ref false in
    List.iter
      (fun fmt ->
        let name = Benchlib.Fuzz_driver.format_name fmt in
        let t0 = Unix.gettimeofday () in
        let s = Benchlib.Fuzz_driver.run fmt ~cases ~seed in
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf
          "%-5s %6d cases  parsed %6d  rejected %6d  crashes %d  (%.2fs)\n%!"
          name s.Benchlib.Fuzz_driver.cases s.parsed s.rejected
          (List.length s.failures) dt;
        List.iter
          (fun (f : Benchlib.Fuzz_driver.failure) ->
            crashed := true;
            Printf.eprintf "hyperbench: fuzz %s seed %d case %d: %s\n%!" name
              seed f.index f.outcome;
            let path = Printf.sprintf "%s-%s-%d.bin" out name f.index in
            let oc = open_out_bin path in
            output_string oc f.shrunk;
            close_out oc;
            Printf.eprintf
              "hyperbench: shrunk reproducer (%d of %d bytes) written to %s\n%!"
              (String.length f.shrunk)
              (String.length f.input)
              path)
          s.failures)
      formats;
    if !crashed then exit_fuzz else 0
  in
  let format =
    Arg.(
      value & opt string "all"
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Frontend to fuzz: $(b,sql), $(b,xcsp), $(b,hg), $(b,hbx) or \
                $(b,all).")
  in
  let cases =
    Arg.(
      value & opt int 2000
      & info [ "cases" ] ~docv:"N" ~doc:"Cases per format.")
  in
  let default_seed =
    match Option.bind (Sys.getenv_opt "HB_FUZZ_SEED") int_of_string_opt with
    | Some s -> s
    | None -> 2019
  in
  let seed =
    Arg.(
      value & opt int default_seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Base seed; case i derives its own stream from (SEED, i), so a \
             reported case replays without regenerating its predecessors \
             (default: $(b,HB_FUZZ_SEED) or 2019).")
  in
  let out =
    Arg.(
      value & opt string "fuzz-failure"
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:"Prefix for shrunk-reproducer artifacts ($(docv)-FMT-CASE.bin).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Throw N deterministic adversarial inputs (grammar-level \
          pathologies plus byte mutations of valid corpora) at each parsing \
          frontend and require a clean Ok/Error from every one — any crash, \
          stack overflow or memory blow-up fails with exit code 8 and a \
          ddmin-shrunk reproducer on disk.")
    Term.(const run $ format $ cases $ seed $ out)

let () =
  let info =
    Cmd.info "hyperbench" ~version:"1.0"
      ~doc:"HyperBench: hypergraph benchmark and decomposition tool"
  in
  (* A typo'd HB_FAULT spec must not silently run fault-free. *)
  (match Kit.Fault.config_error () with
  | Some m ->
      Printf.eprintf "hyperbench: bad HB_FAULT spec: %s\n%!" m;
      exit 1
  | None -> ());
  let cli =
    Cmd.group info
      [
        build_cmd; list_cmd; analyze_cmd; decompose_cmd; validate_cmd;
        improve_cmd; convert_sql_cmd; convert_xcsp_cmd; stats_cmd;
        repo_cmd; merge_journals_cmd; campaign_cmd; serve_cmd; fuzz_cmd;
      ]
  in
  (* Last-resort containment: anything that escapes a command becomes one
     diagnostic line and a distinct exit code, never an abort trace. *)
  exit
    (try Cmd.eval' cli
     with e ->
       Printf.eprintf "hyperbench: uncaught exception: %s\n%!"
         (Printexc.to_string e);
       exit_uncaught)
