(* Abstract syntax for the SQL fragment handled by the hg-tools pipeline
   (paper §5.2): SELECT-FROM-WHERE with joins, nested subqueries (IN /
   EXISTS / scalar comparison), WITH views, set operations, and the usual
   scalar predicates. Only the query *structure* matters downstream, so
   expressions are deliberately coarse. *)

type literal = Int of int | Float of float | String of string | Null

type expr =
  | Col of string option * string  (* qualifier (alias or table), column *)
  | Lit of literal
  | Star
  | Fun of string * expr list
  | Binop of string * expr * expr

type cmp_op = Eq | Neq | Lt | Gt | Le | Ge

type cond =
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Cmp of cmp_op * expr * expr
  | In_query of expr * query  (* e IN (SELECT ...) *)
  | In_list of expr * expr list
  | Exists of query
  | Between of expr * expr * expr
  | Is_null of expr * bool  (* true = IS NULL, false = IS NOT NULL *)
  | Like of expr * string * bool  (* true = LIKE, false = NOT LIKE *)
  | Cmp_query of cmp_op * expr * query  (* e < (SELECT ...) etc. *)

and table_ref =
  | Table of string * string option  (* relation name, optional alias *)
  | Derived of query * string  (* subquery in FROM, mandatory alias *)

and select = {
  distinct : bool;
  select_list : (expr * string option) list;  (* [] encodes SELECT * *)
  from : table_ref list;
  where : cond option;
  group_by : expr list;
  having : cond option;
  order_by : expr list;
  span : Kit.Diag.span;  (* byte range of the SELECT in its source *)
}

and query =
  | Select of select
  | Setop of setop * query * query

and setop = Union | Union_all | Intersect | Except

type statement = {
  views : (string * query) list;  (* WITH name AS (...) bindings, in order *)
  body : query;
}

let empty_select =
  {
    distinct = false;
    select_list = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    span = Kit.Diag.point 0;
  }

let cmp_op_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

(* Conjunction flattening: AND-lists are the working currency of the
   conjunctive-core extraction. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | c -> [ c ]

let conjoin = function
  | [] -> None
  | c :: cs -> Some (List.fold_left (fun acc x -> And (acc, x)) c cs)

(* The alias under which a table_ref is visible in its query. *)
let binding_name = function
  | Table (name, None) -> name
  | Table (_, Some alias) -> alias
  | Derived (_, alias) -> alias

let relation_name = function
  | Table (name, _) -> name
  | Derived (_, alias) -> alias
