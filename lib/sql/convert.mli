(** Hypergraph conversion of simple conjunctive queries (paper §5.4).

    Every table instance of the FROM clause contributes one hyperedge over
    vertices (instance, attribute); equality join conditions merge
    vertices, comparisons with constants delete them; empty and duplicate
    edges are dropped at the end. Attributes come from the schema when the
    relation is known there, otherwise from the columns actually
    referenced in the query. *)

type conversion = {
  hypergraph : Hg.Hypergraph.t option;
      (** [None] when nothing remains (e.g. all edges empty). *)
  warnings : string list;
}

val select_to_hypergraph : ?schema:Schema.t -> Ast.select -> conversion
(** Conversion of one simple SELECT; the conjunctive core is taken
    implicitly, i.e. non-equality conditions are ignored. *)

val statement_to_hypergraphs :
  ?schema:Schema.t -> Ast.statement -> (string * conversion) list
(** Full pipeline of §5.2–5.4: extract simple queries (view expansion,
    set-operation splitting, subquery dependency analysis), then convert
    each. Returns (query id, conversion) pairs. *)

val sql_to_hypergraphs :
  ?schema:Schema.t -> string -> ((string * conversion) list, string) result
(** [statement_to_hypergraphs] composed with the parser. *)

val sql_to_hypergraphs_report :
  ?schema:Schema.t ->
  string ->
  ((string * conversion) list, Kit.Diag.t list) result
(** Like {!sql_to_hypergraphs} but a parse failure carries the full
    span diagnostics (see {!Parser.parse_report}), for callers that
    render carets or JSON. *)
