open Ast

type conversion = {
  hypergraph : Hg.Hypergraph.t option;
  warnings : string list;
}

let norm = String.lowercase_ascii

(* A table instance of the FROM clause. *)
type instance = {
  idx : int;
  relation : string;
  binding : string;  (* alias or relation name: unique within the query *)
  mutable attrs : string list;  (* normalised attribute names *)
}

let select_to_hypergraph ?(schema = Schema.empty) (s : select) =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  (* 1. Instances. Derived tables surviving to this point are opaque; they
     behave like base relations named by their alias. *)
  let instances =
    List.mapi
      (fun idx tr ->
        {
          idx;
          relation = Ast.relation_name tr;
          binding = norm (Ast.binding_name tr);
          attrs =
            (match Schema.attrs schema (Ast.relation_name tr) with
            | Some l -> List.map norm l
            | None -> []);
        })
      s.from
  in
  let find_binding b = List.find_opt (fun i -> i.binding = norm b) instances in
  (* 2. Attribute discovery for schemaless relations: every referenced
     column extends its instance's attribute list. *)
  let ensure_attr inst attr =
    let attr = norm attr in
    if not (List.mem attr inst.attrs) then inst.attrs <- inst.attrs @ [ attr ]
  in
  let resolve ?(quiet = false) qual col =
    match qual with
    | Some b -> (
        match find_binding b with
        | Some inst ->
            ensure_attr inst col;
            Some (inst, norm col)
        | None ->
            if not quiet then warn "unknown table binding %s.%s" b col;
            None)
    | None -> (
        (* Unqualified: unique owner via schema, else the only table. *)
        let owners =
          List.filter (fun i -> Schema.has_attr schema i.relation col) instances
        in
        match (owners, instances) with
        | [ inst ], _ ->
            ensure_attr inst col;
            Some (inst, norm col)
        | [], [ inst ] ->
            ensure_attr inst col;
            Some (inst, norm col)
        | [], _ ->
            if not quiet then warn "cannot resolve unqualified column %s" col;
            None
        | _ :: _ :: _, _ ->
            if not quiet then warn "ambiguous unqualified column %s" col;
            None)
  in
  (* Pre-register columns referenced anywhere in this select so that
     schemaless instances get their attributes. *)
  let rec touch_expr e =
    match e with
    | Col (q, c) -> ignore (resolve ~quiet:true q c)
    | Lit _ | Star -> ()
    | Fun (_, args) -> List.iter touch_expr args
    | Binop (_, a, b) ->
        touch_expr a;
        touch_expr b
  in
  let rec touch_cond c =
    match c with
    | And (a, b) | Or (a, b) ->
        touch_cond a;
        touch_cond b
    | Not a -> touch_cond a
    | Cmp (_, a, b) ->
        touch_expr a;
        touch_expr b
    | In_query (e, _) | Cmp_query (_, e, _) -> touch_expr e
    | In_list (e, es) ->
        touch_expr e;
        List.iter touch_expr es
    | Exists _ -> ()
    | Between (e, lo, hi) ->
        touch_expr e;
        touch_expr lo;
        touch_expr hi
    | Is_null (e, _) | Like (e, _, _) -> touch_expr e
  in
  List.iter (fun (e, _) -> touch_expr e) s.select_list;
  Option.iter touch_cond s.where;
  List.iter touch_expr s.group_by;
  Option.iter touch_cond s.having;
  List.iter touch_expr s.order_by;
  (* 3. Vertices: one per (instance, attr). *)
  let vertex_ids : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  let vertex_names = ref [] in
  let n_vertices = ref 0 in
  List.iter
    (fun inst ->
      List.iter
        (fun attr ->
          Hashtbl.replace vertex_ids (inst.idx, attr) !n_vertices;
          vertex_names := Printf.sprintf "%s.%s" inst.binding attr :: !vertex_names;
          incr n_vertices)
        inst.attrs)
    instances;
  let vertex_names = Array.of_list (List.rev !vertex_names) in
  if !n_vertices = 0 then
    { hypergraph = None; warnings = List.rev !warnings }
  else begin
    let uf = Kit.Union_find.create !n_vertices in
    let deleted = Array.make !n_vertices false in
    let vertex inst attr = Hashtbl.find vertex_ids (inst.idx, attr) in
    (* 4. Interpret the conjunctive core. *)
    let handle_conjunct c =
      match c with
      | Cmp (Eq, Col (qa, ca), Col (qb, cb)) -> (
          match (resolve qa ca, resolve qb cb) with
          | Some (ia, aa), Some (ib, ab) ->
              Kit.Union_find.union uf (vertex ia aa) (vertex ib ab)
          | _ -> ())
      | Cmp (Eq, Col (q, c), Lit _) | Cmp (Eq, Lit _, Col (q, c)) -> (
          match resolve q c with
          | Some (i, a) -> deleted.(vertex i a) <- true
          | None -> ())
      | _ -> ()
    in
    (match s.where with
    | Some w -> List.iter handle_conjunct (Ast.conjuncts w)
    | None -> ());
    (* A class is deleted when any member was equated to a constant. *)
    let class_deleted = Array.make !n_vertices false in
    for v = 0 to !n_vertices - 1 do
      if deleted.(v) then class_deleted.(Kit.Union_find.find uf v) <- true
    done;
    (* 5. Edges. *)
    let rep_name = Array.make !n_vertices None in
    let edges =
      List.map
        (fun inst ->
          let members =
            List.filter_map
              (fun attr ->
                let v = vertex inst attr in
                let r = Kit.Union_find.find uf v in
                if class_deleted.(r) then None
                else begin
                  if rep_name.(r) = None then rep_name.(r) <- Some vertex_names.(v);
                  Some r
                end)
              inst.attrs
            |> List.sort_uniq compare
          in
          (inst, members))
        instances
    in
    let edges = List.filter (fun (_, m) -> m <> []) edges in
    (* Dedup identical member sets, keeping the first instance's name. *)
    let seen = Hashtbl.create 16 in
    let edges =
      List.filter
        (fun (_, m) ->
          if Hashtbl.mem seen m then false
          else begin
            Hashtbl.replace seen m ();
            true
          end)
        edges
    in
    if edges = [] then begin
      warn "conversion produced no edges";
      { hypergraph = None; warnings = List.rev !warnings }
    end
    else begin
      let named =
        List.map
          (fun (inst, members) ->
            ( inst.binding,
              List.map (fun r -> Option.get rep_name.(r)) members ))
          edges
      in
      (* Bindings are unique, but guard against pathological inputs; the
         suffix uses '.' so the HyperBench text format can round-trip the
         edge names. *)
      let named =
        List.mapi (fun i (n, m) -> (Printf.sprintf "%s.%d" n i, m)) named
      in
      let h = Hg.Hypergraph.of_named_edges named in
      { hypergraph = Some h; warnings = List.rev !warnings }
    end
  end

let statement_to_hypergraphs ?schema stmt =
  let { Transform.simples; schema = schema'; warnings = w0 } =
    Transform.extract ?schema stmt
  in
  List.map
    (fun { Transform.id; select } ->
      (* The converter interprets exactly the conjunctive core (only
         equality conjuncts merge or delete vertices), but sees the full
         query so that attribute inference for schemaless relations also
         picks up columns used in dropped predicates. *)
      let conv = select_to_hypergraph ~schema:schema' select in
      let conv =
        if id = "q" then { conv with warnings = w0 @ conv.warnings } else conv
      in
      (id, conv))
    simples

let sql_to_hypergraphs ?schema src =
  match Parser.parse src with
  | Error _ as e -> e
  | Ok stmt -> Ok (statement_to_hypergraphs ?schema stmt)

let sql_to_hypergraphs_report ?schema src =
  match Parser.parse_report src with
  | Error _ as e -> e
  | Ok stmt -> Ok (statement_to_hypergraphs ?schema stmt)
