(** SQL tokenizer. Keywords are not distinguished from identifiers here;
    the parser matches identifiers case-insensitively.

    Every token carries its byte span in the source, and the lexer
    recovers from local mistakes (unterminated strings or comments,
    illegal characters) by reporting a {!Kit.Diag.t} and continuing, so
    one pass can surface several problems. Only a violated input-size
    bound ([HB_MAX_INPUT]) refuses the input outright. *)

type token =
  | Ident of string
  | Number of string
  | String of string  (** contents without quotes *)
  | Punct of string  (** operators and punctuation, e.g. "(", "<=", "," *)
  | Eof

type t

val create : string -> (t * Kit.Diag.t list, Kit.Diag.t) result
(** Tokenize the whole input eagerly. [Ok (lexer, diags)] returns the
    token stream plus any recovered lexical errors (possibly empty);
    [Error] only when the input exceeds the size bound. *)

val peek : t -> token

val peek_span : t -> Kit.Diag.span
(** Span of the current token; for [Eof] a zero-width span at the end
    of the input. *)

val prev_end : t -> int
(** Byte offset just past the last consumed token ([0] initially) — the
    natural right edge for a span that covers a completed construct. *)

val next : t -> token
(** Return the current token and advance. *)

val pos : t -> int
(** Index of the current token (for save/restore). *)

val save : t -> int
val restore : t -> int -> unit
(** Save/restore the cursor: the parser backtracks at one ambiguity
    (parenthesised condition vs. parenthesised expression). *)
