(** Recursive-descent parser for the SQL fragment of paper §5.2:
    SELECT-FROM-WHERE with explicit JOIN ... ON, WITH views, set
    operations, and nested subqueries via IN, EXISTS and scalar
    comparisons. GROUP BY / HAVING / ORDER BY / LIMIT are parsed and
    retained but play no role in the hypergraph structure.

    The descent is resource-bounded: nesting past [HB_PARSE_DEPTH] or
    an input over [HB_MAX_INPUT] bytes yields a clean [Error], never
    [Stack_overflow] or unbounded memory. Panic-mode recovery resyncs
    at select-list commas and statement [';'] boundaries, so one pass
    over a broken file reports several independent mistakes (capped at
    20). *)

val parse : string -> (Ast.statement, string) result
(** Single-error compatibility shim over {!parse_report}: the first
    diagnostic rendered as ["line:col: error: message"], with a count
    suffix when more were found. *)

val parse_report : string -> (Ast.statement, Kit.Diag.t list) result
(** Full diagnostics. [Ok] only for a clean single-statement parse;
    [Error] carries every recovered diagnostic in source order. *)

val parse_query : string -> (Ast.query, string) result
(** Like {!parse} but without the WITH prefix. *)
