type token =
  | Ident of string
  | Number of string
  | String of string
  | Punct of string
  | Eof

type spanned = { tok : token; span : Kit.Diag.span }

type t = { tokens : spanned array; mutable index : int }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'

let is_digit c = c >= '0' && c <= '9'

(* One recovering pass: local lexical mistakes become diagnostics and
   scanning continues, so a broken file reports every bad literal in one
   go instead of stopping at the first. *)
let tokenize src =
  let len = String.length src in
  let out = ref [] in
  let diags = ref [] in
  let i = ref 0 in
  let emit start tok =
    out := { tok; span = Kit.Diag.span start !i } :: !out
  in
  let report start msg =
    diags := Kit.Diag.error (Kit.Diag.span start !i) msg :: !diags
  in
  let rec loop () =
    if !i >= len then ()
    else begin
      let c = src.[!i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        incr i;
        loop ()
      end
      else if c = '-' && !i + 1 < len && src.[!i + 1] = '-' then begin
        while !i < len && src.[!i] <> '\n' do incr i done;
        loop ()
      end
      else if c = '/' && !i + 1 < len && src.[!i + 1] = '*' then begin
        let start = !i in
        let closed = ref false in
        i := !i + 2;
        while (not !closed) && !i + 1 < len do
          if src.[!i] = '*' && src.[!i + 1] = '/' then begin
            closed := true;
            i := !i + 2
          end
          else incr i
        done;
        if not !closed then begin
          i := len;
          report start "unterminated comment"
        end;
        loop ()
      end
      else if is_ident_start c then begin
        let start = !i in
        while !i < len && is_ident_char src.[!i] do incr i done;
        emit start (Ident (String.sub src start (!i - start)));
        loop ()
      end
      else if is_digit c then begin
        let start = !i in
        while !i < len && (is_digit src.[!i] || src.[!i] = '.') do incr i done;
        emit start (Number (String.sub src start (!i - start)));
        loop ()
      end
      else if c = '\'' then begin
        (* SQL strings; '' escapes a quote. *)
        let start = !i in
        let buf = Buffer.create 16 in
        incr i;
        let rec scan () =
          if !i >= len then begin
            report start "unterminated string";
            emit start (String (Buffer.contents buf))
          end
          else if src.[!i] = '\'' then
            if !i + 1 < len && src.[!i + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              i := !i + 2;
              scan ()
            end
            else begin
              incr i;
              emit start (String (Buffer.contents buf))
            end
          else begin
            Buffer.add_char buf src.[!i];
            incr i;
            scan ()
          end
        in
        scan ();
        loop ()
      end
      else if c = '"' then begin
        (* Double-quoted identifiers. *)
        let start = !i in
        let close =
          try String.index_from src (!i + 1) '"' with Not_found -> -1
        in
        if close < 0 then begin
          let rest = String.sub src (!i + 1) (len - !i - 1) in
          i := len;
          report start "unterminated quoted identifier";
          emit start (Ident rest)
        end
        else begin
          let name = String.sub src (!i + 1) (close - !i - 1) in
          i := close + 1;
          emit start (Ident name)
        end;
        loop ()
      end
      else begin
        let start = !i in
        let two = if !i + 1 < len then String.sub src !i 2 else "" in
        match two with
        | "<=" | ">=" | "<>" | "!=" | "==" | "||" ->
            i := !i + 2;
            emit start
              (Punct
                 (if two = "!=" then "<>" else if two = "==" then "=" else two));
            loop ()
        | _ -> (
            match c with
            | '(' | ')' | ',' | '.' | '=' | '<' | '>' | '+' | '-' | '*' | '/'
            | ';' | '%' ->
                incr i;
                emit start (Punct (String.make 1 c));
                loop ()
            | _ ->
                incr i;
                report start (Printf.sprintf "unexpected character %C" c);
                loop ())
      end
    end
  in
  loop ();
  let eof = { tok = Eof; span = Kit.Diag.point len } in
  (List.rev (eof :: !out), List.rev !diags)

let create src =
  match Kit.Limits.check_input src with
  | Some d -> Error d
  | None ->
      let tokens, diags = tokenize src in
      Ok ({ tokens = Array.of_list tokens; index = 0 }, diags)

let peek t = t.tokens.(t.index).tok

let peek_span t = t.tokens.(t.index).span

let prev_end t =
  if t.index = 0 then 0 else t.tokens.(t.index - 1).span.Kit.Diag.stop

let next t =
  let { tok; _ } = t.tokens.(t.index) in
  if tok <> Eof then t.index <- t.index + 1;
  tok

let pos t = t.index

let save t = t.index

let restore t i = t.index <- i
