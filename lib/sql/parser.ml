open Ast

exception Parse_error of Kit.Diag.t

(* Parser state: the token stream plus the recursion-depth counter and
   the diagnostics collected so far. The depth counter bounds every
   recursive descent (HB_PARSE_DEPTH) so a parenthesis bomb yields a
   clean diagnostic instead of Stack_overflow; the diagnostics list is
   what panic-mode recovery accumulates across sync points. *)
type p = {
  l : Lexer.t;
  max_depth : int;
  mutable depth : int;
  mutable diags : Kit.Diag.t list;  (* newest first *)
  mutable ndiags : int;
}

let max_errors = 20

let record p d =
  if p.ndiags < max_errors then begin
    p.diags <- d :: p.diags;
    p.ndiags <- p.ndiags + 1
  end

(* Speculative parses (the one condition-vs-expression ambiguity) must
   roll back any diagnostics recovery collected on the abandoned path,
   or phantom errors would survive a successful re-parse. *)
let save p = (Lexer.save p.l, p.diags, p.ndiags)

let restore p (mark, diags, ndiags) =
  Lexer.restore p.l mark;
  p.diags <- diags;
  p.ndiags <- ndiags

let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "BY"; "UNION";
    "INTERSECT"; "EXCEPT"; "JOIN"; "ON"; "AS"; "INNER"; "LEFT"; "RIGHT";
    "FULL"; "CROSS"; "OUTER"; "WITH"; "AND"; "OR"; "NOT"; "IN"; "EXISTS";
    "BETWEEN"; "IS"; "NULL"; "LIKE"; "LIMIT"; "OFFSET"; "DISTINCT"; "ALL";
    "ASC"; "DESC"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
  ]

let fail p msg = raise (Parse_error (Kit.Diag.error (Lexer.peek_span p.l) msg))

let deeper p f =
  if p.depth >= p.max_depth then
    raise
      (Parse_error
         (Kit.Limits.depth_error
            ~at:(Lexer.peek_span p.l).Kit.Diag.start));
  p.depth <- p.depth + 1;
  match f () with
  | v ->
      p.depth <- p.depth - 1;
      v
  | exception e ->
      p.depth <- p.depth - 1;
      raise e

let upper = String.uppercase_ascii

let is_kw p kw =
  match Lexer.peek p.l with Lexer.Ident s -> upper s = kw | _ -> false

let eat_kw p kw =
  if is_kw p kw then begin
    ignore (Lexer.next p.l);
    true
  end
  else false

let expect_kw p kw =
  if not (eat_kw p kw) then fail p (Printf.sprintf "expected %s" kw)

let is_punct p punct = Lexer.peek p.l = Lexer.Punct punct

let eat_punct p punct =
  if is_punct p punct then begin
    ignore (Lexer.next p.l);
    true
  end
  else false

let expect_punct p punct =
  if not (eat_punct p punct) then fail p (Printf.sprintf "expected '%s'" punct)

let ident p =
  match Lexer.peek p.l with
  | Lexer.Ident s when not (List.mem (upper s) reserved) ->
      ignore (Lexer.next p.l);
      s
  | _ -> fail p "expected identifier"

(* --- expressions --------------------------------------------------------- *)

let rec parse_expr p = deeper p (fun () -> parse_additive p)

and parse_additive p =
  let rec go acc =
    if is_punct p "+" || is_punct p "-" || is_punct p "||" then begin
      let op =
        match Lexer.next p.l with Lexer.Punct x -> x | _ -> assert false
      in
      let rhs = parse_multiplicative p in
      go (Binop (op, acc, rhs))
    end
    else acc
  in
  go (parse_multiplicative p)

and parse_multiplicative p =
  let rec go acc =
    if is_punct p "*" || is_punct p "/" || is_punct p "%" then begin
      let op =
        match Lexer.next p.l with Lexer.Punct x -> x | _ -> assert false
      in
      let rhs = parse_factor p in
      go (Binop (op, acc, rhs))
    end
    else acc
  in
  go (parse_factor p)

and parse_factor p =
  match Lexer.peek p.l with
  | Lexer.Number n ->
      ignore (Lexer.next p.l);
      if String.contains n '.' then
        match float_of_string_opt n with
        | Some f -> Lit (Float f)
        | None -> fail p (Printf.sprintf "malformed number %S" n)
      else (
        match int_of_string_opt n with
        | Some i -> Lit (Int i)
        | None -> fail p (Printf.sprintf "malformed number %S" n))
  | Lexer.String s ->
      ignore (Lexer.next p.l);
      Lit (String s)
  | Lexer.Punct "-" ->
      ignore (Lexer.next p.l);
      deeper p (fun () -> Binop ("-", Lit (Int 0), parse_factor p))
  | Lexer.Punct "*" ->
      ignore (Lexer.next p.l);
      Star
  | Lexer.Punct "(" ->
      ignore (Lexer.next p.l);
      let e = parse_expr p in
      expect_punct p ")";
      e
  | Lexer.Ident s when upper s = "NULL" ->
      ignore (Lexer.next p.l);
      Lit Null
  | Lexer.Ident s when upper s = "CASE" -> parse_case p
  | Lexer.Ident _ -> (
      let name = ident_or_function_name p in
      match Lexer.peek p.l with
      | Lexer.Punct "(" ->
          ignore (Lexer.next p.l);
          (* Aggregates: COUNT of star / COUNT DISTINCT etc. *)
          ignore (eat_kw p "DISTINCT");
          let args =
            if eat_punct p ")" then []
            else begin
              let rec args_loop acc =
                let e = parse_expr p in
                if eat_punct p "," then args_loop (e :: acc)
                else begin
                  expect_punct p ")";
                  List.rev (e :: acc)
                end
              in
              args_loop []
            end
          in
          Fun (name, args)
      | Lexer.Punct "." ->
          ignore (Lexer.next p.l);
          if is_punct p "*" then begin
            ignore (Lexer.next p.l);
            Star
          end
          else
            let col =
              match Lexer.peek p.l with
              | Lexer.Ident c ->
                  ignore (Lexer.next p.l);
                  c
              | _ -> fail p "expected column after '.'"
            in
            Col (Some name, col)
      | _ -> Col (None, name))
  | _ -> fail p "expected expression"

and ident_or_function_name p =
  (* Function names may collide with keywords we do not reserve; plain
     identifiers must not be reserved. *)
  match Lexer.peek p.l with
  | Lexer.Ident s when not (List.mem (upper s) reserved) ->
      ignore (Lexer.next p.l);
      s
  | _ -> fail p "expected identifier"

and parse_case p =
  (* CASE [expr] WHEN c THEN e ... [ELSE e] END — structure-irrelevant;
     collapse to a function of the mentioned column expressions. *)
  expect_kw p "CASE";
  let parts = ref [] in
  let rec go () =
    if eat_kw p "END" then ()
    else if eat_kw p "WHEN" then begin
      (* Conditions inside CASE are rare in our corpora; parse as expr
         followed by optional comparison. *)
      let e = parse_expr p in
      parts := e :: !parts;
      (match Lexer.peek p.l with
      | Lexer.Punct ("=" | "<" | ">" | "<=" | ">=" | "<>") ->
          ignore (Lexer.next p.l);
          parts := parse_expr p :: !parts
      | _ -> ());
      expect_kw p "THEN";
      parts := parse_expr p :: !parts;
      go ()
    end
    else if eat_kw p "ELSE" then begin
      parts := parse_expr p :: !parts;
      go ()
    end
    else fail p "malformed CASE expression"
  in
  go ();
  Fun ("case", List.rev !parts)

(* --- conditions ----------------------------------------------------------- *)

let cmp_of_punct = function
  | "=" -> Some Eq
  | "<>" -> Some Neq
  | "<" -> Some Lt
  | ">" -> Some Gt
  | "<=" -> Some Le
  | ">=" -> Some Ge
  | _ -> None

let rec parse_cond p = deeper p (fun () -> parse_or p)

and parse_or p =
  let rec go acc = if eat_kw p "OR" then go (Or (acc, parse_and p)) else acc in
  go (parse_and p)

and parse_and p =
  let rec go acc =
    if eat_kw p "AND" then go (And (acc, parse_not p)) else acc
  in
  go (parse_not p)

and parse_not p =
  if eat_kw p "NOT" then deeper p (fun () -> Not (parse_not p))
  else parse_primary_cond p

and parse_primary_cond p =
  if is_kw p "EXISTS" then begin
    expect_kw p "EXISTS";
    expect_punct p "(";
    let q = parse_query_inner p in
    expect_punct p ")";
    Exists q
  end
  else if is_punct p "(" then begin
    (* Ambiguity: '(cond)' vs '(expr) cmp ...'. Try condition first and
       fall back to an expression-led predicate. *)
    let mark = save p in
    match
      ignore (Lexer.next p.l);
      let c = parse_cond p in
      expect_punct p ")";
      c
    with
    | c -> (
        (* If a comparison operator follows, it was an expression after
           all: re-parse. *)
        match Lexer.peek p.l with
        | Lexer.Punct x when cmp_of_punct x <> None ->
            restore p mark;
            parse_predicate p
        | _ -> c)
    | exception Parse_error _ ->
        restore p mark;
        parse_predicate p
  end
  else parse_predicate p

and parse_predicate p =
  let e = parse_expr p in
  let negated = eat_kw p "NOT" in
  if is_kw p "IN" then begin
    expect_kw p "IN";
    expect_punct p "(";
    let c =
      if is_kw p "SELECT" then begin
        let q = parse_query_inner p in
        In_query (e, q)
      end
      else begin
        let rec items acc =
          let x = parse_expr p in
          if eat_punct p "," then items (x :: acc) else List.rev (x :: acc)
        in
        In_list (e, items [])
      end
    in
    expect_punct p ")";
    if negated then Not c else c
  end
  else if is_kw p "BETWEEN" then begin
    expect_kw p "BETWEEN";
    let lo = parse_expr p in
    expect_kw p "AND";
    let hi = parse_expr p in
    let c = Between (e, lo, hi) in
    if negated then Not c else c
  end
  else if is_kw p "LIKE" then begin
    expect_kw p "LIKE";
    match Lexer.peek p.l with
    | Lexer.String s ->
        ignore (Lexer.next p.l);
        Like (e, s, not negated)
    | _ -> fail p "expected string after LIKE"
  end
  else if is_kw p "IS" then begin
    expect_kw p "IS";
    let neg = eat_kw p "NOT" in
    expect_kw p "NULL";
    Is_null (e, not neg)
  end
  else if negated then fail p "expected IN/BETWEEN/LIKE after NOT"
  else
    match Lexer.peek p.l with
    | Lexer.Punct x when cmp_of_punct x <> None -> (
        ignore (Lexer.next p.l);
        let op = Option.get (cmp_of_punct x) in
        (* Scalar subquery on the right-hand side? *)
        if is_punct p "(" then begin
          let mark = save p in
          ignore (Lexer.next p.l);
          if is_kw p "SELECT" then begin
            let q = parse_query_inner p in
            expect_punct p ")";
            Cmp_query (op, e, q)
          end
          else begin
            restore p mark;
            Cmp (op, e, parse_expr p)
          end
        end
        else
          match (is_kw p "ANY", is_kw p "SOME", is_kw p "ALL") with
          | false, false, false -> Cmp (op, e, parse_expr p)
          | _ ->
              ignore (Lexer.next p.l);
              expect_punct p "(";
              let q = parse_query_inner p in
              expect_punct p ")";
              Cmp_query (op, e, q))
    | _ -> fail p "expected comparison operator"

(* --- FROM clause ----------------------------------------------------------- *)

and parse_table_ref p =
  if is_punct p "(" then begin
    ignore (Lexer.next p.l);
    let q = parse_query_inner p in
    expect_punct p ")";
    ignore (eat_kw p "AS");
    let alias = ident p in
    Derived (q, alias)
  end
  else begin
    let name = ident p in
    ignore (eat_kw p "AS");
    match Lexer.peek p.l with
    | Lexer.Ident s when not (List.mem (upper s) reserved) ->
        ignore (Lexer.next p.l);
        Table (name, Some s)
    | _ -> Table (name, None)
  end

and parse_from p =
  (* Returns the table refs plus the conjunction of all ON conditions. *)
  let conds = ref [] in
  let rec joins acc =
    let is_join_kw () =
      is_kw p "JOIN" || is_kw p "INNER" || is_kw p "LEFT" || is_kw p "RIGHT"
      || is_kw p "FULL" || is_kw p "CROSS"
    in
    if is_join_kw () then begin
      ignore (eat_kw p "INNER");
      ignore (eat_kw p "LEFT");
      ignore (eat_kw p "RIGHT");
      ignore (eat_kw p "FULL");
      ignore (eat_kw p "CROSS");
      ignore (eat_kw p "OUTER");
      expect_kw p "JOIN";
      let t = parse_table_ref p in
      if eat_kw p "ON" then conds := parse_cond p :: !conds;
      joins (t :: acc)
    end
    else if eat_punct p "," then joins (parse_table_ref p :: acc)
    else List.rev acc
  in
  let refs = joins [ parse_table_ref p ] in
  (refs, List.rev !conds)

(* --- SELECT core ----------------------------------------------------------- *)

(* Panic-mode sync for a broken select-list item: skip to the next
   top-level ',' (continue with the following item) or to a clause
   keyword / statement boundary (stop the list). Tracks parentheses so
   commas inside calls or IN-lists do not end the item early. *)
and sync_select_item p =
  let rec go parens =
    match Lexer.peek p.l with
    | Lexer.Eof -> `Stop
    | Lexer.Punct ";" -> `Stop
    | Lexer.Punct "," when parens = 0 ->
        ignore (Lexer.next p.l);
        `Continue
    | Lexer.Punct "(" ->
        ignore (Lexer.next p.l);
        go (parens + 1)
    | Lexer.Punct ")" ->
        ignore (Lexer.next p.l);
        go (max 0 (parens - 1))
    | Lexer.Ident s
      when parens = 0
           && List.mem (upper s)
                [ "FROM"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "OFFSET" ] ->
        `Stop
    | _ ->
        ignore (Lexer.next p.l);
        go parens
  in
  go 0

and parse_select p =
  let start = (Lexer.peek_span p.l).Kit.Diag.start in
  expect_kw p "SELECT";
  let distinct = eat_kw p "DISTINCT" in
  ignore (eat_kw p "ALL");
  let select_list =
    if is_punct p "*" then begin
      ignore (Lexer.next p.l);
      []
    end
    else begin
      let item () =
        let e = parse_expr p in
        let alias =
          if eat_kw p "AS" then Some (ident p)
          else
            match Lexer.peek p.l with
            | Lexer.Ident s when not (List.mem (upper s) reserved) ->
                ignore (Lexer.next p.l);
                Some s
            | _ -> None
        in
        (e, alias)
      in
      let rec items acc =
        match item () with
        | it -> if eat_punct p "," then items (it :: acc) else List.rev (it :: acc)
        | exception Parse_error d ->
            (* Recover within the list: report, resync, keep going so
               one pass surfaces every broken item. *)
            record p d;
            (match sync_select_item p with
            | `Continue -> items acc
            | `Stop -> List.rev acc)
      in
      items []
    end
  in
  expect_kw p "FROM";
  let from, join_conds = parse_from p in
  let where = if eat_kw p "WHERE" then Some (parse_cond p) else None in
  let where = Ast.conjoin (join_conds @ Option.to_list where) in
  let group_by =
    if is_kw p "GROUP" then begin
      expect_kw p "GROUP";
      expect_kw p "BY";
      let rec exprs acc =
        let e = parse_expr p in
        if eat_punct p "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if eat_kw p "HAVING" then Some (parse_cond p) else None in
  let order_by =
    if is_kw p "ORDER" then begin
      expect_kw p "ORDER";
      expect_kw p "BY";
      let rec exprs acc =
        let e = parse_expr p in
        ignore (eat_kw p "ASC");
        ignore (eat_kw p "DESC");
        if eat_punct p "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  if eat_kw p "LIMIT" then ignore (Lexer.next p.l);
  if eat_kw p "OFFSET" then ignore (Lexer.next p.l);
  let span = Kit.Diag.span start (Lexer.prev_end p.l) in
  Select { distinct; select_list; from; where; group_by; having; order_by; span }

and parse_query_inner p =
  deeper p (fun () ->
      let lhs = parse_select p in
      let rec setops acc =
        if is_kw p "UNION" then begin
          expect_kw p "UNION";
          let all = eat_kw p "ALL" in
          let rhs = parse_select p in
          setops (Setop ((if all then Union_all else Union), acc, rhs))
        end
        else if is_kw p "INTERSECT" then begin
          expect_kw p "INTERSECT";
          ignore (eat_kw p "ALL");
          setops (Setop (Intersect, acc, parse_select p))
        end
        else if is_kw p "EXCEPT" then begin
          expect_kw p "EXCEPT";
          ignore (eat_kw p "ALL");
          setops (Setop (Except, acc, parse_select p))
        end
        else acc
      in
      setops lhs)

let parse_statement p =
  let views =
    if is_kw p "WITH" then begin
      expect_kw p "WITH";
      let rec view_list acc =
        let name = ident p in
        expect_kw p "AS";
        expect_punct p "(";
        let q = parse_query_inner p in
        expect_punct p ")";
        if eat_punct p "," then view_list ((name, q) :: acc)
        else List.rev ((name, q) :: acc)
      in
      view_list []
    end
    else []
  in
  let body = parse_query_inner p in
  ignore (eat_punct p ";");
  { views; body }

(* Statement-level panic sync: skip past the next ';' (or to Eof) so
   the driver can attempt the following statement. *)
let sync_statement p =
  let rec go () =
    match Lexer.peek p.l with
    | Lexer.Eof -> ()
    | Lexer.Punct ";" -> ignore (Lexer.next p.l)
    | _ ->
        ignore (Lexer.next p.l);
        go ()
  in
  go ()

let parse_report src =
  match Lexer.create src with
  | Error d -> Error [ d ]
  | Ok (l, lex_diags) -> (
      let p =
        {
          l;
          max_depth = Kit.Limits.max_depth ();
          depth = 0;
          diags = [];
          ndiags = 0;
        }
      in
      List.iter (record p) lex_diags;
      let stmts = ref [] in
      let rec loop () =
        if p.ndiags < max_errors then
          match Lexer.peek p.l with
          | Lexer.Eof -> ()
          | _ ->
              let start = (Lexer.peek_span p.l).Kit.Diag.start in
              (match parse_statement p with
              | s -> stmts := (start, s) :: !stmts
              | exception Parse_error d ->
                  record p d;
                  sync_statement p);
              loop ()
      in
      loop ();
      match (List.rev !stmts, List.rev p.diags) with
      | _, (_ :: _ as ds) -> Error ds
      | [ (_, s) ], [] -> Ok s
      | [], [] ->
          Error
            [
              Kit.Diag.error (Kit.Diag.point 0)
                "empty input: expected a SELECT statement";
            ]
      | _ :: (start2, _) :: _, [] ->
          Error
            [
              Kit.Diag.error
                (Kit.Diag.point start2)
                "trailing input: more than one SQL statement";
            ])

let parse src =
  match parse_report src with
  | Ok s -> Ok s
  | Error ds -> Error (Kit.Diag.to_message ~source:src ds)

let parse_query src =
  match parse src with
  | Ok { views = []; body } -> Ok body
  | Ok _ -> Error "unexpected WITH clause"
  | Error _ as e -> e
