module Bitset = Kit.Bitset

(* Components are grown by BFS over the "region" of vertices outside [u]
   reached so far: any candidate edge intersecting the region joins the
   component and extends the region with its own vertices outside [u].

   All growth happens in place: [remaining], [region] and the per-round
   [touch]/[verts] buffers are allocated once per call and mutated, so a
   BFS round costs word loops and no allocation. Only the per-component
   edge sets are fresh — they escape into the result. The region is kept
   as a subset of V ∖ u throughout, which also means special-edge
   adjacency can be tested against the special edge directly (its
   vertices inside [u] cannot be in the region anyway). *)

(* BFS state, built once per call and threaded through top-level workers:
   local [let rec] closures would capture all of this and be reallocated
   on every call — one record replaces four closures on the profile. *)
type st = {
  h : Hypergraph.t;
  u : Bitset.t;
  remaining : Bitset.t; (* candidate edges not yet assigned *)
  touch : Bitset.t; (* per-round: remaining edges meeting the region *)
  verts : Bitset.t; (* per-round: new region vertices *)
  region : Bitset.t;
  special : Bitset.t array;
  special_left : bool array;
}

let n_special st = Array.length st.special

let rec first_special_left st i =
  if i >= n_special st then -1
  else if st.special_left.(i) then i
  else first_special_left st (i + 1)

(* One BFS round: edges and specials touching the region join [comp]
   and extend the region with their vertices outside [u]. *)
let rec grow st comp specials =
  Hypergraph.edges_touching_into st.h st.region ~into:st.touch;
  Bitset.inter_into ~into:st.touch st.remaining;
  let new_specials = collect_specials st [] 0 in
  if Bitset.is_empty st.touch && new_specials = [] then (comp, specials)
  else begin
    Bitset.diff_into ~into:st.remaining st.touch;
    Bitset.union_into ~into:comp st.touch;
    Hypergraph.vertices_of_edges_into st.h st.touch ~into:st.verts;
    union_specials st new_specials;
    Bitset.diff_into ~into:st.verts st.u;
    Bitset.union_into ~into:st.region st.verts;
    grow st comp (new_specials @ specials)
  end

and union_specials st = function
  | [] -> ()
  | i :: rest ->
      Bitset.union_into ~into:st.verts st.special.(i);
      union_specials st rest

and collect_specials st acc i =
  if i >= n_special st then acc
  else if st.special_left.(i) && Bitset.intersects st.special.(i) st.region then begin
    st.special_left.(i) <- false;
    collect_specials st (i :: acc) (i + 1)
  end
  else collect_specials st acc (i + 1)

let rec loop st result =
  let e = Bitset.first st.remaining in
  if e >= 0 then begin
    (* Seed: the smallest remaining edge. *)
    let comp0 = Bitset.empty (Bitset.universe st.remaining) in
    Bitset.remove_in_place e st.remaining;
    Bitset.add_in_place e comp0;
    Bitset.copy_into st.h.Hypergraph.edges.(e) ~into:st.region;
    Bitset.diff_into ~into:st.region st.u;
    let comp, specials = grow st comp0 [] in
    loop st ((comp, List.sort compare specials) :: result)
  end
  else begin
    let i = first_special_left st 0 in
    if i < 0 then List.rev result
    else begin
      (* Seed: the first unplaced special edge. *)
      st.special_left.(i) <- false;
      Bitset.copy_into st.special.(i) ~into:st.region;
      Bitset.diff_into ~into:st.region st.u;
      let comp, specials =
        grow st (Bitset.empty (Bitset.universe st.remaining)) [ i ]
      in
      loop st ((comp, List.sort compare specials) :: result)
    end
  end

let components_extended h ~within ~special u =
  let ne = h.Hypergraph.n_edges in
  let nv = h.Hypergraph.n_vertices in
  (* Candidates: ordinary edges not fully inside u. Scanning edge ids and
     testing membership keeps this closure- and allocation-free. *)
  let remaining = Bitset.empty ne in
  Bitset.copy_into within ~into:remaining;
  for e = 0 to ne - 1 do
    if Bitset.mem e remaining && Bitset.subset h.Hypergraph.edges.(e) u then
      Bitset.remove_in_place e remaining
  done;
  let special_left = Array.map (fun s -> not (Bitset.subset s u)) special in
  let st =
    {
      h;
      u;
      remaining;
      touch = Bitset.empty ne;
      verts = Bitset.empty nv;
      region = Bitset.empty nv;
      special;
      special_left;
    }
  in
  loop st []

let components h ~within u =
  List.map fst (components_extended h ~within ~special:[||] u)

(* [separates] only needs the first component: if it misses any edge of
   [within] — because a second component exists or because some edge is
   absorbed by [u] — the answer is already yes, so we never materialise
   the remaining components. *)
let separates h ~within u =
  let ne = h.Hypergraph.n_edges in
  let nv = h.Hypergraph.n_vertices in
  let total = Bitset.cardinal within in
  if total = 0 then false
  else begin
    let remaining = Bitset.empty ne in
    Bitset.copy_into within ~into:remaining;
    for e = 0 to ne - 1 do
      if Bitset.mem e remaining && Bitset.subset h.Hypergraph.edges.(e) u then
        Bitset.remove_in_place e remaining
    done;
    match Bitset.choose remaining with
    | None -> true (* every edge absorbed by u *)
    | Some e ->
        let touch = Bitset.empty ne in
        let verts = Bitset.empty nv in
        let region = Bitset.empty nv in
        Bitset.remove_in_place e remaining;
        Bitset.copy_into h.Hypergraph.edges.(e) ~into:region;
        Bitset.diff_into ~into:region u;
        let count = ref 1 in
        let rec grow () =
          Hypergraph.edges_touching_into h region ~into:touch;
          Bitset.inter_into ~into:touch remaining;
          if not (Bitset.is_empty touch) then begin
            count := !count + Bitset.cardinal touch;
            Bitset.diff_into ~into:remaining touch;
            Hypergraph.vertices_of_edges_into h touch ~into:verts;
            Bitset.diff_into ~into:verts u;
            Bitset.union_into ~into:region verts;
            grow ()
          end
        in
        grow ();
        !count < total
  end

let is_balanced h ~within ~special u =
  let total = Bitset.cardinal within + Array.length special in
  let bound = total / 2 in
  let comps = components_extended h ~within ~special u in
  List.for_all
    (fun (es, sps) -> Bitset.cardinal es + List.length sps <= bound)
    comps

let connected h =
  match components h ~within:(Hypergraph.all_edges h) (Bitset.empty h.Hypergraph.n_vertices) with
  | [] | [ _ ] -> true
  | _ -> false
