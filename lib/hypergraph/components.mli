(** [U]-components and separators (paper §3.3).

    Two edges are [U]-adjacent when they share a vertex outside the vertex
    set [U]; [U]-components are the classes of the transitive closure of
    this relation, restricted to a given candidate edge set. Edges entirely
    inside [U] belong to no component. *)

val components :
  Hypergraph.t -> within:Kit.Bitset.t -> Kit.Bitset.t -> Kit.Bitset.t list
(** [components h ~within u] are the [u]-components of the edges in
    [within] (an edge set). Each returned component is a non-empty edge
    set; components are pairwise disjoint and their union is exactly the
    set of edges of [within] not fully contained in [u]. *)

val separates : Hypergraph.t -> within:Kit.Bitset.t -> Kit.Bitset.t -> bool
(** True iff [u] splits [within] into at least two components, or absorbs
    at least one edge. Short-circuits: only the first component is ever
    grown — as soon as it is known to miss part of [within] the answer is
    yes without materialising the rest. *)

val is_balanced :
  Hypergraph.t ->
  within:Kit.Bitset.t ->
  special:Kit.Bitset.t array ->
  Kit.Bitset.t ->
  bool
(** Balanced-separator test used by BalSep (Definition 7): every
    [u]-component of the extended subhypergraph with [within] ordinary
    edges and [special] special edges must contain at most half of the
    total number of (ordinary plus special) edges. *)

val components_extended :
  Hypergraph.t ->
  within:Kit.Bitset.t ->
  special:Kit.Bitset.t array ->
  Kit.Bitset.t ->
  (Kit.Bitset.t * int list) list
(** Components of an extended subhypergraph (Definition 6): [within] is a
    set of ordinary edges, [special] an array of special edges (vertex
    sets). Returns one [(ordinary_edges, special_indices)] pair per
    component. *)

val connected : Hypergraph.t -> bool
(** Is the hypergraph [∅]-connected (one component, no isolated parts)? *)
