module V = Kit.Varint

let write buf (h : Hypergraph.t) =
  V.write buf h.Hypergraph.n_vertices;
  V.write buf h.Hypergraph.n_edges;
  Array.iter (V.write_string buf) h.Hypergraph.vertex_names;
  Array.iter (V.write_string buf) h.Hypergraph.edge_names;
  Array.iter
    (fun e ->
      let vs = Kit.Bitset.to_list e in
      V.write buf (List.length vs);
      (* to_list is strictly ascending, so every delta is >= 1; starting
         from -1 makes the first delta the id + 1. *)
      ignore
        (List.fold_left
           (fun prev v ->
             V.write buf (v - prev);
             v)
           (-1) vs))
    h.Hypergraph.edges

let to_string h =
  let buf = Buffer.create 256 in
  write buf h;
  Buffer.contents buf

let read_report s pos =
  try
    let nv = V.read s pos in
    let ne = V.read s pos in
    (* Every name costs at least one byte, so counts beyond the input
       size are corruption — refuse before Array.init allocates for
       them. *)
    if nv > String.length s - !pos || ne > String.length s - !pos then
      raise (V.Corrupt "header counts exceed input size");
    let vertex_names = Array.init nv (fun _ -> V.read_string s pos) in
    let edge_names = Array.init ne (fun _ -> V.read_string s pos) in
    let members =
      Array.init ne (fun _ ->
          let n = V.read s pos in
          if n <= 0 || n > nv then raise (V.Corrupt "bad edge size");
          let prev = ref (-1) in
          List.init n (fun _ ->
              let d = V.read s pos in
              if d <= 0 then raise (V.Corrupt "non-ascending edge members");
              prev := !prev + d;
              if !prev >= nv then raise (V.Corrupt "vertex id out of range");
              !prev))
    in
    match Hypergraph.create ~vertex_names ~edge_names members with
    | h -> Ok h
    | exception Invalid_argument m ->
        Error (Kit.Diag.error (Kit.Diag.point 0) m)
  with V.Corrupt m ->
    (* [pos] points at (or just past) the byte that betrayed the
       corruption — a usable anchor for hexdump-style triage. *)
    Error (Kit.Diag.error (Kit.Diag.point !pos) ("binary hypergraph: " ^ m))

let read s pos =
  match read_report s pos with
  | Ok _ as ok -> ok
  | Error d -> Error d.Kit.Diag.message

let of_string_report s =
  match Kit.Limits.check_input s with
  | Some d -> Error d
  | None -> (
      let pos = ref 0 in
      match read_report s pos with
      | Error _ as e -> e
      | Ok h ->
          if !pos <> String.length s then
            Error
              (Kit.Diag.error
                 (Kit.Diag.span !pos (String.length s))
                 "binary hypergraph: trailing bytes")
          else Ok h)

let of_string s =
  match of_string_report s with
  | Ok _ as ok -> ok
  | Error d -> Error d.Kit.Diag.message
