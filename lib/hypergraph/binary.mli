(** Compact binary hypergraph codec — the payload format of the packed
    repository ([Benchlib.Repository.pack]).

    One hypergraph encodes as, all integers {!Kit.Varint}:

    {v
    n_vertices  n_edges
    vertex_names   (length-prefixed bytes, id order)
    edge_names     (length-prefixed bytes, id order)
    per edge: member count, then delta-encoded ascending vertex ids
              (first id + 1, then successive gaps, every delta >= 1)
    v}

    The encoding preserves ids and names exactly — unlike the text
    format there is no interning pass, so [read (write h)] reproduces
    [h] bit-for-bit (same ids, same names, arbitrary bytes allowed in
    names). Encodings are smaller than the text form (names are stored
    once instead of once per occurrence) and decode without any
    lexing. *)

val write : Buffer.t -> Hypergraph.t -> unit
(** Append the encoding of one hypergraph. *)

val to_string : Hypergraph.t -> string

val read : string -> int ref -> (Hypergraph.t, string) result
(** Decode one hypergraph at [!pos], advancing [pos] past it. Any
    corruption — truncation, non-ascending edge members, out-of-range
    ids, absurd counts — is a clean [Error], never an exception or a
    wrong graph; [pos] is then unspecified. *)

val of_string : string -> (Hypergraph.t, string) result
(** {!read} from offset 0, requiring the whole string to be consumed. *)

val read_report : string -> int ref -> (Hypergraph.t, Kit.Diag.t) result
(** Like {!read}; the diagnostic's span anchors at the byte offset
    where corruption was detected. *)

val of_string_report : string -> (Hypergraph.t, Kit.Diag.t) result
(** Like {!of_string} with the structured diagnostic; inputs over
    [HB_MAX_INPUT] bytes are refused up front. *)
