module Bitset = Kit.Bitset

type t = {
  n_vertices : int;
  n_edges : int;
  edges : Bitset.t array;
  incidence : Bitset.t array;
  vertex_names : string array;
  edge_names : string array;
}

let create ~vertex_names ~edge_names members =
  let n_vertices = Array.length vertex_names in
  let n_edges = Array.length edge_names in
  if Array.length members <> n_edges then
    invalid_arg "Hypergraph.create: edge_names and members differ in length";
  let edges =
    Array.map
      (fun vs ->
        if vs = [] then invalid_arg "Hypergraph.create: empty edge";
        List.iter
          (fun v ->
            if v < 0 || v >= n_vertices then
              invalid_arg "Hypergraph.create: vertex id out of range")
          vs;
        Bitset.of_list n_vertices vs)
      members
  in
  (* Distinct sets per vertex: they are filled in place below. *)
  let incidence = Array.init n_vertices (fun _ -> Bitset.empty n_edges) in
  Array.iteri
    (fun e vs -> Bitset.iter (fun v -> Bitset.add_in_place e incidence.(v)) vs)
    edges;
  { n_vertices; n_edges; edges; incidence; vertex_names; edge_names }

let of_named_edges pairs =
  let names = Kit.Names.create () in
  let members =
    List.map (fun (_, vs) -> List.map (Kit.Names.intern names) vs) pairs
  in
  create
    ~vertex_names:(Kit.Names.to_array names)
    ~edge_names:(Array.of_list (List.map fst pairs))
    (Array.of_list members)

let of_int_edges edges =
  let n_vertices =
    List.fold_left (fun m vs -> List.fold_left (fun m v -> Stdlib.max m (v + 1)) m vs) 0 edges
  in
  create
    ~vertex_names:(Array.init n_vertices (Printf.sprintf "v%d"))
    ~edge_names:(Array.init (List.length edges) (Printf.sprintf "e%d"))
    (Array.of_list edges)

let edge h e = h.edges.(e)
let vertices h = Bitset.full h.n_vertices
let all_edges h = Bitset.full h.n_edges
let vertex_name h v = h.vertex_names.(v)
let edge_name h e = h.edge_names.(e)

(* The two folds below are the innermost operations of every search core
   (component BFS, cover evaluation); they accumulate into one buffer —
   one allocation per call for the [_of_]/[_touching] forms, none for the
   [_into] forms. *)

let vertices_of_edges_into h es ~into =
  if Bitset.universe into <> h.n_vertices then
    invalid_arg "Hypergraph.vertices_of_edges_into: universe mismatch";
  Bitset.clear into;
  Bitset.union_indexed_into ~into h.edges es

let vertices_of_edges h es =
  let acc = Bitset.empty h.n_vertices in
  Bitset.union_indexed_into ~into:acc h.edges es;
  acc

let edges_touching_into h vs ~into =
  if Bitset.universe into <> h.n_edges then
    invalid_arg "Hypergraph.edges_touching_into: universe mismatch";
  Bitset.clear into;
  Bitset.union_indexed_into ~into h.incidence vs

let edges_touching h vs =
  let acc = Bitset.empty h.n_edges in
  Bitset.union_indexed_into ~into:acc h.incidence vs;
  acc

let arity h =
  Array.fold_left (fun m e -> Stdlib.max m (Bitset.cardinal e)) 0 h.edges

let dedup_edges h =
  let seen = Hashtbl.create 16 in
  let keep = ref [] in
  Array.iteri
    (fun i e ->
      let key = Bitset.to_list e in
      if key <> [] && not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        keep := i :: !keep
      end)
    h.edges;
  let keep = Array.of_list (List.rev !keep) in
  create ~vertex_names:h.vertex_names
    ~edge_names:(Array.map (fun i -> h.edge_names.(i)) keep)
    (Array.map (fun i -> Bitset.to_list h.edges.(i)) keep)

let compact h =
  let live = Array.map (fun inc -> not (Bitset.is_empty inc)) h.incidence in
  if Array.for_all Fun.id live then h
  else begin
    let renumber = Array.make h.n_vertices (-1) in
    let names = ref [] in
    let next = ref 0 in
    Array.iteri
      (fun v alive ->
        if alive then begin
          renumber.(v) <- !next;
          names := h.vertex_names.(v) :: !names;
          incr next
        end)
      live;
    create
      ~vertex_names:(Array.of_list (List.rev !names))
      ~edge_names:h.edge_names
      (Array.map
         (fun e -> List.map (fun v -> renumber.(v)) (Bitset.to_list e))
         h.edges)
  end

let covers h lambda x =
  Bitset.subset x (vertices_of_edges h lambda)

(* Compare via vertex names so the relation is stable under renumbering
   (e.g. format round-trips that intern vertices in a different order). *)
let equal_structure a b =
  a.n_vertices = b.n_vertices && a.n_edges = b.n_edges
  && begin
       let canon h =
         Array.to_list h.edges
         |> List.map (fun e ->
                List.sort compare
                  (List.map (fun v -> h.vertex_names.(v)) (Bitset.to_list e)))
         |> List.sort compare
       in
       canon a = canon b
     end

(* The canonical fingerprint: a 64-bit digest of the sorted edge
   multiset over vertex *names* — the same canon [equal_structure]
   compares — so it is invariant under any vertex or edge
   renumbering/reordering, yet distinguishes structurally distinct
   graphs (including duplicate-edge multiplicity, which [dedup_edges]
   erases). Every variable-length field is length-framed, making the
   hashed byte stream injective in the canon. Persisted on disk (result
   cache keys, packed-repository entries), so the digest must never
   change across versions — it is pinned by tests. *)
let fingerprint h =
  let canon =
    Array.to_list h.edges
    |> List.map (fun e ->
           List.sort compare
             (List.map (fun v -> h.vertex_names.(v)) (Bitset.to_list e)))
    |> List.sort compare
  in
  let open Kit.Hash64 in
  List.fold_left
    (fun acc edge ->
      let acc = add_int acc (List.length edge) in
      List.fold_left
        (fun acc name -> add_string (add_int acc (String.length name)) name)
        acc edge)
    (add_int init (List.length canon))
    canon
  |> to_hex

(* --- text format --------------------------------------------------------- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.' || c = '[' || c = ']' || c = '\''

(* Names outside the identifier alphabet (space, '(', ',', '%', ...)
   would be emitted verbatim and then fail or mis-split on re-parse; they
   are quoted instead, with '\' escaping '"' and '\', so to_string/parse
   round-trips arbitrary names exactly. *)
let quote_name name =
  if name <> "" && String.for_all is_ident_char name then name
  else begin
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      name;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let pp fmt h =
  let n = h.n_edges in
  Array.iteri
    (fun i e ->
      let vs =
        Bitset.to_list e |> List.map (fun v -> quote_name h.vertex_names.(v))
      in
      Format.fprintf fmt "%s(%s)%s@."
        (quote_name h.edge_names.(i))
        (String.concat "," vs)
        (if i = n - 1 then "." else ","))
    h.edges

let to_string h = Format.asprintf "%a" pp h

(* --- parsing ------------------------------------------------------------ *)

exception Hg_error of Kit.Diag.t

let parse_report text =
  let pos = ref 0 in
  let len = String.length text in
  let diags = ref [] in
  let ndiags = ref 0 in
  let max_errors = 20 in
  let record d =
    if !ndiags < max_errors then begin
      diags := d :: !diags;
      incr ndiags
    end
  in
  let error ?start msg =
    let span =
      match start with
      | Some s -> Kit.Diag.span s !pos
      | None -> Kit.Diag.point !pos
    in
    raise (Hg_error (Kit.Diag.error span msg))
  in
  let skip_ws () =
    let continue = ref true in
    while !continue do
      continue := false;
      while !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done;
      if !pos < len && text.[!pos] = '%' then begin
        while !pos < len && text.[!pos] <> '\n' do incr pos done;
        continue := true
      end
    done
  in
  let ident () =
    let start = !pos in
    while !pos < len && is_ident_char text.[!pos] do incr pos done;
    if !pos = start then None else Some (String.sub text start (!pos - start))
  in
  (* A name is either a bare identifier or a '"'-quoted string with '\'
     escapes (the form [pp] emits for names outside the identifier
     alphabet). Raises on an unterminated quote; a plain missing name
     is [None] so callers keep their own diagnostics. *)
  let name_token () =
    if !pos < len && text.[!pos] = '"' then begin
      let start = !pos in
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then error ~start "unterminated quoted name"
        else
          match text.[!pos] with
          | '"' ->
              incr pos;
              Some (Buffer.contents buf)
          | '\\' when !pos + 1 < len ->
              Buffer.add_char buf text.[!pos + 1];
              pos := !pos + 2;
              go ()
          | '\\' -> error ~start "unterminated quoted name"
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ()
    end
    else ident ()
  in
  let parse_edge () =
    match name_token () with
    | None -> error "expected edge name"
    | Some name ->
        skip_ws ();
        if !pos >= len || text.[!pos] <> '(' then error "expected '('"
        else begin
          incr pos;
          let rec verts vacc =
            skip_ws ();
            match name_token () with
            | None -> error "expected vertex name"
            | Some v -> (
                skip_ws ();
                if !pos < len && text.[!pos] = ',' then begin
                  incr pos;
                  verts (v :: vacc)
                end
                else if !pos < len && text.[!pos] = ')' then begin
                  incr pos;
                  List.rev (v :: vacc)
                end
                else error "expected ',' or ')'")
          in
          (name, verts [])
        end
  in
  (* Panic-mode sync after a broken edge: swallow up to the edge's
     closing ')' (plus a following ','), or a bare ',' or the final
     '.', so the next edge can still be tried and one pass reports
     every broken atom. Always makes progress. *)
  let sync_edge () =
    while
      !pos < len
      && (match text.[!pos] with ',' | ')' | '.' -> false | _ -> true)
    do
      incr pos
    done;
    if !pos < len then begin
      match text.[!pos] with
      | ')' ->
          incr pos;
          skip_ws ();
          if !pos < len && text.[!pos] = ',' then incr pos
      | ',' | '.' -> incr pos
      | _ -> ()
    end
  in
  let rec atoms acc =
    skip_ws ();
    if !pos >= len || !ndiags >= max_errors then List.rev acc
    else
      match parse_edge () with
      | exception Hg_error d ->
          record d;
          sync_edge ();
          atoms acc
      | (name, vs) ->
          skip_ws ();
          if !pos < len && text.[!pos] = ',' then begin
            incr pos;
            atoms ((name, vs) :: acc)
          end
          else if !pos < len && text.[!pos] = '.' then begin
            incr pos;
            skip_ws ();
            if !pos < len then begin
              record
                (Kit.Diag.error (Kit.Diag.span !pos len)
                   "trailing input after '.'");
              pos := len
            end;
            List.rev ((name, vs) :: acc)
          end
          else if !pos >= len then List.rev ((name, vs) :: acc)
          else begin
            record
              (Kit.Diag.error (Kit.Diag.point !pos)
                 "expected ',' or '.' after edge");
            atoms ((name, vs) :: acc)
          end
  in
  match Kit.Limits.check_input text with
  | Some d -> Error [ d ]
  | None -> (
      let pairs = atoms [] in
      match List.rev !diags with
      | _ :: _ as ds -> Error ds
      | [] -> (
          if pairs = [] then
            Error [ Kit.Diag.error (Kit.Diag.point 0) "empty hypergraph" ]
          else
            try Ok (of_named_edges pairs)
            with Invalid_argument m ->
              Error [ Kit.Diag.error (Kit.Diag.point 0) m ]))

let parse text =
  match parse_report text with
  | Ok _ as ok -> ok
  | Error ds -> Error (Kit.Diag.to_message ~source:text ds)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (* The file can shrink between the length query and the read
             (truncation mid-read): surface that as an error, not an
             escaped End_of_file. *)
          match really_input_string ic (in_channel_length ic) with
          | s ->
              (* Fault site "hypergraph.parse": the harness can truncate
                 the stream mid-read, as a shrinking or torn file would. *)
              let s =
                match Kit.Fault.cut "hypergraph.parse" with
                | Some keep when keep < String.length s -> String.sub s 0 keep
                | Some _ | None -> s
              in
              (match parse_report s with
              | Ok _ as ok -> ok
              | Error ds ->
                  Error (Kit.Diag.to_message ~file:path ~source:s ds))
          | exception End_of_file -> Error (path ^ ": truncated file")
          | exception Sys_error m -> Error m)
