(** Hypergraphs: the structure underlying CQs and CSPs (paper §3.1).

    A hypergraph is a set of named vertices and named non-empty hyperedges.
    Vertices and edges are represented by dense integer ids; vertex sets are
    {!Kit.Bitset.t} over universe [n_vertices], edge sets over universe
    [n_edges]. There are no isolated vertices by construction when using
    {!of_named_edges}. *)

type t = private {
  n_vertices : int;
  n_edges : int;
  edges : Kit.Bitset.t array;  (** edge id -> set of vertices *)
  incidence : Kit.Bitset.t array;  (** vertex id -> set of edge ids *)
  vertex_names : string array;
  edge_names : string array;
}

val create :
  vertex_names:string array -> edge_names:string array -> int list array -> t
(** [create ~vertex_names ~edge_names members] builds a hypergraph where
    edge [i] contains the vertex ids [members.(i)].
    @raise Invalid_argument on empty edges, duplicate names or bad ids. *)

val of_named_edges : (string * string list) list -> t
(** Build from [(edge_name, vertex_names)] pairs, interning vertex names in
    order of first occurrence. Duplicate edge contents are kept (use
    {!dedup_edges} to drop them). *)

val of_int_edges : int list list -> t
(** Synthetic names [v0..], [e0..]; vertex universe is the max id + 1. *)

val edge : t -> int -> Kit.Bitset.t
val vertices : t -> Kit.Bitset.t
(** All vertices (the full universe). *)

val all_edges : t -> Kit.Bitset.t
(** All edge ids as a set. *)

val vertex_name : t -> int -> string
val edge_name : t -> int -> string

val vertices_of_edges : t -> Kit.Bitset.t -> Kit.Bitset.t
(** Union of the member sets of the given edges: V(S). Accumulates into
    one fresh buffer — a single allocation. *)

val vertices_of_edges_into : t -> Kit.Bitset.t -> into:Kit.Bitset.t -> unit
(** Allocation-free {!vertices_of_edges}: clears [into] (universe
    [n_vertices]) and accumulates V(S) there. *)

val edges_touching : t -> Kit.Bitset.t -> Kit.Bitset.t
(** All edges intersecting the given vertex set. Accumulates into one
    fresh buffer — a single allocation. *)

val edges_touching_into : t -> Kit.Bitset.t -> into:Kit.Bitset.t -> unit
(** Allocation-free {!edges_touching}: clears [into] (universe
    [n_edges]) and accumulates there. *)

val arity : t -> int
(** Maximum edge cardinality (0 for the empty hypergraph). *)

val dedup_edges : t -> t
(** Drop edges whose vertex set equals an earlier edge's, and edges that are
    empty. Keeps the first name. *)

val compact : t -> t
(** Drop isolated vertices (paper hypergraphs have none by definition),
    renumbering the rest while keeping their names. *)

val covers : t -> Kit.Bitset.t -> Kit.Bitset.t -> bool
(** [covers h lambda x]: is the vertex set [x] contained in B(lambda), the
    union of the edges [lambda]? *)

val equal_structure : t -> t -> bool
(** Same vertex count, edge count, and same multiset of edge vertex sets
    compared via vertex {e names} (so the relation is stable under any
    renumbering; edge names are ignored). *)

val fingerprint : t -> string
(** Canonical content fingerprint: 16 lowercase hex characters of a
    64-bit digest ({!Kit.Hash64}) over the sorted edge multiset on
    vertex names — the canon of {!equal_structure}. Invariant under any
    vertex or edge reordering/renumbering and under every serialisation
    round-trip; graphs distinct up to {!dedup_edges} get distinct
    fingerprints (64-bit birthday bound). This is the key of the
    content-addressed result cache and the packed repository, so its
    value is stable across versions (pinned by tests). *)

val pp : Format.formatter -> t -> unit
(** HyperBench text format: one [name(v1,v2,...)] per line, comma-separated,
    final full stop. Names outside the identifier alphabet (or empty)
    are emitted as ["..."] with [\\]-escaped ['"'] and ['\\'], so the
    output re-parses to the exact same names. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse the HyperBench text format produced by {!pp}. Whitespace and
    line breaks are flexible; [%] starts a comment line; names may be
    bare identifiers or ["..."]-quoted strings. The error string is the
    first diagnostic rendered as ["line:col: error: message"]. *)

val parse_report : string -> (t, Kit.Diag.t list) result
(** Like {!parse} but with structured span diagnostics; panic-mode
    recovery resyncs after a broken edge so one pass reports several
    independent mistakes (capped at 20). Inputs over [HB_MAX_INPUT]
    bytes are refused up front. *)

val parse_file : string -> (t, string) result
(** All read failures — missing file, I/O error, file truncated while
    being read — are reported as [Error]; the channel is always closed. *)
