(** Exact-match (method, path) routing with proper 404/405 split. *)

type t

val create : (string * string * (Http.request -> Http.response)) list -> t
(** [create [ (meth, path, handler); ... ]] — paths are matched against
    the percent-decoded {!Http.request.path}, methods exactly. *)

val dispatch : t -> Http.request -> Http.response
(** Runs the matching handler. No route with this path → 404; the path
    exists under other methods → 405 with an [Allow] header. Handler
    exceptions propagate (the server maps them to 500). *)
