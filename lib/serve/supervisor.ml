(* Self-healing for the serving path: a registry of per-subsystem
   circuit breakers plus the restart policy (capped exponential backoff
   with deterministic jitter) for crashed solve workers. *)

type t = {
  mu : Mutex.t;
  mutable breakers : (string * Breaker.t) list;
  now : unit -> float;
  threshold : int;
  cooldown : float;
  max_cooldown : float;
  retries : int;
  backoff_base : float;
  backoff_max : float;
  seed : int;
  m_restarts : Kit.Metrics.counter;
}

let create ?(now = Unix.gettimeofday) ?(threshold = 5) ?(cooldown = 1.0)
    ?(max_cooldown = 30.0) ?(retries = 2) ?(backoff_base = 0.05)
    ?(backoff_max = 0.5) ?(seed = 0) () =
  {
    mu = Mutex.create ();
    breakers = [];
    now;
    threshold;
    cooldown;
    max_cooldown;
    retries = max 0 retries;
    backoff_base = Float.max backoff_base 0.001;
    backoff_max = Float.max backoff_max backoff_base;
    seed;
    m_restarts = Kit.Metrics.counter "serve.worker_restarts";
  }

let breaker t name =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match List.assoc_opt name t.breakers with
      | Some b -> b
      | None ->
          let b =
            Breaker.create ~now:t.now ~threshold:t.threshold
              ~cooldown:t.cooldown ~max_cooldown:t.max_cooldown name
          in
          t.breakers <- t.breakers @ [ (name, b) ];
          b)

let subsystems t =
  Mutex.lock t.mu;
  let bs = t.breakers in
  Mutex.unlock t.mu;
  List.map (fun (n, b) -> (n, Breaker.state b)) bs

let retries t = t.retries

(* SplitMix-style avalanche — the jitter must be deterministic per
   (seed, attempt) so chaos runs are reproducible. *)
let mix seed n =
  let h = ref (0x1E3779B97F4A7C15 lxor (seed * 0x2545F4914F6CDD1D)) in
  h := !h lxor (n * 0x7F51AFD7ED558CCD);
  h := (!h lxor (!h lsr 33)) * 0x44CEB9FE1A85EC53;
  h := !h lxor (!h lsr 29);
  !h land max_int

let backoff t ~attempt =
  let base = Float.min t.backoff_max (t.backoff_base *. (2. ** float_of_int attempt)) in
  (* jitter in [0, 0.5) of the base — de-synchronises retry storms *)
  let jitter =
    float_of_int (mix t.seed attempt land 0xFFFF) /. 65536. *. 0.5
  in
  base *. (1. +. jitter)

let restarted t = Kit.Metrics.incr t.m_restarts
