(** A deliberately small blocking HTTP/1.1 client — just enough for the
    conformance tests and the closed-loop load bench. Not general: no
    TLS, no redirects, no chunked {e responses} (the daemon always sends
    [Content-Length]). *)

type t

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

val connect : ?timeout:float -> host:string -> port:int -> unit -> t
(** [timeout] (default 30 s) bounds each read while awaiting a
    response. *)

val close : t -> unit

val write_raw : t -> string -> unit
(** Send raw bytes — the fuzz corpus path. Raises [Unix.Unix_error] on a
    broken pipe. *)

val shutdown_send : t -> unit
(** Half-close: signal end-of-request so the server never waits on us. *)

val read_response : t -> (response, string) result
(** Read one response (status line, headers, [Content-Length] body).
    [Error] on close/timeout/garbage — fuzz cases accept either a
    response or a clean close. *)

val request :
  t -> ?headers:(string * string) list -> ?body:string -> string -> string ->
  (response, string) result
(** [request t meth target] over the open (keep-alive) connection. *)

val oneshot :
  ?timeout:float -> host:string -> port:int ->
  ?headers:(string * string) list -> ?body:string -> string -> string ->
  (response, string) result
(** Fresh connection, one request, close. *)
