(** A deliberately small blocking HTTP/1.1 client — just enough for the
    conformance tests and the closed-loop load bench. Not general: no
    TLS, no redirects, no chunked {e responses} (the daemon always sends
    [Content-Length]). *)

type t

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

val connect : ?timeout:float -> host:string -> port:int -> unit -> t
(** [timeout] (default 30 s) bounds each read and each write. The
    socket is closed on every failure path — a refused connection in a
    retry loop never leaks an fd. *)

val close : t -> unit

val write_raw : t -> string -> unit
(** Send raw bytes — the fuzz corpus path. Raises [Unix.Unix_error] on a
    broken pipe. *)

val shutdown_send : t -> unit
(** Half-close: signal end-of-request so the server never waits on us. *)

val read_response : t -> (response, string) result
(** Read one response (status line, headers, [Content-Length] body).
    [Error] on close/timeout/garbage — fuzz cases accept either a
    response or a clean close. *)

val request :
  t -> ?headers:(string * string) list -> ?body:string -> string -> string ->
  (response, string) result
(** [request t meth target] over the open (keep-alive) connection. *)

val oneshot :
  ?timeout:float -> host:string -> port:int ->
  ?headers:(string * string) list -> ?body:string -> string -> string ->
  (response, string) result
(** Fresh connection, one request, close. *)

val request_retry :
  ?headers:(string * string) list ->
  ?body:string ->
  ?retries:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?deadline:float ->
  ?attempt_timeout:float ->
  ?seed:int ->
  host:string -> port:int -> string -> string ->
  (response, string) result
(** [request_retry ~host ~port meth target]: {!oneshot} with up to
    [retries] (default 5) replays and exponential backoff from
    [base_delay] (50 ms) to [max_delay] (2 s) with deterministic jitter
    from [seed]. Only idempotent-safe outcomes are replayed: transport
    errors (connect refused, torn/reset/stalled responses) and 429/503
    answers — for those, the server's [Retry-After] header, when larger
    than the computed backoff, is honored instead. The whole call is
    bounded by [deadline] seconds (default 30): each attempt gets the
    remaining budget (further capped by [attempt_timeout] if given) and
    advertises it to the server in an [X-HB-Deadline] header, which
    {!Benchlib.Service} enforces. When waiting out the next delay would
    exhaust the budget, the last honest answer is returned instead of a
    doomed extra attempt. *)
