type t = { fd : Unix.file_descr; mutable buf : string; timeout : float }

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

(* Writes to a server that already closed must fail with EPIPE, not kill
   the test or bench process. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* The socket must be closed on every exit path out of [connect] — a
   refused connection per attempt in a retry loop must not leak an fd
   per attempt. *)
let connect ?(timeout = 30.) ~host ~port () =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
     with Unix.Unix_error _ | Invalid_argument _ -> ())
  with
  | () -> { fd; buf = ""; timeout }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_raw t s =
  (match Kit.Fault.net "client.write" with
  | None -> ()
  | Some Kit.Fault.Torn ->
      (* send a real prefix, then vanish: the peer sees a torn request *)
      let b = Bytes.unsafe_of_string s in
      let half = max 1 (Bytes.length b / 2) in
      (try ignore (Unix.write t.fd b 0 half) with Unix.Unix_error _ -> ());
      (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise (Unix.Unix_error (Unix.EPIPE, "write", "fault: torn"))
  | Some Kit.Fault.Reset ->
      (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise (Unix.Unix_error (Unix.ECONNRESET, "write", "fault: reset"))
  | Some _ ->
      Unix.sleepf (Float.min t.timeout 30.);
      raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", "fault: stall")));
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write t.fd b !off (Bytes.length b - !off)
  done

let shutdown_send t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

exception Err of string

let refill t =
  (match Kit.Fault.net "client.read" with
  | None -> ()
  | Some Kit.Fault.Stall ->
      (* pretend the server went silent; surface as the read timeout *)
      Unix.sleepf (Float.min t.timeout 30.);
      raise (Err "timeout")
  | Some _ -> raise (Err "closed"));
  let chunk = Bytes.create 8192 in
  let n =
    try Unix.read t.fd chunk 0 8192 with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Err "timeout")
    | Unix.Unix_error (e, _, _) -> raise (Err (Unix.error_message e))
  in
  if n = 0 then raise (Err "closed");
  t.buf <- t.buf ^ Bytes.sub_string chunk 0 n

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_line t =
  let rec find () =
    match String.index_opt t.buf '\n' with
    | Some i -> i
    | None ->
        if String.length t.buf > 65536 then raise (Err "header too long");
        refill t;
        find ()
  in
  let i = find () in
  let line = String.sub t.buf 0 i in
  t.buf <- String.sub t.buf (i + 1) (String.length t.buf - i - 1);
  strip_cr line

let read_exact t n =
  while String.length t.buf < n do
    refill t
  done;
  let s = String.sub t.buf 0 n in
  t.buf <- String.sub t.buf n (String.length t.buf - n);
  s

let read_response t =
  try
    let status_line = read_line t in
    let status =
      match String.split_on_char ' ' status_line with
      | proto :: code :: _
        when String.length proto >= 5 && String.sub proto 0 5 = "HTTP/" -> (
          match int_of_string_opt code with
          | Some s -> s
          | None -> raise (Err ("bad status line: " ^ status_line)))
      | _ -> raise (Err ("bad status line: " ^ status_line))
    in
    let rec headers acc =
      match read_line t with
      | "" -> List.rev acc
      | line -> (
          match String.index_opt line ':' with
          | None -> raise (Err ("bad header: " ^ line))
          | Some i ->
              headers
                ((String.lowercase_ascii (String.sub line 0 i),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
                 :: acc))
    in
    let headers = headers [] in
    let body =
      match List.assoc_opt "content-length" headers with
      | Some n -> (
          match int_of_string_opt (String.trim n) with
          | Some n when n >= 0 && n <= 64 * 1024 * 1024 -> read_exact t n
          | _ -> raise (Err "bad content-length"))
      | None -> ""
    in
    Ok { status; headers; body }
  with Err m -> Error m

let request t ?(headers = []) ?body meth target =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  Buffer.add_string b "Host: localhost\r\n";
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" n v))
    headers;
  (match body with
  | Some body ->
      Buffer.add_string b
        (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
      Buffer.add_string b body
  | None -> Buffer.add_string b "\r\n");
  match write_raw t (Buffer.contents b) with
  | () -> read_response t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let oneshot ?timeout ~host ~port ?headers ?body meth target =
  match connect ?timeout ~host ~port () with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () -> request t ?headers ?body meth target)

(* ---- retrying client ------------------------------------------------ *)

(* SplitMix-style avalanche: jitter must be a pure function of
   (seed, attempt) so a seeded chaos run retries identically. *)
let mix seed n =
  let h = ref (0x1E3779B97F4A7C15 lxor (seed * 0x2545F4914F6CDD1D)) in
  h := !h lxor (n * 0x7F51AFD7ED558CCD);
  h := (!h lxor (!h lsr 33)) * 0x44CEB9FE1A85EC53;
  h := !h lxor (!h lsr 29);
  !h land max_int

let retry_after_of headers =
  match List.assoc_opt "retry-after" headers with
  | Some v -> (
      match float_of_string_opt (String.trim v) with
      | Some x when x >= 0. -> Some x
      | _ -> None)
  | None -> None

(* Only these are safe to replay: the server either never ran the
   request (connect failure, 429/503 admission rejections) or invites
   the replay explicitly (Retry-After), and /decompose is deterministic
   and cached so a torn-response replay cannot diverge. *)
let retryable_status s = s = 429 || s = 503

let request_retry ?(headers = []) ?body ?(retries = 5) ?(base_delay = 0.05)
    ?(max_delay = 2.0) ?(deadline = 30.) ?attempt_timeout ?(seed = 0) ~host
    ~port meth target =
  let started = Unix.gettimeofday () in
  let remaining () = deadline -. (Unix.gettimeofday () -. started) in
  let backoff attempt =
    let base =
      Float.min max_delay (base_delay *. (2. ** float_of_int attempt))
    in
    let jitter = float_of_int (mix seed attempt land 0xFFFF) /. 65536. *. 0.5 in
    base *. (1. +. jitter)
  in
  let attempt_once () =
    let rem = remaining () in
    if rem <= 0. then Error "deadline exhausted"
    else
      let timeout =
        match attempt_timeout with
        | Some a -> Float.min a rem
        | None -> rem
      in
      (* the server enforces this bound too — see X-HB-Deadline in
         Benchlib.Service *)
      let headers = ("X-HB-Deadline", Printf.sprintf "%.3f" rem) :: headers in
      oneshot ~timeout ~host ~port ~headers ?body meth target
  in
  let rec go attempt =
    let result = attempt_once () in
    let final =
      match result with
      | Ok r -> not (retryable_status r.status)
      | Error _ -> false
    in
    if final || attempt >= retries then result
    else
      let delay =
        let b = backoff attempt in
        match result with
        | Ok r -> (
            match retry_after_of r.headers with
            | Some ra -> Float.max ra b
            | None -> b)
        | Error _ -> b
      in
      (* If honoring the delay would blow the budget, the last honest
         answer is better than a doomed extra attempt. *)
      if delay >= remaining () then result
      else begin
        Unix.sleepf delay;
        go (attempt + 1)
      end
  in
  go 0
