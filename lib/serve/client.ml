type t = { fd : Unix.file_descr; mutable buf : string }

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

(* Writes to a server that already closed must fail with EPIPE, not kill
   the test or bench process. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let connect ?(timeout = 30.) ~host ~port () =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    { fd; buf = "" }
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_raw t s =
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write t.fd b !off (Bytes.length b - !off)
  done

let shutdown_send t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

exception Err of string

let refill t =
  let chunk = Bytes.create 8192 in
  let n =
    try Unix.read t.fd chunk 0 8192 with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Err "timeout")
    | Unix.Unix_error (e, _, _) -> raise (Err (Unix.error_message e))
  in
  if n = 0 then raise (Err "closed");
  t.buf <- t.buf ^ Bytes.sub_string chunk 0 n

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_line t =
  let rec find () =
    match String.index_opt t.buf '\n' with
    | Some i -> i
    | None ->
        if String.length t.buf > 65536 then raise (Err "header too long");
        refill t;
        find ()
  in
  let i = find () in
  let line = String.sub t.buf 0 i in
  t.buf <- String.sub t.buf (i + 1) (String.length t.buf - i - 1);
  strip_cr line

let read_exact t n =
  while String.length t.buf < n do
    refill t
  done;
  let s = String.sub t.buf 0 n in
  t.buf <- String.sub t.buf n (String.length t.buf - n);
  s

let read_response t =
  try
    let status_line = read_line t in
    let status =
      match String.split_on_char ' ' status_line with
      | proto :: code :: _
        when String.length proto >= 5 && String.sub proto 0 5 = "HTTP/" -> (
          match int_of_string_opt code with
          | Some s -> s
          | None -> raise (Err ("bad status line: " ^ status_line)))
      | _ -> raise (Err ("bad status line: " ^ status_line))
    in
    let rec headers acc =
      match read_line t with
      | "" -> List.rev acc
      | line -> (
          match String.index_opt line ':' with
          | None -> raise (Err ("bad header: " ^ line))
          | Some i ->
              headers
                ((String.lowercase_ascii (String.sub line 0 i),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
                 :: acc))
    in
    let headers = headers [] in
    let body =
      match List.assoc_opt "content-length" headers with
      | Some n -> (
          match int_of_string_opt (String.trim n) with
          | Some n when n >= 0 && n <= 64 * 1024 * 1024 -> read_exact t n
          | _ -> raise (Err "bad content-length"))
      | None -> ""
    in
    Ok { status; headers; body }
  with Err m -> Error m

let request t ?(headers = []) ?body meth target =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  Buffer.add_string b "Host: localhost\r\n";
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" n v))
    headers;
  (match body with
  | Some body ->
      Buffer.add_string b
        (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
      Buffer.add_string b body
  | None -> Buffer.add_string b "\r\n");
  match write_raw t (Buffer.contents b) with
  | () -> read_response t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let oneshot ?timeout ~host ~port ?headers ?body meth target =
  match connect ?timeout ~host ~port () with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () -> request t ?headers ?body meth target)
