(** HTTP/1.1 over raw [Unix] sockets: the wire layer of [hyperbenchd].

    Hand-rolled on purpose — the container has no HTTP dependency and
    the daemon needs exact control over limits and failure modes. The
    parser is strict where laxity would be ambiguous (conflicting
    [Content-Length], obsolete line folding, unknown transfer codings
    are all hard errors) and lenient where it is safe (lone [LF] line
    endings are accepted alongside [CRLF]). Every way a peer can
    misbehave maps to a {!read_error}, never an exception: the server
    turns them into 400/408/413/431 responses and a close, and the
    fuzz suite in [test/test_serve.ml] holds it to that. *)

type version = V10 | V11

type request = {
  meth : string;  (** uppercase token, e.g. ["POST"] *)
  target : string;  (** the raw request target *)
  path : string;  (** percent-decoded path, no query string *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  version : version;
  headers : (string * string) list;
      (** names lowercased, values trimmed, in order *)
  body : string;
  client : string;  (** peer address, the rate-limiter key *)
}

type response = {
  status : int;
  headers : (string * string) list;
      (** extra headers; [Content-Length] and [Connection] are always
          synthesised by {!write_response} and ignored here *)
  body : string;
}

val response :
  ?content_type:string -> ?headers:(string * string) list -> int -> string ->
  response
(** [response status body]; [content_type] defaults to
    ["application/json"]. *)

val reason : int -> string
(** Canonical reason phrase (["OK"], ["Too Many Requests"], ...). *)

val error_body : int -> string -> string
(** [{"error":status,"message":msg}] — the uniform JSON error payload. *)

val header : request -> string -> string option
(** First header with this (lowercase) name. *)

val param : request -> string -> string option
(** First query parameter with this name. *)

val keep_alive_requested : request -> bool
(** HTTP/1.1 defaults to keep-alive unless [Connection: close];
    HTTP/1.0 defaults to close unless [Connection: keep-alive]. *)

(** {1 Connections} *)

type conn
(** One TCP connection with its buffer of read-but-unconsumed bytes. *)

val conn :
  ?client:string ->
  ?mid_read_timeout:float ->
  ?write_timeout:float ->
  ?abort:(unit -> bool) ->
  ?grace:float ->
  Unix.file_descr ->
  conn
(** [mid_read_timeout] (default 10 s) bounds each read once a request
    has started — the slowloris budget; [write_timeout] (default 30 s)
    bounds each response write. [abort] is polled while a read waits
    (the server passes its draining flag): once it turns true, the
    blocked read gets only [grace] more seconds (default: no bound)
    before timing out, so a mid-body-stalled peer cannot pin drain for
    its whole stall budget.

    Chaos sites: reads consult [Kit.Fault.net "serve.read"] (a fired
    [stall] keeps the socket silent until the applicable timeout;
    [reset]/[torn] surface as an abrupt close) and writes consult
    ["serve.write"] ([torn] sends a prefix then hard-closes, so the peer
    observes a genuinely torn response). Disarmed cost: one atomic load
    per read/write. *)

val client : conn -> string

val buffered : conn -> bool
(** Unconsumed input already sits in the buffer — after a response this
    means the peer pipelined another request. *)

type read_error =
  | Eof  (** peer closed before sending any byte of a request *)
  | Idle_timeout  (** no request arrived within [idle] seconds *)
  | Mid_timeout  (** peer stalled in the middle of a request — 408 *)
  | Bad of string  (** malformed request — 400, connection untrusted *)
  | Head_too_large  (** request line + headers exceed [max_head] — 431 *)
  | Body_too_large  (** declared or chunked body exceeds [max_body] — 413 *)

val read_request :
  idle:float -> max_head:int -> max_body:int -> conn ->
  (request, read_error) result
(** Read and parse one request. [idle] bounds the wait for the {e first}
    byte (keep-alive gaps); once a request has started, stalls longer
    than the built-in per-read timeout surface as {!Mid_timeout}.
    Supports [Content-Length] and chunked transfer-encoding bodies
    (trailers are read and dropped). Never raises on peer behaviour. *)

val write_response : conn -> keep_alive:bool -> response -> bool
(** Serialise and send; synthesises [Content-Length] and [Connection]
    (and a [Server] header). [false] when the peer is gone (reset, send
    timeout) — the caller should close. Never raises. *)
