(* Per-subsystem circuit breaker: closed -> open after [threshold]
   consecutive failures, half-open after a cooldown that doubles (capped)
   on every re-open, closed again on a successful probe. *)

type state = Closed | Open | Half_open

type t = {
  name : string;
  threshold : int;
  base_cooldown : float;
  max_cooldown : float;
  now : unit -> float;
  mu : Mutex.t;
  mutable st : state;
  mutable consecutive : int;  (* failures since the last success *)
  mutable opened_at : float;
  mutable cooldown : float;  (* current open interval *)
  mutable probing : bool;  (* a half-open probe is in flight *)
  m_opened : Kit.Metrics.counter;
  m_closed : Kit.Metrics.counter;
  m_rejected : Kit.Metrics.counter;
}

let create ?(now = Unix.gettimeofday) ?(threshold = 5) ?(cooldown = 1.0)
    ?(max_cooldown = 30.0) name =
  {
    name;
    threshold = max 1 threshold;
    base_cooldown = Float.max cooldown 0.001;
    max_cooldown = Float.max max_cooldown cooldown;
    now;
    mu = Mutex.create ();
    st = Closed;
    consecutive = 0;
    opened_at = neg_infinity;
    cooldown = Float.max cooldown 0.001;
    probing = false;
    m_opened = Kit.Metrics.counter ("serve.breaker." ^ name ^ ".opened");
    m_closed = Kit.Metrics.counter ("serve.breaker." ^ name ^ ".closed");
    m_rejected = Kit.Metrics.counter ("serve.breaker." ^ name ^ ".rejected");
  }

let name t = t.name

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Due for a half-open probe? Must be called with the lock held. *)
let refresh t =
  if t.st = Open && t.now () >= t.opened_at +. t.cooldown then t.st <- Half_open

let state t =
  locked t (fun () ->
      refresh t;
      t.st)

let retry_after t =
  locked t (fun () ->
      refresh t;
      match t.st with
      | Closed -> 0.
      | Half_open -> t.base_cooldown
      | Open -> Float.max (t.opened_at +. t.cooldown -. t.now ()) 0.001)

let acquire t =
  locked t (fun () ->
      refresh t;
      match t.st with
      | Closed -> `Proceed
      | Half_open when not t.probing ->
          t.probing <- true;
          `Probe
      | Half_open | Open ->
          Kit.Metrics.incr t.m_rejected;
          `Reject
            (match t.st with
            | Open -> Float.max (t.opened_at +. t.cooldown -. t.now ()) 0.001
            | _ -> t.base_cooldown))

let success t =
  locked t (fun () ->
      refresh t;
      if t.st <> Closed then Kit.Metrics.incr t.m_closed;
      t.st <- Closed;
      t.consecutive <- 0;
      t.cooldown <- t.base_cooldown;
      t.probing <- false)

(* Open (or re-open) with the current cooldown, then double it for next
   time. Must be called with the lock held. *)
let trip t =
  if t.st <> Open then Kit.Metrics.incr t.m_opened;
  t.st <- Open;
  t.opened_at <- t.now ();
  t.probing <- false;
  t.cooldown <- Float.min t.max_cooldown t.cooldown

let failure t =
  locked t (fun () ->
      refresh t;
      t.consecutive <- t.consecutive + 1;
      match t.st with
      | Half_open ->
          (* failed probe: back off harder *)
          t.cooldown <- Float.min t.max_cooldown (t.cooldown *. 2.);
          trip t
      | Closed when t.consecutive >= t.threshold -> trip t
      | Closed | Open -> ())

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
