type bucket = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;
  burst : float;
  mu : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
}

let create ~rate ~burst =
  { rate; burst = Float.max burst 1.0; mu = Mutex.create (); buckets = Hashtbl.create 64 }

(* Keep the table bounded under a churn of one-shot clients: once it
   grows past this, buckets already back at full burst carry no state
   and are dropped. *)
let prune_threshold = 4096

let prune t now =
  if Hashtbl.length t.buckets > prune_threshold then begin
    let dead =
      Hashtbl.fold
        (fun key b acc ->
          let refilled =
            Float.min t.burst (b.tokens +. ((now -. b.last) *. t.rate))
          in
          if refilled >= t.burst then key :: acc else acc)
        t.buckets []
    in
    List.iter (Hashtbl.remove t.buckets) dead
  end

let admit ?now t key =
  if t.rate <= 0. then Ok ()
  else begin
    let now = match now with Some n -> n | None -> Unix.gettimeofday () in
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        prune t now;
        let b =
          match Hashtbl.find_opt t.buckets key with
          | Some b -> b
          | None ->
              let b = { tokens = t.burst; last = now } in
              Hashtbl.replace t.buckets key b;
              b
        in
        b.tokens <- Float.min t.burst (b.tokens +. ((now -. b.last) *. t.rate));
        b.last <- now;
        if b.tokens >= 1.0 then begin
          b.tokens <- b.tokens -. 1.0;
          Ok ()
        end
        else Error (Float.min 1.0 ((1.0 -. b.tokens) /. t.rate)))
  end
