type config = {
  host : string;
  port : int;
  jobs : int;
  queue : int;
  rate : float;
  burst : float;
  max_body : int;
  max_head : int;
  idle_timeout : float;
  drain_grace : float;
  mid_read_timeout : float;
  write_timeout : float;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> n
      | _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt (String.trim v) with
      | Some x when x >= 0. -> x
      | _ -> default)
  | None -> default

let default_config () =
  let rate = env_float "HB_RATE" 0. in
  {
    host = "127.0.0.1";
    port = env_int "HB_PORT" 8080;
    jobs = (match Sys.getenv_opt "HB_JOBS" with
        | Some v -> ( match int_of_string_opt (String.trim v) with
            | Some n when n > 0 -> n
            | _ -> 4)
        | None -> 4);
    queue = env_int "HB_QUEUE" 64;
    rate;
    burst = Float.max rate 8.;
    max_body = env_int "HB_MAX_BODY" (8 * 1024 * 1024);
    max_head = 16 * 1024;
    idle_timeout = env_float "HB_IDLE" 5.0;
    drain_grace = env_float "HB_DRAIN" 0.25;
    mid_read_timeout = env_float "HB_READ_TIMEOUT" 10.0;
    write_timeout = env_float "HB_WRITE_TIMEOUT" 30.0;
  }

(* Metrics: registered once at module init; recording is a no-op unless
   [Kit.Metrics.enabled]. *)
let m_connections = Kit.Metrics.counter "serve.connections"
let m_requests = Kit.Metrics.counter "serve.requests"
let m_responses = Kit.Metrics.counter "serve.responses"
let m_http_400 = Kit.Metrics.counter "serve.http_400"
let m_http_413 = Kit.Metrics.counter "serve.http_413"
let m_http_5xx = Kit.Metrics.counter "serve.http_5xx"
let m_rej_queue = Kit.Metrics.counter "serve.rejected_queue"
let m_rej_rate = Kit.Metrics.counter "serve.rejected_rate"

let m_latency =
  Kit.Metrics.histogram "serve.latency_ms"
    ~buckets:[| 1; 5; 10; 50; 100; 500; 1000; 5000; 30000 |]

type t = {
  cfg : config;
  handler : Http.request -> Http.response;
  lfd : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  qm : Mutex.t;
  qc : Condition.t;
  q : (Unix.file_descr * string) Queue.t;
  limiter : Rate_limit.t;
  completed : int Atomic.t;  (* responses written — feeds the drain-rate
                                estimate behind queue-full Retry-After *)
}

(* A peer that closes mid-response must surface as EPIPE from write, not
   kill the daemon. Idempotent; shared with Client for test processes. *)
let ignore_sigpipe =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let create cfg handler =
  Lazy.force ignore_sigpipe;
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
     Unix.bind lfd addr;
     Unix.listen lfd 128
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  Kit.Proc.register_fork_fd lfd;
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  {
    cfg;
    handler;
    lfd;
    bound_port;
    stopping = Atomic.make false;
    qm = Mutex.create ();
    qc = Condition.create ();
    q = Queue.create ();
    limiter = Rate_limit.create ~rate:cfg.rate ~burst:cfg.burst;
    completed = Atomic.make 0;
  }

let port t = t.bound_port
let stop t = Atomic.set t.stopping true

let close_conn fd =
  Kit.Proc.unregister_fork_fd fd;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* One HTTP connection, start to close. Runs in a worker thread. *)
let serve_connection t fd who =
  let conn =
    Http.conn ~client:who ~mid_read_timeout:t.cfg.mid_read_timeout
      ~write_timeout:t.cfg.write_timeout
      ~abort:(fun () -> Atomic.get t.stopping)
      ~grace:t.cfg.drain_grace fd
  in
  (* Every answered request counts toward the drain rate, whether or not
     the peer was still there to read it. *)
  let write_response conn ~keep_alive r =
    let ok = Http.write_response conn ~keep_alive r in
    Atomic.incr t.completed;
    ok
  in
  let rec loop () =
    let draining = Atomic.get t.stopping in
    let idle = if draining then t.cfg.drain_grace else t.cfg.idle_timeout in
    match
      Http.read_request ~idle ~max_head:t.cfg.max_head
        ~max_body:t.cfg.max_body conn
    with
    | Error (Http.Eof | Http.Idle_timeout) -> ()
    | Error Http.Mid_timeout ->
        ignore
          (write_response conn ~keep_alive:false
             (Http.response 408 (Http.error_body 408 "request timed out")))
    | Error (Http.Bad msg) ->
        Kit.Metrics.incr m_http_400;
        ignore
          (write_response conn ~keep_alive:false
             (Http.response 400 (Http.error_body 400 msg)))
    | Error Http.Head_too_large ->
        Kit.Metrics.incr m_http_400;
        ignore
          (write_response conn ~keep_alive:false
             (Http.response 431 (Http.error_body 431 "request head too large")))
    | Error Http.Body_too_large ->
        Kit.Metrics.incr m_http_413;
        ignore
          (write_response conn ~keep_alive:false
             (Http.response 413
                (Http.error_body 413
                   (Printf.sprintf "request body exceeds %d bytes"
                      t.cfg.max_body))))
    | Ok req -> (
        Kit.Metrics.incr m_requests;
        match Rate_limit.admit t.limiter req.Http.client with
        | Error retry_after ->
            Kit.Metrics.incr m_rej_rate;
            let keep_alive =
              Http.keep_alive_requested req && not (Atomic.get t.stopping)
            in
            let ok =
              write_response conn ~keep_alive
                (Http.response
                   ~headers:
                     [ ("Retry-After",
                        string_of_int
                          (int_of_float (Float.ceil retry_after))) ]
                   429
                   (Http.error_body 429 "rate limit exceeded"))
            in
            if ok && keep_alive then loop ()
        | Ok () ->
            let t0 = Unix.gettimeofday () in
            let resp =
              try t.handler req
              with e ->
                Kit.Metrics.incr m_http_5xx;
                Http.response 500
                  (Http.error_body 500
                     ("internal error: " ^ Printexc.to_string e))
            in
            Kit.Metrics.observe m_latency
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
            Kit.Metrics.incr m_responses;
            let draining = Atomic.get t.stopping in
            let keep_alive = Http.keep_alive_requested req && not draining in
            let ok = write_response conn ~keep_alive resp in
            (* While draining, still answer requests the peer already
               pipelined into our buffer — they were accepted. *)
            if ok && (keep_alive || (draining && Http.buffered conn)) then
              loop ())
  in
  loop ()

let worker t () =
  let rec next () =
    Mutex.lock t.qm;
    while Queue.is_empty t.q && not (Atomic.get t.stopping) do
      Condition.wait t.qc t.qm
    done;
    let job = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.qm;
    match job with
    | None -> ()  (* stopping and drained *)
    | Some (fd, who) ->
        Fun.protect
          ~finally:(fun () -> close_conn fd)
          (fun () ->
            try serve_connection t fd who
            with _ -> () (* connection errors never kill a worker *));
        next ()
  in
  next ()

(* Honest queue-full Retry-After: how long until [queue_len + 1] requests
   drain at the observed completion rate (responses/second), clamped to
   [1, 60]. A rate that has collapsed to zero means the server is wedged
   and 60 is the honest answer. *)
let retry_after_estimate ~queue_len ~rate =
  if rate <= 0. then 60
  else
    max 1 (min 60 (int_of_float (Float.ceil (float_of_int (queue_len + 1) /. rate))))

let reject_queue_full fd ~retry_after =
  Kit.Metrics.incr m_rej_queue;
  let body = Http.error_body 429 "server busy, admission queue full" in
  let head =
    Printf.sprintf
      "HTTP/1.1 429 Too Many Requests\r\n\
       Server: hyperbenchd\r\n\
       Content-Type: application/json\r\n\
       Retry-After: %d\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      retry_after (String.length body)
  in
  (* Best effort, and never block the acceptor on a slow peer. *)
  try
    Unix.set_nonblock fd;
    ignore
      (Unix.write_substring fd (head ^ body) 0
         (String.length head + String.length body))
  with Unix.Unix_error _ -> ()

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
  | Unix.ADDR_UNIX p -> p

let serve t =
  let workers =
    List.init (max 1 t.cfg.jobs) (fun _ -> Thread.create (worker t) ())
  in
  (* Drain-rate EWMA (responses/second), sampled from [t.completed] on
     >=0.5 s ticks of the accept loop. Seeded optimistically at one
     request per worker-second so a cold server doesn't claim to be
     wedged. *)
  let ewma = ref (float_of_int (max 1 t.cfg.jobs)) in
  let last_sample = ref (Unix.gettimeofday ()) in
  let last_completed = ref (Atomic.get t.completed) in
  let sample_rate () =
    let now = Unix.gettimeofday () in
    let dt = now -. !last_sample in
    if dt >= 0.5 then begin
      let done_ = Atomic.get t.completed in
      let inst = float_of_int (done_ - !last_completed) /. dt in
      ewma := (0.7 *. !ewma) +. (0.3 *. inst);
      last_sample := now;
      last_completed := done_
    end
  in
  let rec accept_loop () =
    if Atomic.get t.stopping then ()
    else begin
      sample_rate ();
      (match Unix.select [ t.lfd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.lfd with
          | exception Unix.Unix_error _ -> ()
          | fd, peer ->
              Kit.Proc.register_fork_fd fd;
              Kit.Metrics.incr m_connections;
              let who = string_of_sockaddr peer in
              Mutex.lock t.qm;
              let queue_len = Queue.length t.q in
              let full = queue_len >= max 1 t.cfg.queue in
              if not full then begin
                Queue.push (fd, who) t.q;
                Condition.signal t.qc
              end;
              Mutex.unlock t.qm;
              if full then begin
                reject_queue_full fd
                  ~retry_after:(retry_after_estimate ~queue_len ~rate:!ewma);
                close_conn fd
              end)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: close the listener, wake every worker, join them. *)
  Kit.Proc.unregister_fork_fd t.lfd;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  Mutex.lock t.qm;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm;
  List.iter Thread.join workers
