(** Per-client token-bucket admission: [rate] requests/second sustained,
    bursts up to [burst]. Thread-safe; one bucket per client key. *)

type t

val create : rate:float -> burst:float -> t
(** [rate <= 0.] disables limiting — {!admit} always succeeds. *)

val admit : ?now:float -> t -> string -> (unit, float) result
(** Spend one token from [key]'s bucket. [Error retry_after] (seconds,
    ceiling 1) when the bucket is empty. [now] is for tests; defaults to
    [Unix.gettimeofday ()]. *)
