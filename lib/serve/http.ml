type version = V10 | V11

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : version;
  headers : (string * string) list;
  body : string;
  client : string;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let reason = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 415 -> "Unsupported Media Type"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | s when s >= 200 && s < 300 -> "OK"
  | s when s >= 400 && s < 500 -> "Bad Request"
  | _ -> "Error"

let response ?(content_type = "application/json") ?(headers = []) status body =
  { status; headers = ("Content-Type", content_type) :: headers; body }

let error_body status msg =
  Kit.Json.to_string
    (Kit.Json.Obj
       [ ("error", Kit.Json.Int status); ("message", Kit.Json.String msg) ])

let header (req : request) name =
  List.find_map
    (fun (n, v) -> if String.equal n name then Some v else None)
    req.headers

let param (req : request) name =
  List.find_map
    (fun (n, v) -> if String.equal n name then Some v else None)
    req.query

let token_of_connection req =
  match header req "connection" with
  | None -> None
  | Some v ->
      (* Connection is a comma-separated token list; we only care about
         close / keep-alive. *)
      String.split_on_char ',' v
      |> List.map (fun s -> String.lowercase_ascii (String.trim s))
      |> fun toks ->
      if List.mem "close" toks then Some `Close
      else if List.mem "keep-alive" toks then Some `Keep_alive
      else None

let keep_alive_requested req =
  match (req.version, token_of_connection req) with
  | _, Some `Close -> false
  | _, Some `Keep_alive -> true
  | V11, None -> true
  | V10, None -> false

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Default per-read stall budget once a request has started. Generous
   enough for slow genuine clients, small enough that a slowloris peer
   cannot pin a worker for long. *)
let default_mid_read_timeout = 10.0
let default_write_timeout = 30.0

type conn = {
  fd : Unix.file_descr;
  who : string;
  mutable buf : string;  (* bytes read but not yet consumed *)
  scratch : Bytes.t;  (* per-connection read buffer — conns cross threads *)
  mid_read : float;  (* per-read stall budget once a request has started *)
  send_timeout : float;  (* per-response write budget *)
  abort : unit -> bool;  (* the server is draining — shed stalled peers *)
  grace : float;  (* extra seconds a blocked read gets once [abort] *)
  mutable abort_seen : float;  (* when this conn first observed [abort] *)
}

let conn ?(client = "-") ?(mid_read_timeout = default_mid_read_timeout)
    ?(write_timeout = default_write_timeout) ?(abort = fun () -> false)
    ?(grace = infinity) fd =
  {
    fd;
    who = client;
    buf = "";
    scratch = Bytes.create 8192;
    mid_read = mid_read_timeout;
    send_timeout = write_timeout;
    abort;
    grace;
    abort_seen = neg_infinity;
  }

let client c = c.who
let buffered c = String.length c.buf > 0

type read_error =
  | Eof
  | Idle_timeout
  | Mid_timeout
  | Bad of string
  | Head_too_large
  | Body_too_large

exception Fail of read_error

let set_rcvtimeo fd secs =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* Read more bytes into [c.buf]. [started] selects which timeout error a
   stall maps to. Raises [Fail] on eof/timeout/reset. A connection is
   owned by exactly one worker at a time.

   The wait is sliced so a blocked read notices [abort] (drain) within a
   slice and then gets only [grace] more seconds, not its whole timeout:
   SIGTERM with a mid-body-stalled peer must not pin the join for the
   full stall budget. A slice that returns data costs nothing extra —
   slicing only runs while the peer is silent. *)
let refill c ~timeout ~started =
  let stalled =
    (* Injected peer behaviour (chaos harness): a stall pretends the
       socket stays silent so the genuine timeout/drain machinery below
       decides the outcome; reset/torn surface as an abrupt close. *)
    match Kit.Fault.net "serve.read" with
    | Some (Kit.Fault.Reset | Kit.Fault.Torn) -> raise (Fail Eof)
    | Some Kit.Fault.Stall -> true
    | _ -> false
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    let now = Unix.gettimeofday () in
    let limit =
      if c.abort () then begin
        if c.abort_seen = neg_infinity then c.abort_seen <- now;
        Float.min deadline (c.abort_seen +. c.grace)
      end
      else deadline
    in
    if now >= limit then
      raise (Fail (if started then Mid_timeout else Idle_timeout));
    let slice = Float.min (limit -. now) 0.25 in
    let n =
      if stalled then begin
        Unix.sleepf slice;
        -1
      end
      else begin
        set_rcvtimeo c.fd slice;
        try Unix.read c.fd c.scratch 0 (Bytes.length c.scratch) with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            -1
        | Unix.Unix_error _ -> raise (Fail Eof)
      end
    in
    if n = 0 then raise (Fail Eof)
    else if n < 0 then wait ()
    else c.buf <- c.buf ^ Bytes.sub_string c.scratch 0 n
  in
  wait ()

let take c n =
  let s = String.sub c.buf 0 n in
  c.buf <- String.sub c.buf n (String.length c.buf - n);
  s

(* ------------------------------------------------------------------ *)
(* Percent decoding                                                    *)
(* ------------------------------------------------------------------ *)

let hex_val ch =
  match ch with
  | '0' .. '9' -> Some (Char.code ch - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code ch - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code ch - Char.code 'A' + 10)
  | _ -> None

let percent_decode ?(plus_space = false) s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
        match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
        | Some h, Some l ->
            Buffer.add_char b (Char.chr ((h * 16) + l));
            i := !i + 2
        | _ -> Buffer.add_char b '%')
    | '+' when plus_space -> Buffer.add_char b ' '
    | ch -> Buffer.add_char b ch);
    incr i
  done;
  Buffer.contents b

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode ~plus_space:true kv, "")
             | Some i ->
                 Some
                   ( percent_decode ~plus_space:true (String.sub kv 0 i),
                     percent_decode ~plus_space:true
                       (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* ------------------------------------------------------------------ *)
(* Head parsing                                                        *)
(* ------------------------------------------------------------------ *)

(* Find the end of the head: the first blank line. Accepts CRLF and bare
   LF line endings. Returns [Some (head, rest_offset)] where [head] still
   contains its line terminators. *)
let find_head_end buf =
  let n = String.length buf in
  let rec scan i =
    if i >= n then None
    else
      match String.index_from_opt buf i '\n' with
      | None -> None
      | Some j ->
          if j + 1 < n && buf.[j + 1] = '\n' then Some (j + 2)
          else if j + 2 < n && buf.[j + 1] = '\r' && buf.[j + 2] = '\n' then
            Some (j + 3)
          else scan (j + 1)
  in
  (* A head that *starts* with a blank line is its own terminator. *)
  if n >= 1 && buf.[0] = '\n' then Some 1
  else if n >= 2 && buf.[0] = '\r' && buf.[1] = '\n' then Some 2
  else scan 0

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let is_upper_token s =
  s <> ""
  && String.length s <= 32
  && String.for_all (function 'A' .. 'Z' -> true | _ -> false) s

let has_ctl s =
  String.exists (fun ch -> Char.code ch < 0x20 || Char.code ch = 0x7f) s

let valid_header_name s =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
         | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^'
         | '_' | '`' | '|' | '~' ->
             true
         | _ -> false)
       s

let max_headers = 128

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; ver ] ->
      if not (is_upper_token meth) then raise (Fail (Bad "bad method"));
      if target = "" || not (target.[0] = '/' || target = "*") then
        raise (Fail (Bad "bad request target"));
      if has_ctl target then raise (Fail (Bad "control byte in target"));
      let version =
        match ver with
        | "HTTP/1.1" -> V11
        | "HTTP/1.0" -> V10
        | _ -> raise (Fail (Bad "unsupported HTTP version"))
      in
      (meth, target, version)
  | _ -> raise (Fail (Bad "malformed request line"))

let parse_headers lines =
  if List.length lines > max_headers then raise (Fail (Bad "too many headers"));
  List.map
    (fun line ->
      if line = "" then raise (Fail (Bad "empty header line"));
      if line.[0] = ' ' || line.[0] = '\t' then
        raise (Fail (Bad "obsolete line folding"));
      match String.index_opt line ':' with
      | None -> raise (Fail (Bad "header without colon"))
      | Some i ->
          let name = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          if not (valid_header_name name) then
            raise (Fail (Bad "invalid header name"));
          let value = String.trim value in
          if has_ctl value then raise (Fail (Bad "control byte in header"));
          (String.lowercase_ascii name, value))
    lines

let strict_int_of_digits s =
  if s = "" || String.length s > 18 then None
  else if not (String.for_all (function '0' .. '9' -> true | _ -> false) s)
  then None
  else Some (int_of_string s)

let content_length headers =
  match
    List.filter_map
      (fun (n, v) -> if n = "content-length" then Some v else None)
      headers
  with
  | [] -> None
  | v :: rest ->
      if not (List.for_all (String.equal v) rest) then
        raise (Fail (Bad "conflicting content-length"));
      (* A single header may itself hold a comma list. *)
      let parts = String.split_on_char ',' v |> List.map String.trim in
      let v = List.hd parts in
      if not (List.for_all (String.equal v) parts) then
        raise (Fail (Bad "conflicting content-length"));
      (match strict_int_of_digits v with
      | None -> raise (Fail (Bad "invalid content-length"))
      | Some n -> Some n)

(* ------------------------------------------------------------------ *)
(* Bodies                                                              *)
(* ------------------------------------------------------------------ *)

let read_exact c n =
  while String.length c.buf < n do
    refill c ~timeout:c.mid_read ~started:true
  done;
  take c n

(* Read one (CR)LF-terminated line for chunked framing. *)
let read_line c ~cap =
  let rec find () =
    match String.index_opt c.buf '\n' with
    | Some i -> i
    | None ->
        if String.length c.buf > cap then raise (Fail (Bad "chunk line too long"));
        refill c ~timeout:c.mid_read ~started:true;
        find ()
  in
  let i = find () in
  let line = take c (i + 1) in
  strip_cr (String.sub line 0 (String.length line - 1))

let chunk_size line =
  let hex = match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let hex = String.trim hex in
  if hex = "" || String.length hex > 8 then raise (Fail (Bad "bad chunk size"));
  if not (String.for_all (fun ch -> hex_val ch <> None) hex) then
    raise (Fail (Bad "bad chunk size"));
  int_of_string ("0x" ^ hex)

let read_chunked c ~max_body =
  let b = Buffer.create 1024 in
  let rec loop () =
    let size = chunk_size (read_line c ~cap:256) in
    if size = 0 then begin
      (* Trailers: lines until a blank one, read and dropped. *)
      let rec trailers n =
        if n > max_headers then raise (Fail (Bad "too many trailers"));
        let line = read_line c ~cap:4096 in
        if line <> "" then trailers (n + 1)
      in
      trailers 0
    end
    else begin
      if Buffer.length b + size > max_body then raise (Fail Body_too_large);
      Buffer.add_string b (read_exact c size);
      (* terminator: CRLF, with a bare LF tolerated *)
      (match read_exact c 1 with
      | "\n" -> ()
      | "\r" ->
          if read_exact c 1 <> "\n" then
            raise (Fail (Bad "bad chunk terminator"))
      | _ -> raise (Fail (Bad "bad chunk terminator")));
      loop ()
    end
  in
  loop ();
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* read_request                                                        *)
(* ------------------------------------------------------------------ *)

let read_request ~idle ~max_head ~max_body c =
  try
    (* 1. accumulate the head *)
    let rec head_loop started =
      match find_head_end c.buf with
      | Some fin ->
          if fin > max_head then raise (Fail Head_too_large);
          take c fin
      | None ->
          if String.length c.buf > max_head then raise (Fail Head_too_large);
          let started = started || String.length c.buf > 0 in
          refill c
            ~timeout:(if started then c.mid_read else idle)
            ~started;
          head_loop started
    in
    let head = head_loop false in
    let lines =
      String.split_on_char '\n' head
      |> List.map strip_cr
      |> List.filter (fun l -> l <> "")
    in
    (match lines with
    | [] -> raise (Fail (Bad "empty request"))
    | request_line :: header_lines ->
        let meth, target, version = parse_request_line request_line in
        let headers = parse_headers header_lines in
        (* 2. the body *)
        let te =
          List.filter_map
            (fun (n, v) ->
              if n = "transfer-encoding" then Some (String.lowercase_ascii v)
              else None)
            headers
        in
        let body =
          match te with
          | [] | [ "identity" ] -> (
              match content_length headers with
              | None -> ""
              | Some n ->
                  if n > max_body then raise (Fail Body_too_large);
                  read_exact c n)
          | [ "chunked" ] ->
              if content_length headers <> None then
                raise (Fail (Bad "both content-length and transfer-encoding"));
              read_chunked c ~max_body
          | _ -> raise (Fail (Bad "unsupported transfer-encoding"))
        in
        (* 3. split target into path + query *)
        let path, query =
          match String.index_opt target '?' with
          | None -> (percent_decode target, [])
          | Some i ->
              ( percent_decode (String.sub target 0 i),
                parse_query
                  (String.sub target (i + 1) (String.length target - i - 1)) )
        in
        Ok { meth; target; path; query; version; headers; body; client = c.who })
  with
  | Fail e -> Error e
  | Invalid_argument _ | Failure _ -> Error (Bad "malformed request")

(* ------------------------------------------------------------------ *)
(* write_response                                                      *)
(* ------------------------------------------------------------------ *)

let write_all c s =
  (match Kit.Fault.net "serve.write" with
  | Some Kit.Fault.Torn ->
      (* Deliver a genuinely torn response: a prefix of the bytes, then a
         hard close — the peer sees a short body, not a clean error. *)
      let keep = max 1 (String.length s / 2) in
      (try ignore (Unix.write_substring c.fd s 0 keep)
       with Unix.Unix_error _ -> ());
      (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise Exit
  | Some Kit.Fault.Reset ->
      (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      raise Exit
  | Some Kit.Fault.Stall ->
      (* The peer stops reading and our send buffer is full: burn the
         write budget, then fail the write like SO_SNDTIMEO would. *)
      Unix.sleepf (Float.min c.send_timeout 30.);
      raise Exit
  | _ -> ());
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write c.fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

let write_response c ~keep_alive r =
  let b = Buffer.create (256 + String.length r.body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason r.status));
  Buffer.add_string b "Server: hyperbenchd\r\n";
  List.iter
    (fun (n, v) ->
      let lo = String.lowercase_ascii n in
      if lo <> "content-length" && lo <> "connection" then
        Buffer.add_string b (Printf.sprintf "%s: %s\r\n" n v))
    r.headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length r.body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b r.body;
  try
    (try Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO c.send_timeout
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    write_all c (Buffer.contents b);
    true
  with Exit | Unix.Unix_error _ -> false
