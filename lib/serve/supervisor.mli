(** Self-healing supervision for [hyperbenchd] subsystems.

    Owns one {!Breaker} per named subsystem (the service layer uses
    ["solver"], ["isolation"] and ["cache"]) and the restart policy for
    crashed solve workers: a crashed {!Kit.Proc} worker is restarted —
    the next attempt forks a fresh sandbox — after a capped exponential
    backoff with deterministic seeded jitter, up to {!retries} times
    per request; every restart ticks the [serve.worker_restarts]
    counter and records one failure against the subsystem's breaker, so
    [N] consecutive crashes open it (see {!Breaker} for the
    open/half-open/closed cycle and what the daemon serves while open).

    Thread-safe; creating a supervisor registers its metrics so they
    appear in [/metrics] from boot. *)

type t

val create :
  ?now:(unit -> float) ->
  ?threshold:int ->
  ?cooldown:float ->
  ?max_cooldown:float ->
  ?retries:int ->
  ?backoff_base:float ->
  ?backoff_max:float ->
  ?seed:int ->
  unit ->
  t
(** Breaker parameters ([threshold] 5, [cooldown] 1 s doubling to
    [max_cooldown] 30 s) apply to every subsystem breaker; [retries]
    (default 2) bounds worker restarts per request; backoff delays grow
    from [backoff_base] (50 ms) to [backoff_max] (500 ms) with jitter
    derived from [seed]. [now] injects a clock for tests. *)

val breaker : t -> string -> Breaker.t
(** The subsystem's breaker, created on first use. *)

val subsystems : t -> (string * Breaker.state) list
(** Every subsystem seen so far with its current breaker state — the
    [/healthz] payload. *)

val retries : t -> int

val backoff : t -> attempt:int -> float
(** Restart delay before retry [attempt] (0-based): capped exponential
    with deterministic jitter. *)

val restarted : t -> unit
(** Tick [serve.worker_restarts]: a crashed worker is being replaced. *)
