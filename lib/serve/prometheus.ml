let sanitize name =
  String.map
    (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' as c -> c | _ -> '_')
    name

let metric name = "hb_" ^ sanitize name

(* %g-style float that Prometheus accepts; totals are seconds. *)
let f v = Printf.sprintf "%.9g" v

let render (s : Kit.Metrics.snapshot) =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, v) ->
      let m = metric name in
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    s.Kit.Metrics.counters;
  List.iter
    (fun (name, (spans, secs)) ->
      let m = metric name in
      line "# TYPE %s_seconds_total counter" m;
      line "%s_seconds_total %s" m (f secs);
      line "# TYPE %s_spans counter" m;
      line "%s_spans %d" m spans)
    s.Kit.Metrics.timers;
  List.iter
    (fun (name, (edges, counts)) ->
      let m = metric name in
      line "# TYPE %s histogram" m;
      let cum = ref 0 in
      Array.iteri
        (fun i edge ->
          cum := !cum + counts.(i);
          line "%s_bucket{le=\"%d\"} %d" m edge !cum)
        edges;
      let total = Array.fold_left ( + ) 0 counts in
      line "%s_bucket{le=\"+Inf\"} %d" m total;
      line "%s_count %d" m total)
    s.Kit.Metrics.histograms;
  Buffer.contents b
