type t = (string * string * (Http.request -> Http.response)) list

let create routes = routes

let dispatch t req =
  match
    List.find_opt (fun (m, p, _) -> m = req.Http.meth && p = req.Http.path) t
  with
  | Some (_, _, h) -> h req
  | None -> (
      match
        List.filter_map
          (fun (m, p, _) -> if p = req.Http.path then Some m else None)
          t
      with
      | [] -> Http.response 404 (Http.error_body 404 "no such endpoint")
      | allowed ->
          Http.response
            ~headers:[ ("Allow", String.concat ", " allowed) ]
            405
            (Http.error_body 405 "method not allowed"))
