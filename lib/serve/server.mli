(** The [hyperbenchd] serving loop: a bounded admission queue over a
    fixed pool of system threads.

    Architecture — everything is {e threads}, never domains: the handler
    runs requests through {!Kit.Proc}, which forks, and OCaml 5 forbids
    [fork] once any domain has been spawned. The acceptor runs in the
    thread that calls {!serve}; [jobs] worker threads pop accepted
    connections from a bounded queue and speak HTTP on them. When the
    queue is full the acceptor answers 429 + [Retry-After] inline and
    closes — backpressure costs one write, never a worker. The
    [Retry-After] value is derived from the live queue depth and an
    EWMA of the observed drain rate (see {!retry_after_estimate}), not
    a constant.

    Drain: {!stop} only flips an atomic (it is installable directly as a
    [SIGTERM] handler). The acceptor notices within its 0.2 s [select]
    tick, closes the listener, and wakes all workers; workers finish the
    request in flight plus anything already queued or pipelined, answer
    each with [Connection: close], and exit. {!serve} then joins them and
    returns — no accepted request is dropped. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port — see {!port} *)
  jobs : int;  (** worker threads, default [HB_JOBS] *)
  queue : int;  (** max connections awaiting a worker, default [HB_QUEUE] *)
  rate : float;  (** per-client req/s, [0.] = unlimited, default [HB_RATE] *)
  burst : float;  (** token-bucket burst, default [max rate 8] *)
  max_body : int;  (** request-body cap in bytes, default [HB_MAX_BODY] *)
  max_head : int;  (** request-head cap in bytes *)
  idle_timeout : float;  (** keep-alive idle close, seconds, default [HB_IDLE] *)
  drain_grace : float;  (** idle wait while draining, seconds, default [HB_DRAIN] *)
  mid_read_timeout : float;
      (** stall budget mid-request (slowloris guard), seconds, default
          [HB_READ_TIMEOUT] *)
  write_timeout : float;
      (** per-[write] send budget for responses, seconds, default
          [HB_WRITE_TIMEOUT] *)
}

val default_config : unit -> config
(** Defaults above, with [HB_PORT] / [HB_JOBS] / [HB_QUEUE] / [HB_RATE] /
    [HB_MAX_BODY] / [HB_IDLE] / [HB_DRAIN] / [HB_READ_TIMEOUT] /
    [HB_WRITE_TIMEOUT] read from the environment. *)

val retry_after_estimate : queue_len:int -> rate:float -> int
(** Honest queue-full [Retry-After]: seconds until [queue_len + 1]
    requests drain at [rate] responses/second, clamped to [\[1, 60\]];
    [60] when the rate has collapsed to zero. Pure — exposed for
    tests. *)

type t

val create : config -> (Http.request -> Http.response) -> t
(** Bind and listen (raises [Unix.Unix_error] if the port is taken).
    The listener is registered with {!Kit.Proc.register_fork_fd} so
    sandboxed workers never inherit it. *)

val port : t -> int
(** The actual bound port (resolves [port = 0]). *)

val serve : t -> unit
(** Run the acceptor in the calling thread; returns after {!stop} once
    every in-flight and queued request has been answered and all worker
    threads have joined. *)

val stop : t -> unit
(** Begin graceful drain. Async-signal-safe: one atomic store, no locks,
    no allocation — install [fun _ -> stop t] as the SIGTERM handler. *)
