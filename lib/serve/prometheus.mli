(** Render a {!Kit.Metrics.snapshot} in the Prometheus text exposition
    format. Counters become [hb_<name>] counters; timers become
    [hb_<name>_seconds_total] plus an [hb_<name>_spans] count; histograms
    become cumulative [hb_<name>_bucket{le="..."}] series with the usual
    [+Inf] bucket and [_count]. Metric names are sanitised (any byte
    outside [[a-zA-Z0-9_]] maps to ['_']). *)

val render : Kit.Metrics.snapshot -> string
