(** A per-subsystem circuit breaker for the serving path.

    Closed (normal) until [threshold] {e consecutive} failures, then
    open: requests are rejected with an honest retry-after until the
    cooldown elapses. The first caller after the cooldown gets exactly
    one half-open {e probe}; a successful probe closes the breaker, a
    failed one re-opens it with the cooldown doubled (capped at
    [max_cooldown]) — capped exponential backoff across open cycles.

    Thread-safe (one mutex per breaker; every operation is a few loads
    under the lock). Transitions tick the
    [serve.breaker.<name>.opened/closed/rejected] counters in
    {!Kit.Metrics}, so open/close cycles are visible in [/metrics]. *)

type t

type state = Closed | Open | Half_open

val create :
  ?now:(unit -> float) ->
  ?threshold:int ->
  ?cooldown:float ->
  ?max_cooldown:float ->
  string ->
  t
(** [create name]: [threshold] consecutive failures (default 5) open the
    breaker for [cooldown] seconds (default 1.0), doubling per re-open up
    to [max_cooldown] (default 30.0). [now] injects a clock for tests. *)

val name : t -> string

val state : t -> state

val state_name : state -> string
(** ["closed"], ["open"] or ["half-open"] — the [/healthz] rendering. *)

val acquire : t -> [ `Proceed | `Probe | `Reject of float ]
(** Ask to run one request. [`Reject retry_after] while open (and while
    a half-open probe is already in flight); [`Probe] hands the single
    post-cooldown trial to this caller — report its outcome with
    {!success} or {!failure}. *)

val success : t -> unit
(** The subsystem worked: close (from any state) and reset the failure
    count and cooldown. *)

val failure : t -> unit
(** One more failure: opens the breaker from [Closed] at the threshold,
    re-opens with doubled cooldown from [Half_open]. *)

val retry_after : t -> float
(** Seconds until the next half-open probe is due — the honest
    [Retry-After] value for a degraded 503. [0.] when closed. *)
