let default_depth = 200

let default_input = 64 * 1024 * 1024

let env_pos name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> n
      | _ -> default)

let max_depth () = env_pos "HB_PARSE_DEPTH" default_depth

let max_input () = env_pos "HB_MAX_INPUT" default_input

let check_input src =
  let cap = max_input () in
  if String.length src > cap then
    Some
      (Diag.errorf (Diag.point 0)
         "input is %d bytes, over the %d-byte limit (HB_MAX_INPUT)"
         (String.length src) cap)
  else None

let depth_error ~at =
  Diag.errorf (Diag.point at) "nested deeper than %d (HB_PARSE_DEPTH)"
    (max_depth ())
