(** Search observability: named counters, span timers and histograms.

    The registry is designed for the decomposition search cores, which run
    concurrently on OCaml domains (see {!Pool}): every domain accumulates
    into its own store (via [Domain.DLS]) with no synchronisation on the
    hot path, and {!snapshot} merges all stores on read. Because merging
    is a commutative sum, counter values are identical whatever the
    domain interleaving — with a deterministic budget
    ({!Deadline.of_fuel}) the counters are bit-identical at every
    [HB_JOBS] value.

    Instrumentation is off by default. When [enabled] is [false] every
    recording operation returns immediately without allocating, so
    instrumented hot paths cost one load and one branch. Flip [enabled]
    before the run (and before spawning domains) to record.

    Metrics are registered once, by name, at module-initialisation time
    of the instrumented libraries; registering the same name twice
    returns the same metric (the kinds must agree). *)

val enabled : bool ref
(** Master switch. Set it from the main domain while no instrumented
    search is running; concurrent readers see the update at their next
    recording call. *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** [counter name] registers (or finds) the counter [name]. Use
    dotted lower-case names, e.g. ["detk.subproblems"]. *)

val incr : counter -> unit

val add : counter -> int -> unit

type timer

val timer : string -> timer

val span : timer -> (unit -> 'a) -> 'a
(** [span t f] runs [f] and accumulates its wall-clock duration (and one
    span count) into [t] — also when [f] raises. Spans may nest, across
    the same or different timers; each span records its full duration. *)

val add_seconds : timer -> float -> unit
(** Record an externally measured duration as one span. *)

type histogram

val histogram : string -> buckets:int array -> histogram
(** [histogram name ~buckets] has [Array.length buckets + 1] cells:
    cell [i] counts observations [<= buckets.(i)] (and greater than the
    previous edge); the last cell counts overflows. [buckets] must be
    strictly increasing. *)

val observe : histogram -> int -> unit

(** {1 Reading} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  timers : (string * (int * float)) list;
      (** name -> (spans, total seconds), sorted by name *)
  histograms : (string * (int array * int array)) list;
      (** name -> (upper bucket edges, counts); [counts] has one more
          cell than the edges (the overflow bucket). Sorted by name. *)
}

val empty : snapshot

val snapshot : unit -> snapshot
(** Merge all per-domain stores. Every registered metric appears, also
    at value zero. Safe to call concurrently with recording domains (the
    result is then a consistent-enough monitoring view); call it after
    {!Pool} runs have joined for exact totals. *)

val local_delta : (unit -> 'a) -> 'a * snapshot
(** [local_delta f] runs [f] and returns what the *current domain*
    recorded during the call. [f] must not spawn domains that record on
    its behalf. Zero entries are pruned, so the delta of an
    uninstrumented call is {!empty}. When [enabled] is false the delta
    is {!empty}. *)

val absorb : snapshot -> unit
(** Add a snapshot's counters, timer totals and histogram cells into the
    current domain's store, registering any names not seen yet. This is
    how per-instance deltas measured inside forked workers ({!Proc})
    survive the child process: the worker ships its {!local_delta} with
    the result and the parent replays it, so global totals match the
    in-process run. No-op when {!enabled} is false.
    @raise Invalid_argument
      if a name is already registered with a different kind (or
      histogram bucket edges). *)

val reset : unit -> unit
(** Zero every store (including those of terminated domains). Call
    between runs, while no instrumented search is executing. The
    registry of names survives a reset. *)

(** {1 Accessors and rendering} *)

val get : snapshot -> string -> int
(** Counter value, 0 when absent. *)

val get_timer : snapshot -> string -> int * float
(** (spans, seconds), (0, 0.) when absent. *)

val get_histogram : snapshot -> string -> (int array * int array) option

val to_json : snapshot -> string
(** Machine-readable rendering:
    [{"counters":{...},"timers":{name:{"count":..,"seconds":..}},
      "histograms":{name:{"edges":[..],"counts":[..]}}}]. *)

val to_table : snapshot -> string
(** Human-readable table of all non-zero metrics. *)
