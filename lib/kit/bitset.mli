(** Fixed-universe bitsets with an immutable reference API and an
    in-place kernel for hot loops.

    All sets created from the same [universe] size are compatible; mixing
    sets of different universe sizes is a programming error and is
    rejected with [Invalid_argument]. Elements are integers in
    [0, universe).

    The immutable operations ({!union}, {!add}, ...) allocate their
    result and define the reference semantics. The in-place operations
    ({!union_into}, {!add_in_place}, ...) mutate their destination over
    the same representation — they exist so that search inner loops can
    accumulate into one owned buffer instead of allocating per step.
    Never mutate a set that anything else might still reference: the
    search cores only mutate freshly allocated accumulators or buffers
    borrowed from a {!Scratch} arena, and publish immutable snapshots. *)

type t

val empty : int -> t
(** [empty n] is the empty set over universe size [n]. *)

val full : int -> t
(** [full n] is {0, ..., n-1}. *)

val universe : t -> int
(** Universe size this set was created with. *)

val singleton : int -> int -> t
(** [singleton n x] is the set {x} over universe size [n]
    (one allocation). *)

val of_list : int -> int list -> t
(** Builds into a single buffer: one allocation however long the list. *)

val to_list : t -> int list

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val copy : t -> t
(** A fresh set with the same contents — the snapshot to publish after
    in-place accumulation. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val intersects : t -> t -> bool
(** [intersects a b] is true iff [a] and [b] share an element. *)

val diff_subset : t -> t -> t -> bool
(** [diff_subset a b c] is [subset (diff a b) c] without allocating. *)

val cardinal : t -> int
(** Word-parallel (SWAR) popcount: no per-bit loop, no allocation. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] = [cardinal (inter a b)] without allocating. *)

val choose : t -> int option
(** Smallest element, if any. *)

val first : t -> int
(** Smallest element, or [-1] when empty — {!choose} without the option
    allocation, for hot loops. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. Set bits are located with a De Bruijn-style
    count-trailing-zeros table — cost per element is a multiply and a
    table load, not a per-bit scan. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

val filter : (int -> bool) -> t -> t
(** Builds into a single buffer: one allocation. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [{0, 3, 5}]. *)

(** {1 In-place kernel}

    All destinations must have the same universe as their arguments
    ([Invalid_argument] otherwise). Aliased arguments are fine: the ops
    are plain word loops, so e.g. [union_into ~into:s s] is a no-op. *)

val clear : t -> unit
(** Remove every element. *)

val add_in_place : int -> t -> unit
val remove_in_place : int -> t -> unit

val copy_into : t -> into:t -> unit
(** [copy_into src ~into] overwrites [into] with the contents of
    [src]. *)

val union_into : into:t -> t -> unit
(** [union_into ~into s]: [into := into ∪ s]. *)

val inter_into : into:t -> t -> unit
(** [inter_into ~into s]: [into := into ∩ s]. *)

val diff_into : into:t -> t -> unit
(** [diff_into ~into s]: [into := into ∖ s]. *)

val union_indexed_into : into:t -> t array -> t -> unit
(** [union_indexed_into ~into arr s]: [into := into ∪ ⋃ {arr.(i) | i ∈ s}],
    allocation-free. The universe of [s] must not exceed the length of
    [arr]; each [arr.(i)] visited must share [into]'s universe. This is
    the inner loop of incidence accumulation ([vertices_of_edges],
    [edges_touching]). *)

(** {1 Scratch arenas}

    A pool of reusable universe-sized buffers for search hot paths: a
    loop that needs a temporary set borrows one, accumulates in place,
    and releases it on the way out — zero allocations once the pool is
    warm. Borrow/release follows stack discipline across recursive
    calls (a borrowed buffer is simply absent from the pool, so callees
    cannot see it). Arenas are single-domain: create one per search
    call, never share one across domains. *)

module Scratch : sig
  type arena

  val create : unit -> arena

  val borrow : arena -> int -> t
  (** [borrow a n] is a cleared set over universe size [n], reused from
      the pool when available. It is owned by the caller until
      {!release}d. *)

  val release : arena -> t -> unit
  (** Return a borrowed buffer to the pool. The caller must not use it
      afterwards (it will be cleared and handed out again). *)
end
