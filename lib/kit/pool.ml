let default_jobs () =
  match Sys.getenv_opt "HB_JOBS" with
  | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Work-stealing is overkill for our coarse, independent tasks: a shared
   atomic next-task counter keeps all domains busy until the array is
   drained, and writing results by index preserves input order exactly. *)
let run_result ~jobs f tasks =
  let n = Array.length tasks in
  let results = Array.make n (Error Exit) in
  let step i = results.(i) <- (try Ok (f tasks.(i)) with e -> Error e) in
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      step i
    done
  else begin
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        step i;
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  results

let run ~jobs f tasks =
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (run_result ~jobs f tasks)

let map_list ~jobs f l = Array.to_list (run ~jobs f (Array.of_list l))
