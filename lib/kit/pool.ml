let default_jobs () = Proc.default_jobs ()

let m_spawn_failure = Metrics.counter "pool.spawn_failures"

(* Work-stealing is overkill for our coarse, independent tasks: a shared
   atomic next-task counter keeps all domains busy until the array is
   drained, and writing results by index preserves input order exactly. *)
let run_with ~jobs step n =
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      step i
    done
  else begin
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        step i;
        worker ()
      end
    in
    (* Domain.spawn can itself fail (the runtime caps live domains, and
       the OS can refuse a thread). Degrade to however many workers did
       spawn — the shared counter already load-balances over any number —
       rather than aborting with the spawned domains unjoined. *)
    let domains = ref [] in
    (try
       for _ = 2 to jobs do
         domains := Domain.spawn worker :: !domains
       done
     with _ -> Metrics.incr m_spawn_failure);
    worker ();
    List.iter Domain.join !domains
  end

let run_result ~jobs f tasks =
  let n = Array.length tasks in
  (* Every slot is overwritten before [run_with] returns (the counter
     hands out each index exactly once and workers drain it), so the
     placeholder can never escape. *)
  let results = Array.make n (Error Exit) in
  run_with ~jobs (fun i -> results.(i) <- (try Ok (f tasks.(i)) with e -> Error e)) n;
  results

let run_outcome ?mem_mb ?isolate ?wall ~jobs f tasks =
  let isolate = match isolate with Some b -> b | None -> Proc.enabled () in
  if isolate then Proc.outcomes ~jobs ?mem_mb ?wall f tasks
  else begin
    let n = Array.length tasks in
    let results = Array.make n Outcome.Timeout in
    run_with ~jobs
      (fun i -> results.(i) <- Guard.run ?mem_mb (fun () -> f tasks.(i)))
      n;
    results
  end

let run ~jobs f tasks =
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (run_result ~jobs f tasks)

let map_list ~jobs f l = Array.to_list (run ~jobs f (Array.of_list l))
