(** Resource bounds for the parsing frontends.

    Every recursive descent in the tool (SQL expressions, XCSP XML
    nesting, HG text, binary codecs) consults these limits so hostile
    nesting yields a clean [Error] instead of [Stack_overflow], and an
    absurdly large payload is refused up front instead of being chewed
    through. Both knobs are environment-tunable and re-read on each
    call, so tests can tighten them locally. *)

val default_depth : int
(** 200 — comfortably above any corpus instance, far below the stack. *)

val default_input : int
(** 64 MiB — the largest single corpus file is well under this. *)

val max_depth : unit -> int
(** [HB_PARSE_DEPTH] (>= 1) or {!default_depth}. *)

val max_input : unit -> int
(** [HB_MAX_INPUT] in bytes (>= 1) or {!default_input}. *)

val check_input : string -> Diag.t option
(** [Some diag] when the input exceeds {!max_input}; the diagnostic
    points at offset 0 and names the knob. *)

val depth_error : at:int -> Diag.t
(** The uniform "nested deeper than N" diagnostic for frontends to
    raise when their own depth counter crosses {!max_depth}. *)
