/* Hard per-process memory cap for Kit.Proc worker children.
 *
 * RLIMIT_DATA is the precise knob for an OCaml 5 runtime: the heap is
 * anonymous private mmap (counted under RLIMIT_DATA since Linux 4.7) and
 * the baseline is a few MB, whereas virtual address space (RLIMIT_AS)
 * starts out hundreds of MB large because of the runtime's reservations.
 * RLIMIT_AS is still set, with a fixed headroom over the cap, as a
 * backstop against a single giant mapping that something might create
 * outside the data segment. */

#include <caml/mlvalues.h>
#include <sys/resource.h>

#define HB_AS_HEADROOM_BYTES ((rlim_t)1 << 30) /* 1 GiB over the cap */

CAMLprim value hb_proc_setrlimit_mem(value v_mb)
{
    rlim_t bytes = (rlim_t)Long_val(v_mb) * 1024 * 1024;
    struct rlimit rl;
    int ok;

    rl.rlim_cur = rl.rlim_max = bytes;
    ok = setrlimit(RLIMIT_DATA, &rl) == 0;

    rl.rlim_cur = rl.rlim_max = bytes + HB_AS_HEADROOM_BYTES;
    setrlimit(RLIMIT_AS, &rl); /* best effort; RLIMIT_DATA is the cap */

    return Val_bool(ok);
}
