(** LEB128-style variable-length integer encoding, plus length-prefixed
    strings — the primitives of the compact binary repository format.

    Non-negative ints encode in 1 byte below 128, 2 bytes below 16384,
    and so on (7 payload bits per byte, little-endian, high bit =
    continuation). Decoding is bounds- and overflow-checked: a truncated
    or oversized varint raises {!Corrupt} rather than returning garbage,
    so a torn shard file surfaces as a clean per-entry error. *)

exception Corrupt of string
(** Raised by the [read_*] functions on truncation, overflow, or a
    length prefix pointing past the end of the input. *)

val write : Buffer.t -> int -> unit
(** Append the varint encoding of a non-negative int.
    @raise Invalid_argument on a negative argument. *)

val read : string -> int ref -> int
(** Decode a varint at [!pos], advancing [pos] past it.
    @raise Corrupt on truncated input or a value that does not fit in an
    OCaml int. *)

val write_string : Buffer.t -> string -> unit
(** Append a varint byte length followed by the raw bytes; round-trips
    arbitrary strings (including NUL bytes and invalid UTF-8) exactly. *)

val read_string : string -> int ref -> string
(** Decode a length-prefixed string at [!pos], advancing [pos].
    @raise Corrupt on truncation. *)
