(** Streaming 64-bit FNV-1a hash.

    Deterministic across runs, platforms and OCaml versions (unlike
    [Hashtbl.hash], which is neither specified nor stable), so the
    digests are safe to persist: they name content-addressed cache
    entries and fingerprint hypergraphs on disk. Not cryptographic —
    collision resistance is the 64-bit birthday bound, which is ample
    for content addressing a million-instance corpus but no defence
    against an adversary crafting collisions. *)

type t = int64
(** Hash state; also the final digest. Immutable — each [add_*] returns
    a new state, so prefixes can be shared. *)

val init : t
(** The FNV-1a offset basis. *)

val add_char : t -> char -> t
val add_string : t -> string -> t
(** Feeds the raw bytes. Note [add_string] is not length-prefixed:
    frame variable-length fields with {!add_int} of their length when
    injectivity of the input stream matters. *)

val add_int : t -> int -> t
(** Feeds the 8 little-endian bytes of the int, so values are
    self-delimiting. *)

val to_hex : t -> string
(** 16 lowercase hex characters. *)
