let mem_budget_mb () =
  match Sys.getenv_opt "HB_MEM_MB" with
  | Some v -> (
      match int_of_string_opt v with Some m when m >= 1 -> Some m | _ -> None)
  | None -> None

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

let with_mem_alarm mb f =
  match mb with
  | None | Some 0 -> f ()
  | Some mb ->
      let limit_words = mb * words_per_mb in
      let alarm =
        Gc.create_alarm (fun () ->
            (* Runs at the end of a major cycle, on the heap-owning side of
               the allocation that finished it; raising here surfaces at
               that allocation point, which is exactly an OOM would. *)
            if (Gc.quick_stat ()).Gc.heap_words > limit_words then
              raise Out_of_memory)
      in
      Fun.protect ~finally:(fun () -> Gc.delete_alarm alarm) f

let run ?mem_mb f =
  let mem_mb = match mem_mb with Some _ as m -> m | None -> mem_budget_mb () in
  match with_mem_alarm mem_mb f with
  | v -> Outcome.Ok v
  | exception Stack_overflow ->
      (* A fresh overflow leaves almost no stack headroom, so classify
         directly without capturing a backtrace — the capture itself
         could overflow again on the way to reporting. *)
      Outcome.Stack_overflow
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      let outcome = Outcome.classify e ~backtrace in
      (* After an OOM the dead task's heap is garbage but still mapped;
         compact so the survivors don't inherit its footprint. *)
      (match outcome with Outcome.Out_of_memory -> Gc.compact () | _ -> ());
      outcome
