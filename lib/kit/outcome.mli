(** Per-task result taxonomy for long-running campaigns.

    A campaign over thousands of instances must survive every way a
    single task can fail: budget expiry, memory exhaustion, runaway
    recursion, or a plain bug. [Outcome.t] is the structured record of
    what happened to one task; {!Guard.run} produces it, and the
    experiment journal persists it. *)

type 'a t =
  | Ok of 'a
  | Timeout  (** the task's {!Deadline} expired ([Timed_out] escaped) *)
  | Out_of_memory
      (** the allocator failed, or the {!Guard} soft memory budget
          ([HB_MEM_MB]) tripped *)
  | Stack_overflow
  | Crash of string
      (** any other exception; the payload is [Printexc.to_string]
          followed by the backtrace when one was recorded *)

val classify : exn -> backtrace:string -> 'a t
(** Map an escaped exception to its non-[Ok] outcome. [backtrace] (may
    be [""]) is appended to the [Crash] payload on its own lines. *)

val is_ok : 'a t -> bool

val map : ('a -> 'b) -> 'a t -> 'b t

val to_result : 'a t -> ('a, string) result
(** [Ok v] or [Error label-and-detail]. *)

val get : 'a t -> 'a option

val label : 'a t -> string
(** Stable one-word tag: ["ok"], ["timeout"], ["out_of_memory"],
    ["stack_overflow"], ["crash"] — the vocabulary of the journal format
    and the CLI summaries. *)

val detail : 'a t -> string
(** The [Crash] payload; [""] for every other case. *)

val of_label : string -> detail:string -> 'a t option
(** Inverse of {!label}/{!detail} for the failure cases; ["ok"] is not
    reconstructible (the payload lives elsewhere) and yields [None], as
    does an unknown label. *)

val pp : Format.formatter -> 'a t -> unit
