type span = { start : int; stop : int }

type severity = Error | Warning

type t = { severity : severity; span : span; message : string }

let span start stop =
  let start = max 0 start in
  let stop = max start stop in
  { start; stop }

let point off = span off off

let error sp message = { severity = Error; span = sp; message }

let errorf sp fmt = Printf.ksprintf (error sp) fmt

let warning sp message = { severity = Warning; span = sp; message }

let compare a b =
  match Stdlib.compare a.span.start b.span.start with
  | 0 -> (
      match Stdlib.compare a.span.stop b.span.stop with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

type position = { line : int; col : int }

let position source offset =
  let offset = min (max 0 offset) (String.length source) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if source.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = offset - !bol + 1 }

let severity_name = function Error -> "error" | Warning -> "warning"

let prefix ?file ~source d =
  let p = position source d.span.start in
  match file with
  | Some f when f <> "" -> Printf.sprintf "%s:%d:%d" f p.line p.col
  | _ -> Printf.sprintf "%d:%d" p.line p.col

let one_line ?file ~source d =
  Printf.sprintf "%s: %s: %s" (prefix ?file ~source d)
    (severity_name d.severity) d.message

(* Bounds of the source line containing [offset]: [bol, eol) excluding
   the newline itself. *)
let line_bounds source offset =
  let n = String.length source in
  let offset = min (max 0 offset) n in
  let bol = ref offset in
  while !bol > 0 && source.[!bol - 1] <> '\n' do decr bol done;
  let eol = ref offset in
  while !eol < n && source.[!eol] <> '\n' do incr eol done;
  (!bol, !eol)

(* Window a long line around the span so huge single-line inputs still
   render short reports. *)
let window = 120

let printable_char c = if c >= ' ' && c <> '\x7f' then c else '?'

let render ?file ~source d =
  let p = position source d.span.start in
  let bol, eol = line_bounds source d.span.start in
  let lo = max bol (d.span.start - (window / 2)) in
  let hi = min eol (max (d.span.start + window) (lo + window)) in
  let text = String.sub source lo (hi - lo) in
  let text = String.map printable_char text in
  let pre = if lo > bol then "..." else "" in
  let post = if hi < eol then "..." else "" in
  let gutter = Printf.sprintf "%4d | " p.line in
  let pad = String.make (String.length gutter - 2) ' ' ^ "| " in
  let caret_at = String.length pre + (d.span.start - lo) in
  let caret_len =
    let stop = min d.span.stop hi in
    max 1 (stop - d.span.start)
  in
  Printf.sprintf "%s\n%s%s%s%s\n%s%s%s\n"
    (one_line ?file ~source d)
    gutter pre text post
    pad (String.make caret_at ' ') (String.make caret_len '^')

let sorted ds = List.stable_sort compare ds

let render_all ?file ~source ds =
  String.concat "" (List.map (render ?file ~source) (sorted ds))

let to_message ?file ~source = function
  | [] -> "parse error"
  | ds -> (
      match sorted ds with
      | [] -> "parse error"
      | [ d ] -> one_line ?file ~source d
      | d :: rest ->
          let n = List.length rest in
          Printf.sprintf "%s (+%d more error%s)" (one_line ?file ~source d) n
            (if n = 1 then "" else "s"))

let to_json ~source d =
  let p = position source d.span.start in
  Json.Obj
    [
      ("severity", Json.String (severity_name d.severity));
      ("line", Json.Int p.line);
      ("col", Json.Int p.col);
      ("offset", Json.Int d.span.start);
      ("end_offset", Json.Int d.span.stop);
      ("message", Json.String d.message);
    ]

let all_to_json ~source ds =
  Json.List (List.map (to_json ~source) (sorted ds))
