(** Span-carrying diagnostics shared by every frontend.

    A diagnostic points at a half-open byte range [start, stop) of the
    source string it was produced from. Rendering resolves byte offsets
    to 1-based line:col positions lazily, so producing a diagnostic is
    allocation-cheap and never needs the line table up front. All four
    parsers (SQL, XCSP XML, HG text, HG binary) report through this
    module, giving the CLI and the HTTP service one error shape:
    [file:line:col: error: message] plus an optional caret line. *)

type span = { start : int; stop : int }
(** Half-open byte range into the source. [stop >= start]; a zero-width
    span ([stop = start]) renders a single caret at [start]. *)

type severity = Error | Warning

type t = { severity : severity; span : span; message : string }

val span : int -> int -> span
(** [span start stop] with both clamped to be non-negative and ordered. *)

val point : int -> span
(** Zero-width span at an offset. *)

val error : span -> string -> t

val errorf : span -> ('a, unit, string, t) format4 -> 'a

val warning : span -> string -> t

val compare : t -> t -> int
(** Orders by span start, then stop, then message — a stable order for
    reports that merge diagnostics from lexer and parser passes. *)

type position = { line : int; col : int }
(** 1-based line and column. *)

val position : string -> int -> position
(** [position source offset] resolves a byte offset (clamped into
    [0, length source]) against [source]. Columns count bytes, which
    matches how the corpus files are written (ASCII identifiers). *)

val one_line : ?file:string -> source:string -> t -> string
(** ["file:line:col: error: message"] — no trailing newline. When
    [file] is omitted the prefix is just ["line:col"]. *)

val render : ?file:string -> source:string -> t -> string
(** Multi-line caret report:
    {v
    file:3:9: error: expected ')'
      3 | SELECT (a FROM t
        |        ^
    v}
    Very long source lines are windowed around the span so a megabyte
    single-line input still renders a short report. Ends with a
    newline. *)

val render_all : ?file:string -> source:string -> t list -> string
(** Sorted concatenation of {!render} for each diagnostic. *)

val to_message : ?file:string -> source:string -> t list -> string
(** Backwards-compatible single-line summary: the first (lowest-offset)
    diagnostic via {!one_line}, plus [" (+N more errors)"] when the
    list holds more than one. Total fallback on an empty list. *)

val to_json : source:string -> t -> Json.t
(** [{"severity","line","col","offset","end_offset","message"}]. *)

val all_to_json : source:string -> t list -> Json.t
(** Sorted [Json.List] of {!to_json}. *)
