(** Deterministic adversarial input generation and shrinking.

    Two modes, both seeded through {!Rng} so every case is reproducible
    from [(seed, index)] alone:

    - {b grammar mode} ({!sql}, {!xcsp}, {!hg}, {!hbx}) builds inputs
      that are structurally close to each format but tuned to hurt:
      deep CTE/EXISTS/IN nesting past [HB_PARSE_DEPTH], giant IN lists,
      ambiguous aliases, pathological XML entities and CDATA splits,
      duplicate and control-character names, pseudo-varint streams;
    - {b mutation mode} ({!mutate}) applies byte-level damage (flips,
      splices, truncation, duplication) to a valid corpus input.

    The consumer's invariant is crash-freedom: a parser fed any of
    these must return [Ok] or a structured [Error] — never raise, never
    overflow the stack, never exceed the memory budget. {!shrink}
    reduces a failing input to a near-minimal reproducer. *)

val mutate : Rng.t -> string -> string
(** One to four random byte-level mutations of the input. Never returns
    the input unchanged unless it is empty. *)

val sql : Rng.t -> string
(** Adversarial SQL: hostile but recognisable SELECT statements. *)

val xcsp : Rng.t -> string
(** Adversarial XCSP3 XML documents. *)

val hg : Rng.t -> string
(** Adversarial HG text-format hypergraphs. *)

val hbx : Rng.t -> string
(** Adversarial binary-hypergraph byte strings (varint streams). *)

val shrink : ?rounds:int -> (string -> bool) -> string -> string
(** [shrink pred input] — given [pred input = true] (the failure
    reproduces), repeatedly removes chunks (ddmin-style halving) while
    the predicate stays true, returning a smaller input on which [pred]
    still holds. Deterministic; at most [rounds] (default 8) full
    passes. *)
