exception Timed_out

(* Cancel flags form a tree: cancelling a flag aborts every deadline
   holding it or any descendant flag. [Ghd.Par_bal_sep] hangs one flag
   per fork group off the chain, so a failed sibling, an ancestor group,
   and an external portfolio cancellation all land at the same polls. *)
type cancel = { flag : bool Atomic.t; parent : cancel option }

type kind =
  | No_limit
  | Wall of float (* absolute deadline *)
  | Fuel of int Atomic.t

type t = { kind : kind; started : float; cancel : cancel }

let now () = Unix.gettimeofday ()

(* Wall-clock polling is amortised over a domain-local tick counter (one
   counter per domain, shared by every deadline that domain checks) so that
   a deadline value can be handed to several domains without races. *)
let ticks_key = Domain.DLS.new_key (fun () -> ref 0)

let new_cancel ?parent () : cancel = { flag = Atomic.make false; parent }

let fresh_cancel () = new_cancel ()

let none = { kind = No_limit; started = 0.0; cancel = fresh_cancel () }

let of_seconds s =
  let t0 = now () in
  { kind = Wall (t0 +. s); started = t0; cancel = fresh_cancel () }

let of_fuel n =
  { kind = Fuel (Atomic.make n); started = now (); cancel = fresh_cancel () }

let cancel c = Atomic.set c.flag true

let rec is_cancelled (c : cancel) =
  Atomic.get c.flag
  || (match c.parent with Some p -> is_cancelled p | None -> false)

let with_cancel c t = { t with cancel = c }

let cancel_token t = t.cancel

let cancelled t = is_cancelled t.cancel

let expired t =
  is_cancelled t.cancel
  ||
  match t.kind with
  | No_limit -> false
  | Wall d -> now () >= d
  | Fuel r -> Atomic.get r <= 0

let check t =
  (* Fault-injection site: "force a raise at the Nth deadline poll" lets
     tests crash a search at an arbitrary depth. Free when disarmed. *)
  if Fault.armed () then Fault.hit "deadline.poll";
  if is_cancelled t.cancel then raise Timed_out;
  match t.kind with
  | No_limit -> ()
  | Fuel r ->
      (* The budget admits n checks: the caller seeing the old value 1 (the
         nth) raises, as do all later callers (old value <= 0). *)
      if Atomic.fetch_and_add r (-1) <= 1 then raise Timed_out
  | Wall d ->
      let ticks = Domain.DLS.get ticks_key in
      incr ticks;
      if !ticks land 1023 = 0 && now () >= d then raise Timed_out

let elapsed t = if t.started = 0.0 then 0.0 else now () -. t.started

let fuel_remaining t =
  match t.kind with
  | Fuel r -> Some (Stdlib.max 0 (Atomic.get r))
  | No_limit | Wall _ -> None

let consume_fuel t n =
  if n > 0 then
    match t.kind with
    | Fuel r -> ignore (Atomic.fetch_and_add r (-n))
    | No_limit | Wall _ -> ()

let refund_fuel t n =
  if n > 0 then
    match t.kind with
    | Fuel r -> ignore (Atomic.fetch_and_add r n)
    | No_limit | Wall _ -> ()
