exception Corrupt of string

let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read s pos =
  let len = String.length s in
  let rec go acc shift =
    if !pos >= len then raise (Corrupt "truncated varint");
    (* 9 * 7 = 63 bits: a 10th byte cannot contribute without overflow. *)
    if shift > 62 then raise (Corrupt "varint overflow");
    let b = Char.code s.[!pos] in
    incr pos;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then raise (Corrupt "varint overflow");
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let write_string buf s =
  write buf (String.length s);
  Buffer.add_string buf s

let read_string s pos =
  let n = read s pos in
  if n < 0 || !pos + n > String.length s then
    raise (Corrupt "truncated string");
  let r = String.sub s !pos n in
  pos := !pos + n;
  r
