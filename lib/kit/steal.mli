(** Work-stealing fork/join scheduler for intra-instance parallelism.

    {!Pool} parallelises {e across} coarse independent tasks with a shared
    next-index counter; this module parallelises {e inside} one recursive
    search. A {!run} owns a fixed crew of domains, each with a private
    Chase–Lev deque: {!fork} pushes a subtask onto the calling worker's
    deque (bottom), the owner pops LIFO from the same end, and idle
    workers steal FIFO from the top of a victim's deque — the classic
    discipline that keeps the hot path allocation-light and steals rare.
    A joining parent is never parked: {!join} first reclaims its own
    unstarted children (claiming a pending task beats the deque copy — a
    stale deque entry finds the task already claimed and is a no-op),
    then steals from siblings, so the deepest subtree always has every
    domain available to it.

    Determinism contract: the scheduler never decides {e what} work runs,
    only {e where}. Every forked task is executed exactly once, whatever
    the steal interleaving, so a caller whose tasks are self-contained
    (private memo tables, private fuel shares, per-domain {!Metrics}
    stores) gets bit-identical counters at any [jobs] — the invariant
    [Ghd.Par_bal_sep] pins under [HB_FUEL].

    Cancellation is cooperative and belongs to the caller: tasks poll
    their {!Deadline} (or any {!Deadline.cancel} flags threaded through
    the task closures); the scheduler itself only guarantees that after
    {!run} returns no worker domain survives.

    Scheduler traffic counters (forks, executions, steals, inlined
    overflows) are kept out of {!Metrics} on purpose: steal counts are
    scheduling artifacts and would break the bit-identity audit across
    [HB_JOBS]. Read them with {!stats} / {!totals} instead. *)

type t
(** A live crew of workers; valid only during the {!run} that made it. *)

type 'a promise

val run : ?jobs:int -> (t -> 'a) -> 'a
(** [run ~jobs f] spawns [jobs - 1] worker domains (degrading silently if
    the runtime refuses a spawn, like {!Pool}), applies [f] to the crew
    on the calling domain, then shuts every worker down — also when [f]
    raises. [jobs] defaults to {!Pool.default_jobs}[ ()]; [jobs <= 1]
    spawns nothing and runs every task inline on the caller, which makes
    [HB_JOBS=1] a zero-domain configuration safe even in processes that
    must keep [Unix.fork] usable (see [Benchlib.Service]). Nested runs
    are allowed: the inner run's crew is distinct and the outer worker
    identity is restored when it finishes. *)

val fork : t -> (unit -> 'a) -> 'a promise
(** Submit a subtask. Called from inside the crew it pushes onto the
    calling worker's deque; if the deque is full, or the caller is not a
    member of [t], the task runs inline immediately (counted in
    [inlined]). The closure runs at most once, on exactly one domain. *)

val join : t -> 'a promise -> 'a
(** Wait for a promise, helping: the caller executes its own pending
    forks and steals from other workers while the result is not ready.
    Re-raises the task's exception (e.g. {!Deadline.Timed_out}) in the
    joining domain. Every forked promise must be joined (or the task must
    be side-effect-free), and only by a member of the same crew. *)

val jobs : t -> int
(** Crew size (including the caller), after spawn degradation. *)

type stats = {
  forked : int;      (** tasks submitted via {!fork} *)
  executed : int;    (** tasks run to completion (= forked, after joins) *)
  stolen : int;      (** executions on a different worker than the forker *)
  inlined : int;     (** forks run inline (deque overflow or foreign caller) *)
}

val stats : t -> stats
(** Traffic of this crew so far. Exact once every promise is joined. *)

val totals : unit -> stats
(** Process-wide sums over all finished and live runs since start-up (or
    {!reset_totals}); what [hyperbench decompose --stats] prints. *)

val reset_totals : unit -> unit
