(* Bitsets backed by int arrays. The universe size is stored in the first
   cell so that sets over different universes cannot be mixed silently.
   Words hold [bits] elements each.

   Two API layers share the representation:
   - the immutable operations ([union], [add], ...) allocate their result
     and are the reference semantics;
   - the in-place kernel ([union_into], [add_in_place], ...) mutates its
     destination and exists for hot loops that would otherwise allocate a
     fresh array per fold step. A set reachable from two places must never
     be mutated; the search cores only mutate buffers they own (usually
     borrowed from a {!Scratch} arena). *)

let bits = Sys.int_size

type t = int array
(* t.(0) = universe size; t.(1..) = bit words. *)

let words n = (n + bits - 1) / bits

let empty n =
  assert (n >= 0);
  Array.make (1 + words n) 0 |> fun a -> a.(0) <- n; a

let universe s = s.(0)

let check_elt s x =
  if x < 0 || x >= s.(0) then
    invalid_arg (Printf.sprintf "Bitset: element %d outside universe %d" x s.(0))

let full n =
  let s = empty n in
  let w = words n in
  for i = 1 to w do s.(i) <- -1 done;
  (* Clear the bits beyond n in the last word. *)
  let rem = n mod bits in
  if w > 0 && rem <> 0 then s.(w) <- s.(w) land ((1 lsl rem) - 1);
  s

let mem x s =
  check_elt s x;
  s.(1 + x / bits) land (1 lsl (x mod bits)) <> 0

let same_universe a b =
  if a.(0) <> b.(0) then
    invalid_arg
      (Printf.sprintf "Bitset: universes differ (%d vs %d)" a.(0) b.(0))

(* --- in-place kernel ---------------------------------------------------- *)

let clear s = Array.fill s 1 (Array.length s - 1) 0

let add_in_place x s =
  check_elt s x;
  s.(1 + x / bits) <- s.(1 + x / bits) lor (1 lsl (x mod bits))

let remove_in_place x s =
  check_elt s x;
  s.(1 + x / bits) <- s.(1 + x / bits) land lnot (1 lsl (x mod bits))

let copy_into src ~into =
  same_universe src into;
  Array.blit src 1 into 1 (Array.length src - 1)

let union_into ~into s =
  same_universe into s;
  for i = 1 to Array.length into - 1 do
    into.(i) <- into.(i) lor s.(i)
  done

let inter_into ~into s =
  same_universe into s;
  for i = 1 to Array.length into - 1 do
    into.(i) <- into.(i) land s.(i)
  done

let diff_into ~into s =
  same_universe into s;
  for i = 1 to Array.length into - 1 do
    into.(i) <- into.(i) land lnot s.(i)
  done

(* --- immutable reference operations ------------------------------------- *)

let copy = Array.copy

let add x s =
  check_elt s x;
  let s' = Array.copy s in
  s'.(1 + x / bits) <- s'.(1 + x / bits) lor (1 lsl (x mod bits));
  s'

let remove x s =
  check_elt s x;
  let s' = Array.copy s in
  s'.(1 + x / bits) <- s'.(1 + x / bits) land lnot (1 lsl (x mod bits));
  s'

let singleton n x =
  let s = empty n in
  add_in_place x s;
  s

let of_list n xs =
  let s = empty n in
  List.iter (fun x -> add_in_place x s) xs;
  s

let map2 f a b =
  same_universe a b;
  let r = Array.copy a in
  for i = 1 to Array.length a - 1 do r.(i) <- f a.(i) b.(i) done;
  r

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

(* The scan predicates below use top-level recursive helpers rather than
   local [let rec go i = ...] closures: a local closure captures its
   environment and is allocated on every call, which shows up badly when
   [subset]/[intersects] run once per edge in the component BFS. With all
   state passed as arguments these compile to closed loops — zero
   allocation. *)

let rec empty_from s i = i >= Array.length s || (s.(i) = 0 && empty_from s (i + 1))
let is_empty s = empty_from s 1

let rec equal_from a b i =
  i >= Array.length a || (a.(i) = b.(i) && equal_from a b (i + 1))

let equal a b =
  same_universe a b;
  equal_from a b 1

let rec compare_from a b i =
  if i >= Array.length a then 0
  else
    let c = Int.compare a.(i) b.(i) in
    if c <> 0 then c else compare_from a b (i + 1)

let compare a b =
  same_universe a b;
  compare_from a b 1

let rec subset_from a b i =
  i >= Array.length a || (a.(i) land lnot b.(i) = 0 && subset_from a b (i + 1))

let subset a b =
  same_universe a b;
  subset_from a b 1

let rec intersects_from a b i =
  i < Array.length a && (a.(i) land b.(i) <> 0 || intersects_from a b (i + 1))

let intersects a b =
  same_universe a b;
  intersects_from a b 1

let rec diff_subset_from a b c i =
  i >= Array.length a
  || (a.(i) land lnot b.(i) land lnot c.(i) = 0 && diff_subset_from a b c (i + 1))

let diff_subset a b c =
  same_universe a b;
  same_universe a c;
  diff_subset_from a b c 1

(* --- population count and iteration ------------------------------------- *)

(* Word-parallel (SWAR) popcount. The usual 64-bit masks do not fit in
   OCaml's 63-bit int literals, so they are assembled by shifting; on a
   63-bit int the top 2-bit field is the lone bit 62, for which the
   pairwise-subtract step still holds (there is no bit 63 to borrow
   from). Falls back to the subtract-lowest-bit loop on sub-64-bit
   platforms, where the [lsl 32] mask assembly would be meaningless. *)
let m1 = 0x5555_5555 lor (0x5555_5555 lsl 32)
let m2 = 0x3333_3333 lor (0x3333_3333 lsl 32)
let m4 = 0x0F0F_0F0F lor (0x0F0F_0F0F lsl 32)

let popcount_loop x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let popcount_swar x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  let x = x + (x lsr 8) in
  let x = x + (x lsr 16) in
  let x = x + (x lsr 32) in
  x land 0x7f

let popcount = if bits > 32 then popcount_swar else popcount_loop

let rec cardinal_from s i acc =
  if i >= Array.length s then acc else cardinal_from s (i + 1) (acc + popcount s.(i))

let cardinal s = cardinal_from s 1 0

let rec inter_cardinal_from a b i acc =
  if i >= Array.length a then acc
  else inter_cardinal_from a b (i + 1) (acc + popcount (a.(i) land b.(i)))

let inter_cardinal a b =
  same_universe a b;
  inter_cardinal_from a b 1 0

(* Count-trailing-zeros via a De Bruijn-style perfect hash: for an
   isolated bit [b = 2^i], [(b * ctz_magic) lsr ctz_shift] is a distinct
   table index for every i in [0, bits). The classic 64-bit De Bruijn
   constant does not survive OCaml's mod-2^63 arithmetic, so the
   multiplier is found once at module initialisation by stepping odd
   constants until the hash is collision-free over all [bits] powers of
   two — the table is correct by construction and the search is a few
   dozen probes at most (128 slots for at most 63 keys). *)
let ctz_shift = bits - 7

let ctz_magic =
  let perfect m =
    let seen = Array.make 128 false in
    let rec go i =
      i >= bits
      ||
      let key = (m * (1 lsl i)) lsr ctz_shift in
      (not seen.(key)) && (seen.(key) <- true; go (i + 1))
    in
    go 0
  in
  let rec find m = if perfect m then m else find (m + 2) in
  find 0x0218_A392_CD3D_5DBF

let ctz_table =
  let t = Array.make 128 0 in
  for i = 0 to bits - 1 do
    t.((ctz_magic * (1 lsl i)) lsr ctz_shift) <- i
  done;
  t

let ctz b = ctz_table.((b * ctz_magic) lsr ctz_shift)

(* Word state threaded through a tail call instead of a [ref]: an int ref
   is a heap block, and [iter] runs once per word of every set the search
   scans. *)
let rec iter_word f base w =
  if w <> 0 then begin
    let b = w land (-w) in
    f (base + ctz b);
    iter_word f base (w lxor b)
  end

let iter f s =
  for i = 1 to Array.length s - 1 do
    if s.(i) <> 0 then iter_word f ((i - 1) * bits) s.(i)
  done

let fold f s init =
  let acc = ref init in
  iter (fun x -> acc := f x !acc) s;
  !acc

let to_list s = List.rev (fold (fun x l -> x :: l) s [])

let rec first_from s i =
  if i >= Array.length s then -1
  else if s.(i) <> 0 then ((i - 1) * bits) + ctz (s.(i) land (- s.(i)))
  else first_from s (i + 1)

let first s = first_from s 1

let choose s =
  let x = first s in
  if x < 0 then None else Some x

(* [union_indexed_into ~into arr s] is [iter (fun i -> union_into ~into
   arr.(i)) s] without the closure: accumulation over an index set is the
   inner loop of both incidence directions ([vertices_of_edges],
   [edges_touching]), and at one closure per call those dominated what the
   in-place kernel left of the allocation profile. *)
let rec union_indexed_word ~into arr base w =
  if w <> 0 then begin
    let b = w land (-w) in
    union_into ~into arr.(base + ctz b);
    union_indexed_word ~into arr base (w lxor b)
  end

let union_indexed_into ~into arr s =
  for i = 1 to Array.length s - 1 do
    if s.(i) <> 0 then union_indexed_word ~into arr ((i - 1) * bits) s.(i)
  done

exception Stop
(* Constant exception, raised without allocating (unlike a [let exception
   Fail of ...] declared per call). *)

let for_all p s =
  try iter (fun x -> if not (p x) then raise_notrace Stop) s; true
  with Stop -> false

let exists p s = not (for_all (fun x -> not (p x)) s)

let filter p s =
  let r = empty s.(0) in
  iter (fun x -> if p x then add_in_place x r) s;
  r

let hash s =
  let h = ref 5381 in
  for i = 1 to Array.length s - 1 do
    h := (!h * 33) lxor s.(i)
  done;
  !h land max_int

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat ", " (List.map string_of_int (to_list s)))

(* --- scratch arena ------------------------------------------------------- *)

module Scratch = struct
  (* A stack of reusable universe-sized buffers, keyed by universe size.
     Arenas are not thread-safe: each search call creates (or owns) its
     own, which also keeps borrow/release discipline local. The pool list
     is tiny in practice (one or two universes per search), so an assoc
     list beats a hash table. *)
  type set = t

  type arena = { mutable pools : (int * set list ref) list }

  let create () = { pools = [] }

  let pool a n =
    let rec find = function
      | [] ->
          let p = ref [] in
          a.pools <- (n, p) :: a.pools;
          p
      | (m, p) :: _ when m = n -> p
      | _ :: rest -> find rest
    in
    find a.pools

  let borrow a n =
    let p = pool a n in
    match !p with
    | s :: rest ->
        p := rest;
        clear s;
        s
    | [] -> empty n

  let release a s =
    let p = pool a (universe s) in
    p := s :: !p
end
