(* Seeded adversarial generators. Everything below is a pure function
   of the Rng stream: no wall clock, no global state, so a failing
   (seed, index) pair replays bit-identically. *)

let buf_add_rep b n s =
  for _ = 1 to n do
    Buffer.add_string b s
  done

(* ------------------------------------------------------------------ *)
(* Byte-level mutation                                                *)
(* ------------------------------------------------------------------ *)

let mutate rng s =
  if String.length s = 0 then "\x00"
  else begin
    let b = Bytes.of_string s in
    let result = ref b in
    let ops = 1 + Rng.int rng 4 in
    for _ = 1 to ops do
      let b = !result in
      let n = Bytes.length b in
      if n = 0 then result := Bytes.of_string "\xff"
      else
        match Rng.int rng 6 with
        | 0 ->
            (* flip one byte *)
            let i = Rng.int rng n in
            Bytes.set b i (Char.chr (Rng.int rng 256))
        | 1 ->
            (* delete a slice *)
            let i = Rng.int rng n in
            let len = min (n - i) (1 + Rng.int rng 16) in
            let out = Bytes.create (n - len) in
            Bytes.blit b 0 out 0 i;
            Bytes.blit b (i + len) out i (n - i - len);
            result := out
        | 2 ->
            (* insert random bytes *)
            let i = Rng.int rng (n + 1) in
            let len = 1 + Rng.int rng 16 in
            let ins = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
            let out = Bytes.create (n + len) in
            Bytes.blit b 0 out 0 i;
            Bytes.blit ins 0 out i len;
            Bytes.blit b i out (i + len) (n - i);
            result := out
        | 3 ->
            (* duplicate a slice in place *)
            let i = Rng.int rng n in
            let len = min (n - i) (1 + Rng.int rng 32) in
            let out = Bytes.create (n + len) in
            Bytes.blit b 0 out 0 (i + len);
            Bytes.blit b i out (i + len) len;
            Bytes.blit b (i + len) out (i + 2 * len) (n - i - len);
            result := out
        | 4 ->
            (* truncate *)
            let keep = Rng.int rng n in
            result := Bytes.sub b 0 keep
        | _ ->
            (* overwrite a slice with a constant *)
            let i = Rng.int rng n in
            let len = min (n - i) (1 + Rng.int rng 32) in
            let c = Rng.pick rng [| '\x00'; '\xff'; '('; ','; '<'; '&' |] in
            Bytes.fill b i len c
    done;
    let out = Bytes.to_string !result in
    if out = s then out ^ "\x7f" else out
  end

(* ------------------------------------------------------------------ *)
(* Shared name material                                               *)
(* ------------------------------------------------------------------ *)

let hostile_name rng =
  match Rng.int rng 6 with
  | 0 -> "a"
  | 1 -> "a" ^ string_of_int (Rng.int rng 4)
  (* control chars / spaces belong inside quoted names *)
  | 2 -> "x\x01y"
  | 3 -> "a b"
  | 4 -> String.make (1 + Rng.int rng 64) 'z'
  | _ -> "\xc3\xa9\xff"

(* ------------------------------------------------------------------ *)
(* SQL                                                                *)
(* ------------------------------------------------------------------ *)

let sql rng =
  let b = Buffer.create 256 in
  (match Rng.int rng 9 with
  | 0 ->
      (* parenthesis bomb: an expression nested past HB_PARSE_DEPTH *)
      let d = 50 + Rng.int rng 400 in
      Buffer.add_string b "SELECT ";
      buf_add_rep b d "(";
      Buffer.add_string b "x";
      buf_add_rep b d ")";
      Buffer.add_string b " FROM t"
  | 1 ->
      (* deep EXISTS chain *)
      let d = 20 + Rng.int rng 150 in
      Buffer.add_string b "SELECT a FROM t0 WHERE ";
      for i = 1 to d do
        Buffer.add_string b
          (Printf.sprintf "EXISTS (SELECT b FROM t%d WHERE " i)
      done;
      Buffer.add_string b "1 = 1";
      buf_add_rep b d ")"
  | 2 ->
      (* deep IN (subquery) chain *)
      let d = 20 + Rng.int rng 150 in
      Buffer.add_string b "SELECT a FROM t WHERE a IN ";
      for _ = 1 to d do
        Buffer.add_string b "(SELECT a FROM t WHERE a IN "
      done;
      Buffer.add_string b "(SELECT a FROM t)";
      buf_add_rep b d ")"
  | 3 ->
      (* giant IN list *)
      let n = 500 + Rng.int rng 3000 in
      Buffer.add_string b "SELECT a FROM t WHERE a IN (";
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int (Rng.int rng 1000))
      done;
      Buffer.add_string b ")"
  | 4 ->
      (* long CTE chain, each view reading the previous *)
      let n = 2 + Rng.int rng 60 in
      Buffer.add_string b "WITH v0 AS (SELECT a FROM base)";
      for i = 1 to n do
        Buffer.add_string b
          (Printf.sprintf ", v%d AS (SELECT a FROM v%d)" i (i - 1))
      done;
      Buffer.add_string b (Printf.sprintf " SELECT a FROM v%d" n)
  | 5 ->
      (* ambiguous / duplicate aliases and NOT chains *)
      let d = Rng.int rng 300 in
      Buffer.add_string b "SELECT t.a, t.a FROM r AS t, s AS t WHERE ";
      buf_add_rep b d "NOT ";
      Buffer.add_string b "t.a = t.b"
  | 6 ->
      (* unterminated string / comment *)
      if Rng.bool rng then
        Buffer.add_string b "SELECT 'abc FROM t WHERE x = 1"
      else Buffer.add_string b "SELECT a /* no end FROM t"
  | 7 ->
      (* keyword soup with control characters *)
      let n = 5 + Rng.int rng 60 in
      for _ = 1 to n do
        Buffer.add_string b
          (Rng.pick rng
             [|
               "SELECT"; "FROM"; "WHERE"; "("; ")"; ","; ";"; "JOIN";
               "ON"; "AND"; "OR"; "NOT"; "IN"; "EXISTS"; "'"; "\x00";
               "--x\n"; "0x"; "1e"; "."; "=";
             |]);
        Buffer.add_char b ' '
      done
  | _ ->
      (* several broken statements in one file: exercises recovery *)
      let n = 2 + Rng.int rng 4 in
      for i = 0 to n - 1 do
        if Rng.bool rng then
          Buffer.add_string b
            (Printf.sprintf "SELECT a%d FROM WHERE x%d;\n" i i)
        else
          Buffer.add_string b
            (Printf.sprintf "SELECT %s FROM t%d GROUP BY;\n"
               (hostile_name rng) i)
      done);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* XCSP3 XML                                                          *)
(* ------------------------------------------------------------------ *)

let xcsp rng =
  let b = Buffer.create 256 in
  (match Rng.int rng 8 with
  | 0 ->
      (* element nesting past the depth bound *)
      let d = 50 + Rng.int rng 400 in
      Buffer.add_string b "<instance>";
      for _ = 1 to d do Buffer.add_string b "<g>" done;
      Buffer.add_string b "x";
      for _ = 1 to d do Buffer.add_string b "</g>" done;
      Buffer.add_string b "</instance>"
  | 1 ->
      (* entity pathology: undefined, unterminated, recursive-looking *)
      Buffer.add_string b "<instance><variables><var id=\"x\">";
      Buffer.add_string b
        (Rng.pick rng
           [|
             "&undefined;"; "&amp"; "&#x41;&#65;"; "&&&;";
             "&amp;amp;lt;"; "& loose &";
           |]);
      Buffer.add_string b "</var></variables></instance>"
  | 2 ->
      (* CDATA tricks: nesting markers, split terminators *)
      Buffer.add_string b "<instance><constraints><extension><supports>";
      Buffer.add_string b
        (Rng.pick rng
           [|
             "<![CDATA[ <![CDATA[ inner ]]>";
             "<![CDATA[ ]] > ]]>";
             "<![CDATA[ unterminated ";
             "<![CDATA[a]]><![CDATA[b]]>";
           |]);
      Buffer.add_string b "</supports></extension></constraints></instance>"
  | 3 ->
      (* huge attribute value *)
      let n = 1024 + Rng.int rng 65536 in
      Buffer.add_string b "<instance><variables><var id=\"";
      buf_add_rep b n "A";
      Buffer.add_string b "\" note=\"";
      buf_add_rep b (Rng.int rng 1024) "&amp;";
      Buffer.add_string b "\"/></variables></instance>"
  | 4 ->
      (* unterminated comment / misc junk *)
      Buffer.add_string b
        (Rng.pick rng
           [|
             "<?xml version=\"1.0\"?><!-- never closed <instance/>";
             "<!DOCTYPE instance [ <!ENTITY x \"y\"> ]><instance/>";
             "<instance><!-- a <!-- b --> c --></instance>";
             "<instance";
           |])
  | 5 ->
      (* array-size bombs *)
      Buffer.add_string b "<instance><variables><array id=\"x\" size=\"";
      Buffer.add_string b
        (Rng.pick rng
           [|
             "[999999999]"; "[100000][100000]"; "[3][-1]"; "[]";
             "[1][2][3][4][5][6][7][8]";
           |]);
      Buffer.add_string b
        "\"> 0..1 </array></variables><constraints><extension>\
         <list> x[] </list><supports>(0)</supports></extension>\
         </constraints></instance>"
  | 6 ->
      (* mismatched / duplicate structure *)
      Buffer.add_string b
        (Rng.pick rng
           [|
             "<instance><variables></instance></variables>";
             "<instance><variables/><variables/></instance>";
             "<instance><var id=\"a\" id=\"a\">1..2</var></instance>";
             "<instance><constraints><group></group></constraints>\
              </instance>";
           |])
  | _ ->
      (* tag soup *)
      let n = 5 + Rng.int rng 80 in
      for _ = 1 to n do
        Buffer.add_string b
          (Rng.pick rng
             [|
               "<a>"; "</a>"; "<"; ">"; "/>"; "<b x='"; "'"; "\"";
               "<![CDATA["; "]]>"; "<!--"; "-->"; "&#"; ";"; "x";
             |])
      done);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HG text                                                            *)
(* ------------------------------------------------------------------ *)

let hg rng =
  let b = Buffer.create 256 in
  (match Rng.int rng 7 with
  | 0 ->
      (* duplicate edge names, shared vertices *)
      let n = 2 + Rng.int rng 20 in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b "e(a,b)"
      done;
      Buffer.add_char b '.'
  | 1 ->
      (* quoted names with control chars / embedded quotes *)
      Buffer.add_string b
        (Rng.pick rng
           [|
             "\"e\x01\"(\"a\nb\",c).";
             "\"e\"\"x\"(a,b).";
             "\"unterminated(a,b).";
             "\"\"(a).";
           |])
  | 2 ->
      (* giant single edge *)
      let n = 500 + Rng.int rng 5000 in
      Buffer.add_string b "big(";
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "v";
        Buffer.add_string b (string_of_int i)
      done;
      Buffer.add_string b ")."
  | 3 ->
      (* separator abuse *)
      Buffer.add_string b
        (Rng.pick rng
           [|
             "e1(a,b),,e2(b,c)."; "e1(a,b)"; "e1(a,b)..";
             "e1(,)."; "e1(a,)."; "(a,b)."; "e1)a,b(."; ",";
             "e1(a,b) e2(b,c).";
           |])
  | 4 ->
      (* comment tricks *)
      Buffer.add_string b
        (Rng.pick rng
           [|
             "% only a comment\n";
             "e1(a,%hidden\nb).";
             "e1(a,b).% trailing";
             "%\x00binary\ne1(a,b).";
           |])
  | 5 ->
      (* many tiny edges *)
      let n = 100 + Rng.int rng 2000 in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "e%d(v%d,v%d)" i i (i + 1))
      done;
      Buffer.add_char b '.'
  | _ ->
      (* raw noise with format punctuation *)
      let n = 5 + Rng.int rng 120 in
      for _ = 1 to n do
        Buffer.add_string b
          (Rng.pick rng
             [| "("; ")"; ","; "."; "a"; "\""; "%"; "\n"; "\x02"; " " |])
      done);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Binary hypergraph (hbx)                                            *)
(* ------------------------------------------------------------------ *)

let varint b n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let hbx rng =
  let b = Buffer.create 64 in
  (match Rng.int rng 6 with
  | 0 ->
      (* plausible header with absurd counts *)
      varint b (Rng.pick rng [| 1000000000; max_int; 0 |]);
      varint b (Rng.pick rng [| 1000000000; max_int; 0 |]);
      for _ = 1 to Rng.int rng 32 do
        Buffer.add_char b (Char.chr (Rng.int rng 256))
      done
  | 1 ->
      (* overlong varint: continuation bit forever *)
      buf_add_rep b (2 + Rng.int rng 20) "\xff";
      Buffer.add_char b '\x01'
  | 2 ->
      (* tiny valid-looking graph, then surgical damage *)
      varint b 2;
      varint b 1;
      varint b 1; Buffer.add_char b 'a';
      varint b 1; Buffer.add_char b 'b';
      varint b 1; Buffer.add_char b 'e';
      varint b 2; varint b 0; varint b 1;
      let s = Buffer.contents b in
      Buffer.clear b;
      Buffer.add_string b (mutate rng s)
  | 3 ->
      (* truncated mid-structure *)
      varint b 3;
      varint b 2;
      varint b 5;
      Buffer.add_string b "ab"
  | 4 ->
      (* name length lies about remaining bytes *)
      varint b 1;
      varint b 1;
      varint b 100000;
      Buffer.add_string b "short"
  | _ ->
      (* pure noise *)
      let n = Rng.int rng 256 in
      for _ = 1 to n do
        Buffer.add_char b (Char.chr (Rng.int rng 256))
      done);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let shrink ?(rounds = 8) pred input =
  (* ddmin-lite: try removing progressively smaller chunks while the
     predicate keeps holding. Deterministic and bounded. *)
  let current = ref input in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass < rounds do
    incr pass;
    changed := false;
    let chunk = ref (max 1 (String.length !current / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < String.length !current do
        let s = !current in
        let n = String.length s in
        let len = min !chunk (n - !i) in
        if len > 0 then begin
          let candidate =
            String.sub s 0 !i ^ String.sub s (!i + len) (n - !i - len)
          in
          if pred candidate then begin
            current := candidate;
            changed := true
            (* keep [i] in place: the next chunk slid into position *)
          end
          else i := !i + len
        end
        else i := n
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done
  done;
  !current
