type 'a t =
  | Ok of 'a
  | Timeout
  | Out_of_memory
  | Stack_overflow
  | Crash of string

let classify e ~backtrace =
  match e with
  | Deadline.Timed_out -> Timeout
  | Stdlib.Out_of_memory -> Out_of_memory
  | Stdlib.Stack_overflow -> Stack_overflow
  | e ->
      let msg = Printexc.to_string e in
      Crash (if backtrace = "" then msg else msg ^ "\n" ^ backtrace)

let is_ok = function Ok _ -> true | _ -> false

let map f = function
  | Ok v -> Ok (f v)
  | (Timeout | Out_of_memory | Stack_overflow | Crash _) as o -> o

let get = function Ok v -> Some v | _ -> None

let label = function
  | Ok _ -> "ok"
  | Timeout -> "timeout"
  | Out_of_memory -> "out_of_memory"
  | Stack_overflow -> "stack_overflow"
  | Crash _ -> "crash"

let detail = function Crash m -> m | _ -> ""

let of_label l ~detail =
  match l with
  | "timeout" -> Some Timeout
  | "out_of_memory" -> Some Out_of_memory
  | "stack_overflow" -> Some Stack_overflow
  | "crash" -> Some (Crash detail)
  | _ -> None

let to_result = function
  | Ok v -> Stdlib.Ok v
  | Crash m -> Stdlib.Error ("crash: " ^ m)
  | o -> Stdlib.Error (label o)

let pp fmt o =
  match o with
  | Crash m -> Format.fprintf fmt "crash: %s" m
  | o -> Format.pp_print_string fmt (label o)
