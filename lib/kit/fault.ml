type kind = Crash | Oom | Kill | Truncate | Hang | Stall | Reset | Torn

let is_net = function
  | Stall | Reset | Torn -> true
  | Crash | Oom | Kill | Truncate | Hang -> false

exception Injected of string

type trigger =
  | Nth of int  (* fire once, at the Nth global hit *)
  | Prob of float * int  (* probability, seed *)
  | Nth_cut of int * int  (* truncate: at the Nth hit, keep B bytes *)

type clause = {
  kind : kind;
  site : string;
  trigger : trigger;
  count : int Atomic.t;
}

(* The armed clause list. Immutable once installed, so readers need no
   lock; only the per-clause hit counters move. *)
let state : clause list Atomic.t = Atomic.make []

let spec_error : string option ref = ref None

let kind_name = function
  | Crash -> "crash"
  | Oom -> "oom"
  | Kill -> "kill"
  | Truncate -> "truncate"
  | Hang -> "hang"
  | Stall -> "stall"
  | Reset -> "reset"
  | Torn -> "torn"

let parse_clause s =
  let fail m = Error (Printf.sprintf "bad fault clause %S: %s" s m) in
  match String.index_opt s '@' with
  | None -> fail "missing '@'"
  | Some at -> (
      let kind =
        match String.sub s 0 at with
        | "crash" -> Some Crash
        | "oom" -> Some Oom
        | "kill" -> Some Kill
        | "truncate" -> Some Truncate
        | "hang" -> Some Hang
        | "stall" -> Some Stall
        | "reset" -> Some Reset
        | "torn" -> Some Torn
        | _ -> None
      in
      match kind with
      | None ->
          fail "unknown kind (crash|oom|kill|truncate|hang|stall|reset|torn)"
      | Some kind -> (
          let rest = String.sub s (at + 1) (String.length s - at - 1) in
          match String.index_opt rest ':' with
          | None -> fail "missing ':trigger'"
          | Some col -> (
              let site = String.sub rest 0 col in
              let trig = String.sub rest (col + 1) (String.length rest - col - 1) in
              if site = "" then fail "empty site"
              else
                let mk trigger =
                  Ok { kind; site; trigger; count = Atomic.make 0 }
                in
                match kind, trig with
                | Truncate, _ -> (
                    match String.index_opt trig 'x' with
                    | None -> fail "truncate trigger must be NxB"
                    | Some x -> (
                        let n = String.sub trig 0 x in
                        let b =
                          String.sub trig (x + 1) (String.length trig - x - 1)
                        in
                        match (int_of_string_opt n, int_of_string_opt b) with
                        | Some n, Some b when n >= 1 && b >= 0 -> mk (Nth_cut (n, b))
                        | _ -> fail "truncate trigger must be NxB"))
                | _, _ when String.length trig > 1 && trig.[0] = 'p' -> (
                    let body = String.sub trig 1 (String.length trig - 1) in
                    let p, seed =
                      match String.index_opt body ':' with
                      | None -> (float_of_string_opt body, Some 0)
                      | Some c ->
                          let ps = String.sub body 0 c in
                          let ss = String.sub body (c + 1) (String.length body - c - 1) in
                          ( float_of_string_opt ps,
                            if String.length ss > 1 && ss.[0] = 's' then
                              int_of_string_opt
                                (String.sub ss 1 (String.length ss - 1))
                            else None )
                    in
                    match (p, seed) with
                    | Some p, Some s when p >= 0.0 && p <= 1.0 -> mk (Prob (p, s))
                    | _ -> fail "probabilistic trigger must be pF[:sS]")
                | _, _ -> (
                    match int_of_string_opt trig with
                    | Some n when n >= 1 -> mk (Nth n)
                    | _ -> fail "trigger must be a positive hit number"))))

let parse spec =
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  List.fold_left
    (fun acc c ->
      match (acc, parse_clause c) with
      | Error _, _ -> acc
      | Ok l, Ok cl -> Ok (cl :: l)
      | Ok _, (Error _ as e) -> e)
    (Ok []) clauses
  |> Result.map List.rev

let configure spec =
  match parse spec with
  | Ok clauses ->
      Atomic.set state clauses;
      Ok ()
  | Error _ as e ->
      Atomic.set state [];
      e

let clear () = Atomic.set state []

let armed () = Atomic.get state <> []

let config_error () = !spec_error

(* SplitMix-style avalanche over (seed, site, hit number): deterministic
   at every domain count, since the global hit counter hands out the same
   numbers whatever the interleaving. *)
let mix seed site n =
  (* 63-bit truncations of the SplitMix64 / FNV constants. *)
  let h = ref (0x1E3779B97F4A7C15 lxor (seed * 0x2545F4914F6CDD1D)) in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001B3) site;
  h := !h lxor (n * 0x7F51AFD7ED558CCD);
  h := (!h lxor (!h lsr 33)) * 0x44CEB9FE1A85EC53;
  h := !h lxor (!h lsr 29);
  !h land max_int

let fires clause n =
  match clause.trigger with
  | Nth k -> n = k
  | Nth_cut (k, _) -> n = k
  | Prob (p, seed) ->
      float_of_int (mix seed clause.site n land 0xFFFFFF)
      /. float_of_int 0x1000000
      < p

let hit site =
  match Atomic.get state with
  | [] -> ()
  | clauses ->
      List.iter
        (fun c ->
          if c.site = site && c.kind <> Truncate && not (is_net c.kind) then begin
            let n = 1 + Atomic.fetch_and_add c.count 1 in
            if fires c n then begin
              match c.kind with
              | Oom -> raise Out_of_memory
              | Hang ->
                  (* Busy-loop without ever polling Deadline.check: only a
                     wall-clock watchdog (Kit.Proc) can stop this, which is
                     exactly what it exists to prove. *)
                  while true do
                    ignore (Sys.opaque_identity 0)
                  done
              | Crash | Kill ->
                  raise
                    (Injected
                       (Printf.sprintf "injected %s at %s (hit %d)"
                          (kind_name c.kind) site n))
              | Truncate | Stall | Reset | Torn -> ()
            end
          end)
        clauses

(* Network-fault query: unlike [hit], nothing is raised — the wire layer
   asks whether an armed stall/reset/torn clause fires at this site and
   acts the fault out itself (sleeping past a timeout, closing a socket
   mid-write). First firing clause in spec order wins; every net clause
   at the site still counts its hit, so a spec with several clauses keeps
   deterministic hit numbering whether or not an earlier one fires. *)
let net site =
  match Atomic.get state with
  | [] -> None
  | clauses ->
      List.fold_left
        (fun acc c ->
          if c.site = site && is_net c.kind then begin
            let n = 1 + Atomic.fetch_and_add c.count 1 in
            if acc = None && fires c n then Some c.kind else acc
          end
          else acc)
        None clauses

let cut site =
  match Atomic.get state with
  | [] -> None
  | clauses ->
      List.fold_left
        (fun acc c ->
          if c.site = site && c.kind = Truncate then begin
            let n = 1 + Atomic.fetch_and_add c.count 1 in
            match c.trigger with
            | Nth_cut (k, b) when n = k -> Some b
            | _ -> acc
          end
          else acc)
        None clauses

(* Arm from the environment once, at start-up. A malformed value leaves
   the harness disarmed but remembered, so the CLI can refuse to run a
   campaign that silently ignores its fault spec. *)
let () =
  match Sys.getenv_opt "HB_FAULT" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error m -> spec_error := Some m)
