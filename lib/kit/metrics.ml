(* Per-domain accumulation, merged on read. Each metric owns a fixed
   range of cells (ints for counts and bucket cells, floats for timer
   seconds); each domain lazily allocates a flat store of those cells via
   Domain.DLS and registers it in a global list, so recording is an
   unsynchronised array write and reading sums over all stores. Stores of
   terminated domains stay registered — their counts must keep being
   visible to later snapshots (Pool joins its workers, so their writes
   are ordered before any subsequent read). *)

type kind = Counter | Timer | Hist of int array

type meta = {
  name : string;
  kind : kind;
  slot : int;  (* first int cell *)
  fslot : int;  (* float cell for timers, -1 otherwise *)
}

type counter = meta
type timer = meta
type histogram = meta

let enabled = ref false

let mutex = Mutex.create ()
let by_name : (string, meta) Hashtbl.t = Hashtbl.create 64
let metas : meta list ref = ref [] (* reverse registration order *)
let next_slot = ref 0
let next_fslot = ref 0

type store = { mutable ints : int array; mutable floats : float array }

let stores : store list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let store_key =
  Domain.DLS.new_key (fun () ->
      let s = { ints = Array.make 128 0; floats = Array.make 16 0.0 } in
      locked (fun () -> stores := s :: !stores);
      s)

let int_cells = function
  | Counter | Timer -> 1
  | Hist edges -> Array.length edges + 1

let kind_label = function
  | Counter -> "counter"
  | Timer -> "timer"
  | Hist _ -> "histogram"

let register name kind =
  locked (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some m ->
          let compatible =
            match (m.kind, kind) with
            | Counter, Counter | Timer, Timer -> true
            | Hist a, Hist b -> a = b
            | _ -> false
          in
          if not compatible then
            invalid_arg
              (Printf.sprintf "Metrics: %S is already registered as a %s" name
                 (kind_label m.kind));
          m
      | None ->
          let fslot = match kind with Timer -> !next_fslot | _ -> -1 in
          let m = { name; kind; slot = !next_slot; fslot } in
          next_slot := !next_slot + int_cells kind;
          if fslot >= 0 then incr next_fslot;
          Hashtbl.add by_name name m;
          metas := m :: !metas;
          m)

let counter name = register name Counter
let timer name = register name Timer

let histogram name ~buckets =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i e ->
      if i > 0 && e <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register name (Hist (Array.copy buckets))

(* --- recording (hot path) -------------------------------------------------- *)

let grow_ints s n =
  let len = Stdlib.max n (2 * Array.length s.ints) in
  let a = Array.make len 0 in
  Array.blit s.ints 0 a 0 (Array.length s.ints);
  s.ints <- a

let grow_floats s n =
  let len = Stdlib.max n (2 * Array.length s.floats) in
  let a = Array.make len 0.0 in
  Array.blit s.floats 0 a 0 (Array.length s.floats);
  s.floats <- a

let add c n =
  if !enabled then begin
    let s = Domain.DLS.get store_key in
    if c.slot >= Array.length s.ints then grow_ints s (c.slot + 1);
    s.ints.(c.slot) <- s.ints.(c.slot) + n
  end

let incr c = add c 1

let add_seconds t secs =
  if !enabled then begin
    let s = Domain.DLS.get store_key in
    if t.slot >= Array.length s.ints then grow_ints s (t.slot + 1);
    if t.fslot >= Array.length s.floats then grow_floats s (t.fslot + 1);
    s.ints.(t.slot) <- s.ints.(t.slot) + 1;
    s.floats.(t.fslot) <- s.floats.(t.fslot) +. secs
  end

let span t f =
  if not !enabled then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_seconds t (Unix.gettimeofday () -. t0)) f
  end

let observe h v =
  if !enabled then
    match h.kind with
    | Hist edges ->
        let s = Domain.DLS.get store_key in
        let n = Array.length edges in
        if h.slot + n >= Array.length s.ints then grow_ints s (h.slot + n + 1);
        let i = ref 0 in
        while !i < n && v > edges.(!i) do Stdlib.incr i done;
        s.ints.(h.slot + !i) <- s.ints.(h.slot + !i) + 1
    | Counter | Timer -> ()

(* --- reading ---------------------------------------------------------------- *)

type snapshot = {
  counters : (string * int) list;
  timers : (string * (int * float)) list;
  histograms : (string * (int array * int array)) list;
}

let empty = { counters = []; timers = []; histograms = [] }

let build_snapshot ~keep_zero metas iget fget =
  let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let cs = ref [] and ts = ref [] and hs = ref [] in
  List.iter
    (fun m ->
      match m.kind with
      | Counter ->
          let v = iget m.slot in
          if keep_zero || v <> 0 then cs := (m.name, v) :: !cs
      | Timer ->
          let n = iget m.slot in
          if keep_zero || n <> 0 then ts := (m.name, (n, fget m.fslot)) :: !ts
      | Hist edges ->
          let counts =
            Array.init (Array.length edges + 1) (fun i -> iget (m.slot + i))
          in
          if keep_zero || Array.exists (( <> ) 0) counts then
            hs := (m.name, (Array.copy edges, counts)) :: !hs)
    metas;
  { counters = sorted !cs; timers = sorted !ts; histograms = sorted !hs }

let snapshot () =
  let metas, stores = locked (fun () -> (!metas, !stores)) in
  let iget slot =
    List.fold_left
      (fun acc s -> acc + if slot < Array.length s.ints then s.ints.(slot) else 0)
      0 stores
  in
  let fget fslot =
    List.fold_left
      (fun acc s ->
        acc +. if fslot < Array.length s.floats then s.floats.(fslot) else 0.0)
      0.0 stores
  in
  build_snapshot ~keep_zero:true metas iget fget

let local_delta f =
  if not !enabled then (f (), empty)
  else begin
    let s = Domain.DLS.get store_key in
    let i0 = Array.copy s.ints and f0 = Array.copy s.floats in
    let r = f () in
    let metas = locked (fun () -> !metas) in
    (* Same store record: growth replaces the arrays in place, never the
       record registered for this domain. *)
    let iget slot =
      (if slot < Array.length s.ints then s.ints.(slot) else 0)
      - if slot < Array.length i0 then i0.(slot) else 0
    in
    let fget fslot =
      (if fslot < Array.length s.floats then s.floats.(fslot) else 0.0)
      -. if fslot < Array.length f0 then f0.(fslot) else 0.0
    in
    (r, build_snapshot ~keep_zero:false metas iget fget)
  end

(* Replay a snapshot into the current domain's store. Used to restore
   per-instance deltas measured inside forked workers (Proc), whose own
   stores die with the child process. *)
let absorb snap =
  if !enabled then begin
    List.iter (fun (n, v) -> if v <> 0 then add (counter n) v) snap.counters;
    List.iter
      (fun (n, (c, secs)) ->
        if c <> 0 || secs <> 0.0 then begin
          let t = timer n in
          let s = Domain.DLS.get store_key in
          if t.slot >= Array.length s.ints then grow_ints s (t.slot + 1);
          if t.fslot >= Array.length s.floats then grow_floats s (t.fslot + 1);
          s.ints.(t.slot) <- s.ints.(t.slot) + c;
          s.floats.(t.fslot) <- s.floats.(t.fslot) +. secs
        end)
      snap.timers;
    List.iter
      (fun (n, (edges, counts)) ->
        if Array.exists (( <> ) 0) counts then begin
          let h = histogram n ~buckets:edges in
          let cells = Array.length edges + 1 in
          let s = Domain.DLS.get store_key in
          if h.slot + cells > Array.length s.ints then
            grow_ints s (h.slot + cells);
          Array.iteri
            (fun i c ->
              if i < cells then s.ints.(h.slot + i) <- s.ints.(h.slot + i) + c)
            counts
        end)
      snap.histograms
  end

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.ints 0 (Array.length s.ints) 0;
          Array.fill s.floats 0 (Array.length s.floats) 0.0)
        !stores)

(* --- accessors and rendering ------------------------------------------------ *)

let get snap name = Option.value ~default:0 (List.assoc_opt name snap.counters)

let get_timer snap name =
  Option.value ~default:(0, 0.0) (List.assoc_opt name snap.timers)

let get_histogram snap name = List.assoc_opt name snap.histograms

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_int_array a =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"

let to_json snap =
  let buf = Buffer.create 1024 in
  let obj body = "{" ^ String.concat "," body ^ "}" in
  Buffer.add_string buf "{\n  \"counters\": ";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (n, v) -> Printf.sprintf "%s: %d" (json_string n) v)
          snap.counters));
  Buffer.add_string buf ",\n  \"timers\": ";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (n, (c, s)) ->
            Printf.sprintf "%s: {\"count\": %d, \"seconds\": %.6f}"
              (json_string n) c s)
          snap.timers));
  Buffer.add_string buf ",\n  \"histograms\": ";
  Buffer.add_string buf
    (obj
       (List.map
          (fun (n, (edges, counts)) ->
            Printf.sprintf "%s: {\"edges\": %s, \"counts\": %s}" (json_string n)
              (json_int_array edges) (json_int_array counts))
          snap.histograms));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let to_table snap =
  let buf = Buffer.create 1024 in
  let counters = List.filter (fun (_, v) -> v <> 0) snap.counters in
  let timers = List.filter (fun (_, (c, _)) -> c <> 0) snap.timers in
  let hists =
    List.filter (fun (_, (_, counts)) -> Array.exists (( <> ) 0) counts)
      snap.histograms
  in
  if counters = [] && timers = [] && hists = [] then
    Buffer.add_string buf "Metrics: nothing recorded (enable Kit.Metrics first)\n"
  else begin
    if counters <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%-36s %12s\n" "counter" "value");
      List.iter
        (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-36s %12d\n" n v))
        counters
    end;
    if timers <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "%-36s %12s %12s\n" "timer" "spans" "seconds");
      List.iter
        (fun (n, (c, s)) ->
          Buffer.add_string buf (Printf.sprintf "%-36s %12d %12.4f\n" n c s))
        timers
    end;
    List.iter
      (fun (n, (edges, counts)) ->
        Buffer.add_string buf (Printf.sprintf "%-36s" n);
        Array.iteri
          (fun i c ->
            if i < Array.length edges then
              Buffer.add_string buf (Printf.sprintf " <=%d:%d" edges.(i) c)
            else
              Buffer.add_string buf
                (Printf.sprintf " >%d:%d" edges.(Array.length edges - 1) c))
          counts;
        Buffer.add_char buf '\n')
      hists
  end;
  Buffer.contents buf
