(** Cooperative deadlines for long-running searches.

    The paper runs every algorithm with a 3600 s timeout on a cluster; we
    reproduce the behaviour in-process. Search loops call {!check}
    periodically; when the wall-clock budget (or the deterministic fuel
    budget used in tests) is exhausted, {!Timed_out} is raised and the
    caller reports a timeout instead of an answer.

    Deadlines are domain-safe: fuel is an atomic counter, wall-clock
    polling uses a per-domain tick counter, and every deadline carries a
    cancel flag, so one value may be shared by several domains and one
    domain can abort its siblings (see {!Pool} and [Ghd.Portfolio.race]). *)

exception Timed_out

type t

type cancel
(** A cooperative cancel flag, shareable across domains. Deadlines carry
    one; {!with_cancel} links several deadlines to the same flag so that
    cancelling it aborts every holder at its next {!check}. *)

val none : t
(** Never times out (and cannot be cancelled). *)

val of_seconds : float -> t
(** Budget starting now. [started] and the wall deadline are derived from
    a single clock reading, so [of_seconds s] expires exactly when
    [elapsed] reaches [s]. *)

val of_fuel : int -> t
(** Deterministic budget: times out on the [n]-th {!check}, counted
    atomically across all domains sharing the deadline. *)

val new_cancel : ?parent:cancel -> unit -> cancel
(** A fresh flag. With [~parent] the flag is chained: {!is_cancelled}
    reports true as soon as the flag itself {e or any ancestor} is
    cancelled, so a tree of fork groups (see [Kit.Steal] /
    [Ghd.Par_bal_sep]) inherits external cancellation for free.
    Cancelling a child never affects its parent. *)

val cancel : cancel -> unit
(** Make every deadline holding this flag (or a descendant of it) expire
    immediately. *)

val is_cancelled : cancel -> bool
(** True when the flag or any ancestor flag is cancelled. *)

val cancel_token : t -> cancel
(** The deadline's own flag — the root to chain fork-group flags onto. *)

val with_cancel : cancel -> t -> t
(** [with_cancel c t] is [t] with its cancel flag replaced by [c]. The
    returned deadline shares budget state with [t] but expires as soon as
    [c] is cancelled — including for [none], which makes
    [with_cancel c none] a pure cancellation token. *)

val cancelled : t -> bool
(** Whether this deadline's own cancel flag is set. *)

val check : t -> unit
(** @raise Timed_out when the budget is exhausted or the deadline is
    cancelled. Cheap: one atomic read per call; the wall clock is
    consulted only every 1024 calls (per domain), so wall expiry is
    detected up to 1023 checks late.

    [check] is also the {!Fault} site ["deadline.poll"]: when the
    fault-injection harness is armed it may raise {!Fault.Injected} (or
    simulate allocation failure) at a chosen poll, which containment
    tests use to crash a search at arbitrary depth. Disarmed — the
    production state — this costs one atomic load. *)

val expired : t -> bool
(** Non-raising variant of {!check}. Uses the same expiry condition
    (clock [>=] deadline) but consults the clock on every call, so it can
    report expiry slightly before a pending {!check} raises. *)

val elapsed : t -> float
(** Seconds since the deadline was created (0 for [none]). *)

val fuel_remaining : t -> int option
(** [Some n] (clamped at 0) for fuel deadlines, [None] for wall-clock and
    unlimited ones. This is how a scheduler splits a deterministic budget
    into per-subtask shares (see [Ghd.Par_bal_sep]): read the remainder,
    hand out private sub-deadlines, and charge the parent with
    {!consume_fuel}. *)

val consume_fuel : t -> int -> unit
(** Deduct [n] checks' worth of fuel without raising; the debit is seen
    by the next {!check}. No-op on non-fuel deadlines and for [n <= 0]. *)

val refund_fuel : t -> int -> unit
(** Credit [n] checks' worth of fuel back — how a parent task reclaims
    the unused remainder of its children's shares after joining them.
    No-op on non-fuel deadlines and for [n <= 0]. *)
