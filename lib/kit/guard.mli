(** Crash containment for one campaign task.

    [run f] evaluates [f ()] inside a containment boundary and reports
    what happened as a {!Outcome.t} instead of letting anything escape:

    - a {!Deadline.Timed_out} that leaked past the solver becomes
      [Timeout];
    - [Stdlib.Out_of_memory] — from the real allocator or from the soft
      memory budget below — becomes [Out_of_memory], and the major heap
      is compacted before returning so the next task starts from a sane
      footprint;
    - [Stdlib.Stack_overflow] becomes [Stack_overflow]: the guard frame
      is the trampoline the unwind lands on, keeping the hosting domain
      alive (OCaml 5 raises rather than aborts when a fiber stack cannot
      grow);
    - every other exception becomes [Crash] carrying
      [Printexc.to_string] plus the backtrace when recording is on.

    {2 Soft memory budget}

    With a budget of [m] MB (the [mem_mb] argument, defaulting to the
    [HB_MEM_MB] environment variable), a [Gc] alarm installed for the
    duration of the call raises [Out_of_memory] at the end of any major
    collection whose live heap exceeds the budget. This is a soft,
    per-process guardrail: it triggers on major-cycle boundaries, not on
    the allocation that crossed the line, and the heap counted is shared
    by all domains — size it for the whole campaign process, not per
    task. It turns the paper's "instance ate the machine" failure mode
    into one recorded [Out_of_memory] outcome. *)

val mem_budget_mb : unit -> int option
(** [HB_MEM_MB] when it parses as a positive integer. *)

val run : ?mem_mb:int -> (unit -> 'a) -> 'a Outcome.t
(** Containment boundary; never raises. [mem_mb] overrides [HB_MEM_MB];
    [0] disables the budget even when the environment sets one. *)
