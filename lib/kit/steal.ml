(* Work-stealing fork/join over domains. See steal.mli for the contract.

   The deque is a fixed-capacity Chase–Lev: the owner pushes and pops at
   [bottom], thieves CAS [top] upward. Slots are [Atomic.t] so the OCaml
   memory model gives the publication order the algorithm needs (slot
   write before the bottom bump; thieves read the slot before the top
   CAS, and a successful CAS proves the read was not stale: a slot is
   only recycled after [top] has moved past it, which would make the CAS
   fail). Capacity overflow is not an error — the task just runs inline,
   which is always a correct schedule. *)

type thunk = unit -> unit

module Deque = struct
  type t = {
    slots : thunk option Atomic.t array;
    mask : int;
    top : int Atomic.t; (* steal end; monotonically increasing *)
    bottom : int Atomic.t; (* owner end; only the owner writes *)
  }

  let create cap =
    assert (cap land (cap - 1) = 0);
    {
      slots = Array.init cap (fun _ -> Atomic.make None);
      mask = cap - 1;
      top = Atomic.make 0;
      bottom = Atomic.make 0;
    }

  (* Owner only. False when full (size = capacity). *)
  let push d x =
    let b = Atomic.get d.bottom in
    let t = Atomic.get d.top in
    if b - t > d.mask then false
    else begin
      Atomic.set d.slots.(b land d.mask) (Some x);
      Atomic.set d.bottom (b + 1);
      true
    end

  (* Owner only. LIFO end. *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      (* Empty: restore the canonical empty state bottom = top. *)
      Atomic.set d.bottom t;
      None
    end
    else if b > t then Atomic.exchange d.slots.(b land d.mask) None
    else begin
      (* Single element: race thieves for it via the top CAS. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      let r =
        if won then Atomic.exchange d.slots.(b land d.mask) None else None
      in
      Atomic.set d.bottom (t + 1);
      r
    end

  (* Any domain. FIFO end. *)
  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let x = Atomic.get d.slots.(t land d.mask) in
      if Atomic.compare_and_set d.top t (t + 1) then begin
        (* The slot is ours; clear it so the closure can be collected.
           If the owner already wrapped around and reused the cell, the
           CAS below fails harmlessly. *)
        (match x with
        | Some _ ->
            ignore (Atomic.compare_and_set d.slots.(t land d.mask) x None)
        | None -> ());
        x
      end
      else None
    end
end

type 'a state =
  | Pending of (unit -> 'a)
  | Running
  | Done of 'a
  | Raised of exn

type 'a promise = { state : 'a state Atomic.t; forker : int }

type worker = { deque : Deque.t; mutable victim : int }

type stats = { forked : int; executed : int; stolen : int; inlined : int }

type t = {
  workers : worker array;
  quit : bool Atomic.t;
  forked : int Atomic.t;
  executed : int Atomic.t;
  stolen : int Atomic.t;
  inlined : int Atomic.t;
}

(* Process-wide traffic, for `decompose --stats` and BENCH_intra.json.
   Deliberately not Kit.Metrics: steal counts depend on scheduling and
   would break the HB_FUEL bit-identity audit across HB_JOBS. *)
let g_forked = Atomic.make 0
let g_executed = Atomic.make 0
let g_stolen = Atomic.make 0
let g_inlined = Atomic.make 0

let totals () =
  {
    forked = Atomic.get g_forked;
    executed = Atomic.get g_executed;
    stolen = Atomic.get g_stolen;
    inlined = Atomic.get g_inlined;
  }

let reset_totals () =
  Atomic.set g_forked 0;
  Atomic.set g_executed 0;
  Atomic.set g_stolen 0;
  Atomic.set g_inlined 0

let stats t =
  {
    forked = Atomic.get t.forked;
    executed = Atomic.get t.executed;
    stolen = Atomic.get t.stolen;
    inlined = Atomic.get t.inlined;
  }

let jobs t = Array.length t.workers

(* Which crew/worker the current domain belongs to, if any. Nested runs
   save and restore around the inner crew, so this is the innermost. *)
let current : (t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_worker t =
  match !(Domain.DLS.get current) with
  | Some (t', w) when t' == t -> Some w
  | _ -> None

let deque_capacity = 8192

(* Execute a promise if it is still unclaimed. Exactly one caller wins
   the CAS, so the closure runs at most once even while a claimed task is
   still sitting in a deque somewhere (the stale entry no-ops). *)
let run_promise t p =
  match Atomic.get p.state with
  | Pending f as st ->
      if Atomic.compare_and_set p.state st Running then begin
        (match my_worker t with
        | Some w when w <> p.forker -> Atomic.incr t.stolen; Atomic.incr g_stolen
        | _ -> ());
        let r = try Done (f ()) with e -> Raised e in
        Atomic.set p.state r;
        Atomic.incr t.executed;
        Atomic.incr g_executed
      end
  | Running | Done _ | Raised _ -> ()

let fork t f =
  Atomic.incr t.forked;
  Atomic.incr g_forked;
  match my_worker t with
  | Some w ->
      let p = { state = Atomic.make (Pending f); forker = w } in
      if not (Deque.push t.workers.(w).deque (fun () -> run_promise t p))
      then begin
        Atomic.incr t.inlined;
        Atomic.incr g_inlined;
        run_promise t p
      end;
      p
  | None ->
      (* Foreign caller: run inline; fork/join still compose. *)
      let p = { state = Atomic.make (Pending f); forker = -1 } in
      Atomic.incr t.inlined;
      Atomic.incr g_inlined;
      run_promise t p;
      p

(* One unit of helping: own deque first (LIFO — the freshest, cache-hot
   subtree), then sweep victims round-robin from the last successful one.
   Returns false when there was nothing anywhere. *)
let help t w =
  let me = t.workers.(w) in
  match Deque.pop me.deque with
  | Some thunk ->
      thunk ();
      true
  | None ->
      let n = Array.length t.workers in
      let rec sweep i =
        if i >= n then false
        else begin
          let v = (me.victim + i) mod n in
          if v = w then sweep (i + 1)
          else
            match Deque.steal t.workers.(v).deque with
            | Some thunk ->
                me.victim <- v;
                thunk ();
                true
            | None -> sweep (i + 1)
        end
      in
      sweep 0

let rec join t p =
  match Atomic.get p.state with
  | Done v -> v
  | Raised e -> raise e
  | Pending _ ->
      run_promise t p;
      join t p
  | Running -> (
      (* Someone else is on it: help with other work, then re-check. *)
      (match my_worker t with
      | Some w -> if not (help t w) then Domain.cpu_relax ()
      | None -> Domain.cpu_relax ());
      join t p)

let worker_main t w =
  let slot = Domain.DLS.get current in
  slot := Some (t, w);
  let idle = ref 0 in
  while not (Atomic.get t.quit) do
    if help t w then idle := 0
    else begin
      incr idle;
      if !idle < 64 then Domain.cpu_relax ()
      else begin
        (* Don't burn a core while the search is sequential. *)
        idle := 0;
        Unix.sleepf 0.0002
      end
    end
  done

let m_spawn_failure = Metrics.counter "pool.spawn_failures"

let run ?jobs:(j = Pool.default_jobs ()) f =
  let j = Stdlib.max 1 j in
  let t =
    {
      workers =
        Array.init j (fun _ -> { deque = Deque.create deque_capacity; victim = 0 });
      quit = Atomic.make false;
      forked = Atomic.make 0;
      executed = Atomic.make 0;
      stolen = Atomic.make 0;
      inlined = Atomic.make 0;
    }
  in
  (* Degrade on spawn failure exactly like Pool: the crew is whatever
     actually spawned; the caller always works, so progress is assured. *)
  let domains = ref [] in
  (try
     for w = 1 to j - 1 do
       domains := Domain.spawn (fun () -> worker_main t w) :: !domains
     done
   with _ -> Metrics.incr m_spawn_failure);
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some (t, 0);
  Fun.protect
    ~finally:(fun () ->
      slot := saved;
      Atomic.set t.quit true;
      List.iter Domain.join !domains)
    (fun () -> f t)
