type t = int64

let init = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let add_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let add_char h c = add_byte h (Char.code c)

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_char !h c) s;
  !h

let add_int h n =
  let v = Int64.of_int n in
  let h = ref h in
  for i = 0 to 7 do
    h := add_byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
