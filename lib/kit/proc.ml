external setrlimit_mem : int -> bool = "hb_proc_setrlimit_mem"

let enabled () = Sys.getenv_opt "HB_ISOLATE" = Some "1"

(* --- fork hygiene for long-lived, multi-threaded hosts -----------------------

   A batch campaign calls [run] once from one thread, so the only fds a
   child could capture were the pipes of its own run's older siblings.
   A daemon is different: several threads each drive their own [run]
   concurrently, and every server socket is live at fork time. A child
   that inherits another run's task-pipe write end keeps that run's
   worker from ever seeing EOF — its shutdown then blocks in [waitpid]
   for as long as the foreign child lives — and a child that inherits a
   client connection keeps the socket half-open after the server closed
   it. The registry below records every parent-side fd that must not
   survive a fork (our own pipe ends, plus whatever the host registers:
   listeners, accepted connections), and every child closes the whole
   snapshot first thing. Pipe creation + fork + registration are
   serialised under one lock so no thread can fork in the window where
   another thread's fds exist but are not yet registered. *)

let fork_mu = Mutex.create ()
let fork_fds : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock fork_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock fork_mu) f

let register_fork_fd fd = locked (fun () -> Hashtbl.replace fork_fds fd ())
let unregister_fork_fd fd = locked (fun () -> Hashtbl.remove fork_fds fd)

(* Child-side: close every registered fd except [keep]. Runs on the
   child's frozen snapshot of the table, before any other work. *)
let child_close_registered ~keep =
  Hashtbl.iter
    (fun fd () ->
      if not (List.memq fd keep) then
        try Unix.close fd with Unix.Unix_error _ -> ())
    fork_fds

(* SIGPIPE must be ignored while any run is live (a worker dying
   mid-dispatch surfaces as EPIPE, not a fatal signal). Concurrent runs
   share the disposition, so restore only when the last one leaves. *)
let sigpipe_depth = ref 0
let sigpipe_saved = ref None

let sigpipe_acquire () =
  locked (fun () ->
      if !sigpipe_depth = 0 then
        sigpipe_saved :=
          (try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
           with Invalid_argument _ | Sys_error _ -> None);
      incr sigpipe_depth)

let sigpipe_release () =
  locked (fun () ->
      decr sigpipe_depth;
      if !sigpipe_depth = 0 then (
        (match !sigpipe_saved with
        | Some h -> (
            try Sys.set_signal Sys.sigpipe h
            with Invalid_argument _ | Sys_error _ -> ())
        | None -> ());
        sigpipe_saved := None))

let default_jobs () =
  match Sys.getenv_opt "HB_JOBS" with
  | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_wall () =
  match Sys.getenv_opt "HB_WALL" with
  | Some v -> (
      match float_of_string_opt v with
      | Some w when w > 0.0 -> w
      | _ -> 3600.0)
  | None -> 3600.0

type 'b completion = { index : int; attempts : int; outcome : 'b Outcome.t }

let m_tasks = Metrics.counter "proc.tasks"
let m_watchdog = Metrics.counter "proc.watchdog_kills"
let m_oom = Metrics.counter "proc.hard_oom"
let m_crash = Metrics.counter "proc.worker_crashes"
let m_respawn = Metrics.counter "proc.respawns"

(* Worker exit codes with a reserved meaning. [exit_oom] is the child's
   last resort when even reporting an Out_of_memory in-band fails. *)
let exit_oom = 9
let exit_protocol = 7

(* --- framing -----------------------------------------------------------------

   Every value crossing a pipe travels as  magic | length | adler32 | payload
   (4 + 4 + 4 bytes of header). The checksum is what lets the parent tell a
   frame torn by a dying worker from a healthy result: a torn frame is a
   [Crash], never a misparse. *)

let magic = "HBF1"
let header_len = 12
let max_frame = 1 lsl 28

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

let put32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (v land 0xFF))

let get32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame_of payload =
  let n = String.length payload in
  let b = Bytes.create (header_len + n) in
  Bytes.blit_string magic 0 b 0 4;
  put32 b 4 n;
  put32 b 8 (adler32 payload);
  Bytes.blit_string payload 0 b header_len n;
  b

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | w -> write_all fd b (off + w) (len - w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

let rec read_exact fd b off len =
  if len = 0 then true
  else
    match Unix.read fd b off len with
    | 0 -> false
    | r -> read_exact fd b (off + r) (len - r)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd b off len

exception Bad_frame

(* Blocking whole-frame read (child side; the child has nothing else to
   do while waiting for its next task). *)
let read_frame fd =
  let h = Bytes.create header_len in
  if not (read_exact fd h 0 header_len) then None
  else begin
    let h = Bytes.to_string h in
    if String.sub h 0 4 <> magic then raise Bad_frame;
    let len = get32 h 4 in
    if len < 0 || len > max_frame then raise Bad_frame;
    let p = Bytes.create len in
    if not (read_exact fd p 0 len) then raise Bad_frame;
    let p = Bytes.to_string p in
    if get32 h 8 <> adler32 p then raise Bad_frame;
    Some p
  end

(* --- worker child ------------------------------------------------------------ *)

(* Serve (index, attempt) requests forever. Exits via [Unix._exit] on
   every path — at_exit handlers and channel buffers belong to the
   parent and must not fire (or flush) a second time in the child. *)
let child_serve ~mem_mb ~task_rd ~res_wr f tasks =
  (match mem_mb with
  | Some mb when mb > 0 -> ignore (setrlimit_mem mb : bool)
  | _ -> ());
  let rec loop () =
    match read_frame task_rd with
    | None -> Unix._exit 0 (* parent closed the task pipe: clean shutdown *)
    | Some payload ->
        let i, attempt = (Marshal.from_string payload 0 : int * int) in
        (* The Guard boundary reports cooperative failures (timeouts,
           crashes, the soft memory alarm at the same budget as the hard
           rlimit) gracefully in-band; the watchdog and the rlimit only
           catch what escapes it. *)
        let outcome = Guard.run ?mem_mb (fun () -> f ~attempt tasks.(i)) in
        let resp =
          match Marshal.to_string (i, attempt, outcome) [] with
          | s -> s
          | exception Out_of_memory -> Unix._exit exit_oom
          | exception _ ->
              Marshal.to_string
                (i, attempt, (Outcome.Crash "unmarshallable worker result" : _ Outcome.t))
                []
        in
        let frame = frame_of resp in
        (match write_all res_wr frame 0 (Bytes.length frame) with
        | () -> ()
        | exception Out_of_memory -> Unix._exit exit_oom
        | exception _ -> Unix._exit exit_protocol);
        loop ()
  in
  try loop () with
  | Out_of_memory -> Unix._exit exit_oom
  | _ -> Unix._exit exit_protocol

(* --- parent monitor ----------------------------------------------------------- *)

type busy = { task_index : int; task_attempt : int; kill_at : float }

type state = Idle | Busy of busy

type worker = {
  pid : int;
  task_wr : Unix.file_descr;
  res_rd : Unix.file_descr;
  err_rd : Unix.file_descr;
  acc : Buffer.t;  (* partial result frames *)
  err_tail : Buffer.t;  (* last bytes of the worker's stderr *)
  mutable state : state;
  mutable killed : bool;  (* watchdog sent SIGKILL *)
}

let err_tail_cap = 4096

let trim_tail b =
  if Buffer.length b > 2 * err_tail_cap then begin
    let s = Buffer.sub b (Buffer.length b - err_tail_cap) err_tail_cap in
    Buffer.clear b;
    Buffer.add_string b s
  end

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "worker killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "worker stopped by signal %d" s

let run ?jobs ?mem_mb ?(retries = 0) ?halt_on ?on_done ?wall f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs =
      let j = match jobs with Some j -> j | None -> default_jobs () in
      Stdlib.max 1 (Stdlib.min j n)
    in
    let mem_mb =
      match mem_mb with Some _ as m -> m | None -> Guard.mem_budget_mb ()
    in
    let wall =
      match wall with Some w -> w | None -> fun ~attempt:_ -> default_wall ()
    in
    let results : 'b completion option array = Array.make n None in
    let completed = ref 0 in
    let halted = ref false in
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add (i, 0) queue
    done;
    (* Tasks whose dispatch write failed (worker died between frames):
       retried on a fresh worker a couple of times, then recorded. *)
    let dispatch_fails = Array.make n 0 in
    let workers = ref [] in
    let spawned = ref 0 in
    let finish i attempts outcome =
      match results.(i) with
      | Some _ -> ()
      | None ->
          let c = { index = i; attempts; outcome } in
          results.(i) <- Some c;
          incr completed;
          (match on_done with Some g -> g c | None -> ());
          (match halt_on with
          | Some p when p outcome -> halted := true
          | _ -> ())
    in
    let settle i attempt outcome =
      match outcome with
      | Outcome.Ok _ -> finish i (attempt + 1) outcome
      | _ when attempt < retries && not !halted ->
          Queue.add (i, attempt + 1) queue
      | _ -> finish i (attempt + 1) outcome
    in
    let spawn () =
      incr spawned;
      if !spawned > Stdlib.min jobs n then Metrics.incr m_respawn;
      (* Channel buffers must not be replayed by the child's writes.
         Flush before taking the fork lock — flushing contends on the
         channel locks, which another thread may hold for a while. *)
      flush stdout;
      flush stderr;
      Mutex.lock fork_mu;
      let task_rd, task_wr = Unix.pipe () in
      let res_rd, res_wr = Unix.pipe () in
      let err_rd, err_wr = Unix.pipe () in
      match
        try Unix.fork ()
        with e ->
          Mutex.unlock fork_mu;
          List.iter Unix.close
            [ task_rd; task_wr; res_rd; res_wr; err_rd; err_wr ];
          (match e with
          | Failure m ->
              (* OCaml 5 refuses fork permanently once any domain has ever
                 been spawned in the process; the isolated pass must run
                 before the first domain pool starts. *)
              failwith
                (m
               ^ " (Kit.Proc isolation must start before any domain pool \
                  has run in this process)")
          | e -> raise e)
      with
      | 0 ->
          Unix.close task_wr;
          Unix.close res_rd;
          Unix.close err_rd;
          (* Drop every registered parent-side fd: sibling pipes of this
             and every concurrent run (a surviving task-pipe copy would
             keep that worker from ever seeing EOF at shutdown) and the
             host's sockets (a long solve must not pin a client
             connection or the listener). *)
          child_close_registered ~keep:[];
          (try Unix.dup2 err_wr Unix.stderr with Unix.Unix_error _ -> ());
          Unix.close err_wr;
          child_serve ~mem_mb ~task_rd ~res_wr f tasks
      | pid ->
          Hashtbl.replace fork_fds task_wr ();
          Hashtbl.replace fork_fds res_rd ();
          Hashtbl.replace fork_fds err_rd ();
          Mutex.unlock fork_mu;
          Unix.close task_rd;
          Unix.close res_wr;
          Unix.close err_wr;
          Unix.set_nonblock res_rd;
          Unix.set_nonblock err_rd;
          let w =
            {
              pid;
              task_wr;
              res_rd;
              err_rd;
              acc = Buffer.create 256;
              err_tail = Buffer.create 256;
              state = Idle;
              killed = false;
            }
          in
          workers := w :: !workers;
          w
    in
    let drain_err w =
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read w.err_rd chunk 0 4096 with
        | 0 -> ()
        | r ->
            Buffer.add_subbytes w.err_tail chunk 0 r;
            trim_tail w.err_tail;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ()
    in
    (* Remove [w] from the pool and reap it; returns the exit status.
       [kill] first for workers that must die right now. *)
    let retire ?(kill = false) w =
      workers := List.filter (fun x -> x.pid <> w.pid) !workers;
      if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      drain_err w;
      List.iter unregister_fork_fd [ w.task_wr; w.res_rd; w.err_rd ];
      (try Unix.close w.task_wr with Unix.Unix_error _ -> ());
      (try Unix.close w.res_rd with Unix.Unix_error _ -> ());
      (try Unix.close w.err_rd with Unix.Unix_error _ -> ());
      match Unix.waitpid [] w.pid with
      | _, status -> status
      | exception Unix.Unix_error _ -> Unix.WEXITED 0
    in
    (* A worker died on its own (EOF / torn frame / EPIPE on dispatch):
       map its exit status onto the outcome taxonomy. *)
    let death_outcome w status =
      if w.killed then begin
        Metrics.incr m_watchdog;
        Outcome.Timeout
      end
      else
        match status with
        | Unix.WSIGNALED s when s = Sys.sigkill ->
            (* Not our kill: the kernel OOM-killer's. *)
            Metrics.incr m_oom;
            Outcome.Out_of_memory
        | Unix.WEXITED c when c = exit_oom ->
            Metrics.incr m_oom;
            Outcome.Out_of_memory
        | status ->
            Metrics.incr m_crash;
            let tail = String.trim (Buffer.contents w.err_tail) in
            Outcome.Crash
              (if tail = "" then describe_status status
               else describe_status status ^ "\n" ^ tail)
    in
    let worker_died w =
      let status = retire w in
      match w.state with
      | Busy b -> settle b.task_index b.task_attempt (death_outcome w status)
      | Idle -> ()
    in
    let dispatch w (i, attempt) =
      let payload = Marshal.to_string (i, attempt) [] in
      let frame = frame_of payload in
      match write_all w.task_wr frame 0 (Bytes.length frame) with
      | () ->
          w.state <-
            Busy
              {
                task_index = i;
                task_attempt = attempt;
                kill_at = Unix.gettimeofday () +. wall ~attempt;
              };
          Metrics.incr m_tasks;
          true
      | exception Unix.Unix_error _ ->
          (* The worker died between tasks. Give the task a fresh worker
             (twice), then record the crash. *)
          worker_died w;
          dispatch_fails.(i) <- dispatch_fails.(i) + 1;
          if dispatch_fails.(i) > 2 then
            finish i attempt
              (Outcome.Crash "worker died before accepting the task")
          else Queue.add (i, attempt) queue;
          false
    in
    (* Deliver every complete frame sitting in [w.acc]; false on a
       corrupt frame (the worker is no longer trustworthy). *)
    let deliver_frames w =
      let ok = ref true in
      let continue = ref true in
      while !continue && !ok do
        continue := false;
        let len = Buffer.length w.acc in
        if len >= header_len then begin
          let s = Buffer.contents w.acc in
          if String.sub s 0 4 <> magic then ok := false
          else
            let plen = get32 s 4 in
            if plen < 0 || plen > max_frame then ok := false
            else if len >= header_len + plen then begin
              let payload = String.sub s header_len plen in
              if get32 s 8 <> adler32 payload then ok := false
              else begin
                Buffer.clear w.acc;
                Buffer.add_substring w.acc s (header_len + plen)
                  (len - header_len - plen);
                match
                  (Marshal.from_string payload 0 : int * int * 'b Outcome.t)
                with
                | i, attempt, outcome -> (
                    match w.state with
                    | Busy b
                      when b.task_index = i && b.task_attempt = attempt ->
                        w.state <- Idle;
                        settle i attempt outcome;
                        continue := true
                    | _ -> ok := false)
                | exception _ -> ok := false
              end
            end
        end
      done;
      !ok
    in
    let handle_readable w =
      drain_err w;
      let chunk = Bytes.create 65536 in
      let dead = ref false in
      let rec rd () =
        match Unix.read w.res_rd chunk 0 65536 with
        | 0 -> dead := true
        | r ->
            Buffer.add_subbytes w.acc chunk 0 r;
            rd ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
        | exception Unix.Unix_error _ -> dead := true
      in
      rd ();
      let frames_ok = deliver_frames w in
      if not frames_ok then begin
        (* Corrupt stream: kill and classify as a crash (unless the
           watchdog already owned this worker). *)
        let status = retire ~kill:true w in
        match w.state with
        | Busy b ->
            let outcome =
              if w.killed then death_outcome w status
              else begin
                Metrics.incr m_crash;
                let tail = String.trim (Buffer.contents w.err_tail) in
                Outcome.Crash
                  (if tail = "" then "torn result frame"
                   else "torn result frame\n" ^ tail)
              end
            in
            settle b.task_index b.task_attempt outcome
        | Idle -> ()
      end
      else if !dead then worker_died w
    in
    let watchdog_pass now =
      List.iter
        (fun w ->
          match w.state with
          | Busy b when now >= b.kill_at ->
              w.killed <- true;
              Metrics.incr m_watchdog;
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (retire w : Unix.process_status);
              settle b.task_index b.task_attempt Outcome.Timeout
          | _ -> ())
        (* retire mutates [workers]; iterate over a snapshot *)
        (List.filter (fun _ -> true) !workers)
    in
    let shutdown () =
      (* Closing every task pipe first lets the EOF cascade reach all
         children whatever fd copies the younger siblings inherited. *)
      List.iter
        (fun w ->
          if w.state <> Idle then
            try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
        !workers;
      List.iter
        (fun w ->
          unregister_fork_fd w.task_wr;
          try Unix.close w.task_wr with Unix.Unix_error _ -> ())
        !workers;
      List.iter
        (fun w ->
          drain_err w;
          List.iter unregister_fork_fd [ w.res_rd; w.err_rd ];
          (try Unix.close w.res_rd with Unix.Unix_error _ -> ());
          (try Unix.close w.err_rd with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
        !workers;
      workers := []
    in
    (* A worker dying mid-dispatch must surface as EPIPE, not kill the
       campaign process; concurrent runs share the disposition. *)
    sigpipe_acquire ();
    Fun.protect
      ~finally:(fun () ->
        shutdown ();
        sigpipe_release ())
      (fun () ->
        while !completed < n && not !halted do
          (* Keep the pool at strength: one worker per queued task, up
             to [jobs]. Respawns after a kill are counted. *)
          let live = List.length !workers in
          let idle =
            List.length (List.filter (fun w -> w.state = Idle) !workers)
          in
          let want =
            Stdlib.min jobs (live - idle + Queue.length queue) - live
          in
          for _ = 1 to want do
            ignore (spawn () : worker)
          done;
          (* Dispatch queued work to idle workers. *)
          let rec feed () =
            if (not (Queue.is_empty queue)) && not !halted then
              match List.find_opt (fun w -> w.state = Idle) !workers with
              | Some w ->
                  ignore (dispatch w (Queue.pop queue) : bool);
                  feed ()
              | None -> ()
          in
          feed ();
          if !completed < n && not !halted then begin
            let now = Unix.gettimeofday () in
            let timeout =
              List.fold_left
                (fun acc w ->
                  match w.state with
                  | Busy b -> Stdlib.min acc (b.kill_at -. now)
                  | Idle -> acc)
                1.0 !workers
            in
            let timeout = Stdlib.max 0.0 (Stdlib.min timeout 1.0) in
            let fds =
              List.concat_map (fun w -> [ w.res_rd; w.err_rd ]) !workers
            in
            let readable =
              match Unix.select fds [] [] timeout with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
            in
            (* A handler may retire workers mid-iteration; skip any
               snapshot entry no longer in the live pool. *)
            List.iter
              (fun w ->
                if List.memq w !workers then begin
                  if List.memq w.err_rd readable then drain_err w;
                  if List.memq w.res_rd readable then handle_readable w
                end)
              (List.filter (fun _ -> true) !workers);
            watchdog_pass (Unix.gettimeofday ())
          end
        done;
        if !halted then begin
          (* Race decided: hard-kill every busy loser right now and
             record the casualties as timeouts. *)
          List.iter
            (fun w ->
              match w.state with
              | Busy b ->
                  w.killed <- true;
                  ignore (retire ~kill:true w : Unix.process_status);
                  finish b.task_index (b.task_attempt + 1) Outcome.Timeout
              | Idle -> ())
            (List.filter (fun _ -> true) !workers);
          Queue.iter (fun (i, attempt) -> finish i attempt Outcome.Timeout) queue;
          Queue.clear queue
        end;
        Array.mapi
          (fun i c ->
            match c with
            | Some c -> c
            | None -> { index = i; attempts = 0; outcome = Outcome.Timeout })
          results)
  end

let outcomes ?jobs ?mem_mb ?wall f tasks =
  let wall = Option.map (fun w ~attempt:_ -> w) wall in
  Array.map
    (fun c -> c.outcome)
    (run ?jobs ?mem_mb ?wall (fun ~attempt:_ x -> f x) tasks)
