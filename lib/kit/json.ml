type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep a decimal point so the value parses back as a float. *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print_to buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf x)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Parse of int * string

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail m = raise (Parse (!pos, m)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < len && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= len then fail "unterminated escape";
            let c = s.[!pos] in
            advance ();
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 () in
                let cp =
                  (* Combine a high surrogate with the \uXXXX that must
                     follow it. *)
                  if cp >= 0xD800 && cp <= 0xDBFF then begin
                    if
                      !pos + 2 <= len
                      && s.[!pos] = '\\'
                      && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                      else fail "unpaired surrogate"
                    end
                    else fail "unpaired surrogate"
                  end
                  else cp
                in
                utf8_add buf cp
            | _ -> fail "bad escape");
            go ()
        | c ->
            advance ();
            Buffer.add_char buf c;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < len
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse (p, m) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p m)

(* --- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let string_value = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
