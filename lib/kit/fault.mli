(** Deterministic fault injection for resilience testing.

    A fault specification arms named {e sites} — places in the code that
    call {!hit} (or {!cut}) — to fail on demand: raise an arbitrary
    exception, simulate allocation failure, kill a portfolio member, or
    truncate a parser's input. Tests (and the CI fault leg) use it to
    prove that one poisoned task cannot take down a campaign; see
    {!Guard.run} for the containment side.

    The harness is armed either programmatically ({!configure}) or from
    the [HB_FAULT] environment variable, read once at start-up. When no
    spec is armed, {!hit} is one atomic load and a branch, so permanent
    instrumentation of hot paths (e.g. {!Deadline.check}) is free.

    {2 Specification syntax}

    A spec is a semicolon-separated list of clauses

    {v kind@site:trigger v}

    where [kind] is [crash], [oom], [kill], [truncate] or [hang]; [site]
    is the
    site name (e.g. [deadline.poll], [instance.cq-rand-003],
    [portfolio.balsep], [hypergraph.parse]); and [trigger] is

    - [N] — fire exactly once, at the Nth hit of the site (1-based,
      counted globally across domains with an atomic counter);
    - [pF:sS] — fire independently at each hit with probability [F],
      derived deterministically from seed [S] and the hit number (so a
      given seed faults the same hit numbers on every run);
    - for [truncate]: [NxB] — at the Nth hit, let the caller keep only
      the first [B] bytes of its input.

    Examples: [crash@deadline.poll:120],
    [oom@instance.cq-rand-003:1], [kill@portfolio.balsep:p0.5:s7],
    [truncate@hypergraph.parse:3x40], [hang@instance.cq-rand-003:1].

    [hang] busy-loops forever {e without} ever calling
    {!Deadline.check} — it simulates a search that stops cooperating, so
    it escapes {!Guard.run} and every soft budget. Only the hard
    wall-clock watchdog of {!Proc} (campaigns under [HB_ISOLATE=1] /
    [--isolate]) terminates it; do not arm it in an un-isolated run you
    are not prepared to kill. *)

type kind = Crash | Oom | Kill | Truncate | Hang

exception Injected of string
(** Raised by {!hit} at an armed [crash] or [kill] site; the payload
    names the kind, site and hit number. [oom] raises
    [Stdlib.Out_of_memory] instead, so allocation-failure handling is
    exercised for real. *)

val configure : string -> (unit, string) result
(** Replace the armed spec. [Error] (leaving the harness disarmed)
    on a malformed spec. [configure ""] disarms. *)

val clear : unit -> unit
(** Disarm every site and forget all hit counters. *)

val armed : unit -> bool
(** Cheap: a single atomic load. *)

val config_error : unit -> string option
(** The parse error of a malformed [HB_FAULT] start-up value, if any —
    surfaced by the CLI so a typo'd spec does not silently run
    fault-free. *)

val hit : string -> unit
(** Count one hit of [site]; raise if an armed clause fires. No-op when
    disarmed. *)

val cut : string -> int option
(** Count one hit of a [truncate] site; [Some bytes] when this hit
    fires, telling the caller to keep only a prefix of its input. *)
