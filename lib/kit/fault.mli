(** Deterministic fault injection for resilience testing.

    A fault specification arms named {e sites} — places in the code that
    call {!hit} (or {!cut}) — to fail on demand: raise an arbitrary
    exception, simulate allocation failure, kill a portfolio member, or
    truncate a parser's input. Tests (and the CI fault leg) use it to
    prove that one poisoned task cannot take down a campaign; see
    {!Guard.run} for the containment side.

    The harness is armed either programmatically ({!configure}) or from
    the [HB_FAULT] environment variable, read once at start-up. When no
    spec is armed, {!hit} is one atomic load and a branch, so permanent
    instrumentation of hot paths (e.g. {!Deadline.check}) is free.

    {2 Specification syntax}

    A spec is a semicolon-separated list of clauses

    {v kind@site:trigger v}

    where [kind] is [crash], [oom], [kill], [truncate], [hang], or one
    of the network kinds [stall], [reset], [torn]; [site] is the
    site name (e.g. [deadline.poll], [instance.cq-rand-003],
    [portfolio.balsep], [hypergraph.parse], [serve.read], [serve.write],
    [client.read], [client.write], [serve.worker]); and [trigger] is

    - [N] — fire exactly once, at the Nth hit of the site (1-based,
      counted globally across domains with an atomic counter);
    - [pF:sS] — fire independently at each hit with probability [F],
      derived deterministically from seed [S] and the hit number (so a
      given seed faults the same hit numbers on every run);
    - for [truncate]: [NxB] — at the Nth hit, let the caller keep only
      the first [B] bytes of its input.

    Examples: [crash@deadline.poll:120],
    [oom@instance.cq-rand-003:1], [kill@portfolio.balsep:p0.5:s7],
    [truncate@hypergraph.parse:3x40], [hang@instance.cq-rand-003:1].

    [hang] busy-loops forever {e without} ever calling
    {!Deadline.check} — it simulates a search that stops cooperating, so
    it escapes {!Guard.run} and every soft budget. Only the hard
    wall-clock watchdog of {!Proc} (campaigns under [HB_ISOLATE=1] /
    [--isolate]) terminates it; do not arm it in an un-isolated run you
    are not prepared to kill.

    {2 Network kinds}

    [stall], [reset] and [torn] are {e acted out} by the wire layer
    rather than raised: a socket read/write path calls {!net} and, when
    a clause fires, simulates the hostile peer itself — [stall] blocks
    until the path's own timeout budget expires, [reset] behaves as an
    abrupt connection reset, [torn] delivers a partial write and then
    closes the socket for real (the peer observes a torn response).
    Sites: [serve.read] / [serve.write] in the daemon's
    {!Serve.Http} layer, [client.read] / [client.write] in
    {!Serve.Client}. Example:
    [stall@serve.read:p0.1:s7;torn@serve.write:3]. *)

type kind = Crash | Oom | Kill | Truncate | Hang | Stall | Reset | Torn

exception Injected of string
(** Raised by {!hit} at an armed [crash] or [kill] site; the payload
    names the kind, site and hit number. [oom] raises
    [Stdlib.Out_of_memory] instead, so allocation-failure handling is
    exercised for real. *)

val configure : string -> (unit, string) result
(** Replace the armed spec. [Error] (leaving the harness disarmed)
    on a malformed spec. [configure ""] disarms. *)

val clear : unit -> unit
(** Disarm every site and forget all hit counters. *)

val armed : unit -> bool
(** Cheap: a single atomic load. *)

val config_error : unit -> string option
(** The parse error of a malformed [HB_FAULT] start-up value, if any —
    surfaced by the CLI so a typo'd spec does not silently run
    fault-free. *)

val hit : string -> unit
(** Count one hit of [site]; raise if an armed clause fires. No-op when
    disarmed. *)

val cut : string -> int option
(** Count one hit of a [truncate] site; [Some bytes] when this hit
    fires, telling the caller to keep only a prefix of its input. *)

val net : string -> kind option
(** Count one hit of a network site; [Some (Stall | Reset | Torn)] when
    an armed network clause fires there, telling the wire layer which
    hostile-peer behaviour to act out. Never raises; one atomic load
    when disarmed. Non-network kinds at the site are ignored (they
    belong to {!hit}), and vice versa. *)
