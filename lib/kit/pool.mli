(** A fixed-size [Domain] work pool for embarrassingly parallel loops.

    [run ~jobs f tasks] evaluates [f] on every element of [tasks] using at
    most [jobs] domains (the calling domain participates, so [jobs = 4]
    spawns three) and returns the results in input order. Task
    granularity is expected to be coarse — one benchmark instance, one
    solver run — so scheduling is a single shared counter.

    Determinism: results depend only on [f] and the task order, never on
    the number of jobs or the interleaving; [jobs = 1] degrades to a plain
    sequential loop with no domains spawned.

    Ordering and containment guarantees, for every runner below:
    - results are indexed exactly like the input array, whatever order
      tasks actually complete in;
    - every task is attempted exactly once, even when a sibling task
      fails — a per-task failure is recorded in that task's slot and
      disturbs nothing else;
    - every spawned domain is joined before the call returns, on all
      paths. If [Domain.spawn] itself fails partway (the runtime caps
      live domains, or the OS refuses a thread), the pool degrades to
      the workers that did spawn — the remaining tasks run there and on
      the calling domain — and counts the event in the
      ["pool.spawn_failures"] metric instead of leaking unjoined
      domains. *)

val default_jobs : unit -> int
(** The [HB_JOBS] environment knob when it parses as a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val run_result : jobs:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Exceptions raised by a task are captured per-task as [Error] without
    disturbing the other tasks or the pool. *)

val run_outcome :
  ?mem_mb:int ->
  ?isolate:bool ->
  ?wall:float ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b Outcome.t array
(** Like {!run_result}, but each task runs inside {!Guard.run}: leaked
    timeouts, allocation failure (real or [HB_MEM_MB]-budgeted), stack
    overflow and crashes come back as structured {!Outcome.t} values.
    This is the campaign-grade runner: no task outcome can kill a domain
    or the pool.

    With [isolate] (default: {!Proc.enabled}, i.e. [HB_ISOLATE=1]) the
    tasks run in forked worker processes via {!Proc.outcomes} instead of
    domains: same ordering and containment guarantees, plus a hard
    [wall]-second watchdog and a hard memory rlimit — tasks must then
    return only plain marshallable data. *)

val run : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!run_result}, but re-raises the first (lowest-index) captured
    exception after all tasks have settled and every domain is joined. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!run} over lists. *)
