(** A minimal JSON value type, printer and parser — just enough for the
    experiment journal (JSONL) and the metrics export, with no external
    dependency. Numbers round-trip exactly: integers stay integers and
    floats are printed with 17 significant digits, so a journaled record
    re-renders bit-identically after resume. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line, no spaces) rendering with full string
    escaping; never produces a newline, so one value per line is a valid
    JSONL record. *)

val of_string : string -> (t, string) result
(** Strict parse of a single value (trailing garbage is an error).
    Errors carry the byte offset. [\uXXXX] escapes are decoded to
    UTF-8; surrogate pairs are combined. *)

(** {1 Accessors} — shallow, total helpers for decoding journal rows *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int], or a [Float] with integral value. *)

val to_float : t -> float option
val to_bool : t -> bool option
val string_value : t -> string option
val to_list : t -> t list option
