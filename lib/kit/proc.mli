(** Process-level hard isolation for campaign tasks.

    {!Guard.run} contains failures {e cooperatively}: a task that stops
    calling {!Deadline.check} (a tight LP pivot loop, a pathological
    enumeration) hangs the whole campaign, and every task's allocations
    land on the heap shared by all domains. [Proc] closes that gap the
    way the paper's cluster runs do — one {e process} per task:

    - a small reusable worker pool (keyed by [HB_JOBS]) is preforked per
      {!run} call, so fork cost is amortised over all tasks;
    - tasks and results travel over pipes as length-prefixed,
      checksummed [Marshal] frames (tasks are sent as array indices, so
      nothing but plain data ever crosses the pipe);
    - a monitor in the parent enforces a {e wall-clock} watchdog —
      [SIGKILL] on deadline overrun — no cooperation required;
    - each worker installs a {e hard} memory cap via
      [setrlimit(RLIMIT_DATA/RLIMIT_AS)] before serving tasks, so one
      instance's allocations cannot touch a sibling (the {!Guard} soft
      alarm is also armed at the same budget, so most overruns are
      reported gracefully in-band);
    - worker death maps onto the {!Outcome} taxonomy: killed by the
      watchdog → [Timeout]; rlimit exhaustion or an OOM-kill →
      [Out_of_memory]; any other nonzero exit or torn frame → [Crash]
      carrying the worker's captured stderr tail.

    Fork safety: {!run} forks from the calling domain and drives all
    workers from a single-threaded [select] loop — no OCaml domains are
    involved. OCaml 5 refuses [Unix.fork] {e permanently} once the
    process has ever spawned a domain, so every isolated pass must
    complete before the first domain pool starts; the campaign runners
    order their phases accordingly (isolated analysis first, domain-pool
    ghd/fractional passes after), and a process gets one such window —
    run additional isolated campaigns in fresh processes.

    System {e threads} are fine, including several threads each driving
    their own concurrent {!run} (the serving daemon's per-request
    sandbox): pipe creation, fork and fd registration are serialised
    under one lock, every child first closes all registered parent-side
    fds (see {!register_fork_fd}), and the [SIGPIPE] disposition is
    reference-counted across overlapping runs. One caveat is inherent to
    forking a threaded process: a child can land on a C-level lock an
    unrelated thread held at fork time and deadlock before reaching its
    task — the wall-clock watchdog then reaps it as a [Timeout], so the
    failure mode is a (rare) spurious timeout, never a wedged host.

    Determinism: results are indexed like the input array; with a fuel
    budget inside the tasks, verdicts are identical at every [jobs]
    value — the watchdog only fires for tasks that would otherwise hang
    forever. *)

type 'b completion = {
  index : int;  (** position in the input task array *)
  attempts : int;
      (** dispatches actually consumed (0 for a task never started
          because {!run} halted early) *)
  outcome : 'b Outcome.t;
}

val enabled : unit -> bool
(** The [HB_ISOLATE] environment knob: [true] iff it is set to [1]. *)

val register_fork_fd : Unix.file_descr -> unit
(** Record a parent-side fd that no forked worker may inherit open: a
    listening socket, an accepted connection, a log file. Every child
    closes all registered fds first thing after the fork, so a
    long-running sandboxed task cannot pin a socket the host has since
    closed. [run] registers its own pipe ends through the same table,
    which is what makes {e concurrent} [run] calls from several threads
    safe: without it, a child forked by one thread inherits another
    run's task-pipe write end and that run's worker never sees EOF at
    shutdown. Registration, fd creation and fork are serialised under
    one lock. Thread-safe. *)

val unregister_fork_fd : Unix.file_descr -> unit
(** Remove an fd from the registry — call just {e before} closing it
    (a registered-but-closed fd number could be recycled by an unrelated
    [open]). Unregistering an fd that was never registered is a no-op.
    Thread-safe. *)

val default_jobs : unit -> int
(** The [HB_JOBS] environment knob when it parses as a positive integer,
    otherwise [Domain.recommended_domain_count ()]. ({!Pool.default_jobs}
    is this function — the knob is shared by both runners.) *)

val default_wall : unit -> float
(** The [HB_WALL] watchdog budget in seconds when it parses as a
    positive float, else 3600 (the paper's per-run limit). *)

val run :
  ?jobs:int ->
  ?mem_mb:int ->
  ?retries:int ->
  ?halt_on:('b Outcome.t -> bool) ->
  ?on_done:('b completion -> unit) ->
  ?wall:(attempt:int -> float) ->
  (attempt:int -> 'a -> 'b) ->
  'a array ->
  'b completion array
(** [run f tasks] evaluates [f ~attempt tasks.(i)] for every [i] inside
    a forked worker process and returns one completion per task, in
    input order. Never raises on task failure: every way a worker can
    die becomes that task's [Outcome].

    - [jobs] (default {!default_jobs}) bounds the worker pool; a
      worker is reused for many tasks and only respawned after a kill.
    - [mem_mb] (default [HB_MEM_MB], i.e. {!Guard.mem_budget_mb}) is
      the hard per-worker rlimit; [0] or absent disables it.
    - A non-[Ok] outcome is retried up to [retries] times (default 0),
      re-dispatched with [attempt + 1]; [wall ~attempt] supplies each
      attempt's watchdog budget (default: {!default_wall}, flat).
    - [halt_on] turns the run into a race: the first completed outcome
      it accepts kills every other busy worker with [SIGKILL] and
      records the casualties (and any never-dispatched task) as
      [Timeout] — this is the hard-kill path of
      {!Ghd.Portfolio.race_isolated}.
    - [on_done] is called in the parent, in completion order, exactly
      once per task — the journal hook.

    Results must contain only plain data (no closures, no custom
    blocks): they cross the pipe via [Marshal]. The task function and
    task array themselves never cross — workers inherit them by fork.

    Fault sites under isolation: {!Fault.hit} counters live in each
    worker's forked copy of the harness, so an [N]-th-hit clause fires
    per worker process, not globally across the pool. *)

val outcomes :
  ?jobs:int ->
  ?mem_mb:int ->
  ?wall:float ->
  ('a -> 'b) ->
  'a array ->
  'b Outcome.t array
(** {!run} without retries or races: just the outcome per task. This is
    the process-isolated counterpart of {!Pool.run_outcome}. *)
