module Hypergraph = Hg.Hypergraph

(* Total cover-candidate pool handed to the search: original edges plus
   the whole f(H,k) set (Kit.Metrics; recorded only when enabled). *)
let m_candidates = Kit.Metrics.counter "globalbip.candidates"
let m_solves = Kit.Metrics.counter "globalbip.solves"

type answer = {
  outcome : Detk.outcome;
  exact : bool;
}

(* Lines 6-10 of Algorithm 1: replace every subedge in a cover by an
   original edge containing it; bags are untouched, so the result is still
   a GHD of the same width. *)
let fix_covers h d =
  Decomp.map_covers
    (fun elt ->
      match elt.Decomp.source with
      | Decomp.Subedge parent ->
          {
            Decomp.label = Hypergraph.edge_name h parent;
            vertices = Hypergraph.edge h parent;
            source = Decomp.Original parent;
          }
      | Decomp.Original _ | Decomp.Special -> elt)
    d

let solve ?deadline ?expand_limit ?max_subedges ?c h ~k =
  match
    let { Subedges.candidates = subs; complete } =
      Subedges.f_global ?deadline ?expand_limit ?max_subedges ?c h ~k
    in
    let candidates = Detk.candidates_of_edges h @ subs in
    Kit.Metrics.incr m_solves;
    Kit.Metrics.add m_candidates (List.length candidates);
    (complete, Detk.solve_gen ?deadline ~candidates h ~k)
  with
  | _, Detk.Decomposition d ->
      { outcome = Detk.Decomposition (fix_covers h d); exact = true }
  | complete, Detk.No_decomposition ->
      { outcome = Detk.No_decomposition; exact = complete }
  | _, Detk.Timeout -> { outcome = Detk.Timeout; exact = false }
  | exception Kit.Deadline.Timed_out -> { outcome = Detk.Timeout; exact = false }
