module Bitset = Kit.Bitset

(* Calls into the per-component extra-candidate oracle f_u(H,k), split by
   cache outcome (Kit.Metrics; recorded only when enabled). *)
let m_extra_calls = Kit.Metrics.counter "localbip.extra_calls"
let m_extra_cache_hits = Kit.Metrics.counter "localbip.extra_cache_hits"

type answer = {
  outcome : Detk.outcome;
  exact : bool;
}

let solve ?deadline ?expand_limit ?max_subedges h ~k =
  let all_complete = ref true in
  (* The local subedge set depends only on the component, so cache it. *)
  let cache : (int list, Detk.candidate list) Hashtbl.t = Hashtbl.create 32 in
  let extra ~comp ~conn:_ =
    Kit.Metrics.incr m_extra_calls;
    let key = Bitset.to_list comp in
    match Hashtbl.find_opt cache key with
    | Some cs ->
        Kit.Metrics.incr m_extra_cache_hits;
        cs
    | None ->
        let { Subedges.candidates; complete } =
          Subedges.f_local ?deadline ?expand_limit ?max_subedges h ~k ~comp
        in
        if not complete then all_complete := false;
        Hashtbl.replace cache key candidates;
        candidates
  in
  match
    Detk.solve_gen ?deadline ~extra ~candidates:(Detk.candidates_of_edges h) h ~k
  with
  | Detk.Decomposition d ->
      { outcome = Detk.Decomposition (Global_bip.fix_covers h d); exact = true }
  | Detk.No_decomposition ->
      { outcome = Detk.No_decomposition; exact = !all_complete }
  | Detk.Timeout -> { outcome = Detk.Timeout; exact = false }
