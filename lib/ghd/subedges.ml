module Bitset = Kit.Bitset
module Deadline = Kit.Deadline
module Metrics = Kit.Metrics
module Hypergraph = Hg.Hypergraph

(* Search observability: size of each generated f(H,k) candidate pool
   (Kit.Metrics; recorded only when enabled). *)
let m_generated = Metrics.counter "subedges.generated"
let m_truncated = Metrics.counter "subedges.truncated"
let m_pool_size =
  Metrics.histogram "subedges.pool_size" ~buckets:[| 0; 10; 100; 1000; 10000 |]

type result = {
  candidates : Detk.candidate list;
  complete : bool;
}

(* All non-empty proper subsets of a small vertex set, via index masks. *)
let proper_subsets verts =
  let arr = Array.of_list (Bitset.to_list verts) in
  let n = Array.length arr in
  let universe = Bitset.universe verts in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 2 do
    let s = ref (Bitset.empty universe) in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then s := Bitset.add arr.(i) !s
    done;
    out := !s :: !out
  done;
  !out

let generate ?(deadline = Deadline.none) ?(expand_limit = 10)
    ?(max_subedges = 20_000) ?(c = 2) h ~k ~partners =
  if c < 2 then invalid_arg "Subedges: c must be >= 2";
  let truncated = ref false in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Never emit a set equal to an original edge. *)
  Array.iter (fun e -> Hashtbl.replace seen (Bitset.to_list e) ()) h.Hypergraph.edges;
  let out = ref [] in
  let count = ref 0 in
  let emit parent s =
    if not (Bitset.is_empty s) then begin
      let key = Bitset.to_list s in
      if not (Hashtbl.mem seen key) then begin
        if !count >= max_subedges then truncated := true
        else begin
          Hashtbl.replace seen key ();
          incr count;
          out :=
            {
              Detk.label =
                Printf.sprintf "%s~%d" (Hypergraph.edge_name h parent) !count;
              vertices = s;
              source = Decomp.Subedge parent;
            }
            :: !out
        end
      end
    end
  in
  let partner_list = Bitset.to_list partners in
  for e = 0 to h.Hypergraph.n_edges - 1 do
    let edge_e = Hypergraph.edge h e in
    (* Distinct non-empty intersections of e with up to c-1 partner edges
       (c = 2 is the BIP case of pairwise intersections; larger c is the
       BMIP generalisation where multi-intersections stay small even when
       pairwise ones are big). *)
    let partner_arr = Array.of_list (List.filter (( <> ) e) partner_list) in
    let inter_set = Hashtbl.create 32 in
    let rec multi depth first acc =
      Deadline.check deadline;
      if not (Bitset.is_empty acc) then
        Hashtbl.replace inter_set (Bitset.to_list acc) acc;
      if depth < c - 1 && not (Bitset.is_empty acc) then
        for j = first to Array.length partner_arr - 1 do
          multi (depth + 1) (j + 1)
            (Bitset.inter acc (Hypergraph.edge h partner_arr.(j)))
        done
    in
    for j = 0 to Array.length partner_arr - 1 do
      multi 1 (j + 1) (Bitset.inter edge_e (Hypergraph.edge h partner_arr.(j)))
    done;
    let inters =
      Hashtbl.fold (fun _ v acc -> v :: acc) inter_set []
      |> List.sort_uniq Bitset.compare
    in
    let inters = Array.of_list inters in
    (* Unions of up to k intersections, deduplicated along the way. *)
    let union_seen = Hashtbl.create 64 in
    let expand u =
      emit e u;
      if Bitset.cardinal u <= expand_limit then
        List.iter (emit e) (proper_subsets u)
      else begin
        truncated := true;
        (* Still provide the singletons as a cheap approximation. *)
        Bitset.iter
          (fun v -> emit e (Bitset.singleton (Bitset.universe u) v))
          u
      end
    in
    let rec unions depth first u =
      Deadline.check deadline;
      if !count < max_subedges then begin
        let key = Bitset.to_list u in
        if not (Hashtbl.mem union_seen key) then begin
          Hashtbl.replace union_seen key ();
          expand u;
          if depth < k then
            for j = first to Array.length inters - 1 do
              unions (depth + 1) (j + 1) (Bitset.union u inters.(j))
            done
        end
      end
      else truncated := true
    in
    for j = 0 to Array.length inters - 1 do
      unions 1 (j + 1) inters.(j)
    done
  done;
  Metrics.add m_generated !count;
  Metrics.observe m_pool_size !count;
  if !truncated then Metrics.incr m_truncated;
  { candidates = List.rev !out; complete = not !truncated }

let f_global ?deadline ?expand_limit ?max_subedges ?c h ~k =
  generate ?deadline ?expand_limit ?max_subedges ?c h ~k
    ~partners:(Hypergraph.all_edges h)

let f_local ?deadline ?expand_limit ?max_subedges ?c h ~k ~comp =
  generate ?deadline ?expand_limit ?max_subedges ?c h ~k ~partners:comp
