(** Combined ghw computation (paper §6.4, Table 4): the paper runs
    GlobalBIP, LocalBIP and BalSep in parallel and takes the first
    answer. We emulate this sequentially with a per-algorithm budget —
    BalSep first (best on "no" instances), then LocalBIP, then GlobalBIP —
    reporting which algorithm decided. *)

type algorithm =
  | Bal_sep_alg
  | Par_bal_sep_alg  (** {!Par_bal_sep}: intra-parallel BalSep *)
  | Local_bip_alg
  | Global_bip_alg

val algorithm_name : algorithm -> string

type verdict =
  | Yes of Decomp.t * algorithm
  | No of algorithm
  | All_timeout

val order : algorithm list
(** The paper's three-member portfolio (the default [members]). *)

val order_with_intra : algorithm list
(** [order] with {!Par_bal_sep_alg} in front — the [HB_INTRA=1]
    portfolio. The parallel member uses [intra_jobs] domains. *)

val check :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?members:algorithm list ->
  ?intra_jobs:int ->
  Hg.Hypergraph.t ->
  k:int ->
  verdict
(** Check(GHD,k) with the portfolio. [budget] produces a fresh deadline per
    algorithm (default: none). Inexact "no" answers (truncated subedge
    sets) are treated as timeouts so that [No] is always trustworthy.
    [members] (default {!order}) selects and orders the algorithms;
    [intra_jobs] (default 1) is the domain count handed to
    {!Par_bal_sep_alg} members.

    Containment: every member runs inside {!Kit.Guard.run}, so a member
    that crashes, overflows its stack or trips the [HB_MEM_MB] budget is
    recorded in the ["portfolio.member_crash"] metric and contributes no
    verdict — the remaining members still decide. The fault-injection
    sites ["portfolio.balsep"], ["portfolio.parbalsep"],
    ["portfolio.localbip"] and ["portfolio.globalbip"] let tests kill one
    member deliberately. *)

val race :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?members:algorithm list ->
  ?intra_jobs:int ->
  Hg.Hypergraph.t ->
  k:int ->
  verdict
(** Like {!check}, but the paper's actual protocol: all members run
    concurrently on separate domains, and the first exact verdict
    cancels the others cooperatively. The yes/no/timeout classification
    agrees with {!check} (every exact answer is sound); the reported
    winning algorithm and the witness decomposition may differ, since they
    depend on which algorithm finishes first.

    Loser discipline: a member whose flag is pulled raises out of its
    next [Deadline.check] {e before} any search metric ticks, so a
    cancelled member contributes nothing to the solver counters; it
    records exactly one ["portfolio.cancelled_members"] tick and one
    ["portfolio.cancel_latency"] span, both portfolio-side. *)

val race_isolated :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?members:algorithm list ->
  ?mem_mb:int ->
  ?wall:float ->
  Hg.Hypergraph.t ->
  k:int ->
  verdict
(** {!race} under hard isolation ([HB_ISOLATE]): each member runs in its
    own forked process via {!Kit.Proc}, and the first exact verdict
    hard-kills the losers with [SIGKILL] instead of waiting for their
    next cooperative check — a member that stops polling its deadline
    cannot delay the portfolio. [wall] (default [HB_WALL], else 3600)
    bounds every member's wall-clock run; [mem_mb] (default [HB_MEM_MB])
    is each member's hard memory rlimit. Killed losers are classified as
    timeouts; a member whose process dies abnormally counts toward
    ["portfolio.member_crash"] and contributes no verdict. Members always
    run intra-sequentially here (a {!Par_bal_sep_alg} member gets
    [intra_jobs = 1]): the child ships its per-instance metrics delta to
    the parent, and domains spawned inside the child would record outside
    that delta. *)

val ghw_improvement :
  ?budget:(unit -> Kit.Deadline.t) ->
  Hg.Hypergraph.t ->
  hw:int ->
  [ `Improved of int * Decomp.t | `Not_improvable | `Unknown ]
(** The experiment of Table 4: given hw(H) = [hw], try to show
    ghw <= hw - 1. [`Improved (hw-1, ghd)] on success, [`Not_improvable]
    when ghw = hw is proven, [`Unknown] on timeout. *)
