type algorithm =
  | Bal_sep_alg
  | Par_bal_sep_alg
  | Local_bip_alg
  | Global_bip_alg

let algorithm_name = function
  | Bal_sep_alg -> "BalSep"
  | Par_bal_sep_alg -> "ParBalSep"
  | Local_bip_alg -> "LocalBIP"
  | Global_bip_alg -> "GlobalBIP"

type verdict =
  | Yes of Decomp.t * algorithm
  | No of algorithm
  | All_timeout

(* Winner identity per portfolio run, and — in [race] — how long losers
   take to notice the winner's cancellation (Kit.Metrics; recorded only
   when enabled). *)
let m_win_balsep = Kit.Metrics.counter "portfolio.wins.balsep"
let m_win_parbalsep = Kit.Metrics.counter "portfolio.wins.parbalsep"
let m_win_localbip = Kit.Metrics.counter "portfolio.wins.localbip"
let m_win_globalbip = Kit.Metrics.counter "portfolio.wins.globalbip"
let m_all_timeout = Kit.Metrics.counter "portfolio.all_timeout"
let m_member_crash = Kit.Metrics.counter "portfolio.member_crash"
let m_cancel_latency = Kit.Metrics.timer "portfolio.cancel_latency"
let m_cancelled = Kit.Metrics.counter "portfolio.cancelled_members"

let record_verdict v =
  (match v with
  | Yes (_, alg) | No alg ->
      Kit.Metrics.incr
        (match alg with
        | Bal_sep_alg -> m_win_balsep
        | Par_bal_sep_alg -> m_win_parbalsep
        | Local_bip_alg -> m_win_localbip
        | Global_bip_alg -> m_win_globalbip)
  | All_timeout -> Kit.Metrics.incr m_all_timeout);
  v

let default_budget () = Kit.Deadline.none

let solve_with ?(intra_jobs = 1) alg ~deadline h ~k =
  match alg with
  | Bal_sep_alg -> Bal_sep.solve ~deadline h ~k
  | Par_bal_sep_alg -> Par_bal_sep.solve ~jobs:intra_jobs ~deadline h ~k
  | Local_bip_alg ->
      let { Local_bip.outcome; exact } = Local_bip.solve ~deadline h ~k in
      { Bal_sep.outcome; exact }
  | Global_bip_alg ->
      let { Global_bip.outcome; exact } = Global_bip.solve ~deadline h ~k in
      { Bal_sep.outcome; exact }

let fault_site alg =
  match alg with
  | Bal_sep_alg -> "portfolio.balsep"
  | Par_bal_sep_alg -> "portfolio.parbalsep"
  | Local_bip_alg -> "portfolio.localbip"
  | Global_bip_alg -> "portfolio.globalbip"

(* Each member runs inside a Guard boundary: a member that crashes (or is
   killed by the fault harness, or trips the memory budget) records one
   portfolio.member_crash and simply contributes no verdict — the
   survivors still race to an answer, matching the paper's "first answer
   wins, losers are discarded" protocol under partial failure. *)
let decide ?intra_jobs alg ~deadline h ~k =
  match
    Kit.Guard.run (fun () ->
        Kit.Fault.hit (fault_site alg);
        solve_with ?intra_jobs alg ~deadline h ~k)
  with
  | Kit.Outcome.Ok { Bal_sep.outcome; exact } -> (
      match outcome with
      | Detk.Decomposition d -> Some (Yes (d, alg))
      | Detk.No_decomposition when exact -> Some (No alg)
      | Detk.No_decomposition | Detk.Timeout -> None)
  | Kit.Outcome.Timeout -> None
  | Kit.Outcome.Out_of_memory | Kit.Outcome.Stack_overflow
  | Kit.Outcome.Crash _ ->
      Kit.Metrics.incr m_member_crash;
      None

let order = [ Bal_sep_alg; Local_bip_alg; Global_bip_alg ]
let order_with_intra = Par_bal_sep_alg :: order

let check ?(budget = default_budget) ?(members = order) ?intra_jobs h ~k =
  let rec first = function
    | [] -> All_timeout
    | alg :: rest -> (
        match decide ?intra_jobs alg ~deadline:(budget ()) h ~k with
        | Some v -> v
        | None -> first rest)
  in
  record_verdict (first members)

let race ?(budget = default_budget) ?(members = order) ?intra_jobs h ~k =
  let flag = Kit.Deadline.new_cancel () in
  (* Wall-clock instant the winner pulled the flag: written before the
     cancel itself, so any loser that observed a cancelled flag also sees
     a valid timestamp and can report how long cancellation took to land. *)
  let cancel_at = Atomic.make neg_infinity in
  let run alg =
    let deadline = Kit.Deadline.with_cancel flag (budget ()) in
    let v = decide ?intra_jobs alg ~deadline h ~k in
    (* First exact verdict wins: abort the siblings at their next
       Deadline.check. Losers surface as timeouts, exactly as if their
       budget had run out. A loser never records search metrics after its
       flag is pulled — Deadline.check raises before any counter in the
       solver cores ticks — so its only post-cancellation traces are the
       two scheduler-side portfolio metrics below. *)
    if v <> None then begin
      Atomic.set cancel_at (Unix.gettimeofday ());
      Kit.Deadline.cancel flag
    end
    else if Kit.Deadline.is_cancelled flag then begin
      Kit.Metrics.incr m_cancelled;
      let t0 = Atomic.get cancel_at in
      if t0 > neg_infinity then
        Kit.Metrics.add_seconds m_cancel_latency (Unix.gettimeofday () -. t0)
    end;
    v
  in
  let results =
    Kit.Pool.run_result ~jobs:(List.length members) run (Array.of_list members)
  in
  (* Reduce in the fixed algorithm order, not arrival order, so that ties
     between near-simultaneous finishers resolve deterministically. A
     member slot that somehow failed outside the Guard boundary counts as
     a crashed member, never as a reason to abort the race. *)
  let rec pick i =
    if i >= Array.length results then All_timeout
    else
      match results.(i) with
      | Ok (Some v) -> v
      | Ok None -> pick (i + 1)
      | Error _ ->
          Kit.Metrics.incr m_member_crash;
          pick (i + 1)
  in
  record_verdict (pick 0)

let race_isolated ?(budget = default_budget) ?(members = order) ?mem_mb ?wall
    h ~k =
  let wall =
    match wall with Some w -> w | None -> Kit.Proc.default_wall ()
  in
  (* One forked worker per member. The first decisive frame pulls the
     plug on the others with SIGKILL — no cooperative Deadline.check
     required of the losers, which is the whole point: a member stuck in
     a tight pivot loop cannot outlive the winner. Killed losers come
     back as [Timeout], exactly as if their budget had run out. *)
  let completions =
    (* Members run intra-sequentially here on purpose: the worker ships
       its per-instance metrics delta back from the child, and domains
       spawned inside the child would record outside that delta — an
       intra-parallel member belongs in [race], not under isolation. *)
    Kit.Proc.run ~jobs:(List.length members) ?mem_mb
      ~wall:(fun ~attempt:_ -> wall)
      ~halt_on:(function Kit.Outcome.Ok (Some _) -> true | _ -> false)
      (fun ~attempt:_ alg -> decide ~intra_jobs:1 alg ~deadline:(budget ()) h ~k)
      (Array.of_list members)
  in
  (* Reduce in the fixed algorithm order (same tie-break as [race]). A
     member whose process died abnormally counts as a crashed member,
     never as a reason to abort the race. *)
  let rec pick i =
    if i >= Array.length completions then All_timeout
    else
      match completions.(i).Kit.Proc.outcome with
      | Kit.Outcome.Ok (Some v) -> v
      | Kit.Outcome.Ok None | Kit.Outcome.Timeout -> pick (i + 1)
      | Kit.Outcome.Out_of_memory | Kit.Outcome.Stack_overflow
      | Kit.Outcome.Crash _ ->
          Kit.Metrics.incr m_member_crash;
          pick (i + 1)
  in
  record_verdict (pick 0)

let ghw_improvement ?budget h ~hw =
  if hw <= 2 then `Not_improvable (* hw <= 2 implies ghw = hw, §6.4 *)
  else
    match check ?budget h ~k:(hw - 1) with
    | Yes (d, _) -> `Improved (hw - 1, d)
    | No _ -> `Not_improvable
    | All_timeout -> `Unknown
