module Bitset = Kit.Bitset
module Deadline = Kit.Deadline
module Metrics = Kit.Metrics
module Steal = Kit.Steal
module Hypergraph = Hg.Hypergraph

(* Same registration as Bal_sep's depth histogram: both recursions feed
   one metric. The remaining counters are parallel-solver specific; all
   of them are deterministic under HB_FUEL (the fork set, the base-case
   set and the fallback set are pure functions of the instance and the
   budget split, never of the steal schedule). *)
let m_depth =
  Metrics.histogram "balsep.depth" ~buckets:[| 1; 2; 4; 8; 16; 24; 32; 48 |]

let m_subtasks = Metrics.counter "parbalsep.subtasks"
let m_base_cases = Metrics.counter "parbalsep.base_cases"
let m_base_fallbacks = Metrics.counter "parbalsep.base_fallbacks"

type ctx = {
  h : Hypergraph.t;
  k : int;
  sched : Steal.t;
  cutoff : int;
  fuel_mode : bool;
  caller : Deadline.t;
  exact : bool Atomic.t;
  memoize : bool;
  use_subedges : bool;
  expand_limit : int option;
  max_subedges : int option;
  edge_candidates : Detk.candidate array;
  get_subedges : unit -> Detk.candidate array;
}

type status = Solved | Timed | Aborted

type tres = { node : Decomp.node option; status : status; leftover : int }

(* Was this Timed_out a real budget expiry (caller cancelled, wall gone,
   own fuel share drained) — or only a fork-group abort, which unwinds
   the subtask but is no verdict about the instance? *)
let hard_expired ctx dl =
  Deadline.expired ctx.caller
  ||
  match Deadline.fuel_remaining dl with Some n -> n <= 0 | None -> false

let weight (s : Bal_sep.subproblem) =
  Bitset.cardinal s.comp + List.length s.sp

let unique_name taken base =
  if not (Hashtbl.mem taken base) then base
  else begin
    let rec go i =
      let cand = base ^ "~" ^ string_of_int i in
      if Hashtbl.mem taken cand then go (i + 1) else cand
    in
    go 0
  end

(* Base case below the cutoff: materialise the extended subhypergraph —
   special edges become real edges that must be covered, but are never
   cover candidates — and run the sequential DetKDecomp on it with the
   scope-filtered full-edge pool. An HD is a GHD, so a yes is sound as
   is: the special edges end up inside bags and BuildGHD grafts the tree
   through its covers-the-special path. A no is NOT conclusive (hw can
   exceed ghw), so it falls back to the sequential BalSep recursion on
   the same subproblem, which shares this task's env (memo, subedge
   pool, budget). The paper's empirical finding — hw = ghw on almost all
   real instances — is what makes the fast path worth it. *)
let detk_base ctx env ~deadline ~depth (s : Bal_sep.subproblem) =
  Metrics.incr m_base_cases;
  Metrics.observe m_depth depth;
  let h = ctx.h in
  let ord = Bitset.to_list s.comp in
  let scope = Hypergraph.vertices_of_edges h s.comp in
  List.iter
    (fun (sp : Bal_sep.special) -> Bitset.union_into ~into:scope sp.verts)
    s.sp;
  let taken = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace taken (Hypergraph.edge_name h e) ()) ord;
  let special_names =
    List.map
      (fun sp ->
        let n = unique_name taken (Bal_sep.special_label sp) in
        Hashtbl.replace taken n ();
        n)
      s.sp
  in
  let edge_names =
    Array.of_list (List.map (Hypergraph.edge_name h) ord @ special_names)
  in
  let members =
    Array.of_list
      (List.map (fun e -> Bitset.to_list (Hypergraph.edge h e)) ord
      @ List.map
          (fun (sp : Bal_sep.special) -> Bitset.to_list sp.verts)
          s.sp)
  in
  let hs =
    Hypergraph.create ~vertex_names:h.Hypergraph.vertex_names ~edge_names
      members
  in
  let candidates =
    List.filter
      (fun (c : Detk.candidate) -> Bitset.intersects c.vertices scope)
      (Array.to_list ctx.edge_candidates)
  in
  match
    Detk.solve_gen ~deadline ~memoize:(Bal_sep.env_memoize env) ~candidates hs
      ~k:ctx.k
  with
  | Detk.Decomposition d -> Some d
  | Detk.Timeout -> raise Deadline.Timed_out
  | Detk.No_decomposition ->
      Metrics.incr m_base_fallbacks;
      Bal_sep.solve_extended env ~depth s.comp s.sp

(* One work-stealing task: a subproblem plus its private fuel share and
   its place in the cancellation tree. The env (failed-subproblem memo,
   lazy subedge pool) is task-private — sharing it across domains would
   make the explored sets, and so the counters, depend on the schedule. *)
let rec solve_task ctx ~depth ~fuel ~flag (s : Bal_sep.subproblem) : tres =
  let deadline =
    if ctx.fuel_mode then Deadline.with_cancel flag (Deadline.of_fuel fuel)
    else Deadline.with_cancel flag ctx.caller
  in
  let env =
    Bal_sep.make_env ~deadline ~memoize:ctx.memoize
      ~use_subedges:ctx.use_subedges ?expand_limit:ctx.expand_limit
      ?max_subedges:ctx.max_subedges ~edge_candidates:ctx.edge_candidates
      ~exact:ctx.exact ~get_subedges:ctx.get_subedges ctx.h ~k:ctx.k
  in
  match
    Bal_sep.decompose_with env
      ~solve_children:(fun ~depth subs -> par_children ctx env ~flag ~depth subs)
      ~depth s.comp s.sp
  with
  | node ->
      let leftover =
        if ctx.fuel_mode then
          match Deadline.fuel_remaining deadline with Some n -> n | None -> 0
        else 0
      in
      { node; status = Solved; leftover }
  | exception Deadline.Timed_out ->
      let hard = if ctx.fuel_mode then hard_expired ctx deadline
                 else Deadline.expired ctx.caller in
      { node = None; status = (if hard then Timed else Aborted); leftover = 0 }

(* Solve one accepted separator's components. Components above the
   cutoff are forked onto the deques (heaviest share of the budget);
   the rest run inline on this task's own budget via the Detk base case.

   Fuel discipline (the HB_FUEL determinism rule): the budget split is a
   pure function of the subtree — each forked child gets
   floor(remaining / total_weight) * its weight, read and debited
   before anything runs — and unused child fuel is credited back only
   after every child has been joined. Nothing a sibling or the scheduler
   does can change what any task is allowed to explore.

   Cancellation discipline (wall-clock mode only): each group hangs a
   fresh cancel flag off the parent chain; the first definitive child
   failure pulls it, so siblings — and their whole subtrees, including
   Detk base cases — abort at their next deadline poll instead of
   completing doomed work. Under fuel there are no group flags: early
   abort would make the explored set depend on timing. *)
and par_children ctx env ~flag ~depth subs =
  let parent_dl = Bal_sep.env_deadline env in
  let wtot = List.fold_left (fun a s -> a + weight s) 0 subs in
  let remaining =
    match Deadline.fuel_remaining parent_dl with Some n -> n | None -> 0
  in
  let q = if ctx.fuel_mode && wtot > 0 then remaining / wtot else 0 in
  let g =
    if ctx.fuel_mode then flag else Deadline.new_cancel ~parent:flag ()
  in
  let spent = ref 0 in
  let tagged =
    List.map
      (fun s ->
        if weight s > ctx.cutoff then begin
          Metrics.incr m_subtasks;
          let share =
            if ctx.fuel_mode then Stdlib.max 1 (q * weight s) else 0
          in
          spent := !spent + share;
          `Forked
            (Steal.fork ctx.sched (fun () ->
                 let res = solve_task ctx ~depth ~fuel:share ~flag:g s in
                 if
                   (not ctx.fuel_mode)
                   && res.status = Solved
                   && res.node = None
                 then Deadline.cancel g;
                 res))
        end
        else `Inline s)
      subs
  in
  if ctx.fuel_mode then Deadline.consume_fuel parent_dl !spent;
  let failed = ref false and timed = ref false and aborted = ref false in
  let reclaim = ref 0 in
  let base_dl = Deadline.with_cancel g parent_dl in
  let results =
    List.map
      (function
        | `Forked p ->
            let res = Steal.join ctx.sched p in
            reclaim := !reclaim + res.leftover;
            (match res.status with
            | Timed -> timed := true
            | Aborted -> aborted := true
            | Solved ->
                if res.node = None then begin
                  failed := true;
                  if not ctx.fuel_mode then Deadline.cancel g
                end);
            res.node
        | `Inline s ->
            if !failed || !timed || !aborted then None
            else begin
              match detk_base ctx env ~deadline:base_dl ~depth s with
              | Some _ as n -> n
              | None ->
                  failed := true;
                  if not ctx.fuel_mode then Deadline.cancel g;
                  None
              | exception Deadline.Timed_out ->
                  if hard_expired ctx parent_dl then timed := true
                  else aborted := true;
                  None
            end)
      tagged
  in
  if ctx.fuel_mode then Deadline.refund_fuel parent_dl !reclaim;
  if !timed then raise Deadline.Timed_out
  else if !failed then None
  else if !aborted then
    (* No child failed, yet one was aborted: the cancellation came from
       an ancestor group (or the caller) — unwind this task too. *)
    raise Deadline.Timed_out
  else Some (List.map Option.get results)

let solve ?jobs ?(deadline = Deadline.none) ?(memoize = true)
    ?(use_subedges = true) ?expand_limit ?max_subedges ?cutoff h ~k =
  if k < 1 then invalid_arg "Par_bal_sep.solve: k must be >= 1";
  let all = Hypergraph.all_edges h in
  if Bitset.is_empty all then
    {
      Bal_sep.outcome =
        Detk.Decomposition
          {
            bag = Bitset.empty h.Hypergraph.n_vertices;
            cover = [];
            children = [];
          };
      exact = true;
    }
  else begin
    let fuel0 = Deadline.fuel_remaining deadline in
    let cutoff =
      match cutoff with
      | Some c -> Stdlib.max 2 c
      | None -> Stdlib.max 8 (2 * k)
    in
    let exact = Atomic.make true in
    (* One f(H,k) pool for every subtask env. The pool is a pure function
       of the instance and the width, so any domain may build it; it is
       charged to wall-clock only (a cancellable no-fuel deadline), never
       to the fuel budget — whichever task triggers the build is a
       scheduling accident, and fuel accounting must not see it. *)
    let shared_pool = Atomic.make None in
    let pool_deadline =
      Deadline.with_cancel (Deadline.cancel_token deadline) Deadline.none
    in
    let get_subedges () =
      match Atomic.get shared_pool with
      | Some p -> p
      | None ->
          let { Subedges.candidates; complete } =
            Subedges.f_global ~deadline:pool_deadline ?expand_limit
              ?max_subedges h ~k
          in
          if not complete then Atomic.set exact false;
          let arr = Array.of_list candidates in
          if Atomic.compare_and_set shared_pool None (Some arr) then arr
          else Option.get (Atomic.get shared_pool)
    in
    Steal.run ?jobs (fun sched ->
        let ctx =
          {
            h;
            k;
            sched;
            cutoff;
            fuel_mode = fuel0 <> None;
            caller = deadline;
            exact;
            memoize;
            use_subedges;
            expand_limit;
            max_subedges;
            edge_candidates = Array.of_list (Detk.candidates_of_edges h);
            get_subedges;
          }
        in
        let fuel = match fuel0 with Some n -> n | None -> 0 in
        let res =
          solve_task ctx ~depth:0 ~fuel
            ~flag:(Deadline.cancel_token deadline)
            { comp = all; sp = [] }
        in
        (* Settle the caller's budget: everything handed to the task tree
           minus what came back unused. Deterministic, so a fuel ladder
           over k keeps bit-identical per-rung budgets at any HB_JOBS. *)
        (match fuel0 with
        | Some n -> Deadline.consume_fuel deadline (n - res.leftover)
        | None -> ());
        match res.status with
        | Timed | Aborted -> { Bal_sep.outcome = Detk.Timeout; exact = false }
        | Solved -> (
            match res.node with
            | Some d ->
                {
                  Bal_sep.outcome =
                    Detk.Decomposition (Global_bip.fix_covers h d);
                  exact = true;
                }
            | None ->
                {
                  Bal_sep.outcome = Detk.No_decomposition;
                  exact = Atomic.get ctx.exact;
                }))
  end
