module Bitset = Kit.Bitset
module Deadline = Kit.Deadline
module Metrics = Kit.Metrics
module Hypergraph = Hg.Hypergraph

(* Search observability (see Kit.Metrics; recorded only when enabled). *)
let m_separators = Metrics.counter "balsep.separators_tried"
let m_balance_rejections = Metrics.counter "balsep.balance_rejections"
let m_special_edges = Metrics.counter "balsep.special_edges"
let m_subedge_phases = Metrics.counter "balsep.subedge_phases"

(* One observation per expanded recursion node, at its depth. Balanced
   separators halve the subproblem, so the histogram concentrates in the
   logarithmic buckets — the empirical check of the "logarithmic
   recursion depth" claim, and the payload of BENCH_intra.json. *)
let m_depth = Metrics.histogram "balsep.depth" ~buckets:[| 1; 2; 4; 8; 16; 24; 32; 48 |]

type answer = {
  outcome : Detk.outcome;
  exact : bool;
}

(* Special edges carry a unique id so that BuildGHD can find "its" special
   leaf in a child decomposition even when two special edges happen to have
   the same vertex set. The id is the recursion depth of the node that
   created the edge: the specials visible to any subproblem were created
   one per ancestor, at pairwise-distinct depths, so ids never collide
   where it matters — and unlike a shared counter, the scheme is a pure
   function of the subtree, identical however subproblems are scheduled
   across domains. *)
type special = { sid : int; verts : Bitset.t }

type subproblem = { comp : Bitset.t; sp : special list }

let special_label s = Printf.sprintf "__special_%d" s.sid

let special_cover_elt s : Decomp.cover_elt =
  { label = special_label s; vertices = s.verts; source = Decomp.Special }

let special_leaf s : Decomp.node =
  { bag = s.verts; cover = [ special_cover_elt s ]; children = [] }

(* Re-root an immutable decomposition tree at the first node satisfying
   [pred]; the tree is undirected for this purpose. *)
let reroot root ~pred =
  let count = Decomp.size root in
  let info = Array.make count (Bitset.empty 0, []) in
  let adj = Array.make count [] in
  let target = ref (-1) in
  let counter = ref 0 in
  let rec collect (u : Decomp.node) =
    let id = !counter in
    incr counter;
    info.(id) <- (u.bag, u.cover);
    if !target < 0 && pred u then target := id;
    List.iter
      (fun c ->
        let cid = collect c in
        adj.(id) <- cid :: adj.(id);
        adj.(cid) <- id :: adj.(cid))
      u.children;
    id
  in
  ignore (collect root);
  if !target < 0 then None
  else begin
    let visited = Array.make count false in
    let rec build id : Decomp.node =
      visited.(id) <- true;
      let bag, cover = info.(id) in
      let children =
        List.filter (fun j -> not visited.(j)) adj.(id) |> List.map build
      in
      { bag; cover; children }
    in
    Some (build !target)
  end

(* Function BuildGHD: make the node (bag, cover) and graft each child
   decomposition. The connecting special edge appears in each child either
   as a dedicated leaf with λ = {s} — re-root there, drop the leaf and
   attach its neighbours — or swallowed by some larger bag B ⊇ s (also the
   shape the Detk base case of Par_bal_sep produces, which covers special
   edges without materialising leaves for them), in which case we re-root
   at that node and attach it whole (it shares all of s with our bag, so
   connectedness is preserved). *)
let build_ghd bag cover ~special_lab ~special_verts children : Decomp.node =
  let is_special_leaf (u : Decomp.node) =
    match u.cover with
    | [ { Decomp.label = l; source = Decomp.Special; _ } ] -> l = special_lab
    | _ -> false
  in
  let covers_special (u : Decomp.node) = Bitset.subset special_verts u.bag in
  let grafted =
    List.concat_map
      (fun child ->
        match reroot child ~pred:is_special_leaf with
        | Some r -> r.Decomp.children
        | None -> (
            match reroot child ~pred:covers_special with
            | Some r -> [ r ]
            | None ->
                (* Unreachable for decompositions produced by Decompose:
                   the special edge is always covered somewhere. *)
                assert false))
      children
  in
  { bag; cover; children = grafted }

(* Everything one (single-domain) search region needs. Par_bal_sep makes
   one env per subtask: the failed-subproblem memo and the lazy subedge
   pool are private to the task — shared mutable state there would make
   counters depend on the steal schedule — while [exact] is a shared
   atomic (monotone false-once-false, so the merged value is
   schedule-independent). *)
type env = {
  h : Hypergraph.t;
  k : int;
  nv : int;
  deadline : Deadline.t;
  memoize : bool;
  use_subedges : bool;
  failed : (int list list, unit) Hashtbl.t;
  edge_candidates : Detk.candidate array;
  get_subedges : unit -> Detk.candidate array;
}

let make_env ?(deadline = Deadline.none) ?(memoize = true)
    ?(use_subedges = true) ?expand_limit ?max_subedges ?edge_candidates
    ?(exact = Atomic.make true) ?get_subedges h ~k =
  if k < 1 then invalid_arg "Bal_sep.make_env: k must be >= 1";
  let edge_candidates =
    match edge_candidates with
    | Some a -> a
    | None -> Array.of_list (Detk.candidates_of_edges h)
  in
  (* The subedge pool is generated lazily, once per env, on first
     fallback — unless the caller supplies a shared pool ([Par_bal_sep]
     does: f(H,k) depends only on the instance and the width, so the
     subtask envs can share one copy instead of each rebuilding it). *)
  let get_subedges =
    match get_subedges with
    | Some f -> f
    | None ->
        let subedge_pool = ref None in
        fun () ->
          (match !subedge_pool with
          | Some p -> p
          | None ->
              let { Subedges.candidates; complete } =
                Subedges.f_global ~deadline ?expand_limit ?max_subedges h ~k
              in
              if not complete then Atomic.set exact false;
              let arr = Array.of_list candidates in
              subedge_pool := Some arr;
              arr)
  in
  {
    h;
    k;
    nv = h.Hypergraph.n_vertices;
    deadline;
    memoize;
    use_subedges;
    failed = Hashtbl.create 128;
    edge_candidates;
    get_subedges;
  }

let env_deadline env = env.deadline
let env_edge_candidates env = env.edge_candidates
let env_subedges env = env.get_subedges ()
let env_memoize env = env.memoize
let env_use_subedges env = env.use_subedges

let memo_key h' sp =
  let sets = Bitset.to_list h' :: List.map (fun s -> Bitset.to_list s.verts) sp in
  List.sort compare sets

let fresh_special ~depth verts =
  Metrics.incr m_special_edges;
  { sid = depth; verts }

(* Decompose one node of the recursion. All child subproblems — the
   B(λ)-components of a balanced separator — go through [solve_children],
   which receives them as one batch: the sequential solver recurses over
   them in order with early abort, the parallel solver forks them as
   work-stealing subtasks. *)
let rec decompose_with env ~solve_children ~depth h' sp : Decomp.node option =
  Deadline.check env.deadline;
  Metrics.observe m_depth depth;
  let key = memo_key h' sp in
  if env.memoize && Hashtbl.mem env.failed key then None
  else begin
    let r = attempt env ~solve_children ~depth h' sp in
    if r = None && env.memoize then Hashtbl.replace env.failed key ();
    r
  end

and attempt env ~solve_children ~depth h' sp =
  let h = env.h in
  let k = env.k in
  let n_ord = Bitset.cardinal h' in
  let total = n_ord + List.length sp in
  if total = 0 then None
  else if total = 1 then
    Some
      (match (Bitset.choose h', sp) with
      | Some e, _ ->
          {
            Decomp.bag = Hypergraph.edge h e;
            cover =
              [
                {
                  Decomp.label = Hypergraph.edge_name h e;
                  vertices = Hypergraph.edge h e;
                  source = Decomp.Original e;
                };
              ];
            children = [];
          }
      | None, s :: _ -> special_leaf s
      | None, [] -> assert false)
  else if total = 2 then begin
    let elts =
      List.map
        (fun e ->
          ( Hypergraph.edge h e,
            {
              Decomp.label = Hypergraph.edge_name h e;
              vertices = Hypergraph.edge h e;
              source = Decomp.Original e;
            } ))
        (Bitset.to_list h')
      @ List.map (fun s -> (s.verts, special_cover_elt s)) sp
    in
    match elts with
    | [ (b1, c1); (b2, c2) ] ->
        Some
          {
            Decomp.bag = b1;
            cover = [ c1 ];
            children = [ { Decomp.bag = b2; cover = [ c2 ]; children = [] } ];
          }
    | _ -> assert false
  end
  else begin
    let sp_arr = Array.of_list (List.map (fun s -> s.verts) sp) in
    let sp_idx = Array.of_list sp in
    (* [vertices_of_edges] hands back a fresh accumulator we own. *)
    let scope = Hypergraph.vertices_of_edges h h' in
    Array.iter (fun s -> Bitset.union_into ~into:scope s) sp_arr;
    let try_separator lambda =
      Deadline.check env.deadline;
      Metrics.incr m_separators;
      (* Restrict the bag to the vertices of this extended subhypergraph:
         separator edges may reach into sibling components, and those
         foreign vertices must not enter bags here or connectedness of
         the final assembly breaks. Covering and component computation
         are unaffected. *)
      let bag =
        let acc = Bitset.empty env.nv in
        List.iter
          (fun (c : Detk.candidate) -> Bitset.union_into ~into:acc c.vertices)
          lambda;
        Bitset.inter_into ~into:acc scope;
        acc
      in
      if Bitset.is_empty bag then None
      else
        let comps =
          Hg.Components.components_extended h ~within:h' ~special:sp_arr bag
        in
        let bound = total / 2 in
        let balanced =
          List.for_all
            (fun (es, sps) -> Bitset.cardinal es + List.length sps <= bound)
            comps
        in
        if not balanced then begin
          Metrics.incr m_balance_rejections;
          None
        end
        else begin
          let s = fresh_special ~depth bag in
          let subs =
            List.map
              (fun (es, sps) ->
                { comp = es; sp = s :: List.map (fun i -> sp_idx.(i)) sps })
              comps
          in
          match solve_children ~depth:(depth + 1) subs with
          | None -> None
          | Some children ->
              let cover =
                List.map
                  (fun (c : Detk.candidate) ->
                    {
                      Decomp.label = c.label;
                      vertices = c.vertices;
                      source = c.source;
                    })
                  lambda
              in
              Some
                (build_ghd bag cover ~special_lab:(special_label s)
                   ~special_verts:s.verts children)
        end
    in
    (* Enumerate combinations out of [pool]; in the subedge phase at
       least one element must come from the subedge suffix. The candidate
       scan polls the deadline every 16 consultations: skipping
       out-of-scope candidates and growing partial separators used to run
       unpolled between nodes, which let a cancelled (or out-of-budget)
       search linger mid-enumeration for an unbounded stretch on wide
       instances. *)
    let enumerate pool fresh_from =
      let n = Array.length pool in
      let consults = ref 0 in
      let rec go idx depth_ lambda has_fresh =
        if depth_ > 0 && (has_fresh || fresh_from = 0) then
          match try_separator (List.rev lambda) with
          | Some _ as r -> r
          | None -> extend idx depth_ lambda has_fresh
        else extend idx depth_ lambda has_fresh
      and extend idx depth_ lambda has_fresh =
        if depth_ = k then None
        else begin
          let rec from i =
            if i >= n then None
            else begin
              incr consults;
              if !consults land 15 = 0 then Deadline.check env.deadline;
              if
                (* Only candidates meeting the current scope help. *)
                not (Bitset.intersects pool.(i).Detk.vertices scope)
              then from (i + 1)
              else
                match
                  go (i + 1) (depth_ + 1)
                    (pool.(i) :: lambda)
                    (has_fresh || i >= fresh_from)
                with
                | Some _ as r -> r
                | None -> from (i + 1)
            end
          in
          from idx
        end
      in
      go 0 0 [] false
    in
    match enumerate env.edge_candidates 0 with
    | Some _ as r -> r
    | None ->
        if not env.use_subedges then None
        else begin
          Metrics.incr m_subedge_phases;
          let subs = env.get_subedges () in
          if Array.length subs = 0 then None
          else
            enumerate
              (Array.append env.edge_candidates subs)
              (Array.length env.edge_candidates)
        end
  end

(* Plain sequential recursion: children solved in order, first failure
   aborts the batch. *)
let rec solve_extended env ~depth h' sp =
  let solve_children ~depth subs =
    let rec go = function
      | [] -> Some []
      | { comp; sp } :: rest -> (
          match solve_extended env ~depth comp sp with
          | None -> None
          | Some d -> (
              match go rest with None -> None | Some ds -> Some (d :: ds)))
    in
    go subs
  in
  decompose_with env ~solve_children ~depth h' sp

let solve ?(deadline = Deadline.none) ?(memoize = true) ?(use_subedges = true)
    ?expand_limit ?max_subedges h ~k =
  if k < 1 then invalid_arg "Bal_sep.solve: k must be >= 1";
  let exact = Atomic.make true in
  let env =
    make_env ~deadline ~memoize ~use_subedges ?expand_limit ?max_subedges
      ~exact h ~k
  in
  let all = Hypergraph.all_edges h in
  if Bitset.is_empty all then
    {
      outcome =
        Detk.Decomposition
          { bag = Bitset.empty h.Hypergraph.n_vertices; cover = []; children = [] };
      exact = true;
    }
  else
    match solve_extended env ~depth:0 all [] with
    | Some d ->
        { outcome = Detk.Decomposition (Global_bip.fix_covers h d); exact = true }
    | None -> { outcome = Detk.No_decomposition; exact = Atomic.get exact }
    | exception Deadline.Timed_out -> { outcome = Detk.Timeout; exact = false }
