(** BalSep (paper §4.4, Algorithm 2): GHD computation via balanced
    separators.

    The recursion works on extended subhypergraphs H' ∪ Sp, where Sp is a
    set of special edges (vertex sets standing for bags created higher up).
    At each step only separators λ whose vertex set B(λ) is a {e balanced}
    separator are considered: every [B(λ)]-component of H' ∪ Sp may contain
    at most half of its edges (Lemma 1 guarantees a normal-form GHD with
    such a root exists). This shrinks every subproblem geometrically and,
    as the paper's experiments show, detects "no" instances quickly.

    Separator candidates are full edges first; combinations containing
    subedges from f(H,k) are tried only afterwards (same caveat on
    completeness as GlobalBIP when the subedge set is truncated). *)

type answer = {
  outcome : Detk.outcome;
  exact : bool;
}

val solve :
  ?deadline:Kit.Deadline.t ->
  ?memoize:bool ->
  ?use_subedges:bool ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  Hg.Hypergraph.t ->
  k:int ->
  answer
(** [use_subedges] (default true) enables the f(H,k) fallback phase of the
    separator iterator; switching it off gives the ablation variant that
    searches over full edges only (sound, possibly incomplete). *)

(** {1 Shared search core}

    The pieces {!Par_bal_sep} builds its work-stealing recursion out of.
    The geometry of the algorithm — balanced separators split the
    extended subhypergraph into components that share nothing but the
    separator bag — is what makes the subproblems independently solvable;
    these entry points expose that seam without committing to a schedule. *)

type special = { sid : int; verts : Kit.Bitset.t }
(** A special edge. [sid] is the recursion depth of the creating node —
    unique along any root-to-leaf path (the only place labels must not
    collide) and independent of scheduling order. *)

type subproblem = { comp : Kit.Bitset.t; sp : special list }
(** One B(λ)-component: its ordinary edges and its special edges (the
    fresh separator special first). *)

type env
(** Everything one single-domain search region carries: the failed-
    subproblem memo, the candidate pools (the subedge pool is lazy, per
    env), deadline, and width. Never share an env across domains — make
    one per subtask; pass [~edge_candidates] to share the immutable
    full-edge pool and [~exact] to share the completeness flag. *)

val make_env :
  ?deadline:Kit.Deadline.t ->
  ?memoize:bool ->
  ?use_subedges:bool ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  ?edge_candidates:Detk.candidate array ->
  ?exact:bool Atomic.t ->
  ?get_subedges:(unit -> Detk.candidate array) ->
  Hg.Hypergraph.t ->
  k:int ->
  env
(** [get_subedges] overrides the env-private lazy f(H,k) pool — how the
    parallel solver shares one pool across all subtask envs (the pool is
    a pure function of [(h, k)], so sharing cannot introduce
    schedule-dependence; the override is responsible for the [exact]
    flag when its pool is truncated). *)

val env_deadline : env -> Kit.Deadline.t
val env_edge_candidates : env -> Detk.candidate array

val env_subedges : env -> Detk.candidate array
(** Forces the f(H,k) pool for this env (clearing the shared [exact] flag
    if truncated) and returns it. *)

val env_memoize : env -> bool
val env_use_subedges : env -> bool

val decompose_with :
  env ->
  solve_children:(depth:int -> subproblem list -> Decomp.node list option) ->
  depth:int ->
  Kit.Bitset.t ->
  special list ->
  Decomp.node option
(** Expand one node: enumerate balanced separators in the canonical order
    and hand each accepted separator's components to [solve_children] as
    a batch ([Some] = all solved, in order; [None] rejects the
    separator). The sequential solver recurses in order with early abort;
    the parallel solver forks the batch. Memoisation, metrics
    ([balsep.*], including the [balsep.depth] histogram) and deadline
    polls — per node and every 16 candidate consultations inside the
    enumeration loop — live here, identically for every schedule. *)

val solve_extended :
  env -> depth:int -> Kit.Bitset.t -> special list -> Decomp.node option
(** Sequential recursion over {!decompose_with}: the base case the
    parallel solver falls back to, and the whole of {!solve}. *)

val special_label : special -> string
val special_leaf : special -> Decomp.node
val build_ghd :
  Kit.Bitset.t ->
  Decomp.cover_elt list ->
  special_lab:string ->
  special_verts:Kit.Bitset.t ->
  Decomp.node list ->
  Decomp.node
