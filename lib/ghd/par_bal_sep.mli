(** Intra-instance parallel BalSep: work-stealing recursive
    decomposition.

    The sequential BalSep recursion (§4.4) has a property the paper
    leaves on the table: once a balanced separator is accepted, its
    B(λ)-components are {e independent} — they share nothing but the
    separator bag. This module turns each component into a subtask on a
    work-stealing scheduler ({!Kit.Steal}); because every component
    holds at most half of the parent's edges, the task tree has
    logarithmic depth and the available parallelism grows geometrically
    with it. Components at or below a size cutoff are not forked:
    they are solved inline by the sequential DetKDecomp base case
    ([Detk.solve_gen] on the materialised extended subhypergraph, with
    a sequential-BalSep fallback when its HD-shaped "no" is not
    conclusive for GHDs).

    Determinism contract: under a fuel deadline ([HB_FUEL]) the answer
    {e and all [Kit.Metrics] counters} are bit-identical for every
    [jobs] value. The scheduler only decides {e where} work runs, never
    {e what} runs: the fork set is a pure function of the instance, each
    forked child receives a budget share computed from the subtree
    weights alone, every forked task runs to completion (no
    schedule-dependent aborts in fuel mode), and unused shares are
    reclaimed only after all children are joined. Schedule-dependent
    numbers (steals, inlined tasks) are deliberately kept out of
    [Kit.Metrics] — read them from [Kit.Steal.totals]. Under wall-clock
    deadlines the solver instead aborts doomed sibling groups eagerly
    through chained cancel flags ({!Kit.Deadline.new_cancel}).

    [solve ~jobs:1] spawns no domains at all, so it is safe in
    processes that must remain fork-compatible (the daemon). *)

val solve :
  ?jobs:int ->
  ?deadline:Kit.Deadline.t ->
  ?memoize:bool ->
  ?use_subedges:bool ->
  ?expand_limit:int ->
  ?max_subedges:int ->
  ?cutoff:int ->
  Hg.Hypergraph.t ->
  k:int ->
  Bal_sep.answer
(** Same contract as {!Bal_sep.solve} — verdicts agree exactly with the
    sequential solver whenever neither times out. [jobs] defaults to
    [Kit.Pool.default_jobs ()]; [cutoff] (default [max 8 (2k)], floor 2)
    is the component weight (ordinary + special edges) at or below which
    a component is solved inline instead of forked. *)
