(** NewDetKDecomp: hypertree decompositions by backtracking search.

    This is a re-implementation of the DetKDecomp algorithm of Gottlob and
    Samer (paper §3.4): a top-down construction that, for the current
    component [C] with connector vertices [conn], guesses an edge cover
    [λ] of at most [k] cover sets, fixes the bag as
    [B(λ) ∩ (V(C) ∪ conn)] — which enforces the special condition — and
    recurses on the [bag]-components of [C]. Failed subproblems
    [(C, conn)] are memoised.

    The search is generalised over the available cover sets so that the
    GHD algorithms of §4 can reuse it: plain HD search uses the original
    edges as candidates; GlobalBIP adds the subedge set f(H,k) up front;
    LocalBIP supplies extra candidates per subproblem via a callback. *)

type candidate = {
  label : string;
  vertices : Kit.Bitset.t;
  source : Decomp.source;
}

type outcome =
  | Decomposition of Decomp.t
  | No_decomposition
  | Timeout

val candidates_of_edges : Hg.Hypergraph.t -> candidate list
(** One candidate per original edge. *)

type sweep_cache
(** A failed-subproblem table that outlives a single [solve] call. Each
    entry maps a subproblem [(comp, conn)] to the largest width [k] at
    which it is proven undecomposable; a probe at width [k'] answers
    "failed" only when [k' <= k] — the sound direction, since covers of
    [<= k'] sets are a subset of covers of [<= k] sets. An ascending
    width sweep therefore never takes a cross-width hit (and explores
    exactly as with fresh per-level tables); the table pays off when a
    width is probed again — budget-escalation retries, repeated analyses
    over the same hypergraph — or probed downward. Single-domain: share
    a cache across calls, never across domains. *)

val sweep_cache : unit -> sweep_cache
(** A fresh, empty table. *)

val solve_gen :
  ?deadline:Kit.Deadline.t ->
  ?memoize:bool ->
  ?sweep:sweep_cache ->
  ?extra:(comp:Kit.Bitset.t -> conn:Kit.Bitset.t -> candidate list) ->
  ?bag_filter:(Kit.Bitset.t -> bool) ->
  candidates:candidate list ->
  Hg.Hypergraph.t ->
  k:int ->
  outcome
(** Generalised search. [extra] is consulted for a subproblem only after
    every combination of base candidates has failed there (the LocalBIP
    strategy, §4.3). [bag_filter] rejects candidate bags — the
    FracImproveHD check of §6.5 passes [fun bag -> ρ*(bag) <= k'].
    [memoize] (default true) caches failed subproblems, in [sweep] when
    given (persistent across calls) or in a private per-call table. *)

val solve :
  ?deadline:Kit.Deadline.t ->
  ?memoize:bool ->
  ?sweep:sweep_cache ->
  ?gyo_fast_path:bool ->
  Hg.Hypergraph.t ->
  k:int ->
  outcome
(** Check(HD,k): a width-[<= k] HD, [No_decomposition], or [Timeout]. The
    returned tree always passes {!Decomp.check_hd}. For [k = 1] the GYO
    reduction decides acyclicity directly and materialises the join tree
    as a width-1 HD; pass [~gyo_fast_path:false] to force the search
    (ablation). *)

val hypertree_width :
  ?deadline:Kit.Deadline.t ->
  ?max_k:int ->
  ?sweep:sweep_cache ->
  Hg.Hypergraph.t ->
  (int * Decomp.t) option * int
(** [hypertree_width h] iterates [k = 1, 2, ...] until the first yes.
    Returns [(Some (hw, hd), hw)] on success; on timeout at some [k],
    returns [(None, k)] meaning [hw >= k] is still open but [hw > k - 1]
    was established for all earlier levels. [max_k] defaults to the number
    of edges. The whole sweep shares one failed-subproblem table ([sweep]
    when given, a fresh one otherwise), so failure proofs accumulate
    across levels and across repeated calls — e.g. a timed-out sweep
    retried with a larger budget resumes from every subproblem already
    proven failed instead of from scratch. *)
