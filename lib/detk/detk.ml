module Bitset = Kit.Bitset
module Deadline = Kit.Deadline
module Metrics = Kit.Metrics
module Hypergraph = Hg.Hypergraph

(* Search observability (see Kit.Metrics; recorded only when enabled). *)
let m_subproblems = Metrics.counter "detk.subproblems"
let m_covers = Metrics.counter "detk.cover_combinations"
let m_memo_hits = Metrics.counter "detk.memo_hits"
let m_memo_misses = Metrics.counter "detk.memo_misses"
let m_bag_rejections = Metrics.counter "detk.bag_filter_rejections"

type candidate = {
  label : string;
  vertices : Bitset.t;
  source : Decomp.source;
}

type outcome =
  | Decomposition of Decomp.t
  | No_decomposition
  | Timeout

let candidates_of_edges h =
  List.init h.Hypergraph.n_edges (fun e ->
      {
        label = Hypergraph.edge_name h e;
        vertices = Hypergraph.edge h e;
        source = Decomp.Original e;
      })

let to_cover_elt c : Decomp.cover_elt =
  { label = c.label; vertices = c.vertices; source = c.source }

module Key = struct
  type t = Bitset.t * Bitset.t

  let equal (a1, b1) (a2, b2) = Bitset.equal a1 a2 && Bitset.equal b1 b2
  let hash (a, b) = (Bitset.hash a * 31) + Bitset.hash b
end

module Cache = Hashtbl.Make (Key)

(* The search for one subproblem (comp, conn):
   - candidates are the cover sets intersecting V(comp) ∪ conn;
   - a cover λ (1..k sets) must satisfy conn ⊆ B(λ);
   - the bag is B(λ) ∩ (V(comp) ∪ conn), which enforces the special
     condition of HDs;
   - the bag must reach into the component and every child component must
     be strictly smaller (guaranteed for normal-form HDs, cf. GLS02
     Theorem 5.4), which bounds the recursion depth. *)
let solve_gen ?(deadline = Deadline.none) ?(memoize = true) ?extra
    ?(bag_filter = fun _ -> true) ~candidates h ~k =
  if k < 1 then invalid_arg "Detk.solve_gen: k must be >= 1";
  let nv = h.Hypergraph.n_vertices in
  let failed : unit Cache.t = Cache.create 256 in
  let base = Array.of_list candidates in
  let rec decompose comp conn =
    Deadline.check deadline;
    let key = (comp, conn) in
    if memoize && Cache.mem failed key then begin
      Metrics.incr m_memo_hits;
      None
    end
    else begin
      if memoize then Metrics.incr m_memo_misses;
      let result = attempt comp conn in
      if result = None && memoize then Cache.replace failed key ();
      result
    end
  and attempt comp conn =
    Metrics.incr m_subproblems;
    let comp_vertices = Hypergraph.vertices_of_edges h comp in
    let scope = Bitset.union comp_vertices conn in
    let try_with cands =
      let relevant =
        Array.of_list
          (List.filter (fun c -> Bitset.intersects c.vertices scope) cands)
      in
      (* Heuristic order: cover more of the connector first, then more of
         the component. *)
      let rank c =
        (Bitset.inter_cardinal c.vertices conn * 10000)
        + Bitset.inter_cardinal c.vertices comp_vertices
      in
      Array.sort (fun a b -> compare (rank b) (rank a)) relevant;
      let n = Array.length relevant in
      (* suffix.(i): union of candidate vertex sets from i on; used to prune
         branches that can no longer cover the connector. *)
      let suffix = Array.make (n + 1) (Bitset.empty nv) in
      for i = n - 1 downto 0 do
        suffix.(i) <- Bitset.union suffix.(i + 1) relevant.(i).vertices
      done;
      let evaluate lambda covered =
        Metrics.incr m_covers;
        let bag = Bitset.inter covered scope in
        if not (Bitset.intersects bag comp_vertices) then None
        else if not (bag_filter bag) then begin
          Metrics.incr m_bag_rejections;
          None
        end
        else begin
          let comps = Hg.Components.components h ~within:comp bag in
          let total = Bitset.cardinal comp in
          if List.exists (fun c -> Bitset.cardinal c >= total) comps then None
          else
            let rec build = function
              | [] -> Some []
              | c :: rest -> (
                  let child_conn =
                    Bitset.inter (Hypergraph.vertices_of_edges h c) bag
                  in
                  match decompose c child_conn with
                  | None -> None
                  | Some node -> (
                      match build rest with
                      | None -> None
                      | Some nodes -> Some (node :: nodes)))
            in
            match build comps with
            | None -> None
            | Some children ->
                Some
                  {
                    Decomp.bag;
                    cover = List.map to_cover_elt (List.rev lambda);
                    children;
                  }
        end
      in
      let rec search idx depth lambda covered =
        Deadline.check deadline;
        let uncovered = Bitset.diff conn covered in
        (* Prune: remaining candidates can never finish covering conn. *)
        if not (Bitset.subset uncovered suffix.(idx)) then None
        else begin
          let here =
            if depth > 0 && Bitset.is_empty uncovered then
              evaluate lambda covered
            else None
          in
          match here with
          | Some _ as r -> r
          | None ->
              if depth = k || idx >= n then None
              else begin
                let rec try_from i =
                  if i >= n then None
                  else begin
                    let c = relevant.(i) in
                    match
                      search (i + 1) (depth + 1) (c :: lambda)
                        (Bitset.union covered c.vertices)
                    with
                    | Some _ as r -> r
                    | None -> try_from (i + 1)
                  end
                in
                try_from idx
              end
        end
      in
      search 0 0 [] (Bitset.empty nv)
    in
    match try_with (Array.to_list base) with
    | Some _ as r -> r
    | None -> (
        match extra with
        | None -> None
        | Some f -> (
            match f ~comp ~conn with
            | [] -> None
            | extras -> try_with (Array.to_list base @ extras)))
  in
  let all = Hypergraph.all_edges h in
  if Bitset.is_empty all then
    Decomposition
      { Decomp.bag = Bitset.empty nv; cover = []; children = [] }
  else
    match decompose all (Bitset.empty nv) with
    | Some d -> Decomposition d
    | None -> No_decomposition
    | exception Deadline.Timed_out -> Timeout

(* Width-1 HD from a GYO join tree: one node per edge, ears hang under
   their witnesses, component roots chain under the first root. *)
let decomposition_of_join_tree h (jt : Hg.Gyo.join_tree) =
  let m = h.Hypergraph.n_edges in
  let children = Array.make m [] in
  Array.iteri
    (fun e p -> if p >= 0 then children.(p) <- e :: children.(p))
    jt.Hg.Gyo.parent;
  let rec build e =
    {
      Decomp.bag = Hypergraph.edge h e;
      cover =
        [
          {
            Decomp.label = Hypergraph.edge_name h e;
            vertices = Hypergraph.edge h e;
            source = Decomp.Original e;
          };
        ];
      children = List.map build children.(e);
    }
  in
  match jt.Hg.Gyo.roots with
  | [] -> { Decomp.bag = Bitset.empty h.Hypergraph.n_vertices; cover = []; children = [] }
  | r :: rest ->
      let root = build r in
      { root with children = root.Decomp.children @ List.map build rest }

let solve ?deadline ?memoize ?(gyo_fast_path = true) h ~k =
  if k = 1 && gyo_fast_path then
    (* Check(HD,1) is acyclicity: answer via GYO instead of search. *)
    match Hg.Gyo.reduce h with
    | Some jt -> Decomposition (decomposition_of_join_tree h jt)
    | None -> No_decomposition
  else solve_gen ?deadline ?memoize ~candidates:(candidates_of_edges h) h ~k

let hypertree_width ?(deadline = Deadline.none) ?max_k h =
  let max_k =
    match max_k with Some m -> m | None -> Stdlib.max 1 h.Hypergraph.n_edges
  in
  let rec go k =
    if k > max_k then (None, k)
    else
      match solve ~deadline h ~k with
      | Decomposition d -> (Some (k, d), k)
      | No_decomposition -> go (k + 1)
      | Timeout -> (None, k)
  in
  go 1
