module Bitset = Kit.Bitset
module Deadline = Kit.Deadline
module Metrics = Kit.Metrics
module Hypergraph = Hg.Hypergraph

(* Search observability (see Kit.Metrics; recorded only when enabled). *)
let m_subproblems = Metrics.counter "detk.subproblems"
let m_covers = Metrics.counter "detk.cover_combinations"
let m_memo_hits = Metrics.counter "detk.memo_hits"
let m_memo_misses = Metrics.counter "detk.memo_misses"
let m_bag_rejections = Metrics.counter "detk.bag_filter_rejections"

type candidate = {
  label : string;
  vertices : Bitset.t;
  source : Decomp.source;
}

type outcome =
  | Decomposition of Decomp.t
  | No_decomposition
  | Timeout

let candidates_of_edges h =
  List.init h.Hypergraph.n_edges (fun e ->
      {
        label = Hypergraph.edge_name h e;
        vertices = Hypergraph.edge h e;
        source = Decomp.Original e;
      })

let to_cover_elt c : Decomp.cover_elt =
  { label = c.label; vertices = c.vertices; source = c.source }

(* Memo keys carry their hash: a key is probed (and possibly stored) once
   per subproblem but hashed on every bucket comparison, so rescanning
   both bitsets per probe was pure waste. *)
module Key = struct
  type t = { comp : Bitset.t; conn : Bitset.t; hash : int }

  let make comp conn =
    { comp; conn; hash = ((Bitset.hash comp * 31) + Bitset.hash conn) land max_int }

  let equal a b =
    a.hash = b.hash && Bitset.equal a.comp b.comp && Bitset.equal a.conn b.conn

  let hash k = k.hash
end

module Cache = Hashtbl.Make (Key)

(* The failed-subproblem cache maps (comp, conn) to the largest width at
   which the subproblem is *proven* to have no decomposition. Failure is
   monotone downward in k — a cover of <= k sets is also a cover of
   <= k+1 sets, so "no decomposition at k" implies "none at any k' <= k" —
   and that is exactly the direction a shared table may answer. The
   converse is NOT sound: a subproblem that failed at k can succeed at
   k+1 (its children get wider bags too), so an ascending k-sweep never
   takes a cross-k hit and explores bit-identically to a fresh table; the
   sharing pays off when the same width is probed again (budget-escalation
   retries, repeated analyses) or when widths are probed downward. *)
type sweep_cache = int Cache.t

let sweep_cache () : sweep_cache = Cache.create 256

(* The search for one subproblem (comp, conn):
   - candidates are the cover sets intersecting V(comp) ∪ conn;
   - a cover λ (1..k sets) must satisfy conn ⊆ B(λ);
   - the bag is B(λ) ∩ (V(comp) ∪ conn), which enforces the special
     condition of HDs;
   - the bag must reach into the component and every child component must
     be strictly smaller (guaranteed for normal-form HDs, cf. GLS02
     Theorem 5.4), which bounds the recursion depth.

   Hot-path discipline: all intermediate sets (component vertices, scope,
   the per-depth covered accumulators) live in scratch buffers borrowed
   from a per-call arena, and the prune tests are the allocation-free
   [subset]/[diff_subset] forms. Only values that escape the search —
   bags, child connectors, memo keys — are freshly allocated. *)
let solve_gen ?(deadline = Deadline.none) ?(memoize = true) ?sweep ?extra
    ?(bag_filter = fun _ -> true) ~candidates h ~k =
  if k < 1 then invalid_arg "Detk.solve_gen: k must be >= 1";
  let nv = h.Hypergraph.n_vertices in
  let failed : sweep_cache =
    match sweep with Some t -> t | None -> Cache.create 256
  in
  let arena = Bitset.Scratch.create () in
  let rec decompose comp conn =
    Deadline.check deadline;
    let key = Key.make comp conn in
    let hit =
      memoize
      &&
      match Cache.find_opt failed key with
      | Some k' -> k' >= k
      | None -> false
    in
    if hit then begin
      Metrics.incr m_memo_hits;
      None
    end
    else begin
      if memoize then Metrics.incr m_memo_misses;
      let result = attempt comp conn in
      if result = None && memoize then begin
        match Cache.find_opt failed key with
        | Some k' when k' >= k -> ()
        | _ -> Cache.replace failed key k
      end;
      result
    end
  and attempt comp conn =
    Metrics.incr m_subproblems;
    let comp_vertices = Bitset.Scratch.borrow arena nv in
    Hypergraph.vertices_of_edges_into h comp ~into:comp_vertices;
    let scope = Bitset.Scratch.borrow arena nv in
    Bitset.copy_into comp_vertices ~into:scope;
    Bitset.union_into ~into:scope conn;
    let try_with cands =
      let relevant =
        Array.of_list
          (List.filter (fun c -> Bitset.intersects c.vertices scope) cands)
      in
      (* Heuristic order: cover more of the connector first, then more of
         the component. Ranks are computed once, not per comparison. *)
      let rank c =
        (Bitset.inter_cardinal c.vertices conn * 10000)
        + Bitset.inter_cardinal c.vertices comp_vertices
      in
      let keyed = Array.map (fun c -> (rank c, c)) relevant in
      Array.sort (fun (ra, _) (rb, _) -> compare rb ra) keyed;
      let relevant = Array.map snd keyed in
      let n = Array.length relevant in
      (* suffix.(i): union of candidate vertex sets from i on; used to prune
         branches that can no longer cover the connector. These n+1 sets
         coexist for the whole search, so they are real allocations. *)
      let suffix = Array.make (n + 1) (Bitset.empty nv) in
      for i = n - 1 downto 0 do
        suffix.(i) <- Bitset.union suffix.(i + 1) relevant.(i).vertices
      done;
      let evaluate lambda covered =
        Metrics.incr m_covers;
        (* Fresh: the bag escapes into the decomposition on success and
           is handed to the caller's [bag_filter] either way. *)
        let bag = Bitset.inter covered scope in
        if not (Bitset.intersects bag comp_vertices) then None
        else if not (bag_filter bag) then begin
          Metrics.incr m_bag_rejections;
          None
        end
        else begin
          let comps = Hg.Components.components h ~within:comp bag in
          let total = Bitset.cardinal comp in
          if List.exists (fun c -> Bitset.cardinal c >= total) comps then None
          else
            let rec build = function
              | [] -> Some []
              | c :: rest -> (
                  let child_conn =
                    let cv = Bitset.Scratch.borrow arena nv in
                    Hypergraph.vertices_of_edges_into h c ~into:cv;
                    let conn' = Bitset.inter cv bag in
                    Bitset.Scratch.release arena cv;
                    conn'
                  in
                  match decompose c child_conn with
                  | None -> None
                  | Some node -> (
                      match build rest with
                      | None -> None
                      | Some nodes -> Some (node :: nodes)))
            in
            match build comps with
            | None -> None
            | Some children ->
                Some
                  {
                    Decomp.bag;
                    cover = List.map to_cover_elt (List.rev lambda);
                    children;
                  }
        end
      in
      (* covered_bufs.(d) is B(λ) for the d candidates picked so far;
         depth d+1 overwrites its buffer on every branch, so the whole
         backtracking search reuses k+1 buffers. *)
      let covered_bufs =
        Array.init (k + 1) (fun _ -> Bitset.Scratch.borrow arena nv)
      in
      let rec search idx depth lambda =
        Deadline.check deadline;
        let covered = covered_bufs.(depth) in
        (* Prune: remaining candidates can never finish covering conn. *)
        if not (Bitset.diff_subset conn covered suffix.(idx)) then None
        else begin
          let here =
            if depth > 0 && Bitset.subset conn covered then
              evaluate lambda covered
            else None
          in
          match here with
          | Some _ as r -> r
          | None ->
              if depth = k || idx >= n then None
              else begin
                let rec try_from i =
                  if i >= n then None
                  else begin
                    let c = relevant.(i) in
                    let nxt = covered_bufs.(depth + 1) in
                    Bitset.copy_into covered ~into:nxt;
                    Bitset.union_into ~into:nxt c.vertices;
                    match search (i + 1) (depth + 1) (c :: lambda) with
                    | Some _ as r -> r
                    | None -> try_from (i + 1)
                  end
                in
                try_from idx
              end
        end
      in
      let r = search 0 0 [] in
      Array.iter (Bitset.Scratch.release arena) covered_bufs;
      r
    in
    let r =
      match try_with candidates with
      | Some _ as r -> r
      | None -> (
          match extra with
          | None -> None
          | Some f -> (
              match f ~comp ~conn with
              | [] -> None
              | extras -> try_with (candidates @ extras)))
    in
    Bitset.Scratch.release arena scope;
    Bitset.Scratch.release arena comp_vertices;
    r
  in
  let all = Hypergraph.all_edges h in
  if Bitset.is_empty all then
    Decomposition
      { Decomp.bag = Bitset.empty nv; cover = []; children = [] }
  else
    match decompose all (Bitset.empty nv) with
    | Some d -> Decomposition d
    | None -> No_decomposition
    | exception Deadline.Timed_out -> Timeout

(* Width-1 HD from a GYO join tree: one node per edge, ears hang under
   their witnesses, component roots chain under the first root. *)
let decomposition_of_join_tree h (jt : Hg.Gyo.join_tree) =
  let m = h.Hypergraph.n_edges in
  let children = Array.make m [] in
  Array.iteri
    (fun e p -> if p >= 0 then children.(p) <- e :: children.(p))
    jt.Hg.Gyo.parent;
  let rec build e =
    {
      Decomp.bag = Hypergraph.edge h e;
      cover =
        [
          {
            Decomp.label = Hypergraph.edge_name h e;
            vertices = Hypergraph.edge h e;
            source = Decomp.Original e;
          };
        ];
      children = List.map build children.(e);
    }
  in
  match jt.Hg.Gyo.roots with
  | [] -> { Decomp.bag = Bitset.empty h.Hypergraph.n_vertices; cover = []; children = [] }
  | r :: rest ->
      let root = build r in
      { root with children = root.Decomp.children @ List.map build rest }

let solve ?deadline ?memoize ?sweep ?(gyo_fast_path = true) h ~k =
  if k = 1 && gyo_fast_path then
    (* Check(HD,1) is acyclicity: answer via GYO instead of search. *)
    match Hg.Gyo.reduce h with
    | Some jt -> Decomposition (decomposition_of_join_tree h jt)
    | None -> No_decomposition
  else solve_gen ?deadline ?memoize ?sweep ~candidates:(candidates_of_edges h) h ~k

let hypertree_width ?(deadline = Deadline.none) ?max_k ?sweep h =
  let max_k =
    match max_k with Some m -> m | None -> Stdlib.max 1 h.Hypergraph.n_edges
  in
  (* One failed-subproblem table for the whole sweep: each level records
     its proofs, so any later probe at the same (or a smaller) width —
     e.g. a retry with a bigger budget — starts from everything already
     proven instead of from scratch. Ascending levels never hit entries
     from below (see [sweep_cache]), so the sweep's own counters are
     identical to per-level fresh tables. *)
  let sweep = match sweep with Some s -> s | None -> sweep_cache () in
  let rec go k =
    if k > max_k then (None, k)
    else
      match solve ~deadline ~sweep h ~k with
      | Decomposition d -> (Some (k, d), k)
      | No_decomposition -> go (k + 1)
      | Timeout -> (None, k)
  in
  go 1
