type format = Sql | Xcsp | Hg | Hbx

let all_formats = [ Sql; Xcsp; Hg; Hbx ]

let format_name = function
  | Sql -> "sql"
  | Xcsp -> "xcsp"
  | Hg -> "hg"
  | Hbx -> "hbx"

let format_of_string = function
  | "sql" -> Some Sql
  | "xcsp" -> Some Xcsp
  | "hg" -> Some Hg
  | "hbx" -> Some Hbx
  | _ -> None

type failure = { index : int; outcome : string; input : string; shrunk : string }

type summary = {
  fmt : format;
  cases : int;
  parsed : int;
  rejected : int;
  failures : failure list;
}

let parse_for fmt =
  match fmt with
  | Sql -> fun s -> Result.map ignore (Sql.Convert.sql_to_hypergraphs s)
  | Xcsp -> fun s -> Result.map ignore (Xcsp3.Xcsp.read s)
  | Hg -> fun s -> Result.map ignore (Hg.Hypergraph.parse s)
  | Hbx -> fun s -> Result.map ignore (Hg.Binary.of_string s)

(* A small pool of valid inputs per format for mutation mode, built once
   from a fixed seed so the corpus (and thus every mutated case) is
   independent of the run's seed. *)
let valid_pool fmt =
  let rng = Kit.Rng.create 42 in
  let graphs =
    List.init 4 (fun _ -> Gen.Random_csp.typical rng)
    @ [
        Gen.Random_cq.chain rng ~n_edges:5 ~arity:3;
        Gen.Random_cq.star rng ~n_edges:4 ~arity:3;
      ]
  in
  match fmt with
  | Hg -> Array.of_list (List.map Hg.Hypergraph.to_string graphs)
  | Hbx -> Array.of_list (List.map Hg.Binary.to_string graphs)
  | Xcsp ->
      Array.of_list
        (List.mapi
           (fun i h -> Xcsp3.Xcsp.to_xml ~name:(Printf.sprintf "f%d" i) h)
           graphs)
  | Sql ->
      [|
        "SELECT * FROM tab t1, tab t2 WHERE t1.a = t2.a AND t1.b > 5;";
        "WITH v AS (SELECT t1.a a1, t2.a a2 FROM tab t1, tab t2 WHERE \
         t1.b = t2.b) SELECT * FROM tab t, v WHERE t.a = v.a1;";
        "SELECT r.u FROM r, s WHERE r.x = s.y AND s.w = r.u";
        "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c = 'x') AND \
         EXISTS (SELECT * FROM w WHERE w.k = 1);";
        "SELECT t1.a, COUNT(*) FROM tab t1 JOIN tab t2 ON t1.a = t2.a \
         GROUP BY t1.a HAVING COUNT(*) > 1 ORDER BY t1.a DESC LIMIT 3;";
      |]

let generator fmt =
  match fmt with
  | Sql -> Kit.Fuzz.sql
  | Xcsp -> Kit.Fuzz.xcsp
  | Hg -> Kit.Fuzz.hg
  | Hbx -> Kit.Fuzz.hbx

let outcome_label (o : unit Kit.Outcome.t) =
  match o with
  | Kit.Outcome.Crash detail ->
      (* Keep only the first line: backtraces are not stable summary
         material. *)
      let first = match String.index_opt detail '\n' with
        | Some i -> String.sub detail 0 i
        | None -> detail
      in
      "crash: " ^ first
  | o -> Kit.Outcome.label o

let crashes fmt input =
  let parse = parse_for fmt in
  match Kit.Guard.run (fun () -> ignore (parse input)) with
  | Kit.Outcome.Ok () -> None
  | o -> Some (outcome_label o)

let run fmt ~cases ~seed =
  let pool = valid_pool fmt in
  let gen = generator fmt in
  let parse = parse_for fmt in
  let parsed = ref 0 in
  let rejected = ref 0 in
  let failures = ref [] in
  for i = 0 to cases - 1 do
    (* One independent splitmix stream per case: a failing case replays
       from (seed, index) without regenerating its predecessors. *)
    let rng = Kit.Rng.create ((seed * 1_000_003) + i) in
    let input =
      if Kit.Rng.int rng 4 = 0 then
        Kit.Fuzz.mutate rng pool.(Kit.Rng.int rng (Array.length pool))
      else gen rng
    in
    match Kit.Guard.run (fun () -> parse input) with
    | Kit.Outcome.Ok (Ok ()) -> incr parsed
    | Kit.Outcome.Ok (Error _) -> incr rejected
    | o ->
        let outcome = outcome_label (Kit.Outcome.map ignore o) in
        let shrunk =
          Kit.Fuzz.shrink
            (fun candidate -> crashes fmt candidate <> None)
            input
        in
        failures := { index = i; outcome; input; shrunk } :: !failures
  done;
  {
    fmt;
    cases;
    parsed = !parsed;
    rejected = !rejected;
    failures = List.rev !failures;
  }
