module Rng = Kit.Rng

let scaled scale n = Stdlib.max 1 (int_of_float (ceil (scale *. float_of_int n)))

let build ?(seed = 2019) ?(scale = 1.0) () =
  let rng = Rng.create seed in
  let out = ref [] in
  let add group source name hg =
    if hg.Hg.Hypergraph.n_edges > 0 then
      out := Instance.make ~name ~group ~source hg :: !out
  in
  let series group source n f =
    for i = 1 to n do
      add group source (Printf.sprintf "%s-%03d" source i) (f i)
    done
  in
  (* --- CQ Application ---------------------------------------------------- *)
  series Group.CQ_application "sparql" (scaled scale 10) (fun _ ->
      Gen.Sparql_gen.random_shape rng);
  series Group.CQ_application "wikidata" (scaled scale 30) (fun _ ->
      Gen.Sparql_gen.random_shape rng);
  series Group.CQ_application "lubm" (scaled scale 5) (fun _ -> Gen.Workloads.lubm rng);
  series Group.CQ_application "ibench" (scaled scale 6) (fun _ -> Gen.Workloads.ibench rng);
  series Group.CQ_application "doctors" (scaled scale 5) (fun _ ->
      Gen.Workloads.doctors rng);
  series Group.CQ_application "deep" (scaled scale 6) (fun _ -> Gen.Workloads.deep rng);
  series Group.CQ_application "sqlshare" (scaled scale 12) (fun _ ->
      Gen.Workloads.sqlshare rng);
  (* SQL workloads: fixed query sets, scale-independent. *)
  List.iter
    (fun (source, schema, queries) ->
      List.iter
        (fun (name, hg) -> add Group.CQ_application source (source ^ "-" ^ name) hg)
        (Gen.Workloads.convert_workload schema queries))
    [
      ("tpch", Gen.Workloads.tpch_schema, Gen.Workloads.tpch_queries);
      ("tpcds", Gen.Workloads.tpcds_schema, Gen.Workloads.tpcds_queries);
      ("job", Gen.Workloads.job_schema, Gen.Workloads.job_queries);
    ];
  (* --- CQ Random ---------------------------------------------------------- *)
  series Group.CQ_random "cq-rand" (scaled scale 40) (fun _ ->
      let n_vertices = Rng.int_in rng 5 50 in
      let n_edges = Rng.int_in rng 3 25 in
      let max_arity = Rng.int_in rng 3 12 in
      Gen.Random_cq.random rng ~n_vertices ~n_edges ~max_arity);
  (* --- CSP Application ----------------------------------------------------- *)
  series Group.CSP_application "scheduling" (scaled scale 10) (fun _ ->
      Gen.Structured.scheduling rng ~jobs:(Rng.int_in rng 3 7)
        ~machines:(Rng.int_in rng 3 6));
  series Group.CSP_application "coloring" (scaled scale 10) (fun _ ->
      Gen.Structured.coloring rng ~n_vertices:(Rng.int_in rng 8 25)
        ~avg_degree:(2.0 +. Rng.float rng *. 2.0));
  series Group.CSP_application "config" (scaled scale 10) (fun _ ->
      Gen.Structured.configuration rng ~n_clusters:(Rng.int_in rng 3 8)
        ~cluster_size:(Rng.int_in rng 3 8) ~backbone:(Rng.int_in rng 2 5));
  series Group.CSP_application "circuit" (scaled scale 10) (fun _ ->
      Gen.Structured.circuit rng ~n_gates:(Rng.int_in rng 10 40)
        ~n_inputs:(Rng.int_in rng 3 8));
  (* --- CSP Random ---------------------------------------------------------- *)
  series Group.CSP_random "csp-rand" (scaled scale 25) (fun _ ->
      Gen.Random_csp.random rng
        ~n_variables:(Rng.int_in rng 12 35)
        ~n_constraints:(Rng.int_in rng 18 55)
        ~max_arity:(Rng.int_in rng 2 4));
  (* --- CSP Other ----------------------------------------------------------- *)
  series Group.CSP_other "grid" (scaled scale 5) (fun i ->
      let side = 2 + (i mod 4) in
      Gen.Structured.grid ~rows:side ~cols:(side + (i mod 2)));
  series Group.CSP_other "iscas" (scaled scale 4) (fun _ ->
      Gen.Structured.circuit rng ~n_gates:(Rng.int_in rng 40 80)
        ~n_inputs:(Rng.int_in rng 5 12));
  series Group.CSP_other "daimler" (scaled scale 3) (fun _ ->
      Gen.Structured.configuration rng ~n_clusters:(Rng.int_in rng 8 14)
        ~cluster_size:(Rng.int_in rng 5 12) ~backbone:(Rng.int_in rng 3 7));
  List.rev !out

let by_group instances =
  List.map
    (fun g -> (g, List.filter (fun i -> i.Instance.group = g) instances))
    Group.all

let sources instances =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let s = i.Instance.source in
      if not (Hashtbl.mem tbl s) then begin
        Hashtbl.replace tbl s ();
        order := s :: !order
      end)
    instances;
  List.rev_map
    (fun s -> (s, List.filter (fun i -> i.Instance.source = s) instances))
    !order

let find instances name =
  List.find_opt (fun i -> i.Instance.name = name) instances

let safe_filename name =
  String.map (fun c -> if c = '/' || c = '\\' then '_' else c) name

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> () (* lost a creation race *)
  end

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let save ~dir instances =
  mkdir_p dir;
  with_out (Filename.concat dir "index.tsv") (fun oc ->
      List.iter
        (fun i ->
          Printf.fprintf oc "%s\t%s\t%s\n" i.Instance.name
            (Group.id i.Instance.group) i.Instance.source;
          with_out
            (Filename.concat dir (safe_filename i.Instance.name ^ ".hg"))
            (fun f -> output_string f (Hg.Hypergraph.to_string i.Instance.hg)))
        instances)

type loaded = {
  instances : Instance.t list;
  skipped : (string * string) list;
}

let m_load_skipped = Kit.Metrics.counter "repository.load_skipped"

(* A corrupt entry — torn index line, unknown group, unparseable or
   truncated .hg file — must never abort a campaign that the other few
   thousand instances could still serve. Each one becomes a warning and a
   metrics tick; only a missing/unreadable index is fatal. *)
let load ~dir =
  let index = Filename.concat dir "index.tsv" in
  if not (Sys.file_exists index) then
    Error (Printf.sprintf "no index.tsv in %s" dir)
  else begin
    match open_in index with
    | exception Sys_error m -> Error m
    | ic ->
    let rows =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec lines acc =
            match input_line ic with
            | line -> lines (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          lines [])
    in
    let skip acc label msg rest build =
      Kit.Metrics.incr m_load_skipped;
      build ((label, msg) :: acc) rest
    in
    let rec build instances skipped = function
      | [] -> { instances = List.rev instances; skipped = List.rev skipped }
      | line :: rest -> (
          match String.split_on_char '\t' line with
          | [ name; group_id; source ] -> (
              match Group.of_id group_id with
              | None ->
                  skip skipped name
                    (Printf.sprintf "unknown group %s" group_id)
                    rest (build instances)
              | Some group -> (
                  match
                    Hg.Hypergraph.parse_file
                      (Filename.concat dir (safe_filename name ^ ".hg"))
                  with
                  | Error m -> skip skipped name m rest (build instances)
                  | Ok hg ->
                      build
                        (Instance.make ~name ~group ~source hg :: instances)
                        skipped rest))
          | _ ->
              skip skipped "index.tsv"
                (Printf.sprintf "bad index line: %s" line)
                rest (build instances))
    in
    Ok (build [] [] rows)
  end
