module Rng = Kit.Rng

let scaled scale n = Stdlib.max 1 (int_of_float (ceil (scale *. float_of_int n)))

let build ?(seed = 2019) ?(scale = 1.0) () =
  let rng = Rng.create seed in
  let out = ref [] in
  let add group source name hg =
    if hg.Hg.Hypergraph.n_edges > 0 then
      out := Instance.make ~name ~group ~source hg :: !out
  in
  let series group source n f =
    for i = 1 to n do
      add group source (Printf.sprintf "%s-%03d" source i) (f i)
    done
  in
  (* --- CQ Application ---------------------------------------------------- *)
  series Group.CQ_application "sparql" (scaled scale 10) (fun _ ->
      Gen.Sparql_gen.random_shape rng);
  series Group.CQ_application "wikidata" (scaled scale 30) (fun _ ->
      Gen.Sparql_gen.random_shape rng);
  series Group.CQ_application "lubm" (scaled scale 5) (fun _ -> Gen.Workloads.lubm rng);
  series Group.CQ_application "ibench" (scaled scale 6) (fun _ -> Gen.Workloads.ibench rng);
  series Group.CQ_application "doctors" (scaled scale 5) (fun _ ->
      Gen.Workloads.doctors rng);
  series Group.CQ_application "deep" (scaled scale 6) (fun _ -> Gen.Workloads.deep rng);
  series Group.CQ_application "sqlshare" (scaled scale 12) (fun _ ->
      Gen.Workloads.sqlshare rng);
  (* SQL workloads: fixed query sets, scale-independent. *)
  List.iter
    (fun (source, schema, queries) ->
      List.iter
        (fun (name, hg) -> add Group.CQ_application source (source ^ "-" ^ name) hg)
        (Gen.Workloads.convert_workload schema queries))
    [
      ("tpch", Gen.Workloads.tpch_schema, Gen.Workloads.tpch_queries);
      ("tpcds", Gen.Workloads.tpcds_schema, Gen.Workloads.tpcds_queries);
      ("job", Gen.Workloads.job_schema, Gen.Workloads.job_queries);
    ];
  (* --- CQ Random ---------------------------------------------------------- *)
  series Group.CQ_random "cq-rand" (scaled scale 40) (fun _ ->
      let n_vertices = Rng.int_in rng 5 50 in
      let n_edges = Rng.int_in rng 3 25 in
      let max_arity = Rng.int_in rng 3 12 in
      Gen.Random_cq.random rng ~n_vertices ~n_edges ~max_arity);
  (* --- CSP Application ----------------------------------------------------- *)
  series Group.CSP_application "scheduling" (scaled scale 10) (fun _ ->
      Gen.Structured.scheduling rng ~jobs:(Rng.int_in rng 3 7)
        ~machines:(Rng.int_in rng 3 6));
  series Group.CSP_application "coloring" (scaled scale 10) (fun _ ->
      Gen.Structured.coloring rng ~n_vertices:(Rng.int_in rng 8 25)
        ~avg_degree:(2.0 +. Rng.float rng *. 2.0));
  series Group.CSP_application "config" (scaled scale 10) (fun _ ->
      Gen.Structured.configuration rng ~n_clusters:(Rng.int_in rng 3 8)
        ~cluster_size:(Rng.int_in rng 3 8) ~backbone:(Rng.int_in rng 2 5));
  series Group.CSP_application "circuit" (scaled scale 10) (fun _ ->
      Gen.Structured.circuit rng ~n_gates:(Rng.int_in rng 10 40)
        ~n_inputs:(Rng.int_in rng 3 8));
  (* --- CSP Random ---------------------------------------------------------- *)
  series Group.CSP_random "csp-rand" (scaled scale 25) (fun _ ->
      Gen.Random_csp.random rng
        ~n_variables:(Rng.int_in rng 12 35)
        ~n_constraints:(Rng.int_in rng 18 55)
        ~max_arity:(Rng.int_in rng 2 4));
  (* --- CSP Other ----------------------------------------------------------- *)
  series Group.CSP_other "grid" (scaled scale 5) (fun i ->
      let side = 2 + (i mod 4) in
      Gen.Structured.grid ~rows:side ~cols:(side + (i mod 2)));
  series Group.CSP_other "iscas" (scaled scale 4) (fun _ ->
      Gen.Structured.circuit rng ~n_gates:(Rng.int_in rng 40 80)
        ~n_inputs:(Rng.int_in rng 5 12));
  series Group.CSP_other "daimler" (scaled scale 3) (fun _ ->
      Gen.Structured.configuration rng ~n_clusters:(Rng.int_in rng 8 14)
        ~cluster_size:(Rng.int_in rng 5 12) ~backbone:(Rng.int_in rng 3 7));
  List.rev !out

let by_group instances =
  List.map
    (fun g -> (g, List.filter (fun i -> i.Instance.group = g) instances))
    Group.all

let sources instances =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let s = i.Instance.source in
      if not (Hashtbl.mem tbl s) then begin
        Hashtbl.replace tbl s ();
        order := s :: !order
      end)
    instances;
  List.rev_map
    (fun s -> (s, List.filter (fun i -> i.Instance.source = s) instances))
    !order

let find instances name =
  List.find_opt (fun i -> i.Instance.name = name) instances

(* Sanitising alone is ambiguous: "a/b" and "a_b" would map to the same
   file and silently overwrite each other. The name's own 64-bit digest
   is appended, so distinct names always get distinct files while the
   sanitised prefix keeps directories human-readable. *)
let hg_filename name =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
        | _ -> '_')
      name
  in
  let sanitized =
    if String.length sanitized > 80 then String.sub sanitized 0 80
    else sanitized
  in
  Printf.sprintf "%s-%s.hg" sanitized
    (String.sub Kit.Hash64.(to_hex (add_string init name)) 0 8)

(* index.tsv is tab-separated with one record per line, so a name or
   source containing a tab or newline would tear the index; duplicate
   names would make one of the two instances unaddressable. Both are
   caller bugs — refuse loudly rather than persist garbage. *)
let check_instances instances =
  let check_field what v =
    String.iter
      (fun c ->
        if c = '\t' || c = '\n' || c = '\r' then
          invalid_arg
            (Printf.sprintf "Repository.save: %s %S contains tab/newline"
               what v))
      v
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun i ->
      check_field "instance name" i.Instance.name;
      check_field "source" i.Instance.source;
      if Hashtbl.mem seen i.Instance.name then
        invalid_arg
          (Printf.sprintf "Repository.save: duplicate instance name %S"
             i.Instance.name);
      Hashtbl.replace seen i.Instance.name ())
    instances

let save ~dir instances =
  check_instances instances;
  Fsio.mkdir_p dir;
  List.iter
    (fun i ->
      Fsio.write_atomic
        (Filename.concat dir (hg_filename i.Instance.name))
        (Hg.Hypergraph.to_string i.Instance.hg))
    instances;
  (* The index is written last and atomically: a crash mid-save leaves
     the previous index (or none) in place, never one that references
     half-written files. *)
  let buf = Buffer.create 4096 in
  List.iter
    (fun i ->
      Printf.bprintf buf "%s\t%s\t%s\n" i.Instance.name
        (Group.id i.Instance.group)
        i.Instance.source)
    instances;
  Fsio.write_atomic (Filename.concat dir "index.tsv") (Buffer.contents buf)

type loaded = {
  instances : Instance.t list;
  skipped : (string * string) list;
}

let m_load_skipped = Kit.Metrics.counter "repository.load_skipped"

(* A corrupt entry — torn index line, unknown group, unparseable or
   truncated .hg file — must never abort a campaign that the other few
   thousand instances could still serve. Each one becomes a warning and a
   metrics tick; only a missing/unreadable index is fatal. *)
let load ~dir =
  let index = Filename.concat dir "index.tsv" in
  if not (Sys.file_exists index) then
    Error (Printf.sprintf "no index.tsv in %s" dir)
  else begin
    match open_in index with
    | exception Sys_error m -> Error m
    | ic ->
    let rows =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec lines acc =
            match input_line ic with
            | line -> lines (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          lines [])
    in
    let skip acc label msg rest build =
      Kit.Metrics.incr m_load_skipped;
      build ((label, msg) :: acc) rest
    in
    let rec build instances skipped = function
      | [] -> { instances = List.rev instances; skipped = List.rev skipped }
      | line :: rest -> (
          match String.split_on_char '\t' line with
          | [ name; group_id; source ] -> (
              match Group.of_id group_id with
              | None ->
                  skip skipped name
                    (Printf.sprintf "unknown group %s" group_id)
                    rest (build instances)
              | Some group -> (
                  match
                    Hg.Hypergraph.parse_file
                      (Filename.concat dir (hg_filename name))
                  with
                  | Error m -> skip skipped name m rest (build instances)
                  | Ok hg ->
                      build
                        (Instance.make ~name ~group ~source hg :: instances)
                        skipped rest))
          | _ ->
              skip skipped "index.tsv"
                (Printf.sprintf "bad index line: %s" line)
                rest (build instances))
    in
    Ok (build [] [] rows)
  end

(* --- packed binary repository -------------------------------------------- *)

module V = Kit.Varint

let pack_magic = "HBPK"
let pack_version = 1
let shard_file s n = Printf.sprintf "shard-%03d-of-%03d.hbr" s n

let pack ~dir ?(shards = 1) instances =
  if shards < 1 then invalid_arg "Repository.pack: shards must be >= 1";
  check_instances instances;
  Fsio.mkdir_p dir;
  let entry_bufs = Array.init shards (fun _ -> Buffer.create (1 lsl 12)) in
  let counts = Array.make shards 0 in
  let entry = Buffer.create (1 lsl 10) in
  List.iteri
    (fun idx i ->
      (* Deterministic by instance index, matching campaign sharding, so
         shard s of the pack is exactly the input of campaign shard s/n. *)
      let s = idx mod shards in
      Buffer.clear entry;
      V.write_string entry i.Instance.name;
      V.write_string entry (Group.id i.Instance.group);
      V.write_string entry i.Instance.source;
      V.write_string entry (Hg.Hypergraph.fingerprint i.Instance.hg);
      (* The graph blob is itself length-prefixed so a reader can verify
         or skip an entry without decoding it. *)
      V.write_string entry (Hg.Binary.to_string i.Instance.hg);
      let buf = entry_bufs.(s) in
      Buffer.add_buffer buf entry;
      (* The graph's own fingerprint does not cover the name/group/source
         fields, so each entry ends with a digest of all its bytes —
         verify catches a flipped byte anywhere, not just in the blob. *)
      V.write_string buf
        Kit.Hash64.(to_hex (add_string init (Buffer.contents entry)));
      counts.(s) <- counts.(s) + 1)
    instances;
  Array.iteri
    (fun s entries ->
      let buf = Buffer.create (Buffer.length entries + 16) in
      Buffer.add_string buf pack_magic;
      V.write buf pack_version;
      V.write buf counts.(s);
      Buffer.add_buffer buf entries;
      Fsio.write_atomic
        (Filename.concat dir (shard_file s shards))
        (Buffer.contents buf))
    entry_bufs

(* Same tolerance contract as [load]: one corrupt entry (bad blob, stale
   fingerprint, unknown group) is skipped and reported, the rest of its
   shard still loads; corruption in the framing itself abandons only the
   remainder of that one shard. *)
let load_pack ~dir =
  match Sys.readdir dir with
  | exception Sys_error m -> Error m
  | files ->
      let shards =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".hbr")
        |> List.sort compare
      in
      if shards = [] then Error (Printf.sprintf "no .hbr shards in %s" dir)
      else begin
        let skipped = ref [] in
        let skip label msg =
          Kit.Metrics.incr m_load_skipped;
          skipped := (label, msg) :: !skipped
        in
        let per_shard =
          List.map
            (fun file ->
              match Fsio.read_file (Filename.concat dir file) with
              | Error m ->
                  skip file m;
                  []
              | Ok data ->
                  let entries = ref [] in
                  (try
                     let len = String.length data in
                     if len < 4 || String.sub data 0 4 <> pack_magic then
                       failwith "bad magic";
                     let pos = ref 4 in
                     let version = V.read data pos in
                     if version <> pack_version then
                       failwith
                         (Printf.sprintf "unsupported pack version %d" version);
                     let count = V.read data pos in
                     for _ = 1 to count do
                       let start = !pos in
                       let name = V.read_string data pos in
                       let group_id = V.read_string data pos in
                       let source = V.read_string data pos in
                       let fp = V.read_string data pos in
                       let blob = V.read_string data pos in
                       let digest =
                         Kit.Hash64.(
                           to_hex
                             (add_string init
                                (String.sub data start (!pos - start))))
                       in
                       let checksum = V.read_string data pos in
                       if checksum <> digest then
                         skip name "entry checksum mismatch"
                       else
                         match Group.of_id group_id with
                         | None ->
                             skip name
                               (Printf.sprintf "unknown group %s" group_id)
                         | Some group -> (
                             match Hg.Binary.of_string blob with
                             | Error m -> skip name m
                             | Ok hg ->
                                 if Hg.Hypergraph.fingerprint hg <> fp then
                                   skip name "fingerprint mismatch"
                                 else
                                   entries :=
                                     Instance.make ~name ~group ~source hg
                                     :: !entries)
                     done
                   with
                  | V.Corrupt m -> skip file ("torn shard: " ^ m)
                  | Failure m -> skip file m);
                  List.rev !entries)
            shards
        in
        (* Entry k of shard s was instance k*n + s: a round-robin merge
           across shards restores the original repository order. *)
        let queues = List.map ref per_shard in
        let out = ref [] in
        let progress = ref true in
        while !progress do
          progress := false;
          List.iter
            (fun q ->
              match !q with
              | [] -> ()
              | x :: rest ->
                  q := rest;
                  out := x :: !out;
                  progress := true)
            queues
        done;
        Ok { instances = List.rev !out; skipped = List.rev !skipped }
      end
