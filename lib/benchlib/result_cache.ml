(* Content-addressed result store.

   Entries are keyed by (hypergraph fingerprint, method, width budget k)
   and laid out as <dir>/<fp[0:2]>/<fp>-<method>-k<k>.json, one small
   JSON object per entry. The store is an untrusted accelerator: a "yes"
   entry carries the decomposition witness as Decomp_io text and is
   replayed through the real validator on every hit; anything that fails
   to parse, validate, or match its key degrades to a cache miss plus a
   "cache.invalid" tick — never a wrong answer. "No" verdicts need no
   witness: yes/no at a given k depends only on the structure the
   fingerprint captures. Timeouts are budget-dependent and are never
   cached. *)

module J = Kit.Json

type t = { dir : string }

type verdict = Yes of Decomp.t | No

let m_hit = Kit.Metrics.counter "cache.hit"
let m_miss = Kit.Metrics.counter "cache.miss"
let m_invalid = Kit.Metrics.counter "cache.invalid"
let m_store = Kit.Metrics.counter "cache.store"

let create ~dir =
  Fsio.mkdir_p dir;
  { dir }

let of_env () =
  match Sys.getenv_opt "HB_CACHE" with
  | Some dir when dir <> "" -> Some (create ~dir)
  | Some _ | None -> None

let dir t = t.dir

let entry_path t ~fp ~meth ~k =
  Filename.concat
    (Filename.concat t.dir (String.sub fp 0 2))
    (Printf.sprintf "%s-%s-k%d.json" fp meth k)

let store t hg ~meth ~k verdict =
  let fp = Hg.Hypergraph.fingerprint hg in
  let path = entry_path t ~fp ~meth ~k in
  let fields =
    [
      ("fingerprint", J.String fp);
      ("method", J.String meth);
      ("k", J.Int k);
    ]
    @
    match verdict with
    | No -> [ ("verdict", J.String "no") ]
    | Yes d ->
        [
          ("verdict", J.String "yes");
          ("width", J.Int (Decomp.width d));
          ("hd", J.String (Decomp_io.to_text hg d));
        ]
  in
  Fsio.mkdir_p (Filename.dirname path);
  Fsio.write_atomic path (J.to_string (J.Obj fields));
  Kit.Metrics.incr m_store

(* Exactly one of hit/miss/invalid ticks per lookup, so
   hit / (hit + miss + invalid) is a well-defined hit rate. *)
let find t hg ~meth ~k =
  let fp = Hg.Hypergraph.fingerprint hg in
  let path = entry_path t ~fp ~meth ~k in
  if not (Sys.file_exists path) then begin
    Kit.Metrics.incr m_miss;
    None
  end
  else begin
    let invalid () =
      Kit.Metrics.incr m_invalid;
      None
    in
    let hit v =
      Kit.Metrics.incr m_hit;
      Some v
    in
    let str field j = Option.bind (J.member field j) J.string_value in
    match Fsio.read_file path with
    | Error _ -> invalid ()
    | Ok text -> (
        match J.of_string text with
        | Error _ -> invalid ()
        | Ok j ->
            (* The key is stored redundantly inside the entry; a file
               that landed under the wrong name (manual copy, tooling
               bug) must not answer for this key. *)
            if
              str "fingerprint" j <> Some fp
              || str "method" j <> Some meth
              || Option.bind (J.member "k" j) J.to_int <> Some k
            then invalid ()
            else (
              match str "verdict" j with
              | Some "no" -> hit No
              | Some "yes" -> (
                  match str "hd" j with
                  | None -> invalid ()
                  | Some text -> (
                      match Decomp_io.of_text hg text with
                      | Error _ -> invalid ()
                      | Ok d ->
                          if Decomp.width d <= k && Decomp.check_hd hg d = []
                          then hit (Yes d)
                          else invalid ()))
              | Some _ | None -> invalid ()))
  end
