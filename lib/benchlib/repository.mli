(** The HyperBench-style benchmark repository.

    {!build} assembles a deterministic, seeded collection mirroring the
    paper's group and source structure (Table 1) at a configurable scale:
    SPARQL/Wikidata-like cyclic CQs, chase-benchmark CQs (LUBM, iBench,
    Doctors, Deep), TPC-H / TPC-DS / JOB SQL workloads run through the
    full SQL pipeline, SQLShare-like ad-hoc queries, random CQs with the
    paper's generator parameters, structured and random CSPs, and the
    hard "CSP Other" instances (grids, circuits, Daimler-like
    configurations).

    The repository can be persisted as a directory of HyperBench-format
    [.hg] files plus an index, which is what the [hyperbench] CLI serves —
    our stand-in for the paper's web tool. *)

val build : ?seed:int -> ?scale:float -> unit -> Instance.t list
(** Deterministic in [seed] (default 2019). [scale] (default 1.0)
    multiplies the per-source instance counts; 1.0 yields roughly 200
    instances, large enough to reproduce every shape in the paper's
    tables in minutes of CPU time. *)

val by_group : Instance.t list -> (Group.t * Instance.t list) list
(** Grouped in the canonical order; groups without instances included. *)

val sources : Instance.t list -> (string * Instance.t list) list
(** Grouped by source collection, in first-appearance order. *)

val find : Instance.t list -> string -> Instance.t option

val hg_filename : string -> string
(** On-disk file name for an instance: a sanitised copy of the name
    (anything outside [[A-Za-z0-9._-]] becomes ['_'], truncated to 80
    chars) plus 8 hex chars of the full name's {!Kit.Hash64} digest and
    the [.hg] suffix. The digest disambiguates names that sanitise
    identically (e.g. ["a/b"] vs ["a_b"]), which previously silently
    overwrote each other's files. *)

val save : dir:string -> Instance.t list -> unit
(** Write one [.hg] file per instance (named by {!hg_filename}) plus an
    [index.tsv] with name, group, source. Creates [dir] (and missing
    parents) if needed. Every file — the index last — is written
    atomically (unique temp + fsync + rename), so a crash mid-save never
    leaves a torn file or an index referencing missing entries.
    @raise Invalid_argument on duplicate instance names, or on a name or
    source containing a tab/newline/CR (they would tear the index).
    @raise Sys_error on I/O failure. *)

type loaded = {
  instances : Instance.t list;  (** every entry that loaded cleanly *)
  skipped : (string * string) list;
      (** corrupt entries, as [(label, reason)] in index order; [label]
          is the instance name, or ["index.tsv"] for a torn index line *)
}

val load : dir:string -> (loaded, string) result
(** Tolerant load: a corrupt or unparseable entry (torn index line,
    unknown group id, missing/truncated/malformed [.hg] file) is skipped
    and reported in [skipped] — and counted in the
    ["repository.load_skipped"] metric — rather than aborting the load.
    [Error] is reserved for a missing or unreadable [index.tsv]. *)

val pack : dir:string -> ?shards:int -> Instance.t list -> unit
(** Write the repository as compact binary shard files
    [shard-<s>-of-<n>.hbr] (default [shards = 1]). Instance [i] goes to
    shard [i mod shards] — the same deterministic split campaign
    [--shard s/n] uses. Each shard is [HBPK] magic, a format version,
    an entry count, then per entry the varint-framed name, group id,
    source, {!Hg.Hypergraph.fingerprint}, length-prefixed {!Hg.Binary}
    graph blob, and a {!Kit.Hash64} checksum of all the entry's bytes
    (the fingerprint alone would not cover the name/group/source
    fields). Files are written atomically.
    @raise Invalid_argument as {!save}, or if [shards < 1]. *)

val load_pack : dir:string -> (loaded, string) result
(** Load every [.hbr] shard in [dir], restoring original repository
    order. Tolerant like {!load}: a corrupt entry — undecodable blob,
    fingerprint mismatch, unknown group — is skipped and reported
    (["repository.load_skipped"] metric); torn framing abandons only the
    rest of that shard. [Error] only when [dir] is unreadable or holds
    no [.hbr] files. Doubles as the integrity check behind
    [hyperbench repo verify]. *)
