(** The HyperBench-style benchmark repository.

    {!build} assembles a deterministic, seeded collection mirroring the
    paper's group and source structure (Table 1) at a configurable scale:
    SPARQL/Wikidata-like cyclic CQs, chase-benchmark CQs (LUBM, iBench,
    Doctors, Deep), TPC-H / TPC-DS / JOB SQL workloads run through the
    full SQL pipeline, SQLShare-like ad-hoc queries, random CQs with the
    paper's generator parameters, structured and random CSPs, and the
    hard "CSP Other" instances (grids, circuits, Daimler-like
    configurations).

    The repository can be persisted as a directory of HyperBench-format
    [.hg] files plus an index, which is what the [hyperbench] CLI serves —
    our stand-in for the paper's web tool. *)

val build : ?seed:int -> ?scale:float -> unit -> Instance.t list
(** Deterministic in [seed] (default 2019). [scale] (default 1.0)
    multiplies the per-source instance counts; 1.0 yields roughly 200
    instances, large enough to reproduce every shape in the paper's
    tables in minutes of CPU time. *)

val by_group : Instance.t list -> (Group.t * Instance.t list) list
(** Grouped in the canonical order; groups without instances included. *)

val sources : Instance.t list -> (string * Instance.t list) list
(** Grouped by source collection, in first-appearance order. *)

val find : Instance.t list -> string -> Instance.t option

val save : dir:string -> Instance.t list -> unit
(** Write one [<name>.hg] file per instance plus an [index.tsv] with
    name, group, source. Creates [dir] (and missing parents) if needed;
    channels are closed even when writing fails partway.
    @raise Sys_error on I/O failure. *)

type loaded = {
  instances : Instance.t list;  (** every entry that loaded cleanly *)
  skipped : (string * string) list;
      (** corrupt entries, as [(label, reason)] in index order; [label]
          is the instance name, or ["index.tsv"] for a torn index line *)
}

val load : dir:string -> (loaded, string) result
(** Tolerant load: a corrupt or unparseable entry (torn index line,
    unknown group id, missing/truncated/malformed [.hg] file) is skipped
    and reported in [skipped] — and counted in the
    ["repository.load_skipped"] metric — rather than aborting the load.
    [Error] is reserved for a missing or unreadable [index.tsv]. *)
