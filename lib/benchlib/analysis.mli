(** Experiment runners: the measured side of every table and figure.

    [analyze] performs the paper's Figure-4 protocol on each instance:
    solve Check(HD,k) for k = 1, 2, ... with a fresh budget per run,
    continuing past "no" and "timeout" answers until the first "yes" (or
    the cap). It also computes the structural profile of Table 2. The
    other runners consume those records. *)

type verdict = [ `Yes | `No | `Timeout ]

type hw_run = { k : int; outcome : verdict; seconds : float }

type hw_status =
  | Exact of int  (** hw known exactly: yes at k, no at every k' < k *)
  | Upper of int  (** yes at k, but some smaller k timed out *)
  | Open_above of int  (** no yes up to this k (cap or timeouts) *)

type record = {
  instance : Instance.t;
  profile : Hg.Properties.profile;
  hw_runs : hw_run list;
  hw : hw_status;
  hd : Decomp.t option;  (** witness for Exact/Upper *)
  stats : Kit.Metrics.snapshot;
      (** this instance's search-effort delta ({!Kit.Metrics.local_delta}
          around the k-ladder); {!Kit.Metrics.empty} unless metrics were
          enabled *)
}

val analyze :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?max_k:int ->
  ?jobs:int ->
  ?cache:Result_cache.t ->
  Instance.t list ->
  record list
(** [budget] supplies the per-run deadline (default: 1 s wall clock, the
    scaled-down counterpart of the paper's 3600 s); it must produce a
    fresh deadline per call and be callable from any domain. [max_k]
    defaults to 8. [jobs] (default {!Kit.Pool.default_jobs}) sets the
    domain-pool width; results are in instance order and — for
    deterministic budgets such as [Kit.Deadline.of_fuel] — identical at
    every [jobs] value. [cache] consults/feeds a {!Result_cache} at each
    k level: validated hits replace the solve, definitive verdicts are
    stored, timeouts are neither served nor stored, so cached and
    uncached runs produce the same verdicts. *)

val hw_bound : record -> int option
(** The k with a yes answer (Exact or Upper), if any. *)

type task = {
  task_instance : Instance.t;
  attempts : int;  (** 1 + retries actually used *)
  result : record Kit.Outcome.t;
}
(** One instance's guarded campaign outcome. *)

val analyze_outcomes :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?budget_for:(attempt:int -> unit -> Kit.Deadline.t) ->
  ?retries:int ->
  ?mem_mb:int ->
  ?max_k:int ->
  ?jobs:int ->
  ?isolate:bool ->
  ?wall:(attempt:int -> float) ->
  ?cache:Result_cache.t ->
  ?on_done:(task -> unit) ->
  Instance.t list ->
  task list
(** Campaign-grade {!analyze}: each instance runs inside
    {!Kit.Guard.run}, so a crash, leaked timeout, stack overflow or
    (soft) allocation failure on one instance becomes that instance's
    recorded outcome instead of destroying the run. Guarantees, in
    addition to {!analyze}'s ordering/determinism:

    - a non-[Ok] outcome is retried up to [retries] times (default: the
      [HB_RETRIES] environment knob, else 0), each attempt drawing its
      deadlines from [budget_for ~attempt] — pass an escalating factory
      (e.g. doubling fuel per attempt) to give hard instances more
      budget on retry; the default reuses [budget] unchanged;
    - [mem_mb] (default [HB_MEM_MB]) arms {!Kit.Guard}'s soft memory
      budget for each attempt;
    - [on_done] is called exactly once per instance, on the worker
      domain that finished it and in completion order — this is the
      journal append hook, invoked as soon as the outcome exists so a
      later kill loses at most the in-flight instances;
    - the fault-injection site ["instance.<name>"] is hit at the start
      of every attempt, so tests can fail a chosen instance
      deterministically at any [jobs] value (and observe a retry
      succeed, since the site counter advances per attempt);
    - with [isolate] (default: {!Kit.Proc.enabled}, i.e. [HB_ISOLATE=1])
      each attempt runs in a forked worker under {!Kit.Proc}: the soft
      guard is backed by a hard [SIGKILL] watchdog of [wall ~attempt]
      seconds (default [HB_WALL], else 3600) and a hard memory rlimit at
      the same [mem_mb] budget, so even a search that never polls its
      deadline — or an allocation storm — is contained to its own
      process and journaled as [Timeout] / [Out_of_memory]. [on_done]
      then runs in the parent (monitor) process, still exactly once per
      instance in completion order. Caveat: under isolation the
      ["instance.<name>"] fault counters live per worker process. *)

type ghd_run = {
  algorithm : Ghd.Portfolio.algorithm;
  outcome : verdict;
  seconds : float;
}

type ghd_record = {
  name : string;
  from_k : int;  (** the instance's hw (yes-level) *)
  target_k : int;  (** from_k - 1 *)
  runs : ghd_run list;  (** one per algorithm *)
  combined : verdict;  (** first definitive answer across algorithms *)
  combined_seconds : float;  (** time of the fastest deciding algorithm *)
  stats : Kit.Metrics.snapshot;
      (** search-effort delta over the three algorithm runs;
          {!Kit.Metrics.empty} unless metrics were enabled *)
}

val ghd_comparison :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?ks:int list ->
  ?jobs:int ->
  ?intra_jobs:int ->
  record list ->
  ghd_record list
(** Table 3/4 protocol: for every instance whose hw (yes-level) k is in
    [ks] (default [3;4;5;6]), run all three GHD algorithms on
    Check(GHD, k-1). With [intra_jobs > 1] (default 1) the comparison
    additionally runs {!Ghd.Par_bal_sep} on [intra_jobs] domains —
    how a campaign spends idle pool domains when the instance shard is
    narrower than the pool. Caveat: the parallel member's steal workers
    record metrics on their own domains, outside the per-record
    [stats] delta (the ticks still reach the global snapshot), so
    audits that pin per-record deltas must keep [intra_jobs = 1]. *)

type frac_record = {
  name : string;
  hw : int;
  improve_width : float;  (** ImproveHD width (from the stored HD) *)
  frac_improve_width : float option;
      (** FracImproveHD best width; [None] = timed out before any result *)
}

val fractional :
  ?budget:(unit -> Kit.Deadline.t) ->
  ?step:float ->
  ?jobs:int ->
  record list ->
  frac_record list
(** Tables 5 and 6: for every record with an HD witness, the ImproveHD
    width and the best FracImproveHD width. *)
