(* Shared filesystem helpers for the persistence layer (repository,
   result cache): recursive mkdir, crash-safe whole-file writes
   (temp + fsync + rename) and safe whole-file reads. *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> () (* lost a creation race *)
  end

(* Unique temp names: concurrent writers of the same path (worker
   processes under --isolate, domains of one pool) must never interleave
   bytes in a shared temp file — each write gets its own and the rename
   decides the winner. *)
let tmp_counter = Atomic.make 0

let write_atomic path data =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     flush oc;
     (* Some filesystems refuse fsync; durability then degrades to
        flush, matching Journal's behaviour. *)
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* The channel is closed on every path; truncation mid-read surfaces as
   [Error], not an escaped End_of_file. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception End_of_file -> Error (path ^ ": truncated file")
          | exception Sys_error m -> Error m)
