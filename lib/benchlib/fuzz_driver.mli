(** Seeded adversarial fuzzing of the four parsing frontends.

    Each case is generated deterministically from [(seed, index)] via
    {!Kit.Fuzz} — roughly one case in four is a byte-level mutation of
    a valid corpus input, the rest are grammar-adversarial — and parsed
    under {!Kit.Guard.run}. The invariant is crash-freedom: every case
    must come back [Ok] or structured [Error]; a [Stack_overflow],
    [Out_of_memory] or any uncaught exception is a failure, recorded
    with a ddmin-shrunk reproducer. *)

type format = Sql | Xcsp | Hg | Hbx

val all_formats : format list

val format_name : format -> string

val format_of_string : string -> format option
(** Accepts ["sql"], ["xcsp"], ["hg"], ["hbx"]. *)

type failure = {
  index : int;  (** case number within the run *)
  outcome : string;  (** Kit.Outcome label, e.g. ["crash"] *)
  input : string;  (** the offending input, verbatim *)
  shrunk : string;  (** ddmin-reduced input still reproducing it *)
}

type summary = {
  fmt : format;
  cases : int;
  parsed : int;  (** parser returned [Ok] *)
  rejected : int;  (** parser returned a structured [Error] *)
  failures : failure list;  (** crashes — empty on a healthy frontend *)
}

val run : format -> cases:int -> seed:int -> summary
(** Deterministic: same [(format, cases, seed)] → same summary. Honours
    [HB_MEM_MB] through {!Kit.Guard.run}. *)

val parse_for : format -> string -> (unit, string) result
(** The exact parser entry point the fuzzer drives for a format —
    exposed so tests and the shrinker predicate agree with the run. *)
