type verdict = [ `Yes | `No | `Timeout ]

type hw_run = { k : int; outcome : verdict; seconds : float }

type hw_status = Exact of int | Upper of int | Open_above of int

type record = {
  instance : Instance.t;
  profile : Hg.Properties.profile;
  hw_runs : hw_run list;
  hw : hw_status;
  hd : Decomp.t option;
  stats : Kit.Metrics.snapshot;
}

let default_budget () = Kit.Deadline.of_seconds 1.0

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Instances are independent, so every runner fans its per-instance loop
   out over a domain pool. [budget] must therefore produce a fresh
   deadline on every call and be safe to call from any domain (the
   defaults are). Results come back in input order regardless of [jobs]. *)
let pool_map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> Kit.Pool.default_jobs () in
  Kit.Pool.map_list ~jobs f xs

let analyze_one ~budget ~max_k ?cache (inst : Instance.t) =
  let h = inst.Instance.hg in
  let profile = Hg.Properties.profile ~deadline:(budget ()) h in
  (* With a cache, each Check(HD,k) level first consults the store (a
     validated hit replays the witness through the checker inside
     Result_cache.find); definitive verdicts from a real solve are
     written back. Timeouts stay uncached — they depend on the budget,
     not the instance. *)
  let solve k =
    match cache with
    | None -> Detk.solve ~deadline:(budget ()) h ~k
    | Some c -> (
        match Result_cache.find c h ~meth:"hd" ~k with
        | Some (Result_cache.Yes d) -> Detk.Decomposition d
        | Some Result_cache.No -> Detk.No_decomposition
        | None ->
            let o = Detk.solve ~deadline:(budget ()) h ~k in
            (match o with
            | Detk.Decomposition d ->
                Result_cache.store c h ~meth:"hd" ~k (Result_cache.Yes d)
            | Detk.No_decomposition ->
                Result_cache.store c h ~meth:"hd" ~k Result_cache.No
            | Detk.Timeout -> ());
            o)
  in
  let rec levels k acc had_timeout =
    if k > max_k then (List.rev acc, Open_above max_k, None)
    else begin
      let outcome, seconds = timed (fun () -> solve k) in
      match outcome with
      | Detk.Decomposition d ->
          let run = { k; outcome = `Yes; seconds } in
          let status = if had_timeout then Upper k else Exact k in
          (List.rev (run :: acc), status, Some d)
      | Detk.No_decomposition ->
          levels (k + 1) ({ k; outcome = `No; seconds } :: acc) had_timeout
      | Detk.Timeout ->
          levels (k + 1) ({ k; outcome = `Timeout; seconds } :: acc) true
    end
  in
  (* [local_delta] works because the pool runs each instance wholly on
     one domain, so this domain's store only moves for our own work. *)
  let (hw_runs, hw, hd), stats =
    Kit.Metrics.local_delta (fun () -> levels 1 [] false)
  in
  { instance = inst; profile; hw_runs; hw; hd; stats }

let analyze ?(budget = default_budget) ?(max_k = 8) ?jobs ?cache instances =
  pool_map ?jobs (analyze_one ~budget ~max_k ?cache) instances

type task = {
  task_instance : Instance.t;
  attempts : int;
  result : record Kit.Outcome.t;
}

let default_retries () =
  match Sys.getenv_opt "HB_RETRIES" with
  | Some v -> (
      match int_of_string_opt v with Some r when r >= 0 -> r | _ -> 0)
  | None -> 0

let analyze_outcomes ?(budget = default_budget) ?budget_for ?retries ?mem_mb
    ?(max_k = 8) ?jobs ?isolate ?wall ?cache ?on_done instances =
  let retries = match retries with Some r -> r | None -> default_retries () in
  let budget_for =
    match budget_for with Some bf -> bf | None -> fun ~attempt:_ -> budget
  in
  let isolate =
    match isolate with Some b -> b | None -> Kit.Proc.enabled ()
  in
  if isolate then begin
    (* Hard isolation: each attempt runs in a forked worker under
       Kit.Proc's wall-clock watchdog and memory rlimit. Proc owns the
       retry ladder (re-dispatching with attempt + 1) and the Guard
       wrapper, so the task body is just the fault site plus the
       k-ladder; the deadline still escalates through [budget_for]. *)
    let tasks = Array.of_list instances in
    let task_of c =
      {
        task_instance = tasks.(c.Kit.Proc.index);
        attempts = c.Kit.Proc.attempts;
        result = c.Kit.Proc.outcome;
      }
    in
    Kit.Proc.run ?jobs ?mem_mb ~retries ?wall
      ?on_done:(Option.map (fun f c -> f (task_of c)) on_done)
      (fun ~attempt (inst : Instance.t) ->
        let budget = budget_for ~attempt in
        Kit.Fault.hit ("instance." ^ inst.Instance.name);
        (* The cache handle is a plain directory path, so it survives the
           fork; hits/stores happen in the worker process. *)
        analyze_one ~budget ~max_k ?cache inst)
      tasks
    |> Array.to_list |> List.map task_of
    |> List.map (fun t ->
           (* The worker's own metrics store died with its process; its
              per-instance delta travelled back inside the record, so
              replaying it here keeps the global totals equal to an
              in-process run (failed instances lose their partial
              counters — they report no record to carry them). *)
           (match t.result with
           | Kit.Outcome.Ok r -> Kit.Metrics.absorb r.stats
           | _ -> ());
           t)
  end
  else
  pool_map ?jobs
    (fun (inst : Instance.t) ->
      (* Attempt 0 runs on the base budget; each retry escalates through
         [budget_for], so a transient fault or a too-tight budget gets a
         second chance while a deterministic crash fails the same way and
         is recorded after the last attempt. *)
      let rec attempt i =
        let budget = budget_for ~attempt:i in
        let result =
          Kit.Guard.run ?mem_mb (fun () ->
              Kit.Fault.hit ("instance." ^ inst.Instance.name);
              analyze_one ~budget ~max_k ?cache inst)
        in
        match result with
        | Kit.Outcome.Ok _ -> { task_instance = inst; attempts = i + 1; result }
        | _ when i < retries -> attempt (i + 1)
        | _ -> { task_instance = inst; attempts = i + 1; result }
      in
      let t = attempt 0 in
      (match on_done with Some f -> f t | None -> ());
      t)
    instances

let hw_bound r =
  match r.hw with Exact k | Upper k -> Some k | Open_above _ -> None

type ghd_run = {
  algorithm : Ghd.Portfolio.algorithm;
  outcome : verdict;
  seconds : float;
}

type ghd_record = {
  name : string;
  from_k : int;
  target_k : int;
  runs : ghd_run list;
  combined : verdict;
  combined_seconds : float;
  stats : Kit.Metrics.snapshot;
}

let ghd_comparison ?(budget = default_budget) ?(ks = [ 3; 4; 5; 6 ]) ?jobs
    ?(intra_jobs = 1) records =
  List.filter_map Fun.id
  @@ pool_map ?jobs
       (fun r ->
      match hw_bound r with
      | Some k when List.mem k ks ->
          let h = r.instance.Instance.hg in
          let target_k = k - 1 in
          let run alg =
            let (outcome : Detk.outcome), exact, seconds =
              match alg with
              | Ghd.Portfolio.Bal_sep_alg ->
                  let a, s =
                    timed (fun () -> Ghd.Bal_sep.solve ~deadline:(budget ()) h ~k:target_k)
                  in
                  (a.Ghd.Bal_sep.outcome, a.Ghd.Bal_sep.exact, s)
              | Ghd.Portfolio.Par_bal_sep_alg ->
                  let a, s =
                    timed (fun () ->
                        Ghd.Par_bal_sep.solve ~jobs:intra_jobs
                          ~deadline:(budget ()) h ~k:target_k)
                  in
                  (a.Ghd.Bal_sep.outcome, a.Ghd.Bal_sep.exact, s)
              | Ghd.Portfolio.Local_bip_alg ->
                  let a, s =
                    timed (fun () -> Ghd.Local_bip.solve ~deadline:(budget ()) h ~k:target_k)
                  in
                  (a.Ghd.Local_bip.outcome, a.Ghd.Local_bip.exact, s)
              | Ghd.Portfolio.Global_bip_alg ->
                  let a, s =
                    timed (fun () -> Ghd.Global_bip.solve ~deadline:(budget ()) h ~k:target_k)
                  in
                  (a.Ghd.Global_bip.outcome, a.Ghd.Global_bip.exact, s)
            in
            let v : verdict =
              match outcome with
              | Detk.Decomposition _ -> `Yes
              | Detk.No_decomposition -> if exact then `No else `Timeout
              | Detk.Timeout -> `Timeout
            in
            { algorithm = alg; outcome = v; seconds }
          in
          (* The intra-parallel member joins the comparison only when it
             actually gets extra domains. Its steal-worker domains record
             into their own metric stores, outside this local delta — the
             ticks still reach the process-wide snapshot, but per-record
             [stats] under-report the parallel member; campaigns that pin
             per-record deltas bit-for-bit keep [intra_jobs = 1]. *)
          let members =
            [ Ghd.Portfolio.Bal_sep_alg; Ghd.Portfolio.Local_bip_alg;
              Ghd.Portfolio.Global_bip_alg ]
            @ (if intra_jobs > 1 then [ Ghd.Portfolio.Par_bal_sep_alg ] else [])
          in
          let runs, stats =
            Kit.Metrics.local_delta (fun () -> List.map run members)
          in
          let decided =
            List.filter (fun x -> x.outcome <> `Timeout) runs
            |> List.sort (fun a b -> compare a.seconds b.seconds)
          in
          let combined, combined_seconds =
            match decided with
            | [] -> (`Timeout, 0.0)
            | best :: _ -> (best.outcome, best.seconds)
          in
          Some
            {
              name = r.instance.Instance.name;
              from_k = k;
              target_k;
              runs;
              combined;
              combined_seconds;
              stats;
            }
      | _ -> None)
    records

type frac_record = {
  name : string;
  hw : int;
  improve_width : float;
  frac_improve_width : float option;
}

let fractional ?(budget = default_budget) ?(step = 0.1) ?jobs records =
  List.filter_map Fun.id
  @@ pool_map ?jobs
       (fun r ->
      match (hw_bound r, r.hd) with
      | Some hw, Some hd ->
          let h = r.instance.Instance.hg in
          let improve_width = Fhd.Improve_hd.improved_width h hd in
          let frac_improve_width =
            match Fhd.Frac_improve_hd.best ~deadline:(budget ()) ~step h ~k:hw with
            | Some (_, w) -> Some w
            | None -> None
            | exception Kit.Deadline.Timed_out -> None
          in
          Some
            { name = r.instance.Instance.name; hw; improve_width; frac_improve_width }
      | _ -> None)
    records
