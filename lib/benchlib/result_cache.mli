(** Content-addressed result store for decomposition verdicts.

    Keyed by [(fingerprint, method, k)] where the fingerprint is
    {!Hg.Hypergraph.fingerprint} — so any two structurally identical
    hypergraphs (same sorted edge multiset over vertex names, however
    numbered or serialised) share cache entries. On disk:
    [<dir>/<fp[0:2]>/<fp>-<method>-k<k>.json], one atomic-written JSON
    object per entry.

    The store is treated as untrusted input. A cached "yes" carries its
    decomposition witness and is replayed through {!Decomp_io.of_text} +
    {!Decomp.check_hd} (and a width [<= k] check) against the query
    hypergraph on every hit; any corruption or mismatch degrades to a
    miss with a ["cache.invalid"] tick — a poisoned cache can cost time,
    never correctness. "No" entries are witness-free (the verdict is a
    function of the fingerprinted structure alone). Timeouts are
    budget-dependent and never cached.

    Metrics: exactly one of ["cache.hit"] / ["cache.miss"] /
    ["cache.invalid"] per {!find}, ["cache.store"] per {!store}; none
    tick when no cache is configured. *)

type t

type verdict = Yes of Decomp.t | No

val create : dir:string -> t
(** Open (creating directories as needed) a store rooted at [dir]. The
    handle is a plain path — safe to use from any domain and across
    {!Kit.Proc} forks. *)

val of_env : unit -> t option
(** [Some (create ~dir)] when the [HB_CACHE] environment variable names
    a directory, [None] otherwise. *)

val dir : t -> string

val find : t -> Hg.Hypergraph.t -> meth:string -> k:int -> verdict option
(** Validated lookup; [None] on miss or on an entry that fails
    validation. [Yes d] always satisfies [Decomp.check_hd = []] and
    [Decomp.width d <= k] against the given hypergraph. *)

val store : t -> Hg.Hypergraph.t -> meth:string -> k:int -> verdict -> unit
(** Persist a definitive verdict (atomic write; concurrent writers of
    the same key are safe — last rename wins and both contents are
    valid). I/O failure raises [Sys_error]. *)
