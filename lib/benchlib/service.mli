(** The [hyperbenchd] request handler: decomposition as a service.

    Glue between {!Serve} (the wire) and the solver stack: parses the
    posted hypergraph (HG text, packed binary, SQL or XCSP3, selected by
    [Content-Type]), answers Check(HD/GHD,k) or a full hypertree-width
    ladder, consults {!Result_cache} by fingerprint before solving (HD
    only — GHD witnesses cannot be replayed through the HD checker), and
    renders verdict + width + decomposition as JSON.

    Each solve runs under the per-request budget: with [isolate] it goes
    through {!Kit.Proc} ([jobs:1] — a forked worker with a wall-clock
    watchdog and hard memory rlimit), otherwise in-process under
    {!Kit.Guard.run} with the soft memory alarm {e disabled} (the alarm
    is process-global; in a threaded daemon it would blame whichever
    request happens to allocate next). Cache lookups and stores happen
    {e inside} the solving process, so hits skip the solver in both
    modes; the worker ships its metric delta back with the result.

    Response bodies are deterministic — timing lives in the
    [X-HB-Seconds] header, and [X-HB-Cache: hit|miss|off] reports cache
    participation — so a cache hit is byte-identical to the original
    response.

    {2 Self-healing}

    Every solve is charged to a subsystem breaker ([isolation] when
    forking, [solver] in-process) owned by [supervisor]. A crashed
    worker is restarted with jittered backoff up to the supervisor's
    retry budget (each restart ticks [serve.worker_restarts]); a crash
    that survives the restarts answers 503 with the breaker's honest
    [Retry-After]. While a breaker is open, [POST /decompose] degrades
    instead of failing: a request whose fingerprint has a cached
    definitive verdict is answered 200 from cache (byte-identical body,
    [X-HB-Degraded: cache]), anything else gets 503 + [Retry-After]
    from the half-open probe schedule. Worker-kill chaos is injected at
    the [serve.worker] {!Kit.Fault} site, decided in the daemon so the
    firing sequence stays deterministic under isolation.

    Clients advertise their remaining budget in [X-HB-Deadline]
    (seconds, set by {!Serve.Client.request_retry}): an expired
    deadline is answered 504 without solving, otherwise it caps the
    solve's time budget. *)

type config = {
  cache : Result_cache.t option;
  isolate : bool;  (** fork per request via {!Kit.Proc} *)
  mem_mb : int option;  (** hard rlimit per isolated request *)
  default_timeout : float;  (** seconds, when the request names none *)
  max_timeout : float;  (** ceiling on client-requested budgets *)
  max_k : int;  (** ladder ceiling when no [k] is given *)
  supervisor : Serve.Supervisor.t;
      (** breakers + worker restart policy — see {!Serve.Supervisor} *)
}

val default_config : unit -> config
(** [cache] from [HB_CACHE], [isolate] from [HB_ISOLATE], [mem_mb] from
    [HB_MEM_MB], timeouts 10 s default / 60 s max, [max_k] 8, a fresh
    default [supervisor]. *)

val handler : config -> Serve.Http.request -> Serve.Http.response
(** Routes:
    - [GET /] — usage document;
    - [GET /healthz] — liveness plus per-subsystem breaker state,
      [200 {"ok":bool,"subsystems":{...}}] ([ok] false while any
      breaker is open — the daemon itself is alive either way);
    - [GET /metrics] — Prometheus text rendering of {!Kit.Metrics};
    - [POST /decompose?k=..&method=..&timeout=..&fuel=..] — solve.

    [method] is one of [hd] (default), [balsep], [parbalsep],
    [localbip], [globalbip], [portfolio]; all but [hd] require [k].
    [parbalsep] is the work-stealing {!Ghd.Par_bal_sep}: it uses the
    [HB_JOBS] pool width only under [HB_ISOLATE] (the solve runs in a
    forked child there); in-process it pins jobs to 1, because domains
    spawned in the daemon would permanently break [Unix.fork]. Without [k],
    [hd] runs the width ladder [k = 1..max_k]. [fuel] switches to the
    deterministic fuel budget (tests). Errors: 400 bad parameters, 404 /
    405 routing, 415 unknown content type, 422 unparseable payload, 500
    solver stack overflow, 503 + [Retry-After] out of memory / crash
    beyond the restart budget / breaker open on a cache miss, 504
    expired [X-HB-Deadline]. *)
